//! Experiments F7–F11 (Figs. 7–11): the web screens — dashboard, upload,
//! deploy, terminate/modify — reproduced as deterministic renderings and
//! action flows of the application tier.

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::app::{dashboard, Action, RentalApp, SessionToken};
use legal_smart_contracts::chain::LocalNode;
use legal_smart_contracts::core::contracts;
use legal_smart_contracts::ipfs::IpfsNode;
use legal_smart_contracts::primitives::{ether, Address, U256};
use legal_smart_contracts::web3::Web3;

struct Screens {
    app: RentalApp,
    landlord: SessionToken,
    tenant: SessionToken,
}

fn setup() -> Screens {
    let web3 = Web3::new(LocalNode::new(4));
    let accounts = web3.accounts();
    let app = RentalApp::new(web3, IpfsNode::new());
    app.register("juned_ali", "j@x", "pw", accounts[1]).unwrap();
    app.register("eleana_kafeza", "e@x", "pw", accounts[0])
        .unwrap();
    let landlord = app.login("eleana_kafeza", "pw").unwrap();
    let tenant = app.login("juned_ali", "pw").unwrap();
    Screens {
        app,
        landlord,
        tenant,
    }
}

fn upload_both(s: &Screens) -> (u64, u64) {
    let base = contracts::compile_base_rental().unwrap();
    let v2 = contracts::compile_rental_agreement().unwrap();
    let up1 = s
        .app
        .upload_contract(
            s.landlord,
            "Basic rental contract",
            base.bytecode.clone(),
            &base.abi.to_json(),
        )
        .unwrap();
    let up2 = s
        .app
        .upload_contract(
            s.landlord,
            "Modified rental contract",
            v2.bytecode.clone(),
            &v2.abi.to_json(),
        )
        .unwrap();
    (up1, up2)
}

fn base_args() -> Vec<AbiValue> {
    vec![
        AbiValue::Uint(ether(1)),
        AbiValue::string("H-1"),
        AbiValue::uint(365 * 24 * 3600),
    ]
}

#[test]
fn fig7_dashboard_shows_user_balance_and_contracts() {
    let s = setup();
    let (up1, _) = upload_both(&s);
    s.app
        .deploy_contract(s.landlord, up1, &base_args(), U256::ZERO)
        .unwrap();
    let d = s.app.dashboard(s.landlord).unwrap();
    let screen = dashboard::render(&d);
    // The figure's header: user name + balance.
    assert!(screen.contains("FOR USER - ELEANA_KAFEZA BALANCE - 9"));
    // Both uploads listed with a DEPLOY action.
    assert!(screen.contains("Basic rental contract"));
    assert!(screen.contains("Modified rental contract"));
    assert!(screen.matches("DEPLOY").count() >= 2);
    // The deployed contract row with landlord actions.
    assert!(screen.contains("landlord"));
    assert!(screen.contains("TERMINATE_AGREEMENT"));
    assert!(screen.contains("MODIFY"));
}

#[test]
fn fig8_web3_snippet_equivalent() {
    // The figure's code: deploy a contract from bytecode+ABI, then call a
    // function on it through the client — exactly Web3::deploy + send.
    let web3 = Web3::new(LocalNode::new(2));
    let from = web3.accounts()[0];
    let artifact = contracts::compile_base_rental().unwrap();
    let (contract, receipt) = web3
        .deploy(
            from,
            artifact.abi.clone(),
            artifact.bytecode.clone(),
            &base_args(),
            U256::ZERO,
        )
        .unwrap();
    assert!(receipt.is_success());
    // transact: contract.functions.confirmAgreement().transact(...)
    let tenant = web3.accounts()[1];
    let receipt = contract
        .send(tenant, "confirmAgreement", &[], U256::ZERO)
        .unwrap();
    assert!(receipt.is_success());
    // call: contract.functions.state().call()
    assert_eq!(contract.call1("state", &[]).unwrap().as_u64(), Some(1));
}

#[test]
fn fig9_upload_requires_abi_and_bytecode() {
    let s = setup();
    let base = contracts::compile_base_rental().unwrap();
    // Valid upload (both files) succeeds and pins the ABI.
    let id = s
        .app
        .upload_contract(
            s.tenant,
            "Basic rental contract",
            base.bytecode.clone(),
            &base.abi.to_json(),
        )
        .unwrap();
    let uploads = s.app.manager().uploads();
    assert_eq!(uploads[id as usize].name, "Basic rental contract");
    assert!(s
        .app
        .manager()
        .registry()
        .ipfs()
        .cat(&uploads[id as usize].abi_cid)
        .is_ok());
    // Broken ABI or empty bytecode are rejected.
    assert!(s
        .app
        .upload_contract(s.tenant, "bad", base.bytecode.clone(), "{oops")
        .is_err());
    assert!(s
        .app
        .upload_contract(s.tenant, "bad", vec![], &base.abi.to_json())
        .is_err());
}

#[test]
fn fig10_deploy_from_dashboard() {
    let s = setup();
    let (up1, _) = upload_both(&s);
    // The dashboard lists the upload before deployment…
    let d = s.app.dashboard(s.landlord).unwrap();
    assert!(d.uploads.iter().any(|(id, _)| *id == up1));
    // …and the landlord deploys it.
    let address = s
        .app
        .deploy_contract(s.landlord, up1, &base_args(), U256::ZERO)
        .unwrap();
    // Once deployed, the application can execute its logic.
    let rebound = s.app.manager().contract_at(address).unwrap();
    assert_eq!(
        rebound.call1("rent", &[]).unwrap().as_uint(),
        Some(ether(1))
    );
    // The dashboard row appears for the landlord.
    let d = s.app.dashboard(s.landlord).unwrap();
    assert!(d
        .rows
        .iter()
        .any(|r| r.address == address && r.role == "landlord"));
}

#[test]
fn fig11_terminate_and_modify_screen() {
    let s = setup();
    let (up1, up2) = upload_both(&s);
    let v1 = s
        .app
        .deploy_contract(s.landlord, up1, &base_args(), U256::ZERO)
        .unwrap();
    s.app.confirm_agreement(s.tenant, v1).unwrap();
    s.app.pay_rent(s.tenant, v1).unwrap();

    // The landlord's row offers both TERMINATE and MODIFY.
    let d = s.app.dashboard(s.landlord).unwrap();
    let row = d.rows.iter().find(|r| r.address == v1).unwrap();
    assert!(row.actions.contains(&Action::Terminate));
    assert!(row.actions.contains(&Action::Modify));

    // MODIFY: deploys the new version, links it, keeps old transactions.
    let v2 = s
        .app
        .modify_contract(
            s.landlord,
            v1,
            up2,
            &[
                AbiValue::Uint(ether(1)),
                AbiValue::Uint(ether(2)),
                AbiValue::uint(365 * 24 * 3600),
                AbiValue::Uint(U256::ZERO),
                AbiValue::Uint(ether(1) / U256::from_u64(2)),
                AbiValue::string("H-1"),
            ],
            &[],
        )
        .unwrap();
    assert_ne!(v1, v2);
    assert_eq!(s.app.version_history(s.landlord, v2).unwrap(), vec![v1, v2]);
    // Old paid rents remain readable on the old version.
    let old = legal_smart_contracts::core::Rental::at(s.app.manager().contract_at(v1).unwrap());
    assert_eq!(old.paid_rents().unwrap().len(), 1);

    // TERMINATE on the old version (tenant rejected the modification).
    s.app.terminate(s.landlord, v1).unwrap();
    let d = s.app.dashboard(s.landlord).unwrap();
    let row = d.rows.iter().find(|r| r.address == v1).unwrap();
    assert_eq!(row.actions, vec![Action::ViewHistory]);
}

#[test]
fn transaction_history_visible_via_dashboard_data() {
    // "The dashboard also shows all the previous contracts … and provides
    // an option to see the transaction history of the contract."
    let s = setup();
    let (up1, _) = upload_both(&s);
    let v1 = s
        .app
        .deploy_contract(s.landlord, up1, &base_args(), U256::ZERO)
        .unwrap();
    s.app.confirm_agreement(s.tenant, v1).unwrap();
    for _ in 0..3 {
        s.app.pay_rent(s.tenant, v1).unwrap();
    }
    let rental = legal_smart_contracts::core::Rental::at(s.app.manager().contract_at(v1).unwrap());
    let history = rental.paid_rents().unwrap();
    assert_eq!(history.len(), 3);
    assert_eq!(history[2].0, 3, "months numbered consecutively");
    let summary = rental.summary().unwrap();
    assert_eq!(summary.rents_paid, 3);
    assert_eq!(summary.house, "H-1");
    assert_ne!(summary.tenant, Address::ZERO);
}
