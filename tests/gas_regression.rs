//! Gas-regression guardrails: the series recorded in EXPERIMENTS.md are
//! deterministic in this EVM; these tests pin them within ±25% so an
//! accidental change to the gas schedule, compiler codegen or contract
//! sources shows up as a failing build rather than silently invalidating
//! the documented results.

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::chain::LocalNode;
use legal_smart_contracts::core::{contracts, ContractManager, Rental};
use legal_smart_contracts::ipfs::IpfsNode;
use legal_smart_contracts::primitives::{ether, U256};
use legal_smart_contracts::web3::Web3;

fn assert_near(actual: u64, recorded: u64, what: &str) {
    let lo = recorded - recorded / 4;
    let hi = recorded + recorded / 4;
    assert!(
        (lo..=hi).contains(&actual),
        "{what}: measured {actual} gas, EXPERIMENTS.md records {recorded} (allowed {lo}..={hi})"
    );
}

fn world() -> (ContractManager, Web3) {
    let web3 = Web3::new(LocalNode::new(4));
    (ContractManager::new(web3.clone(), IpfsNode::new()), web3)
}

fn base_args() -> Vec<AbiValue> {
    vec![
        AbiValue::Uint(ether(1)),
        AbiValue::string("10001-42 Main St"),
        AbiValue::uint(365 * 24 * 3600),
    ]
}

#[test]
fn deployment_gas_matches_records() {
    let (_, web3) = world();
    let from = web3.accounts()[0];
    let base = contracts::compile_base_rental().unwrap();
    let (_, receipt) = web3
        .deploy(
            from,
            base.abi.clone(),
            base.bytecode.clone(),
            &base_args(),
            U256::ZERO,
        )
        .unwrap();
    assert_near(receipt.gas_used, 1_316_446, "BaseRental deployment");

    let v2 = contracts::compile_rental_agreement().unwrap();
    let (_, receipt) = web3
        .deploy(
            from,
            v2.abi.clone(),
            v2.bytecode.clone(),
            &[
                AbiValue::Uint(ether(1)),
                AbiValue::Uint(ether(2)),
                AbiValue::uint(365 * 24 * 3600),
                AbiValue::Uint(U256::ZERO),
                AbiValue::Uint(ether(1) / U256::from_u64(2)),
                AbiValue::string("10001-42 Main St"),
            ],
            U256::ZERO,
        )
        .unwrap();
    assert_near(receipt.gas_used, 1_951_169, "RentalAgreement deployment");
}

#[test]
fn lifecycle_gas_matches_records() {
    let (manager, web3) = world();
    let landlord = web3.accounts()[0];
    let tenant = web3.accounts()[1];
    let base = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &base).unwrap();
    let contract = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();
    let rental = Rental::at(contract);

    assert_near(
        rental.confirm_agreement(tenant).unwrap().gas_used,
        64_090,
        "confirmAgreement",
    );
    assert_near(
        rental.pay_rent(tenant).unwrap().gas_used,
        99_962,
        "payRent (1st)",
    );
    assert_near(
        rental.pay_rent(tenant).unwrap().gas_used,
        84_962,
        "payRent (2nd)",
    );
    assert_near(
        rental.terminate(landlord).unwrap().gas_used,
        29_158,
        "terminate",
    );
}

#[test]
fn version_link_gas_matches_records() {
    let (manager, web3) = world();
    let landlord = web3.accounts()[0];
    let base = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &base).unwrap();
    let v1 = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();
    let before = web3.block_number();
    manager
        .deploy_version(
            landlord,
            upload,
            &base_args(),
            U256::ZERO,
            v1.address(),
            &[],
        )
        .unwrap();
    let after = web3.block_number();
    // Blocks: deploy + setNext + setPrev. Link gas = the two pointer txs.
    let link_gas: u64 = web3.with_node(|node| {
        (before + 2..=after)
            .map(|b| node.block(b).unwrap().gas_used)
            .sum()
    });
    assert_near(link_gas, 94_076, "version link (setNext + setPrev)");
}

#[test]
fn data_storage_gas_matches_records() {
    let (manager, web3) = world();
    let landlord = web3.accounts()[0];
    manager.init_data_store(landlord).unwrap();
    let store = manager.data_store().unwrap();
    let owner = legal_smart_contracts::primitives::Address::from_label("v1");
    let before = web3.block_number();
    store
        .set(landlord, owner, "rent", "1000000000000000000")
        .unwrap();
    let fresh: u64 = web3.with_node(|node| node.block(before + 1).unwrap().gas_used);
    assert_near(fresh, 68_634, "DataStorage setValue (fresh)");
    let before = web3.block_number();
    store
        .set(landlord, owner, "rent", "2000000000000000000")
        .unwrap();
    let overwrite: u64 = web3.with_node(|node| node.block(before + 1).unwrap().gas_used);
    assert_near(overwrite, 38_634, "DataStorage setValue (overwrite)");
    assert!(overwrite < fresh, "warm slot must be cheaper");
}
