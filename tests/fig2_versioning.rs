//! Experiment F2 (Fig. 2): the linked-list versioning mechanism, verified
//! against the figure's exact structure — every contract is a `Node`
//! derivative; the manager sets `next`/`previous` when a new version is
//! deployed; the addresses recovered from the links drive data lookup.

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::chain::LocalNode;
use legal_smart_contracts::core::{contracts, ContractManager};
use legal_smart_contracts::ipfs::IpfsNode;
use legal_smart_contracts::primitives::{ether, Address, U256};
use legal_smart_contracts::web3::Web3;

fn world() -> (ContractManager, Address) {
    let web3 = Web3::new(LocalNode::new(2));
    let landlord = web3.accounts()[0];
    (ContractManager::new(web3, IpfsNode::new()), landlord)
}

fn args() -> Vec<AbiValue> {
    vec![
        AbiValue::Uint(ether(1)),
        AbiValue::string("H-1"),
        AbiValue::uint(1000),
    ]
}

#[test]
fn node_contract_implements_the_figure() {
    // The standalone Node contract: both pointers default to zero, and
    // get/set round-trip.
    let web3 = Web3::new(LocalNode::new(2));
    let from = web3.accounts()[0];
    let node = contracts::compile_node().unwrap();
    let (contract, _) = web3
        .deploy(
            from,
            node.abi.clone(),
            node.bytecode.clone(),
            &[],
            U256::ZERO,
        )
        .unwrap();
    assert_eq!(
        contract.call1("getNext", &[]).unwrap().as_address(),
        Some(Address::ZERO)
    );
    assert_eq!(
        contract.call1("getPrev", &[]).unwrap().as_address(),
        Some(Address::ZERO)
    );
    let target = Address::from_label("v2");
    contract
        .send(from, "setNext", &[AbiValue::Address(target)], U256::ZERO)
        .unwrap();
    assert_eq!(
        contract.call1("getNext", &[]).unwrap().as_address(),
        Some(target)
    );
}

#[test]
fn manager_sets_pointers_on_modification() {
    let (manager, landlord) = world();
    let base = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &base).unwrap();
    let v1 = manager
        .deploy(landlord, upload, &args(), U256::ZERO)
        .unwrap();
    // Before modification: both pointers unset.
    assert_eq!(manager.version_chain().next_of(v1.address()).unwrap(), None);
    let v2 = manager
        .deploy_version(landlord, upload, &args(), U256::ZERO, v1.address(), &[])
        .unwrap();
    // After: exactly the doubly-linked structure of Fig. 2.
    assert_eq!(
        manager.version_chain().next_of(v1.address()).unwrap(),
        Some(v2.address())
    );
    assert_eq!(
        manager.version_chain().prev_of(v2.address()).unwrap(),
        Some(v1.address())
    );
}

#[test]
fn links_feed_the_data_lookup() {
    // Fig. 2's caption: "these addresses can be used to get the data from
    // the data storage mapping contract".
    let (manager, landlord) = world();
    manager.init_data_store(landlord).unwrap();
    let store = manager.data_store().unwrap();
    let base = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &base).unwrap();
    let v1 = manager
        .deploy(landlord, upload, &args(), U256::ZERO)
        .unwrap();
    store
        .set(landlord, v1.address(), "rent", "1 ether")
        .unwrap();
    let v2 = manager
        .deploy_version(landlord, upload, &args(), U256::ZERO, v1.address(), &[])
        .unwrap();

    // Starting from v2, follow the previous-pointer, then use the
    // recovered address as the data-store key.
    let prev = manager
        .version_chain()
        .prev_of(v2.address())
        .unwrap()
        .expect("linked");
    assert_eq!(store.get(prev, "rent").unwrap(), "1 ether");
}

#[test]
fn ten_version_chain_traverses_from_any_point() {
    let (manager, landlord) = world();
    let base = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &base).unwrap();
    let mut addresses = vec![manager
        .deploy(landlord, upload, &args(), U256::ZERO)
        .unwrap()
        .address()];
    for _ in 1..10 {
        let prev = *addresses.last().unwrap();
        let next = manager
            .deploy_version(landlord, upload, &args(), U256::ZERO, prev, &[])
            .unwrap();
        addresses.push(next.address());
    }
    for probe in [0usize, 4, 9] {
        assert_eq!(manager.history(addresses[probe]).unwrap(), addresses);
    }
    assert_eq!(manager.verify_chain(addresses[5]).unwrap().len(), 10);
}

#[test]
fn broken_chain_is_detected() {
    // Tamper with a pointer directly on chain; verification must fail.
    let (manager, landlord) = world();
    let base = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &base).unwrap();
    let v1 = manager
        .deploy(landlord, upload, &args(), U256::ZERO)
        .unwrap();
    let v2 = manager
        .deploy_version(landlord, upload, &args(), U256::ZERO, v1.address(), &[])
        .unwrap();
    // Point v1.next somewhere else (the Node setters are unguarded in the
    // paper's snippet — the evidence line catches the inconsistency).
    v1.send(
        landlord,
        "setNext",
        &[AbiValue::Address(Address::from_label("elsewhere"))],
        U256::ZERO,
    )
    .unwrap();
    assert!(manager.verify_chain(v2.address()).is_err());
}
