//! Experiment F3 (Fig. 3): the minimal data-storage contract — the exact
//! nested mapping of the figure — compiled from the paper's source and
//! exercised through the data-separation layer.

use legal_smart_contracts::chain::LocalNode;
use legal_smart_contracts::core::{contracts, DataStore};
use legal_smart_contracts::ipfs::IpfsNode;
use legal_smart_contracts::primitives::Address;
use legal_smart_contracts::web3::Web3;

#[test]
fn figure_source_has_the_exact_mapping() {
    // The contract is compiled from the paper's own declaration:
    // mapping (address => mapping( string => string )) keyValuePairs;
    assert!(
        contracts::RENTAL_BASE_SOURCE.contains("mapping (address => mapping( string => string ))")
    );
    let artifact = contracts::compile_data_storage().unwrap();
    let getter = artifact.abi.function("keyValuePairs").unwrap();
    assert_eq!(getter.inputs.len(), 2);
    assert_eq!(
        getter.inputs[0].ty,
        legal_smart_contracts::abi::AbiType::Address
    );
    assert_eq!(
        getter.inputs[1].ty,
        legal_smart_contracts::abi::AbiType::String
    );
    assert_eq!(
        getter.outputs[0].ty,
        legal_smart_contracts::abi::AbiType::String
    );
}

#[test]
fn key_value_pairs_per_contract_address() {
    let web3 = Web3::new(LocalNode::new(2));
    let from = web3.accounts()[0];
    let store = DataStore::deploy(&web3, from).unwrap();

    let v1 = Address::from_label("contract-v1");
    let v2 = Address::from_label("contract-v2");
    store.set(from, v1, "rent", "1000").unwrap();
    store.set(from, v1, "house", "H-12").unwrap();
    store.set(from, v2, "rent", "2000").unwrap();

    // Per-address isolation.
    assert_eq!(store.get(v1, "rent").unwrap(), "1000");
    assert_eq!(store.get(v2, "rent").unwrap(), "2000");
    assert_eq!(store.get(v2, "house").unwrap(), "", "unset key is empty");

    // Values are overwritable (data evolves independently of logic).
    store.set(from, v1, "rent", "1500").unwrap();
    assert_eq!(store.get(v1, "rent").unwrap(), "1500");
}

#[test]
fn long_values_and_keys_roundtrip() {
    let web3 = Web3::new(LocalNode::new(2));
    let from = web3.accounts()[0];
    let store = DataStore::deploy(&web3, from).unwrap();
    let owner = Address::from_label("v1");
    let long_key = "clause-".repeat(30);
    let long_value = "The tenant shall maintain the premises in good order. ".repeat(10);
    store.set(from, owner, &long_key, &long_value).unwrap();
    assert_eq!(store.get(owner, &long_key).unwrap(), long_value);
}

#[test]
fn data_survives_while_logic_is_replaced() {
    // The core promise of Section III-C1: several different versions of
    // the logic read the same data record.
    let web3 = Web3::new(LocalNode::new(2));
    let from = web3.accounts()[0];
    let store = DataStore::deploy(&web3, from).unwrap();
    let ipfs = IpfsNode::new();
    let _ = ipfs;

    let shared_subject = Address::from_label("the-agreement");
    store.set(from, shared_subject, "rent", "1 ether").unwrap();

    // "Deploy" three logic versions that all consult the same record.
    for _ in 0..3 {
        assert_eq!(store.get(shared_subject, "rent").unwrap(), "1 ether");
    }
}
