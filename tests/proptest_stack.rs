//! Cross-stack property tests: random data pushed through the *whole*
//! pipeline — Solidity-subset source → compiler → EVM → chain → ABI
//! decode — must come back unchanged.

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::chain::{LocalNode, Transaction};
use legal_smart_contracts::primitives::U256;
use legal_smart_contracts::solc::compile_single;
use proptest::prelude::*;

const STORE_SOURCE: &str = r#"
    contract Store {
        string public text;
        uint public number;
        mapping(address => string) public notes;
        function setText(string memory v) public { text = v; }
        function setNumber(uint v) public { number = v; }
        function setNote(address who, string memory v) public { notes[who] = v; }
    }
"#;

struct Deployed {
    node: LocalNode,
    address: legal_smart_contracts::primitives::Address,
    abi: legal_smart_contracts::abi::Abi,
    from: legal_smart_contracts::primitives::Address,
}

fn deploy_store() -> Deployed {
    let artifact = compile_single(STORE_SOURCE, "Store").unwrap();
    let mut node = LocalNode::new(1);
    let from = node.accounts()[0];
    let address = node
        .send_transaction(Transaction::deploy(from, artifact.bytecode.clone()))
        .unwrap()
        .contract_address
        .unwrap();
    Deployed {
        node,
        address,
        abi: artifact.abi,
        from,
    }
}

impl Deployed {
    fn send(&mut self, name: &str, args: &[AbiValue]) {
        let f = self.abi.function(name).unwrap();
        let receipt = self
            .node
            .send_transaction(Transaction::call(
                self.from,
                self.address,
                f.encode_call(args).unwrap(),
            ))
            .unwrap();
        assert!(receipt.is_success(), "{name} reverted");
    }

    fn get(&mut self, name: &str, args: &[AbiValue]) -> AbiValue {
        let f = self.abi.function(name).unwrap();
        let result = self
            .node
            .call(self.from, self.address, f.encode_call(args).unwrap());
        assert!(result.success, "{name} call reverted");
        f.decode_output(&result.output).unwrap().remove(0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn strings_roundtrip_through_contract_storage(text in "[ -~]{0,150}") {
        // Printable ASCII up to several storage chunks.
        let mut d = deploy_store();
        d.send("setText", &[AbiValue::string(&text)]);
        let read = d.get("text", &[]);
        prop_assert_eq!(read.as_str(), Some(text.as_str()));
        // Overwrite with something shorter and re-check (stale-chunk bug
        // guard).
        d.send("setText", &[AbiValue::string("x")]);
        let read = d.get("text", &[]);
        prop_assert_eq!(read.as_str(), Some("x"));
    }

    #[test]
    fn numbers_roundtrip(limbs in proptest::array::uniform4(any::<u64>())) {
        let value = U256(limbs);
        let mut d = deploy_store();
        d.send("setNumber", &[AbiValue::Uint(value)]);
        prop_assert_eq!(d.get("number", &[]).as_uint(), Some(value));
    }

    #[test]
    fn mapping_entries_are_isolated(
        labels in proptest::collection::btree_map("[a-z]{1,10}", "[ -~]{0,40}", 1..5),
    ) {
        let mut d = deploy_store();
        let entries: Vec<_> = labels
            .iter()
            .map(|(label, note)| {
                (
                    legal_smart_contracts::primitives::Address::from_label(label),
                    note.clone(),
                )
            })
            .collect();
        for (who, note) in &entries {
            d.send("setNote", &[AbiValue::Address(*who), AbiValue::string(note)]);
        }
        // Every entry reads back exactly, and unknown keys read empty.
        for (who, note) in &entries {
            let read = d.get("notes", &[AbiValue::Address(*who)]);
            prop_assert_eq!(read.as_str(), Some(note.as_str()));
        }
        let stranger = legal_smart_contracts::primitives::Address::from_label("zz-stranger");
        let read = d.get("notes", &[AbiValue::Address(stranger)]);
        prop_assert_eq!(read.as_str(), Some(""));
    }
}
