//! Deep behavioural tests: constructor-time internal calls, the 2300-gas
//! transfer stipend against contract recipients (reentrancy resistance),
//! artifact tooling and cross-contract value flows.

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::chain::{LocalNode, Transaction};
use legal_smart_contracts::primitives::{ether, U256};
use legal_smart_contracts::solc::compile_single;
use legal_smart_contracts::web3::Web3;

#[test]
fn constructor_can_call_internal_functions() {
    let source = r#"
        contract C {
            uint public value;
            constructor (uint seed) public {
                value = grow(seed);
            }
            function grow(uint x) internal pure returns (uint) {
                return x * 2 + 1;
            }
        }
    "#;
    let artifact = compile_single(source, "C").unwrap();
    let web3 = Web3::new(LocalNode::new(1));
    let from = web3.accounts()[0];
    let (contract, _) = web3
        .deploy(
            from,
            artifact.abi.clone(),
            artifact.bytecode.clone(),
            &[AbiValue::uint(20)],
            U256::ZERO,
        )
        .unwrap();
    assert_eq!(contract.call1("value", &[]).unwrap().as_u64(), Some(41));
}

#[test]
fn transfer_to_contract_without_fallback_reverts() {
    // Solidity semantics our stack reproduces: `.transfer` forwards only
    // the 2300-gas stipend, and a contract without a payable fallback
    // rejects plain transfers — so a rental whose landlord is a contract
    // cannot receive rent, and payRent reverts atomically.
    let source = r#"
        contract Payer {
            function payTo(address target) public payable {
                target.transfer(msg.value);
            }
            function sendTo(address target) public payable returns (bool) {
                return target.send(msg.value);
            }
        }
        contract Wall {
            uint public x;
            function poke() public { x += 1; }
        }
    "#;
    let web3 = Web3::new(LocalNode::new(2));
    let from = web3.accounts()[0];
    let payer_art = compile_single(source, "Payer").unwrap();
    let wall_art = compile_single(source, "Wall").unwrap();
    let (payer, _) = web3
        .deploy(
            from,
            payer_art.abi.clone(),
            payer_art.bytecode.clone(),
            &[],
            U256::ZERO,
        )
        .unwrap();
    let (wall, _) = web3
        .deploy(
            from,
            wall_art.abi.clone(),
            wall_art.bytecode.clone(),
            &[],
            U256::ZERO,
        )
        .unwrap();

    // transfer → revert with the compiler's message.
    let result = payer.send(
        from,
        "payTo",
        &[AbiValue::Address(wall.address())],
        ether(1),
    );
    match result {
        Err(legal_smart_contracts::web3::Web3Error::Reverted { reason, .. }) => {
            assert_eq!(reason.as_deref(), Some("ether transfer failed"));
        }
        other => panic!("expected revert, got ok={:?}", other.is_ok()),
    }
    assert_eq!(web3.balance(wall.address()), U256::ZERO);

    // send → returns false instead of reverting; ether stays with payer? No:
    // send's value was already moved into the Payer frame; on failed send
    // it stays with the Payer contract.
    let receipt = payer
        .send(
            from,
            "sendTo",
            &[AbiValue::Address(wall.address())],
            ether(1),
        )
        .unwrap();
    assert!(receipt.is_success());
    let f = payer_art.abi.function("sendTo").unwrap();
    let decoded = f.decode_output(&receipt.output).unwrap();
    assert_eq!(decoded[0].as_bool(), Some(false));
    assert_eq!(web3.balance(wall.address()), U256::ZERO);
    assert_eq!(
        web3.balance(payer.address()),
        ether(1),
        "value stranded in payer"
    );

    // Transfers to plain EOAs still work fine.
    let eoa = web3.accounts()[1];
    let before = web3.balance(eoa);
    payer
        .send(from, "payTo", &[AbiValue::Address(eoa)], ether(2))
        .unwrap();
    assert_eq!(web3.balance(eoa) - before, ether(2));
}

#[test]
fn artifact_tooling_renders() {
    let artifact = lsc_core_contracts_base();
    let asm = artifact.disassemble_runtime();
    assert!(asm.contains("0x0000:"), "starts at offset zero");
    assert!(asm.contains("PUSH"), "has pushes");
    assert!(asm.contains("JUMPDEST"), "has jump targets");
    assert!(
        asm.contains("SSTORE") || asm.contains("SLOAD"),
        "touches storage"
    );
    let layout = artifact.storage_layout_table();
    assert!(layout.contains("rent"));
    assert!(layout.contains("slot | variable | type"));
}

// Helper: the paper's base contract artifact.
fn lsc_core_contracts_base() -> legal_smart_contracts::solc::Artifact {
    legal_smart_contracts::core::contracts::compile_base_rental().unwrap()
}

#[test]
fn cross_contract_calls_preserve_value_accounting() {
    // A middleman forwards rent: tenant → Middleman.forward → landlord.
    let source = r#"
        contract Middleman {
            uint public forwarded;
            function forward(address landlord) public payable {
                forwarded += msg.value;
                landlord.transfer(msg.value);
            }
        }
    "#;
    let web3 = Web3::new(LocalNode::new(3));
    let [deployer, tenant, landlord] = [web3.accounts()[0], web3.accounts()[1], web3.accounts()[2]];
    let artifact = compile_single(source, "Middleman").unwrap();
    let (middleman, _) = web3
        .deploy(
            deployer,
            artifact.abi.clone(),
            artifact.bytecode.clone(),
            &[],
            U256::ZERO,
        )
        .unwrap();
    let landlord_before = web3.balance(landlord);
    middleman
        .send(tenant, "forward", &[AbiValue::Address(landlord)], ether(3))
        .unwrap();
    assert_eq!(web3.balance(landlord) - landlord_before, ether(3));
    assert_eq!(
        web3.balance(middleman.address()),
        U256::ZERO,
        "nothing sticks"
    );
    assert_eq!(
        middleman.call1("forwarded", &[]).unwrap().as_uint(),
        Some(ether(3))
    );
}

#[test]
fn deploy_tx_nonce_reuse_is_impossible() {
    // Two deployments from the same account land at distinct addresses and
    // explicit stale nonces are rejected.
    let mut node = LocalNode::new(1);
    let from = node.accounts()[0];
    let artifact = compile_single("contract C { uint public x; }", "C").unwrap();
    let a1 = node
        .send_transaction(Transaction::deploy(from, artifact.bytecode.clone()))
        .unwrap()
        .contract_address
        .unwrap();
    let mut tx = Transaction::deploy(from, artifact.bytecode.clone());
    tx.nonce = Some(0); // stale
    assert!(node.send_transaction(tx).is_err());
    let a2 = node
        .send_transaction(Transaction::deploy(from, artifact.bytecode))
        .unwrap()
        .contract_address
        .unwrap();
    assert_ne!(a1, a2);
}
