//! Experiment F4 (Fig. 4): the sequence diagram — landlord deploys, the
//! tenant confirms and pays rent — with every message of the diagram
//! asserted: the tier it crosses, the state change and the ether flow.

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::app::RentalApp;
use legal_smart_contracts::chain::LocalNode;
use legal_smart_contracts::core::{contracts, Rental, RentalState};
use legal_smart_contracts::ipfs::IpfsNode;
use legal_smart_contracts::primitives::{ether, U256};
use legal_smart_contracts::web3::Web3;

#[test]
fn sequence_deploy_confirm_pay() {
    let web3 = Web3::new(LocalNode::new(4));
    let accounts = web3.accounts();
    let app = RentalApp::new(web3.clone(), IpfsNode::new());
    app.register("landlord", "l@x", "pw", accounts[0]).unwrap();
    app.register("tenant", "t@x", "pw", accounts[1]).unwrap();
    let landlord = app.login("landlord", "pw").unwrap();
    let tenant = app.login("tenant", "pw").unwrap();

    // 1. Landlord → Manager: upload; Manager → IPFS: pin ABI.
    let artifact = contracts::compile_base_rental().unwrap();
    let upload = app
        .upload_contract(
            landlord,
            "Basic rental contract",
            artifact.bytecode.clone(),
            &artifact.abi.to_json(),
        )
        .unwrap();

    // 2. Landlord → Manager → Chain: deploy. A block is mined.
    let blocks_before = web3.block_number();
    let address = app
        .deploy_contract(
            landlord,
            upload,
            &[
                AbiValue::Uint(ether(1)),
                AbiValue::string("H-1"),
                AbiValue::uint(365 * 24 * 3600),
            ],
            U256::ZERO,
        )
        .unwrap();
    assert_eq!(web3.block_number(), blocks_before + 1);

    // 3. Tenant → Manager → Chain: confirmAgreement. Event emitted,
    //    state moves Created → Started, tenant recorded on chain.
    let rental = Rental::at(app.manager().contract_at(address).unwrap());
    assert_eq!(rental.state().unwrap(), RentalState::Created);
    app.confirm_agreement(tenant, address).unwrap();
    assert_eq!(rental.state().unwrap(), RentalState::Started);
    let on_chain_tenant = rental.contract().call1("tenant", &[]).unwrap().as_address();
    assert_eq!(on_chain_tenant, Some(accounts[1]));

    // 4. Tenant → Chain: payRent. Ether moves tenant → landlord exactly
    //    by the rent amount; the paidRent event fires; the payment is
    //    recorded in the paidrents array.
    let landlord_before = web3.balance(accounts[0]);
    let tenant_before = web3.balance(accounts[1]);
    app.pay_rent(tenant, address).unwrap();
    assert_eq!(web3.balance(accounts[0]) - landlord_before, ether(1));
    // Tenant paid rent + gas.
    assert!(tenant_before - web3.balance(accounts[1]) >= ether(1));
    assert_eq!(rental.paid_rents().unwrap(), vec![(1, ether(1))]);
}

#[test]
fn events_fire_along_the_sequence() {
    let web3 = Web3::new(LocalNode::new(4));
    let accounts = web3.accounts();
    let manager = legal_smart_contracts::core::ContractManager::new(web3.clone(), IpfsNode::new());
    let artifact = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &artifact).unwrap();
    let contract = manager
        .deploy(
            accounts[0],
            upload,
            &[
                AbiValue::Uint(ether(1)),
                AbiValue::string("H"),
                AbiValue::uint(100),
            ],
            U256::ZERO,
        )
        .unwrap();

    let receipt = contract
        .send(accounts[1], "confirmAgreement", &[], U256::ZERO)
        .unwrap();
    let events = contract.decode_logs(&receipt);
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].name, "agreementConfirmed");

    let receipt = contract
        .send(accounts[1], "payRent", &[], ether(1))
        .unwrap();
    let events = contract.decode_logs(&receipt);
    assert_eq!(events[0].name, "paidRent");

    let receipt = contract
        .send(accounts[0], "terminateContract", &[], U256::ZERO)
        .unwrap();
    let events = contract.decode_logs(&receipt);
    assert_eq!(events[0].name, "contractTerminated");
}
