//! Experiment T1 (Table I): every technology of the paper's stack has a
//! working substitute in this workspace, and they interoperate: Solidity →
//! lsc-solc, Ganache → lsc-chain, Web3py → lsc-web3, MetaMask → the
//! wallet, IPFS → lsc-ipfs, Django/MySQL → lsc-app.

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::chain::{LocalNode, Transaction};
use legal_smart_contracts::core::contracts;
use legal_smart_contracts::ipfs::IpfsNode;
use legal_smart_contracts::primitives::{ether, U256};
use legal_smart_contracts::web3::{Web3, Web3Error};

#[test]
fn solidity_row_compiler_produces_runnable_bytecode() {
    let artifact = contracts::compile_base_rental().expect("Fig. 5 compiles");
    assert!(!artifact.bytecode.is_empty());
    assert!(!artifact.runtime.is_empty());
    assert!(artifact.abi.function("payRent").is_some());
}

#[test]
fn ganache_row_local_node_mines_instantly() {
    let mut node = LocalNode::new(2);
    let tx = Transaction::call(node.accounts()[0], node.accounts()[1], vec![]).with_gas(21_000);
    let receipt = node.send_transaction(tx).unwrap();
    assert_eq!(
        receipt.block_number, 1,
        "one tx, one block — instant mining"
    );
    assert_eq!(node.block_number(), 1);
}

#[test]
fn web3py_row_client_deploys_and_calls() {
    let web3 = Web3::new(LocalNode::new(2));
    let from = web3.accounts()[0];
    let artifact = contracts::compile_base_rental().unwrap();
    let (contract, receipt) = web3
        .deploy(
            from,
            artifact.abi.clone(),
            artifact.bytecode.clone(),
            &[
                AbiValue::Uint(ether(1)),
                AbiValue::string("H-1"),
                AbiValue::uint(1000),
            ],
            U256::ZERO,
        )
        .unwrap();
    assert!(receipt.is_success());
    assert_eq!(contract.call1("house", &[]).unwrap().as_str(), Some("H-1"));
}

#[test]
fn metamask_row_wallet_refuses_foreign_accounts() {
    let web3 = Web3::new(LocalNode::new(1));
    let stranger = legal_smart_contracts::primitives::Address::from_label("stranger");
    let to = web3.accounts()[0];
    let err = web3
        .send_transaction(Transaction::call(stranger, to, vec![]).with_gas(21_000))
        .unwrap_err();
    assert!(matches!(err, Web3Error::NotInWallet(_)));
}

#[test]
fn ipfs_row_content_addressing_works() {
    let ipfs = IpfsNode::new();
    let cid = ipfs.add_pinned(b"abi json");
    assert_eq!(ipfs.cat(&cid).unwrap(), b"abi json");
    assert_eq!(ipfs.add(b"abi json"), cid, "same content, same id");
}

#[test]
fn django_mysql_rows_app_db_and_auth() {
    use legal_smart_contracts::app::RentalApp;
    let web3 = Web3::new(LocalNode::new(2));
    let account = web3.accounts()[0];
    let app = RentalApp::new(web3, IpfsNode::new());
    app.register("user", "u@example.org", "pw", account)
        .unwrap();
    assert!(app.login("user", "bad").is_err());
    let session = app.login("user", "pw").unwrap();
    let dashboard = app.dashboard(session).unwrap();
    assert_eq!(dashboard.user, "user");
    assert_eq!(dashboard.balance, ether(1000));
}
