//! The evidence line, end to end: a rental agreement's committed facts
//! — its balance and its Fig. 2 version-pointer slots (`next` at slot
//! 0, `previous` at slot 1) — proven against a block header's
//! `state_root` and verified **offline** with nothing but the response
//! bytes and one trusted 32-byte root. Tampered responses, substituted
//! values and mismatched roots are all rejected.

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::chain::LocalNode;
use legal_smart_contracts::core::{contracts, ContractManager};
use legal_smart_contracts::ipfs::IpfsNode;
use legal_smart_contracts::primitives::{ether, Address, H256, U256};
use legal_smart_contracts::web3::proof::{verify_proof_response, ProofCheckError};
use legal_smart_contracts::web3::{wire, Web3};

fn args() -> Vec<AbiValue> {
    vec![
        AbiValue::Uint(ether(1)),
        AbiValue::string("H-1"),
        AbiValue::uint(1000),
    ]
}

/// Deploy a base rental agreement and one modification, returning the
/// web3 handle and the (v1, v2) addresses — the Fig. 2 chain.
fn version_chain() -> (Web3, Address, Address) {
    let web3 = Web3::new(LocalNode::new(3));
    let landlord = web3.accounts()[0];
    let manager = ContractManager::new(web3.clone(), IpfsNode::new());
    let base = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &base).unwrap();
    let v1 = manager
        .deploy(landlord, upload, &args(), U256::ZERO)
        .unwrap();
    let v2 = manager
        .deploy_version(landlord, upload, &args(), U256::ZERO, v1.address(), &[])
        .unwrap();
    (web3, v1.address(), v2.address())
}

#[test]
fn version_pointers_prove_against_the_block_header() {
    let (web3, v1, v2) = version_chain();
    // The trusted root comes from the head block header, exactly where
    // a court-side verifier would read it.
    let head = web3.block(web3.block_number()).expect("head block");
    let trusted_root = head.state_root;
    assert_ne!(trusted_root, H256::ZERO, "headers carry a state root");
    assert_eq!(web3.state_root(), trusted_root);

    // Prove v1's version pointers: next (slot 0) must be v2.
    let slots = [U256::ZERO, U256::from_u64(1)];
    let proof = web3.proof(v1, &slots).expect("proof for v1");
    let doc = wire::proof_to_json(&proof);
    let verified = verify_proof_response(&doc, trusted_root).expect("offline verification");
    assert!(verified.present);
    assert_eq!(verified.slots.len(), 2);
    assert_eq!(Address::from_u256(verified.slots[0].1), v2, "next → v2");
    assert_eq!(
        Address::from_u256(verified.slots[1].1),
        Address::ZERO,
        "v1 has no predecessor"
    );

    // And v2's predecessor pointer (slot 1) must be v1.
    let proof = web3.proof(v2, &slots).expect("proof for v2");
    let verified =
        verify_proof_response(&wire::proof_to_json(&proof), trusted_root).expect("v2 verifies");
    assert_eq!(Address::from_u256(verified.slots[1].1), v1, "previous → v1");
    assert_eq!(
        Address::from_u256(verified.slots[0].1),
        Address::ZERO,
        "v2 is the newest version"
    );
}

#[test]
fn tampered_proofs_are_rejected() {
    let (web3, v1, v2) = version_chain();
    let trusted_root = web3.block(web3.block_number()).unwrap().state_root;
    let proof = web3.proof(v1, &[U256::ZERO]).unwrap();
    let doc = wire::proof_to_json(&proof);
    let text = doc.to_json();

    // Substitute the claimed pointer value (point next at v1 itself):
    // the Merkle proof still hashes to the root, so the *claim check*
    // catches the lie.
    let honest = format!("\"value\":\"0x{:x}\"", v2.to_u256());
    assert!(text.contains(&honest), "response carries the v2 pointer");
    let lie = text.replace(&honest, "\"value\":\"0x1\"");
    let tampered = legal_smart_contracts::abi::json::parse(&lie).unwrap();
    assert!(matches!(
        verify_proof_response(&tampered, trusted_root),
        Err(ProofCheckError::Claim("storageProof.value"))
    ));

    // Flip a byte inside a proof node: hash chain breaks.
    let mut bytes = text.clone().into_bytes();
    let at = text.find("\"accountProof\"").unwrap() + 30;
    bytes[at] = if bytes[at] == b'a' { b'b' } else { b'a' };
    if let Ok(corrupt) = legal_smart_contracts::abi::json::parse(&String::from_utf8(bytes).unwrap())
    {
        assert!(verify_proof_response(&corrupt, trusted_root).is_err());
    }

    // A root from a different (older) block: rejected outright.
    let genesis_root = web3.block(0).unwrap().state_root;
    assert_ne!(genesis_root, trusted_root);
    assert!(matches!(
        verify_proof_response(&doc, genesis_root),
        Err(ProofCheckError::WrongRoot { .. })
    ));
}

#[test]
fn every_header_commits_to_its_state() {
    let (web3, _, _) = version_chain();
    // Monotone history: every block carries a state root, and roots
    // change exactly when state does.
    let mut previous = None;
    for n in 0..=web3.block_number() {
        let block = web3.block(n).unwrap();
        assert_ne!(block.state_root, H256::ZERO, "block {n} has a state root");
        if let Some(prev) = previous {
            assert_ne!(
                block.state_root, prev,
                "block {n} sealed state changes, its root must move"
            );
        }
        previous = Some(block.state_root);
    }
}
