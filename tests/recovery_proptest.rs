//! Crash-recovery property test for the durable stack: run a random
//! landlord/tenant workload (deploys, rent payments, version
//! migrations, clock warps, batch mining, log compaction) against a
//! durable node, then — for **every** crash point the clean run
//! enumerates (each WAL write, each fsync, each snapshot rename, plus a
//! short-write variant of every write) — re-run the same workload with
//! that exact fault injected, recover from disk, and assert the
//! recovered chain equals the committed prefix bit-identically: block
//! hashes, receipts, storage, clock and pending queue. No committed
//! block may be lost; no uncommitted transaction may become visible.

use lsc_abi::AbiValue;
use lsc_app::{AppError, RentalApp};
use lsc_chain::wal::{FaultPlan, Faults};
use lsc_chain::{ChainConfig, LocalNode, TxError};
use lsc_core::{contracts, CoreError};
use lsc_ipfs::IpfsNode;
use lsc_primitives::{ether, Address, U256};
use lsc_solc::Artifact;
use lsc_web3::{Web3, Web3Error};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// One scripted workload step. Index arguments pick among the contracts
/// deployed so far (modulo), so every generated script is executable.
#[derive(Debug, Clone, Copy)]
enum Op {
    Deploy,
    Confirm(usize),
    Pay(usize),
    QueuePay(usize),
    /// Drain the app-side rent queue: one group-committed WAL batch
    /// (N appends, ONE fsync) followed by a mined block. Crash points
    /// between the batch's appends and its fsync are enumerated like any
    /// other write/fsync, and recovery must see no partial batch.
    RentDay,
    Mine,
    Warp(u64),
    Modify(usize),
    Compact,
}

fn artifacts() -> &'static (Artifact, Artifact) {
    static CACHE: OnceLock<(Artifact, Artifact)> = OnceLock::new();
    CACHE.get_or_init(|| {
        (
            contracts::compile_base_rental().expect("base contract compiles"),
            contracts::compile_rental_agreement().expect("v2 contract compiles"),
        )
    })
}

fn fresh_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("lsc-recovery-prop-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn is_durability(error: &AppError) -> bool {
    matches!(
        error,
        AppError::Core(CoreError::Web3(Web3Error::Tx(TxError::Durability(_))))
    )
}

fn is_durability_web3(error: &Web3Error) -> bool {
    matches!(error, Web3Error::Tx(TxError::Durability(_)))
}

fn open_app(dir: &Path, faults: Faults) -> (RentalApp, Web3) {
    let node = LocalNode::open(dir, ChainConfig::default(), 3, faults).expect("durable node opens");
    let web3 = Web3::new(node);
    let app = RentalApp::recover(web3.clone(), IpfsNode::new()).expect("app recovers");
    (app, web3)
}

/// Run the scripted workload. Returns `false` when a durability failure
/// stopped it (the node is poisoned; nothing after the failure applied).
/// Business-rule rejections (confirming twice, paying before confirming…)
/// are deterministic, identical in every run, and simply skipped.
fn run_workload(app: &RentalApp, web3: &Web3, ops: &[Op]) -> bool {
    macro_rules! step {
        ($r:expr) => {
            match $r {
                Ok(_) => {}
                Err(e) if is_durability(&e) => return false,
                Err(_) => {}
            }
        };
    }
    let (base, v2) = artifacts();
    let accounts = web3.accounts();
    step!(app.register("landlady", "l@x", "pw", accounts[0]));
    step!(app.register("tenant", "t@x", "pw", accounts[1]));
    let Ok(landlord) = app.login("landlady", "pw") else {
        return false;
    };
    let Ok(tenant) = app.login("tenant", "pw") else {
        return false;
    };
    step!(app.upload_contract(
        landlord,
        "Base rental",
        base.bytecode.clone(),
        &base.abi.to_json()
    ));
    step!(app.upload_contract(
        landlord,
        "Rental v2",
        v2.bytecode.clone(),
        &v2.abi.to_json()
    ));

    let mut deployed: Vec<Address> = Vec::new();
    let pick = |deployed: &Vec<Address>, i: usize| deployed[i % deployed.len()];
    for op in ops {
        match *op {
            Op::Deploy => match app.deploy_contract(
                landlord,
                0,
                &[
                    AbiValue::Uint(ether(1)),
                    AbiValue::string("10001-42 Main St"),
                    AbiValue::uint(31_536_000),
                ],
                U256::ZERO,
            ) {
                Ok(address) => deployed.push(address),
                Err(e) if is_durability(&e) => return false,
                Err(_) => {}
            },
            Op::Confirm(i) if !deployed.is_empty() => {
                step!(app.confirm_agreement(tenant, pick(&deployed, i)));
            }
            Op::Pay(i) if !deployed.is_empty() => {
                step!(app.pay_rent(tenant, pick(&deployed, i)));
            }
            Op::QueuePay(i) if !deployed.is_empty() => {
                step!(app.queue_rent_payment(tenant, pick(&deployed, i)));
            }
            Op::RentDay => match app.try_run_rent_day() {
                Err(e) if is_durability(&e) => return false,
                _ => {}
            },
            Op::Mine => match web3.try_mine_block() {
                Err(e) if is_durability_web3(&e) => return false,
                _ => {}
            },
            Op::Warp(seconds) => match web3.try_increase_time(seconds) {
                Err(e) if is_durability_web3(&e) => return false,
                _ => {}
            },
            Op::Modify(i) if !deployed.is_empty() => {
                match app.modify_contract(
                    landlord,
                    pick(&deployed, i),
                    1,
                    &[
                        AbiValue::Uint(ether(1)),
                        AbiValue::Uint(ether(2)),
                        AbiValue::uint(31_536_000),
                        AbiValue::Uint(U256::ZERO),
                        AbiValue::Uint(ether(2) / U256::from_u64(4)),
                        AbiValue::string("10001-42 Main St"),
                    ],
                    &[],
                ) {
                    Ok(address) => deployed.push(address),
                    Err(e) if is_durability(&e) => return false,
                    Err(_) => {}
                }
            }
            // A compaction that dies mid-way (its fault is swallowed here)
            // must leave the log fully recoverable — the workload keeps
            // going and the final recovery check still has to hold.
            Op::Compact => {
                let _ = web3.with_node(lsc_chain::LocalNode::compact);
            }
            _ => {}
        }
    }
    true
}

fn op_strategy() -> BoxedStrategy<Op> {
    prop_oneof![
        Just(Op::Deploy),
        (0usize..3).prop_map(Op::Confirm),
        (0usize..3).prop_map(Op::Pay),
        (0usize..3).prop_map(Op::QueuePay),
        Just(Op::RentDay),
        Just(Op::Mine),
        (1u64..100_000).prop_map(Op::Warp),
        (0usize..3).prop_map(Op::Modify),
        Just(Op::Compact),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn every_crash_point_recovers_exactly_the_committed_prefix(
        ops in proptest::collection::vec(op_strategy(), 3..8)
    ) {
        prop_assert!(
            lsc_chain::fault_injection_enabled(),
            "this test requires the fault-injection feature"
        );

        // Every run ends with a compaction and one more block, so the
        // paged state store's persist sequence (page appends, the page
        // fsync, the `state.root` tmp-write/fsync/rename) is always in
        // the enumerated crash-point set — a crash between the snapshot
        // rename and the root-file flip must recover bit-identically
        // via the rebuild fallback.
        let mut ops = ops;
        ops.push(Op::Compact);
        ops.push(Op::Mine);

        // Clean run: executes the whole workload and — via the shared
        // fault handle's counters — enumerates every crash point it
        // touched.
        let clean_dir = fresh_dir();
        let clean_faults = Faults::none();
        let (clean_app, clean_web3) = open_app(&clean_dir, clean_faults.clone());
        prop_assert!(run_workload(&clean_app, &clean_web3, &ops));
        let counts = clean_faults.op_counts();
        let clean_export = clean_web3.with_node(|node| node.export_state());
        drop(clean_app);
        drop(clean_web3);
        prop_assert!(counts.writes > 0, "the workload must hit the log");

        // A fault-free recovery reproduces the clean run exactly.
        let recovered = LocalNode::recover(&clean_dir, Faults::none()).expect("clean recovery");
        prop_assert_eq!(recovered.export_state(), clean_export);
        drop(recovered);
        std::fs::remove_dir_all(&clean_dir).ok();

        // Every enumerated crash point: fail the Nth write (and a
        // short-write variant of it), the Nth fsync, the Nth rename.
        let mut plans = Vec::new();
        for n in 1..=counts.writes {
            plans.push(FaultPlan { fail_write: Some(n), ..FaultPlan::default() });
            plans.push(FaultPlan { short_write: Some((n, 7)), ..FaultPlan::default() });
        }
        for n in 1..=counts.fsyncs {
            plans.push(FaultPlan { fail_fsync: Some(n), ..FaultPlan::default() });
        }
        for n in 1..=counts.renames {
            plans.push(FaultPlan { fail_rename: Some(n), ..FaultPlan::default() });
        }

        for plan in plans {
            let dir = fresh_dir();
            let (app, web3) = open_app(&dir, Faults::plan(plan.clone()));
            run_workload(&app, &web3, &ops);
            // Whether the fault poisoned the node mid-workload or was
            // swallowed by a compaction, the in-memory state now IS the
            // committed prefix: append-before-apply plus stop-on-error
            // guarantee it.
            let expected = web3.with_node(|node| node.export_state());
            let expected_blocks = web3.with_node(|node| {
                (0..=node.block_number())
                    .map(|n| node.block(n).expect("block exists").hash)
                    .collect::<Vec<_>>()
            });
            let expected_pending = web3.pending_count();
            drop(app);
            drop(web3);

            let recovered = LocalNode::recover(&dir, Faults::none())
                .unwrap_or_else(|e| panic!("recovery failed under {plan:?}: {e}"));
            // Bit-identical committed prefix: full image (accounts,
            // storage, receipts, clock)…
            prop_assert_eq!(
                recovered.export_state(),
                expected,
                "state mismatch under {:?}",
                plan.clone()
            );
            // …no committed block lost, hash for hash…
            let recovered_blocks: Vec<_> = (0..=recovered.block_number())
                .map(|n| recovered.block(n).expect("block exists").hash)
                .collect();
            prop_assert_eq!(recovered_blocks, expected_blocks, "blocks lost under {:?}", plan.clone());
            // …and no uncommitted transaction visible anywhere, including
            // the pending queue.
            prop_assert_eq!(recovered.pending_count(), expected_pending);

            // The app tier replays its committed events without error.
            let web3 = Web3::new(recovered);
            let app = RentalApp::recover(web3.clone(), IpfsNode::new());
            prop_assert!(app.is_ok(), "app replay failed under {:?}", plan);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Restart equivalence for the authenticated state store: recovering by
/// *adopting* the persisted trie pages and recovering by *rebuilding*
/// the trie from the imported world state (persisted root deleted) must
/// produce bit-identical nodes — same image, same block hashes, same
/// state root, and proofs generated by either verify against it.
#[test]
fn adopted_and_rebuilt_restarts_agree() {
    let ops = [
        Op::Deploy,
        Op::Confirm(0),
        Op::Pay(0),
        Op::Warp(40_000),
        Op::Compact,
        Op::Pay(0),
        Op::Mine,
    ];
    let dir = fresh_dir();
    let (app, web3) = open_app(&dir, Faults::none());
    assert!(run_workload(&app, &web3, &ops));
    let expected = web3.with_node(|node| node.export_state());
    let expected_root = web3.with_node(lsc_chain::LocalNode::state_root);
    drop(app);
    drop(web3);

    // Adoption path: `state.root` matches the newest snapshot's trie
    // root, so recovery walks the persisted pages instead of re-hashing.
    let mut adopted = LocalNode::recover(&dir, Faults::none()).expect("adopting recovery");
    assert_eq!(adopted.export_state(), expected);
    assert_eq!(adopted.state_root(), expected_root);
    let account = adopted.accounts()[0];
    let proof = adopted
        .proof(account, &[U256::ZERO, U256::from_u64(1)])
        .expect("proof over adopted trie");
    assert_eq!(proof.state_root, expected_root);
    assert!(lsc_chain::verify_proof(
        proof.state_root,
        lsc_chain::account_key(account),
        &proof.account_proof
    )
    .is_ok());
    drop(adopted);

    // Rebuild path: delete the persisted root — recovery must fall back
    // to the canonical from-scratch rebuild and land on the same root.
    std::fs::remove_file(dir.join("state.root")).expect("persisted root exists");
    let mut rebuilt = LocalNode::recover(&dir, Faults::none()).expect("rebuilding recovery");
    assert_eq!(rebuilt.export_state(), expected);
    assert_eq!(rebuilt.state_root(), expected_root);
    drop(rebuilt);

    // Paranoia: a torn page file must not break the rebuild either.
    let pages = dir.join("state.pages");
    if pages.exists() {
        let bytes = std::fs::read(&pages).unwrap();
        std::fs::write(&pages, &bytes[..bytes.len() / 2]).unwrap();
    }
    let mut torn = LocalNode::recover(&dir, Faults::none()).expect("recovery over torn pages");
    assert_eq!(torn.export_state(), expected);
    assert_eq!(torn.state_root(), expected_root);
    std::fs::remove_dir_all(&dir).ok();
}
