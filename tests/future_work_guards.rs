//! Experiment A4 (Section V, future work): "the already executed part of
//! the contract will not be able to change" — the properties the current
//! design already provides toward that goal, verified end to end.

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::chain::LocalNode;
use legal_smart_contracts::core::{contracts, ContractManager, Rental};
use legal_smart_contracts::ipfs::IpfsNode;
use legal_smart_contracts::primitives::{ether, U256};
use legal_smart_contracts::web3::Web3;

fn world() -> (ContractManager, Web3) {
    let web3 = Web3::new(LocalNode::new(4));
    (ContractManager::new(web3.clone(), IpfsNode::new()), web3)
}

fn base_args() -> Vec<AbiValue> {
    vec![
        AbiValue::Uint(ether(1)),
        AbiValue::string("H-1"),
        AbiValue::uint(1000),
    ]
}

#[test]
fn executed_history_survives_modification() {
    let (manager, web3) = world();
    let landlord = web3.accounts()[0];
    let tenant = web3.accounts()[1];
    let base = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &base).unwrap();
    let v1 = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();
    let rental = Rental::at(v1.clone());
    rental.confirm_agreement(tenant).unwrap();
    rental.pay_rent(tenant).unwrap();
    rental.pay_rent(tenant).unwrap();
    let executed_before = rental.paid_rents().unwrap();

    // Modify twice; the executed payments on v1 are untouched.
    let v2 = manager
        .deploy_version(
            landlord,
            upload,
            &base_args(),
            U256::ZERO,
            v1.address(),
            &[],
        )
        .unwrap();
    let _v3 = manager
        .deploy_version(
            landlord,
            upload,
            &base_args(),
            U256::ZERO,
            v2.address(),
            &[],
        )
        .unwrap();
    assert_eq!(rental.paid_rents().unwrap(), executed_before);
}

#[test]
fn deployed_code_is_immutable() {
    // The chain never lets anyone change deployed code: a second CREATE
    // lands at a new address; the old code hash is stable.
    let (manager, web3) = world();
    let landlord = web3.accounts()[0];
    let base = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &base).unwrap();
    let v1 = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();
    let code_before = web3.code(v1.address());
    let v2 = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();
    assert_ne!(v1.address(), v2.address());
    assert_eq!(web3.code(v1.address()), code_before);
}

#[test]
fn terminated_versions_cannot_execute_again() {
    let (manager, web3) = world();
    let landlord = web3.accounts()[0];
    let tenant = web3.accounts()[1];
    let base = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &base).unwrap();
    let v1 = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();
    let rental = Rental::at(v1);
    rental.confirm_agreement(tenant).unwrap();
    rental.terminate(landlord).unwrap();
    // Every state-changing action is now rejected by the contract itself.
    assert!(rental.pay_rent(tenant).is_err());
    assert!(rental.confirm_agreement(web3.accounts()[2]).is_err());
    assert!(rental.terminate(landlord).is_err(), "already terminated");
}

#[test]
fn abi_files_are_tamper_evident() {
    // Content addressing: if the ABI file changed, its CID would change,
    // so the registry mapping cannot silently serve modified interfaces.
    let (manager, web3) = world();
    let landlord = web3.accounts()[0];
    let base = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &base).unwrap();
    let v1 = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();
    let cid = manager.registry().cid_of(v1.address()).unwrap();
    let stored = manager.registry().ipfs().cat(&cid).unwrap();
    // Recomputing the CID of the stored bytes reproduces the mapping.
    assert_eq!(manager.registry().ipfs().add(&stored), cid);
    // A tampered ABI gets a different identity.
    let mut tampered = stored.clone();
    tampered[0] ^= 1;
    assert_ne!(manager.registry().ipfs().add(&tampered), cid);
}
