//! Experiment F1 (Fig. 1): the four-tier architecture wired end to end.
//! A single user action entered at the presentation tier flows through
//! the business tier (contract manager), touches the data tier (DB +
//! IPFS) and settles on the blockchain tier — and each tier's artifact is
//! observable afterwards.

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::app::RentalApp;
use legal_smart_contracts::chain::LocalNode;
use legal_smart_contracts::core::contracts;
use legal_smart_contracts::ipfs::IpfsNode;
use legal_smart_contracts::primitives::{ether, U256};
use legal_smart_contracts::web3::Web3;

#[test]
fn one_action_touches_all_four_tiers() {
    let web3 = Web3::new(LocalNode::new(4));
    let accounts = web3.accounts();
    let ipfs = IpfsNode::new();
    let app = RentalApp::new(web3.clone(), ipfs.clone());

    // Presentation tier: login.
    app.register("landlord", "l@x", "pw", accounts[0]).unwrap();
    let session = app.login("landlord", "pw").unwrap();

    // Action: upload + deploy a contract.
    let artifact = contracts::compile_base_rental().unwrap();
    let upload = app
        .upload_contract(
            session,
            "Basic rental contract",
            artifact.bytecode.clone(),
            &artifact.abi.to_json(),
        )
        .unwrap();
    let address = app
        .deploy_contract(
            session,
            upload,
            &[
                AbiValue::Uint(ether(1)),
                AbiValue::string("H-1"),
                AbiValue::uint(1000),
            ],
            U256::ZERO,
        )
        .unwrap();

    // Blockchain tier: real code at the address, a mined block, gas paid.
    assert!(!web3.code(address).is_empty());
    assert!(web3.block_number() >= 1);
    assert!(web3.balance(accounts[0]) < ether(1000), "gas was paid");

    // Data tier (DB): the Contract row exists with the landlord set.
    let row = app.db().contract_by_address(address).unwrap();
    assert_eq!(row.version, 1);
    assert_eq!(row.landlord, 1);

    // Data tier (IPFS): the ABI is pinned and fetchable by CID.
    let stored = ipfs.cat(&row.abi).unwrap();
    let abi =
        legal_smart_contracts::abi::Abi::from_json(std::str::from_utf8(&stored).unwrap()).unwrap();
    assert!(abi.function("confirmAgreement").is_some());

    // Business tier: the manager can rebind and interact from the address
    // alone (the Fig. 1 communication path in reverse).
    let rebound = app.manager().contract_at(address).unwrap();
    assert_eq!(rebound.call1("house", &[]).unwrap().as_str(), Some("H-1"));

    // Presentation tier again: the dashboard shows the deployment.
    let dashboard = app.dashboard(session).unwrap();
    assert!(dashboard.rows.iter().any(|r| r.address == address));
}

#[test]
fn business_tier_isolates_user_from_chain_details() {
    // The user never handles nonces, gas, selectors or ABI encoding: the
    // manager does. Two deployments in a row exercise nonce management.
    let web3 = Web3::new(LocalNode::new(2));
    let manager = legal_smart_contracts::core::ContractManager::new(web3.clone(), IpfsNode::new());
    let from = web3.accounts()[0];
    let artifact = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &artifact).unwrap();
    let args = vec![
        AbiValue::Uint(ether(1)),
        AbiValue::string("H"),
        AbiValue::uint(10),
    ];
    let c1 = manager.deploy(from, upload, &args, U256::ZERO).unwrap();
    let c2 = manager.deploy(from, upload, &args, U256::ZERO).unwrap();
    assert_ne!(c1.address(), c2.address(), "nonce-derived addresses differ");
}
