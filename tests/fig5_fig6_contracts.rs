//! Experiments F5/F6 (Figs. 5 and 6): the paper's contract sources — the
//! base rental agreement and its modified version — compile with our
//! Solidity-subset compiler, expose exactly the figures' members, and the
//! updated version adds the new clause while staying storage-compatible.

use legal_smart_contracts::abi::AbiType;
use legal_smart_contracts::core::contracts;

#[test]
fn fig5_base_contract_members() {
    let artifact = contracts::compile_base_rental().unwrap();
    let abi = &artifact.abi;

    // The struct-array getter of `PaidRent[] public paidrents`.
    let paidrents = abi.function("paidrents").expect("public array getter");
    assert_eq!(paidrents.inputs.len(), 1);
    assert_eq!(paidrents.outputs.len(), 2, "Monthid + value");

    // Public state variables from the figure.
    for getter in [
        "createdTimestamp",
        "rent",
        "house",
        "landlord",
        "tenant",
        "state",
    ] {
        assert!(abi.function(getter).is_some(), "missing getter {getter}");
    }
    assert_eq!(
        abi.function("house").unwrap().outputs[0].ty,
        AbiType::String
    );
    assert_eq!(
        abi.function("state").unwrap().outputs[0].ty,
        AbiType::Uint(8)
    );

    // Constructor (uint _rent, string _house, uint _contractTime) payable.
    assert_eq!(abi.constructor_inputs.len(), 3);
    assert!(abi.constructor_payable);

    // Events.
    for event in ["agreementConfirmed", "paidRent", "contractTerminated"] {
        assert!(abi.event(event).is_some(), "missing event {event}");
    }

    // Lifecycle + linked-list functions.
    for f in [
        "confirmAgreement",
        "payRent",
        "terminateContract",
        "getNext",
        "getPrev",
        "setNext",
        "setPrev",
    ] {
        assert!(abi.function(f).is_some(), "missing function {f}");
    }
    // Payability per the figure.
    use legal_smart_contracts::abi::StateMutability;
    assert_eq!(
        abi.function("payRent").unwrap().mutability,
        StateMutability::Payable
    );
}

#[test]
fn fig6_updated_contract_members() {
    let artifact = contracts::compile_rental_agreement().unwrap();
    let abi = &artifact.abi;

    // New state variables of the modified version.
    for getter in [
        "deposit",
        "discount",
        "fine",
        "nextBillingDate",
        "monthCounter",
    ] {
        assert!(abi.function(getter).is_some(), "missing getter {getter}");
    }
    // The new clause function.
    assert!(abi.function("aNewFunction").is_some());
    // Six constructor params per the figure.
    assert_eq!(abi.constructor_inputs.len(), 6);
    // Everything inherited from BaseRental is still present.
    for f in [
        "payRent",
        "confirmAgreement",
        "terminateContract",
        "getNext",
        "paidrents",
    ] {
        assert!(abi.function(f).is_some(), "missing inherited {f}");
    }
}

#[test]
fn updated_version_is_storage_compatible_with_base() {
    // The versioning design requires shared state variables to keep their
    // slots so migrated data means the same thing in every version.
    let base = contracts::compile_base_rental().unwrap();
    let v2 = contracts::compile_rental_agreement().unwrap();
    for (name, slot, _) in &base.storage_layout {
        let v2_entry = v2
            .storage_layout
            .iter()
            .find(|(n, _, _)| n == name)
            .unwrap_or_else(|| panic!("v2 dropped state var {name}"));
        assert_eq!(v2_entry.1, *slot, "slot of {name} moved");
    }
    // v2 appends its new variables strictly after the base layout.
    let base_max = base
        .storage_layout
        .iter()
        .map(|(_, s, _)| *s)
        .max()
        .unwrap();
    let deposit = v2
        .storage_layout
        .iter()
        .find(|(n, _, _)| n == "deposit")
        .unwrap();
    assert!(deposit.1 > base_max);
}

#[test]
fn bytecode_is_within_mainnet_limits() {
    let base = contracts::compile_base_rental().unwrap();
    let v2 = contracts::compile_rental_agreement().unwrap();
    assert!(
        base.runtime.len() <= 24_576,
        "EIP-170: {}",
        base.runtime.len()
    );
    assert!(v2.runtime.len() <= 24_576, "EIP-170: {}", v2.runtime.len());
    assert!(
        v2.runtime.len() > base.runtime.len(),
        "v2 carries more clauses"
    );
}
