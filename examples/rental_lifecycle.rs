//! The full case study of Section IV as an application walkthrough:
//! registration, login, upload (Fig. 9), deploy (Fig. 10), dashboards
//! (Fig. 7), confirm + pay (Fig. 4), modify + re-confirm and terminate
//! (Fig. 11), with the dashboard screen printed at each step.
//!
//! Run with: `cargo run --example rental_lifecycle`

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::app::{dashboard, RentalApp};
use legal_smart_contracts::chain::LocalNode;
use legal_smart_contracts::core::contracts;
use legal_smart_contracts::ipfs::IpfsNode;
use legal_smart_contracts::primitives::{ether, U256};
use legal_smart_contracts::web3::Web3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let web3 = Web3::new(LocalNode::new(4));
    let accounts = web3.accounts();
    let app = RentalApp::new(web3, IpfsNode::new());

    // Registration (the paper's user table: name, email, password, public key).
    app.register("eleana_kafeza", "ek@zu.ac.ae", "pw-landlord", accounts[0])?;
    app.register("juned_ali", "ja@iiit.ac.in", "pw-tenant", accounts[1])?;
    let landlord = app.login("eleana_kafeza", "pw-landlord")?;
    let tenant = app.login("juned_ali", "pw-tenant")?;

    // Fig. 9: upload both versions (bytecode + ABI json files).
    let base = contracts::compile_base_rental()?;
    let v2 = contracts::compile_rental_agreement()?;
    let up_base = app.upload_contract(
        landlord,
        "Basic rental contract",
        base.bytecode.clone(),
        &base.abi.to_json(),
    )?;
    let up_v2 = app.upload_contract(
        landlord,
        "Modified rental contract",
        v2.bytecode.clone(),
        &v2.abi.to_json(),
    )?;

    // Fig. 10: deploy the base contract.
    let address = app.deploy_contract(
        landlord,
        up_base,
        &[
            AbiValue::Uint(ether(1)),
            AbiValue::string("10001-42 Main St"),
            AbiValue::uint(365 * 24 * 3600),
        ],
        U256::ZERO,
    )?;
    app.attach_document(
        landlord,
        address,
        b"%PDF-1.4 twelve-month lease, 1 ETH monthly",
    )?;
    println!("== landlord dashboard after deployment (Fig. 7/10) ==");
    println!("{}", dashboard::render(&app.dashboard(landlord)?));

    // Tenant reviews the PDF, confirms, pays three months.
    let pdf = app.view_document(tenant, address)?;
    println!("tenant reviewed the legal document ({} bytes)\n", pdf.len());
    app.confirm_agreement(tenant, address)?;
    for month in 1..=3 {
        app.pay_rent(tenant, address)?;
        println!("month {month}: rent paid");
    }
    println!("\n== tenant dashboard mid-lease (Fig. 7) ==");
    println!("{}", dashboard::render(&app.dashboard(tenant)?));

    // Fig. 11: the landlord modifies the agreement — the new version adds
    // a 2 ETH deposit, an early-termination fine and a maintenance clause.
    let address2 = app.modify_contract(
        landlord,
        address,
        up_v2,
        &[
            AbiValue::Uint(ether(1)),
            AbiValue::Uint(ether(2)),
            AbiValue::uint(365 * 24 * 3600),
            AbiValue::Uint(U256::ZERO),
            AbiValue::Uint(ether(1) / U256::from_u64(2)),
            AbiValue::string("10001-42 Main St"),
        ],
        &[],
    )?;
    println!("modified contract deployed as version 2 at {address2}");
    println!(
        "on-chain evidence line: {:?}\n",
        app.version_history(landlord, address2)?
    );

    // Tenant confirms the modified agreement (escrows the deposit), pays
    // the rent and the new maintenance fee.
    app.confirm_agreement(tenant, address2)?;
    app.pay_rent(tenant, address2)?;
    app.pay_maintenance(tenant, address2, ether(1) / U256::from_u64(10))?;
    println!("== tenant dashboard on the modified contract ==");
    println!("{}", dashboard::render(&app.dashboard(tenant)?));

    // Early termination by the tenant: the fine and half the deposit are
    // withheld; the remainder is refunded (Section IV-B5).
    app.terminate(tenant, address2)?;
    println!("tenant terminated early; deposit split applied");
    println!("\n== final landlord dashboard ==");
    println!("{}", dashboard::render(&app.dashboard(landlord)?));
    Ok(())
}
