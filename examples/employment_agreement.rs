//! Generality of the methodology (the paper's conclusion: "Similar
//! approaches can be followed in other applications as well"): the same
//! four-tier stack — compiler, chain, manager, versioning — running a
//! completely different legal contract, an *employment agreement*, written
//! here in the Solidity subset and versioned through the identical
//! linked-list mechanism.
//!
//! Run with: `cargo run --example employment_agreement`

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::chain::LocalNode;
use legal_smart_contracts::core::{audit_chain, ContractManager};
use legal_smart_contracts::ipfs::IpfsNode;
use legal_smart_contracts::primitives::{ether, U256};
use legal_smart_contracts::solc::compile_single;
use legal_smart_contracts::web3::Web3;

/// An employment agreement in the same pattern as the paper's rental
/// contract: a `Node` base for versioning, parties, clauses, events.
const EMPLOYMENT_SOURCE: &str = r#"
pragma solidity ^0.5.0;

contract Node {
    address next;
    address previous;
    function getNext() public view returns (address addr) { return next; }
    function getPrev() public view returns (address addr) { return previous; }
    function setNext(address _next) public { next = _next; }
    function setPrev(address _previous) public { previous = _previous; }
}

contract EmploymentAgreement is Node {
    struct Payslip { uint periodId; uint amount; }
    Payslip[] public payslips;
    uint public salary;
    string public role;
    address payable public employer, employee;
    uint public noticePeriod;
    enum State {Offered, Active, Ended}
    State public state;

    event offerAccepted();
    event salaryPaid(uint amount);
    event agreementEnded();

    constructor (uint _salary, string memory _role, uint _noticePeriod) public payable {
        salary = _salary;
        role = _role;
        noticePeriod = _noticePeriod;
        employer = msg.sender;
        state = State.Offered;
    }

    function acceptOffer() public {
        require(state == State.Offered, "offer is not open");
        require(msg.sender != employer, "employer cannot accept own offer");
        employee = msg.sender;
        state = State.Active;
        emit offerAccepted();
    }

    function paySalary() public payable {
        require(state == State.Active, "agreement is not active");
        require(msg.sender == employer, "only the employer pays");
        require(msg.value == salary, "salary amount mismatch");
        employee.transfer(msg.value);
        payslips.push(Payslip(payslips.length + 1, msg.value));
        emit salaryPaid(msg.value);
    }

    function endAgreement() public {
        require(msg.sender == employer || msg.sender == employee, "parties only");
        require(state == State.Active, "not active");
        state = State.Ended;
        emit agreementEnded();
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let web3 = Web3::new(LocalNode::new(4));
    let (employer, employee) = (web3.accounts()[0], web3.accounts()[1]);
    let manager = ContractManager::new(web3.clone(), IpfsNode::new());

    // Same pipeline as the rental case study, new domain.
    let artifact = compile_single(EMPLOYMENT_SOURCE, "EmploymentAgreement")?;
    println!(
        "compiled EmploymentAgreement: {} bytes runtime, {} functions",
        artifact.runtime.len(),
        artifact.abi.functions.len()
    );
    let upload = manager.upload_artifact("Employment agreement", &artifact)?;

    // Offer: 3 ETH monthly salary, 30-day notice.
    let v1 = manager.deploy(
        employer,
        upload,
        &[
            AbiValue::Uint(ether(3)),
            AbiValue::string("Research Engineer"),
            AbiValue::uint(30 * 24 * 3600),
        ],
        U256::ZERO,
    )?;
    manager.attach_document(v1.address(), b"%PDF-1.4 employment contract, 3 ETH monthly");
    println!("offer deployed at {}", v1.address());

    // Employee accepts; two salary payments flow.
    v1.send(employee, "acceptOffer", &[], U256::ZERO)?;
    let before = web3.balance(employee);
    v1.send(employer, "paySalary", &[], ether(3))?;
    v1.send(employer, "paySalary", &[], ether(3))?;
    println!(
        "salary paid twice; employee received {} wei",
        web3.balance(employee) - before
    );

    // A raise = a contract modification: new version, linked evidence line.
    let v2 = manager.deploy_version(
        employer,
        upload,
        &[
            AbiValue::Uint(ether(4)),
            AbiValue::string("Senior Research Engineer"),
            AbiValue::uint(60 * 24 * 3600),
        ],
        U256::ZERO,
        v1.address(),
        &[],
    )?;
    v1.send(employer, "endAgreement", &[], U256::ZERO)?;
    v2.send(employee, "acceptOffer", &[], U256::ZERO)?;
    v2.send(employer, "paySalary", &[], ether(4))?;
    println!(
        "promotion enacted as v2 at {}; role = {:?}",
        v2.address(),
        v2.call1("role", &[])?.as_str().unwrap_or("")
    );

    // The same audit machinery covers the new domain untouched.
    let report = audit_chain(&manager, v2.address())?;
    println!("\n{}", report.render());
    assert!(report.chain_intact);
    assert_eq!(report.entries.len(), 2);
    Ok(())
}
