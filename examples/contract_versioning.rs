//! The versioning mechanism in isolation (Fig. 2): deploy a chain of
//! contract versions, link them into the on-chain doubly linked list,
//! traverse the evidence line from any point, and show that a third party
//! holding only an address can recover each version's ABI from IPFS.
//!
//! Run with: `cargo run --example contract_versioning`

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::chain::LocalNode;
use legal_smart_contracts::core::{contracts, AbiRegistry, ContractManager, VersionChain};
use legal_smart_contracts::ipfs::IpfsNode;
use legal_smart_contracts::primitives::{ether, U256};
use legal_smart_contracts::web3::Web3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let web3 = Web3::new(LocalNode::new(2));
    let landlord = web3.accounts()[0];
    let ipfs = IpfsNode::new();
    let manager = ContractManager::new(web3.clone(), ipfs.clone());

    let artifact = contracts::compile_rental_agreement()?;
    let upload = manager.upload_artifact("Rental agreement", &artifact)?;
    let args = |rent: u64| {
        vec![
            AbiValue::Uint(ether(rent)),
            AbiValue::Uint(ether(2)),
            AbiValue::uint(365 * 24 * 3600),
            AbiValue::Uint(U256::ZERO),
            AbiValue::Uint(ether(1) / U256::from_u64(2)),
            AbiValue::string("10001-42 Main St"),
        ]
    };

    // Version 1, then three successive modifications (rent increases).
    let v1 = manager.deploy(landlord, upload, &args(1), U256::ZERO)?;
    println!("v1 deployed at {}", v1.address());
    let mut previous = v1.address();
    for (version, rent) in [(2u32, 2u64), (3, 3), (4, 4)] {
        let vn =
            manager.deploy_version(landlord, upload, &args(rent), U256::ZERO, previous, &[])?;
        println!("v{version} deployed at {} (rent {rent} ETH)", vn.address());
        previous = vn.address();
    }

    // Traverse the evidence line from the middle.
    let history = manager.history(previous)?;
    println!(
        "\nevidence line ({} versions, earliest first):",
        history.len()
    );
    for (i, address) in history.iter().enumerate() {
        let record = manager.record(*address).expect("record");
        let contract = manager.contract_at(*address)?;
        let rent = contract.call1("rent", &[])?;
        println!(
            "  v{} @ {}  rent={} wei  state={:?}",
            i + 1,
            address,
            rent,
            record.state
        );
    }
    let verified = manager.verify_chain(history[0])?;
    println!(
        "bidirectional integrity verified across {} links",
        verified.len() - 1
    );

    // Third party: only has the last address + the IPFS network. The
    // registry manifest lets them rebuild address→ABI and walk the list.
    let manifest = manager.registry().publish_manifest();
    println!("\nregistry manifest published as {manifest}");
    let other_party_registry = AbiRegistry::from_manifest(ipfs, manifest)?;
    let walker = VersionChain::new(web3, other_party_registry);
    let head = walker.head_of(previous)?;
    println!("third party walked back from {previous} to the first version {head}");
    assert_eq!(head, history[0]);
    Ok(())
}
