//! Quickstart: compile the paper's base rental agreement, deploy it on the
//! local chain, confirm as tenant, pay a month's rent, and terminate.
//!
//! Run with: `cargo run --example quickstart`

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::chain::LocalNode;
use legal_smart_contracts::core::{contracts, ContractManager, Rental};
use legal_smart_contracts::ipfs::IpfsNode;
use legal_smart_contracts::primitives::{ether, U256};
use legal_smart_contracts::web3::Web3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Ganache-style local node with pre-funded dev accounts.
    let web3 = Web3::new(LocalNode::new(4));
    let accounts = web3.accounts();
    let (landlord, tenant) = (accounts[0], accounts[1]);

    // The business tier: contract manager over chain + IPFS.
    let manager = ContractManager::new(web3.clone(), IpfsNode::new());

    // Compile the paper's Fig. 5 BaseRental with our Solidity-subset
    // compiler and upload it (Fig. 9).
    let artifact = contracts::compile_base_rental()?;
    println!(
        "compiled BaseRental: {} bytes runtime, {} ABI entries",
        artifact.runtime.len(),
        artifact.abi.functions.len()
    );
    let upload = manager.upload_artifact("Basic rental contract", &artifact)?;

    // Deploy (Fig. 10): 1 ETH monthly rent, one-year term.
    let contract = manager.deploy(
        landlord,
        upload,
        &[
            AbiValue::Uint(ether(1)),
            AbiValue::string("10001-42 Main St"),
            AbiValue::uint(365 * 24 * 3600),
        ],
        U256::ZERO,
    )?;
    println!("deployed at {}", contract.address());

    // Link the natural-language agreement.
    let cid = manager.attach_document(contract.address(), b"%PDF-1.4 example rental agreement");
    println!("legal document pinned in IPFS as {cid}");

    // The tenant's side of Fig. 4.
    let rental = Rental::at(contract);
    rental.confirm_agreement(tenant)?;
    println!("tenant {tenant} confirmed; state = {}", rental.state()?);

    let landlord_before = web3.balance(landlord);
    rental.pay_rent(tenant)?;
    println!(
        "rent paid: landlord received {} wei",
        web3.balance(landlord) - landlord_before
    );
    println!("paid rents on chain: {:?}", rental.paid_rents()?);

    rental.terminate(landlord)?;
    println!("terminated; final state = {}", rental.state()?);
    Ok(())
}
