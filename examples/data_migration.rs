//! Data/logic separation (Fig. 3 and Section III-C1): a shared
//! `DataStorage` contract holds the attributes of every version so a
//! logic-only update can rebind the same data instead of re-entering it.
//!
//! Run with: `cargo run --example data_migration`

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::chain::LocalNode;
use legal_smart_contracts::core::contracts::{self, RENTAL_DATA_KEYS};
use legal_smart_contracts::core::ContractManager;
use legal_smart_contracts::ipfs::IpfsNode;
use legal_smart_contracts::primitives::{ether, U256};
use legal_smart_contracts::web3::Web3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let web3 = Web3::new(LocalNode::new(2));
    let landlord = web3.accounts()[0];
    let manager = ContractManager::new(web3.clone(), IpfsNode::new());

    // Deploy the shared DataStorage contract (Fig. 3).
    let store_address = manager.init_data_store(landlord)?;
    let store = manager.data_store().expect("just initialized");
    println!("DataStorage deployed at {store_address}");

    // Deploy v1 of the rental agreement and snapshot its attributes into
    // the data layer, keyed by the version's address.
    let base = contracts::compile_base_rental()?;
    let upload = manager.upload_artifact("Basic rental contract", &base)?;
    let v1 = manager.deploy(
        landlord,
        upload,
        &[
            AbiValue::Uint(ether(1)),
            AbiValue::string("10001-42 Main St"),
            AbiValue::uint(365 * 24 * 3600),
        ],
        U256::ZERO,
    )?;
    let written = store.snapshot_contract(landlord, &v1, RENTAL_DATA_KEYS)?;
    println!(
        "snapshotted {written} attributes of v1 {} into the data layer:",
        v1.address()
    );
    for (key, value) in store.fetch_all(v1.address(), RENTAL_DATA_KEYS)? {
        println!("  {key} = {value}");
    }

    // Deploy the modified logic (v2) and migrate the data record — the
    // logic changed, the data moved untouched.
    let v2_artifact = contracts::compile_rental_agreement()?;
    let upload2 = manager.upload_artifact("Modified rental contract", &v2_artifact)?;
    let v2 = manager.deploy_version(
        landlord,
        upload2,
        &[
            AbiValue::Uint(ether(1)),
            AbiValue::Uint(ether(2)),
            AbiValue::uint(365 * 24 * 3600),
            AbiValue::Uint(U256::ZERO),
            AbiValue::Uint(ether(1) / U256::from_u64(2)),
            AbiValue::string("10001-42 Main St"),
        ],
        U256::ZERO,
        v1.address(),
        RENTAL_DATA_KEYS,
    )?;
    println!("\nv2 deployed at {} with migrated data:", v2.address());
    for (key, value) in store.fetch_all(v2.address(), RENTAL_DATA_KEYS)? {
        println!("  {key} = {value}");
    }

    // Both records coexist: the old version's data is part of the
    // evidence line, not overwritten.
    assert_eq!(
        store.get(v1.address(), "house")?,
        store.get(v2.address(), "house")?
    );
    println!("\nv1's record remains intact alongside v2's (evidence preserved)");
    Ok(())
}
