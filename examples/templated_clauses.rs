//! The template workflow of Section III-A: "base [applications] on
//! pre-existing templates … users can focus on the application logic
//! instead of the coding issues." A landlord assembles a rental agreement
//! from clause checkboxes plus one bespoke clause; the template writes the
//! Solidity, the stack compiles, deploys and versions it like any other.
//!
//! Run with: `cargo run --example templated_clauses`

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::chain::LocalNode;
use legal_smart_contracts::core::{ContractManager, CustomClause, Party, Rental, RentalTemplate};
use legal_smart_contracts::ipfs::IpfsNode;
use legal_smart_contracts::primitives::{ether, U256};
use legal_smart_contracts::web3::Web3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let web3 = Web3::new(LocalNode::new(4));
    let (landlord, tenant) = (web3.accounts()[0], web3.accounts()[1]);
    let manager = ContractManager::new(web3.clone(), IpfsNode::new());

    // The landlord's clause selection: deposit + maintenance + hardened
    // version links + a bespoke "holiday bonus" clause for the tenant.
    let template = RentalTemplate::named("BespokeRental")
        .with_deposit()
        .with_maintenance()
        .with_guarded_links()
        .with_clause(CustomClause {
            name: "holidayGift".into(),
            body: "tenant.transfer(msg.value);".into(),
            payable: true,
            restricted_to: Some(Party::Landlord),
        });

    let source = template.render()?;
    println!(
        "template rendered {} lines of Solidity for clause set \
         [deposit, maintenance, guarded-links, holidayGift]:",
        source.lines().count()
    );
    for line in source.lines().take(12) {
        println!("    {line}");
    }
    println!("    …\n");

    let artifact = template.compile()?;
    println!(
        "compiled: {} bytes runtime, {} ABI functions",
        artifact.runtime.len(),
        artifact.abi.functions.len()
    );

    // Standard pipeline from here on.
    let upload = manager.upload_artifact("Bespoke rental", &artifact)?;
    let contract = manager.deploy(
        landlord,
        upload,
        &[
            AbiValue::Uint(ether(1)),
            AbiValue::string("10005-9 Custom Ct"),
            AbiValue::uint(365 * 24 * 3600),
            AbiValue::Uint(ether(2)),
        ],
        U256::ZERO,
    )?;
    println!("deployed at {}", contract.address());

    let rental = Rental::at(contract.clone());
    rental.confirm_agreement(tenant)?;
    rental.pay_rent(tenant)?;
    println!("tenant confirmed (2 ETH escrowed) and paid the first month");

    // The bespoke clause in action: the landlord gifts 0.5 ETH.
    let before = web3.balance(tenant);
    contract.send(landlord, "holidayGift", &[], ether(1) / U256::from_u64(2))?;
    println!(
        "holidayGift clause moved {} wei landlord → tenant",
        web3.balance(tenant) - before
    );

    // Guarded links from the template: strangers cannot relink.
    let stranger = web3.accounts()[2];
    let attempt = contract.send(
        stranger,
        "setNext",
        &[AbiValue::Address(web3.accounts()[3])],
        U256::ZERO,
    );
    println!(
        "stranger tried to relink the evidence line: {}",
        if attempt.is_err() {
            "rejected (guarded)"
        } else {
            "?!"
        }
    );
    Ok(())
}
