//! A small rental market: several landlords list properties, tenants pick
//! them up from the dashboard, a year of rent flows month by month on the
//! warped chain clock, and one agreement is modified mid-term. Exercises
//! the whole stack under concurrent-ish multi-party usage.
//!
//! Run with: `cargo run --example multi_property_market`

use legal_smart_contracts::abi::AbiValue;
use legal_smart_contracts::app::{dashboard, RentalApp};
use legal_smart_contracts::chain::LocalNode;
use legal_smart_contracts::core::contracts;
use legal_smart_contracts::ipfs::IpfsNode;
use legal_smart_contracts::primitives::{ether, Address, U256};
use legal_smart_contracts::web3::Web3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let web3 = Web3::new(LocalNode::new(8));
    let accounts = web3.accounts();
    let app = RentalApp::new(web3.clone(), IpfsNode::new());

    // Two landlords, three tenants.
    let mut sessions = Vec::new();
    for (i, name) in [
        "landlady_a",
        "landlord_b",
        "tenant_x",
        "tenant_y",
        "tenant_z",
    ]
    .iter()
    .enumerate()
    {
        app.register(name, &format!("{name}@example.org"), "pw", accounts[i])?;
        sessions.push(app.login(name, "pw")?);
    }
    let [landlady_a, landlord_b, tenant_x, tenant_y, tenant_z] = [
        sessions[0],
        sessions[1],
        sessions[2],
        sessions[3],
        sessions[4],
    ];

    let base = contracts::compile_base_rental()?;
    let upload = app.upload_contract(
        landlady_a,
        "Basic rental contract",
        base.bytecode.clone(),
        &base.abi.to_json(),
    )?;

    // Landlords list properties with different rents.
    let listings: [(_, u64, &str); 4] = [
        (landlady_a, 1, "10001-42 Main St"),
        (landlady_a, 2, "10002-7 Oak Ave"),
        (landlord_b, 1, "10003-1 Pine Rd"),
        (landlord_b, 3, "10004-9 Elm Blvd"),
    ];
    let mut addresses: Vec<Address> = Vec::new();
    for (session, rent, house) in listings {
        let address = app.deploy_contract(
            session,
            upload,
            &[
                AbiValue::Uint(ether(rent)),
                AbiValue::string(house),
                AbiValue::uint(365 * 24 * 3600),
            ],
            U256::ZERO,
        )?;
        app.attach_document(
            session,
            address,
            format!("%PDF-1.4 lease for {house}").as_bytes(),
        )?;
        addresses.push(address);
        println!("listed {house} at {rent} ETH/month → {address}");
    }

    // Tenants pick their properties from the open listings.
    app.confirm_agreement(tenant_x, addresses[0])?;
    app.confirm_agreement(tenant_y, addresses[1])?;
    app.confirm_agreement(tenant_z, addresses[2])?;
    println!("\nthree agreements confirmed; one property stays vacant");

    // Six months pass, rent flows monthly.
    for month in 1..=6u32 {
        web3.increase_time(30 * 24 * 3600);
        app.pay_rent(tenant_x, addresses[0])?;
        app.pay_rent(tenant_y, addresses[1])?;
        app.pay_rent(tenant_z, addresses[2])?;
        println!("month {month}: all rents settled");
    }

    // Landlady A modifies the Oak Ave agreement mid-term (adds deposit &
    // maintenance clause); tenant Y re-confirms on the new version.
    let v2 = contracts::compile_rental_agreement()?;
    let upload2 = app.upload_contract(
        landlady_a,
        "Modified rental contract",
        v2.bytecode.clone(),
        &v2.abi.to_json(),
    )?;
    let oak_v2 = app.modify_contract(
        landlady_a,
        addresses[1],
        upload2,
        &[
            AbiValue::Uint(ether(2)),
            AbiValue::Uint(ether(4)),
            AbiValue::uint(180 * 24 * 3600),
            AbiValue::Uint(U256::ZERO),
            AbiValue::Uint(ether(1)),
            AbiValue::string("10002-7 Oak Ave"),
        ],
        &[],
    )?;
    app.terminate(landlady_a, addresses[1])?; // old version wound down
    app.confirm_agreement(tenant_y, oak_v2)?;
    app.pay_rent(tenant_y, oak_v2)?;
    println!(
        "\nOak Ave modified; evidence line: {:?}",
        app.version_history(tenant_y, oak_v2)?
    );

    // Final dashboards.
    for (name, session) in [("landlady_a", landlady_a), ("tenant_y", tenant_y)] {
        println!("\n== {name} dashboard ==");
        println!("{}", dashboard::render(&app.dashboard(session)?));
    }

    // Market accounting sanity: landlady A received 6×1 (Main St) + 6×2 +
    // 1×2 (Oak Ave v2 rent) = 20 ETH, minus her own gas spending.
    let d = app.dashboard(landlady_a)?;
    println!(
        "landlady_a closing balance: {} ETH",
        dashboard::format_ether(d.balance)
    );
    Ok(())
}
