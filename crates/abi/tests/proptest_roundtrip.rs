//! Property-based ABI codec verification: random typed values round-trip
//! through encode/decode, and the JSON module round-trips arbitrary
//! documents.

use lsc_abi::json::{parse, JsonValue};
use lsc_abi::{decode, encode, AbiType, AbiValue};
use lsc_primitives::{Address, U256};
use proptest::prelude::*;

/// Generate a matching (type, value) pair.
fn arb_typed_value() -> impl Strategy<Value = (AbiType, AbiValue)> {
    let leaf = prop_oneof![
        proptest::array::uniform4(any::<u64>())
            .prop_map(|l| (AbiType::Uint(256), AbiValue::Uint(U256(l)))),
        any::<bool>().prop_map(|b| (AbiType::Bool, AbiValue::Bool(b))),
        proptest::array::uniform20(any::<u8>())
            .prop_map(|b| (AbiType::Address, AbiValue::Address(Address(b)))),
        "[a-zA-Z0-9 ]{0,60}".prop_map(|s| (AbiType::String, AbiValue::String(s))),
        proptest::collection::vec(any::<u8>(), 0..50)
            .prop_map(|b| (AbiType::Bytes, AbiValue::Bytes(b))),
        (1usize..=32, proptest::collection::vec(any::<u8>(), 32)).prop_map(|(n, b)| {
            (
                AbiType::FixedBytes(n as u8),
                AbiValue::FixedBytes(b[..n].to_vec()),
            )
        }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // Homogeneous dynamic array: replicate one element shape.
            (inner.clone(), 0usize..4).prop_map(|((ty, value), n)| {
                (
                    AbiType::Array(Box::new(ty)),
                    AbiValue::Array(std::iter::repeat_n(value, n).collect()),
                )
            }),
            // Tuple of up to 3 shapes.
            proptest::collection::vec(inner, 1..4).prop_map(|items| {
                let (types, values): (Vec<_>, Vec<_>) = items.into_iter().unzip();
                (AbiType::Tuple(types), AbiValue::Tuple(values))
            }),
        ]
    })
}

/// Arbitrary JSON value (finite integers only to keep equality exact).
fn arb_json() -> impl Strategy<Value = JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        (-1_000_000i64..1_000_000).prop_map(|n| JsonValue::Number(n as f64)),
        "[a-zA-Z0-9 _\\-\"\\\\]{0,24}".prop_map(JsonValue::String),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(JsonValue::Array),
            proptest::collection::btree_map("[a-z]{1,8}", inner, 0..4).prop_map(JsonValue::Object),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn abi_roundtrip_single((ty, value) in arb_typed_value()) {
        let encoded = encode(std::slice::from_ref(&ty), std::slice::from_ref(&value)).unwrap();
        let decoded = decode(std::slice::from_ref(&ty), &encoded).unwrap();
        prop_assert_eq!(decoded[0].clone(), value);
    }

    #[test]
    fn abi_roundtrip_parameter_lists(items in proptest::collection::vec(arb_typed_value(), 0..5)) {
        let (types, values): (Vec<_>, Vec<_>) = items.into_iter().unzip();
        let encoded = encode(&types, &values).unwrap();
        // Encoded length is always a multiple of a word.
        prop_assert_eq!(encoded.len() % 32, 0);
        let decoded = decode(&types, &encoded).unwrap();
        prop_assert_eq!(decoded, values);
    }

    #[test]
    fn decode_never_panics_on_garbage(
        (ty, _) in arb_typed_value(),
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Must return Ok or Err, never panic.
        let _ = decode(std::slice::from_ref(&ty), &data);
    }

    #[test]
    fn json_roundtrip(value in arb_json()) {
        let text = value.to_json();
        let parsed = parse(&text).unwrap();
        prop_assert_eq!(parsed, value);
    }

    #[test]
    fn json_parse_never_panics(text in "\\PC{0,80}") {
        let _ = parse(&text);
    }
}
