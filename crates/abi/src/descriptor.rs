//! Contract interface descriptors: functions, events, constructor — the
//! Rust model of the JSON ABI files the paper's application stores in IPFS
//! and uploads through the dashboard (Fig. 9).

use crate::codec::{self, AbiError};
use crate::json::{parse, JsonError, JsonValue};
use crate::types::AbiType;
use crate::value::AbiValue;
use core::fmt;
use lsc_primitives::{keccak256, H256};

/// A named, typed parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name (may be empty).
    pub name: String,
    /// Parameter type.
    pub ty: AbiType,
    /// For event inputs: whether the parameter is indexed (a topic).
    pub indexed: bool,
}

impl Param {
    /// Unindexed parameter.
    pub fn new(name: impl Into<String>, ty: AbiType) -> Self {
        Param {
            name: name.into(),
            ty,
            indexed: false,
        }
    }

    /// Indexed event parameter.
    pub fn indexed(name: impl Into<String>, ty: AbiType) -> Self {
        Param {
            name: name.into(),
            ty,
            indexed: true,
        }
    }
}

/// Solidity state mutability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StateMutability {
    /// Reads and writes state.
    #[default]
    NonPayable,
    /// May receive ether.
    Payable,
    /// Reads state only.
    View,
    /// Touches no state.
    Pure,
}

impl StateMutability {
    fn as_str(self) -> &'static str {
        match self {
            StateMutability::NonPayable => "nonpayable",
            StateMutability::Payable => "payable",
            StateMutability::View => "view",
            StateMutability::Pure => "pure",
        }
    }

    fn from_str(s: &str) -> Self {
        match s {
            "payable" => StateMutability::Payable,
            "view" | "constant" => StateMutability::View,
            "pure" => StateMutability::Pure,
            _ => StateMutability::NonPayable,
        }
    }
}

/// A callable contract function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Input parameters.
    pub inputs: Vec<Param>,
    /// Output parameters.
    pub outputs: Vec<Param>,
    /// Mutability (payable/view/…).
    pub mutability: StateMutability,
}

impl Function {
    /// Canonical signature, e.g. `payRent()` or `setNext(address)`.
    pub fn signature(&self) -> String {
        let args: Vec<String> = self.inputs.iter().map(|p| p.ty.canonical()).collect();
        format!("{}({})", self.name, args.join(","))
    }

    /// 4-byte call selector: `keccak(signature)[..4]`.
    pub fn selector(&self) -> [u8; 4] {
        let h = keccak256(self.signature().as_bytes());
        [h[0], h[1], h[2], h[3]]
    }

    /// ABI-encode a call to this function (selector + arguments).
    pub fn encode_call(&self, args: &[AbiValue]) -> Result<Vec<u8>, AbiError> {
        let types: Vec<AbiType> = self.inputs.iter().map(|p| p.ty.clone()).collect();
        let mut out = self.selector().to_vec();
        out.extend_from_slice(&codec::encode(&types, args)?);
        Ok(out)
    }

    /// Decode this function's return data.
    pub fn decode_output(&self, data: &[u8]) -> Result<Vec<AbiValue>, AbiError> {
        let types: Vec<AbiType> = self.outputs.iter().map(|p| p.ty.clone()).collect();
        codec::decode(&types, data)
    }

    /// Decode calldata (after the selector) into the declared inputs.
    pub fn decode_input(&self, data: &[u8]) -> Result<Vec<AbiValue>, AbiError> {
        let types: Vec<AbiType> = self.inputs.iter().map(|p| p.ty.clone()).collect();
        codec::decode(&types, data)
    }
}

/// A contract event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Event name.
    pub name: String,
    /// Inputs (indexed ones become topics).
    pub inputs: Vec<Param>,
    /// Anonymous events omit topic 0.
    pub anonymous: bool,
}

impl Event {
    /// Canonical signature, e.g. `paidRent(uint256,address)`.
    pub fn signature(&self) -> String {
        let args: Vec<String> = self.inputs.iter().map(|p| p.ty.canonical()).collect();
        format!("{}({})", self.name, args.join(","))
    }

    /// Topic 0: `keccak(signature)`.
    pub fn topic0(&self) -> H256 {
        H256::keccak(self.signature().as_bytes())
    }

    /// Decode a log's unindexed data (indexed params come from topics).
    pub fn decode_data(&self, data: &[u8]) -> Result<Vec<AbiValue>, AbiError> {
        let types: Vec<AbiType> = self
            .inputs
            .iter()
            .filter(|p| !p.indexed)
            .map(|p| p.ty.clone())
            .collect();
        codec::decode(&types, data)
    }
}

/// A full contract interface.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Abi {
    /// Constructor inputs (empty when there is no explicit constructor).
    pub constructor_inputs: Vec<Param>,
    /// Whether the constructor is payable.
    pub constructor_payable: bool,
    /// Functions by declaration order.
    pub functions: Vec<Function>,
    /// Events by declaration order.
    pub events: Vec<Event>,
}

/// Error loading an ABI from JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum AbiJsonError {
    /// Underlying JSON syntax error.
    Json(JsonError),
    /// Document shape was not an ABI array.
    Shape(String),
}

impl fmt::Display for AbiJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Json(e) => write!(f, "{e}"),
            Self::Shape(s) => write!(f, "abi json shape error: {s}"),
        }
    }
}

impl std::error::Error for AbiJsonError {}

impl Abi {
    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Look up a function by 4-byte selector.
    pub fn function_by_selector(&self, selector: [u8; 4]) -> Option<&Function> {
        self.functions.iter().find(|f| f.selector() == selector)
    }

    /// Look up an event by name.
    pub fn event(&self, name: &str) -> Option<&Event> {
        self.events.iter().find(|e| e.name == name)
    }

    /// Look up an event by its topic-0 hash.
    pub fn event_by_topic(&self, topic0: H256) -> Option<&Event> {
        self.events.iter().find(|e| e.topic0() == topic0)
    }

    /// Encode constructor arguments (appended to init code at deploy time).
    pub fn encode_constructor(&self, args: &[AbiValue]) -> Result<Vec<u8>, AbiError> {
        let types: Vec<AbiType> = self
            .constructor_inputs
            .iter()
            .map(|p| p.ty.clone())
            .collect();
        codec::encode(&types, args)
    }

    /// Serialize to the standard JSON ABI format.
    pub fn to_json(&self) -> String {
        let mut items = Vec::new();
        if !self.constructor_inputs.is_empty() || self.constructor_payable {
            items.push(JsonValue::object([
                ("type", JsonValue::String("constructor".into())),
                ("inputs", params_to_json(&self.constructor_inputs, false)),
                (
                    "stateMutability",
                    JsonValue::String(
                        if self.constructor_payable {
                            "payable"
                        } else {
                            "nonpayable"
                        }
                        .into(),
                    ),
                ),
            ]));
        }
        for f in &self.functions {
            items.push(JsonValue::object([
                ("type", JsonValue::String("function".into())),
                ("name", JsonValue::String(f.name.clone())),
                ("inputs", params_to_json(&f.inputs, false)),
                ("outputs", params_to_json(&f.outputs, false)),
                (
                    "stateMutability",
                    JsonValue::String(f.mutability.as_str().into()),
                ),
            ]));
        }
        for e in &self.events {
            items.push(JsonValue::object([
                ("type", JsonValue::String("event".into())),
                ("name", JsonValue::String(e.name.clone())),
                ("inputs", params_to_json(&e.inputs, true)),
                ("anonymous", JsonValue::Bool(e.anonymous)),
            ]));
        }
        JsonValue::Array(items).to_json()
    }

    /// Parse the standard JSON ABI format.
    pub fn from_json(text: &str) -> Result<Self, AbiJsonError> {
        let doc = parse(text).map_err(AbiJsonError::Json)?;
        let items = doc
            .as_array()
            .ok_or_else(|| AbiJsonError::Shape("top level must be an array".into()))?;
        let mut abi = Abi::default();
        for item in items {
            let kind = item
                .get("type")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| AbiJsonError::Shape("entry missing \"type\"".into()))?;
            match kind {
                "constructor" => {
                    abi.constructor_inputs = params_from_json(item.get("inputs"))?;
                    abi.constructor_payable = item
                        .get("stateMutability")
                        .and_then(JsonValue::as_str)
                        .is_some_and(|s| s == "payable");
                }
                "function" => {
                    abi.functions.push(Function {
                        name: item
                            .get("name")
                            .and_then(JsonValue::as_str)
                            .ok_or_else(|| AbiJsonError::Shape("function missing name".into()))?
                            .to_string(),
                        inputs: params_from_json(item.get("inputs"))?,
                        outputs: params_from_json(item.get("outputs"))?,
                        mutability: StateMutability::from_str(
                            item.get("stateMutability")
                                .and_then(JsonValue::as_str)
                                .unwrap_or(""),
                        ),
                    });
                }
                "event" => {
                    abi.events.push(Event {
                        name: item
                            .get("name")
                            .and_then(JsonValue::as_str)
                            .ok_or_else(|| AbiJsonError::Shape("event missing name".into()))?
                            .to_string(),
                        inputs: params_from_json(item.get("inputs"))?,
                        anonymous: item
                            .get("anonymous")
                            .and_then(JsonValue::as_bool)
                            .unwrap_or(false),
                    });
                }
                // fallback/receive entries are irrelevant here; skip.
                _ => {}
            }
        }
        Ok(abi)
    }
}

fn params_to_json(params: &[Param], with_indexed: bool) -> JsonValue {
    JsonValue::Array(
        params
            .iter()
            .map(|p| {
                let mut obj = vec![
                    ("name", JsonValue::String(p.name.clone())),
                    ("type", JsonValue::String(p.ty.canonical())),
                ];
                if with_indexed {
                    obj.push(("indexed", JsonValue::Bool(p.indexed)));
                }
                JsonValue::object(obj)
            })
            .collect(),
    )
}

fn params_from_json(value: Option<&JsonValue>) -> Result<Vec<Param>, AbiJsonError> {
    let Some(value) = value else {
        return Ok(Vec::new());
    };
    let items = value
        .as_array()
        .ok_or_else(|| AbiJsonError::Shape("params must be an array".into()))?;
    items
        .iter()
        .map(|item| {
            let ty = item
                .get("type")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| AbiJsonError::Shape("param missing type".into()))?
                .parse::<AbiType>()
                .map_err(|e| AbiJsonError::Shape(e.to_string()))?;
            Ok(Param {
                name: item
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
                ty,
                indexed: item
                    .get("indexed")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_primitives::hex;

    fn u() -> AbiType {
        AbiType::uint()
    }

    #[test]
    fn selector_matches_known_vector() {
        let f = Function {
            name: "transfer".into(),
            inputs: vec![
                Param::new("to", AbiType::Address),
                Param::new("amount", u()),
            ],
            outputs: vec![],
            mutability: StateMutability::NonPayable,
        };
        assert_eq!(f.signature(), "transfer(address,uint256)");
        assert_eq!(hex::encode(f.selector()), "a9059cbb");
    }

    #[test]
    fn encode_call_prepends_selector() {
        let f = Function {
            name: "payRent".into(),
            inputs: vec![],
            outputs: vec![],
            mutability: StateMutability::Payable,
        };
        let call = f.encode_call(&[]).unwrap();
        assert_eq!(call.len(), 4);
        assert_eq!(call, f.selector().to_vec());
    }

    #[test]
    fn event_topic_and_decode() {
        let e = Event {
            name: "paidRent".into(),
            inputs: vec![Param::new("amount", u())],
            anonymous: false,
        };
        assert_eq!(e.signature(), "paidRent(uint256)");
        let data = codec::encode(&[u()], &[AbiValue::uint(12)]).unwrap();
        let decoded = e.decode_data(&data).unwrap();
        assert_eq!(decoded[0].as_u64(), Some(12));
    }

    #[test]
    fn json_roundtrip() {
        let abi = Abi {
            constructor_inputs: vec![
                Param::new("_rent", u()),
                Param::new("_house", AbiType::String),
            ],
            constructor_payable: true,
            functions: vec![
                Function {
                    name: "payRent".into(),
                    inputs: vec![],
                    outputs: vec![],
                    mutability: StateMutability::Payable,
                },
                Function {
                    name: "getNext".into(),
                    inputs: vec![],
                    outputs: vec![Param::new("addr", AbiType::Address)],
                    mutability: StateMutability::View,
                },
            ],
            events: vec![Event {
                name: "agreementConfirmed".into(),
                inputs: vec![],
                anonymous: false,
            }],
        };
        let text = abi.to_json();
        let parsed = Abi::from_json(&text).unwrap();
        assert_eq!(parsed, abi);
    }

    #[test]
    fn lookup_by_selector_and_topic() {
        let abi = Abi {
            functions: vec![Function {
                name: "setNext".into(),
                inputs: vec![Param::new("_next", AbiType::Address)],
                outputs: vec![],
                mutability: StateMutability::NonPayable,
            }],
            events: vec![Event {
                name: "x".into(),
                inputs: vec![],
                anonymous: false,
            }],
            ..Abi::default()
        };
        let f = &abi.functions[0];
        assert_eq!(
            abi.function_by_selector(f.selector()).unwrap().name,
            "setNext"
        );
        assert!(abi.function_by_selector([0, 0, 0, 0]).is_none());
        let e = &abi.events[0];
        assert_eq!(abi.event_by_topic(e.topic0()).unwrap().name, "x");
    }

    #[test]
    fn from_json_tolerates_extra_entries() {
        let text = r#"[{"type":"fallback","stateMutability":"payable"},
                       {"type":"function","name":"f","inputs":[],"outputs":[]}]"#;
        let abi = Abi::from_json(text).unwrap();
        assert_eq!(abi.functions.len(), 1);
    }

    #[test]
    fn from_json_rejects_bad_shapes() {
        assert!(Abi::from_json("{}").is_err());
        assert!(Abi::from_json(r#"[{"name":"f"}]"#).is_err());
        assert!(Abi::from_json(r#"[{"type":"function"}]"#).is_err());
        assert!(
            Abi::from_json(r#"[{"type":"function","name":"f","inputs":[{"type":"uint7"}]}]"#)
                .is_err()
        );
    }
}
