//! The contract ABI type system and canonical signature rendering.

use core::fmt;
use core::str::FromStr;

/// An ABI parameter type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AbiType {
    /// `uintN`, N in 8..=256 and a multiple of 8.
    Uint(u16),
    /// `intN`.
    Int(u16),
    /// `address` (20 bytes, encoded as a left-padded word).
    Address,
    /// `bool`.
    Bool,
    /// Dynamic `string` (UTF-8).
    String,
    /// Dynamic `bytes`.
    Bytes,
    /// `bytesN`, N in 1..=32.
    FixedBytes(u8),
    /// Dynamic array `T[]`.
    Array(Box<AbiType>),
    /// Fixed array `T[N]`.
    FixedArray(Box<AbiType>, usize),
    /// Tuple `(T1,...,Tn)` (struct).
    Tuple(Vec<AbiType>),
}

impl AbiType {
    /// Shorthand for `uint256`.
    pub fn uint() -> Self {
        AbiType::Uint(256)
    }

    /// True if the encoding of this type has dynamic length (string, bytes,
    /// dynamic arrays, or composites containing one).
    pub fn is_dynamic(&self) -> bool {
        match self {
            AbiType::String | AbiType::Bytes | AbiType::Array(_) => true,
            AbiType::FixedArray(inner, _) => inner.is_dynamic(),
            AbiType::Tuple(items) => items.iter().any(AbiType::is_dynamic),
            _ => false,
        }
    }

    /// Size in bytes of the head (static) part of the encoding.
    pub fn head_size(&self) -> usize {
        if self.is_dynamic() {
            return 32;
        }
        match self {
            AbiType::FixedArray(inner, n) => inner.head_size() * n,
            AbiType::Tuple(items) => items.iter().map(AbiType::head_size).sum(),
            _ => 32,
        }
    }

    /// Canonical type string used in function signatures (`uint256`, …).
    pub fn canonical(&self) -> String {
        match self {
            AbiType::Uint(bits) => format!("uint{bits}"),
            AbiType::Int(bits) => format!("int{bits}"),
            AbiType::Address => "address".to_string(),
            AbiType::Bool => "bool".to_string(),
            AbiType::String => "string".to_string(),
            AbiType::Bytes => "bytes".to_string(),
            AbiType::FixedBytes(n) => format!("bytes{n}"),
            AbiType::Array(inner) => format!("{}[]", inner.canonical()),
            AbiType::FixedArray(inner, n) => format!("{}[{n}]", inner.canonical()),
            AbiType::Tuple(items) => {
                let inner: Vec<String> = items.iter().map(AbiType::canonical).collect();
                format!("({})", inner.join(","))
            }
        }
    }
}

impl fmt::Display for AbiType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// Error parsing an ABI type string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTypeError(pub String);

impl fmt::Display for ParseTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid abi type: {}", self.0)
    }
}

impl std::error::Error for ParseTypeError {}

impl FromStr for AbiType {
    type Err = ParseTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        // Array suffixes bind outermost: parse from the right.
        if let Some(base) = s.strip_suffix("[]") {
            return Ok(AbiType::Array(Box::new(base.parse()?)));
        }
        if s.ends_with(']') {
            let open = s.rfind('[').ok_or_else(|| ParseTypeError(s.to_string()))?;
            let n: usize = s[open + 1..s.len() - 1]
                .parse()
                .map_err(|_| ParseTypeError(s.to_string()))?;
            return Ok(AbiType::FixedArray(Box::new(s[..open].parse()?), n));
        }
        if s.starts_with('(') && s.ends_with(')') {
            let inner = &s[1..s.len() - 1];
            if inner.is_empty() {
                return Ok(AbiType::Tuple(vec![]));
            }
            let mut items = Vec::new();
            let mut depth = 0usize;
            let mut start = 0usize;
            for (i, c) in inner.char_indices() {
                match c {
                    '(' => depth += 1,
                    ')' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        items.push(inner[start..i].parse()?);
                        start = i + 1;
                    }
                    _ => {}
                }
            }
            items.push(inner[start..].parse()?);
            return Ok(AbiType::Tuple(items));
        }
        match s {
            "address" => return Ok(AbiType::Address),
            "bool" => return Ok(AbiType::Bool),
            "string" => return Ok(AbiType::String),
            "bytes" => return Ok(AbiType::Bytes),
            "uint" => return Ok(AbiType::Uint(256)),
            "int" => return Ok(AbiType::Int(256)),
            _ => {}
        }
        if let Some(bits) = s.strip_prefix("uint") {
            let bits: u16 = bits.parse().map_err(|_| ParseTypeError(s.to_string()))?;
            if bits == 0 || bits > 256 || !bits.is_multiple_of(8) {
                return Err(ParseTypeError(s.to_string()));
            }
            return Ok(AbiType::Uint(bits));
        }
        if let Some(bits) = s.strip_prefix("int") {
            let bits: u16 = bits.parse().map_err(|_| ParseTypeError(s.to_string()))?;
            if bits == 0 || bits > 256 || !bits.is_multiple_of(8) {
                return Err(ParseTypeError(s.to_string()));
            }
            return Ok(AbiType::Int(bits));
        }
        if let Some(n) = s.strip_prefix("bytes") {
            let n: u8 = n.parse().map_err(|_| ParseTypeError(s.to_string()))?;
            if n == 0 || n > 32 {
                return Err(ParseTypeError(s.to_string()));
            }
            return Ok(AbiType::FixedBytes(n));
        }
        Err(ParseTypeError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_roundtrip() {
        for s in [
            "uint256",
            "int8",
            "address",
            "bool",
            "string",
            "bytes",
            "bytes32",
            "uint256[]",
            "address[4]",
            "(uint256,string)",
            "(uint256,(bool,address))[]",
            "string[][3]",
        ] {
            let t: AbiType = s.parse().unwrap();
            assert_eq!(t.canonical(), s, "roundtrip {s}");
        }
    }

    #[test]
    fn uint_alias() {
        assert_eq!("uint".parse::<AbiType>().unwrap(), AbiType::Uint(256));
        assert_eq!("int".parse::<AbiType>().unwrap(), AbiType::Int(256));
    }

    #[test]
    fn dynamic_detection() {
        assert!("string".parse::<AbiType>().unwrap().is_dynamic());
        assert!("uint8[]".parse::<AbiType>().unwrap().is_dynamic());
        assert!("string[2]".parse::<AbiType>().unwrap().is_dynamic());
        assert!(!"uint8[2]".parse::<AbiType>().unwrap().is_dynamic());
        assert!(!"(uint256,bool)".parse::<AbiType>().unwrap().is_dynamic());
        assert!("(uint256,string)".parse::<AbiType>().unwrap().is_dynamic());
    }

    #[test]
    fn head_sizes() {
        assert_eq!(AbiType::uint().head_size(), 32);
        assert_eq!("uint8[3]".parse::<AbiType>().unwrap().head_size(), 96);
        assert_eq!("string".parse::<AbiType>().unwrap().head_size(), 32);
        assert_eq!("(uint256,bool)".parse::<AbiType>().unwrap().head_size(), 64);
    }

    #[test]
    fn invalid_types_rejected() {
        for s in [
            "uint7",
            "uint0",
            "uint264",
            "bytes0",
            "bytes33",
            "floof",
            "uint256[a]",
        ] {
            assert!(s.parse::<AbiType>().is_err(), "{s} should fail");
        }
    }
}
