//! A minimal self-contained JSON implementation.
//!
//! The paper stores each contract's ABI as a JSON file in IPFS and the
//! dashboard uploads ABI JSON files (Fig. 9). The allowed dependency set
//! has no JSON format crate, so this module provides the small subset we
//! need: a value model, a strict parser and a serializer.

use core::fmt;
use std::collections::BTreeMap;

/// A JSON value. Object keys are sorted (BTreeMap) so serialization is
/// deterministic — important because ABI files are content-addressed.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Numbers are stored as f64 (ABI files only use small integers).
    Number(f64),
    /// String
    String(String),
    /// Array
    Array(Vec<JsonValue>),
    /// Object with sorted keys
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Build an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, JsonValue)>) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object field accessor.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(n) => {
                use core::fmt::Write;
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::String(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use core::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse JSON text into a [`JsonValue`].
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a json value")),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text}")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the longest run of plain bytes with ONE
                    // UTF-8 validation. The delimiters are ASCII, so
                    // they can never split a multi-byte scalar.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_values() {
        for text in ["null", "true", "false", "42", "-7", "\"hi\"", "[]", "{}"] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_json()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn parses_abi_like_document() {
        let text = r#"[
            {"type": "function", "name": "payRent", "inputs": [],
             "outputs": [], "stateMutability": "payable"},
            {"type": "event", "name": "paidRent", "inputs": [
                {"name": "amount", "type": "uint256", "indexed": false}
            ]}
        ]"#;
        let v = parse(text).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("name").unwrap().as_str(), Some("payRent"));
        assert_eq!(
            items[1].get("inputs").unwrap().as_array().unwrap()[0]
                .get("type")
                .unwrap()
                .as_str(),
            Some("uint256")
        );
    }

    #[test]
    fn escapes_roundtrip() {
        let v = JsonValue::String("line\n\"quote\"\t\\".to_string());
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn unicode_escape() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn deterministic_object_order() {
        let a = parse(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(a.to_json(), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a":[1,[2,{"b":null}]],"c":{"d":[true,false]}}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }
}
