//! # lsc-abi
//!
//! Contract ABI implementation: the type system ([`AbiType`]), runtime
//! values ([`AbiValue`]), the head/tail encoder/decoder ([`codec`]),
//! function selectors and event topics ([`descriptor`]), and the standard
//! JSON ABI representation built on a self-contained JSON module
//! ([`json`]).
//!
//! In the paper the JSON ABI is the artifact that makes deployed bytecode
//! usable: it is uploaded with the contract (Fig. 9) and pinned to IPFS,
//! keyed by contract address, so any party holding a version-list address
//! can interact with that version.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod descriptor;
pub mod json;
pub mod types;
pub mod value;

pub use codec::{decode, decode_one, encode, encode_one, AbiError};
pub use descriptor::{Abi, AbiJsonError, Event, Function, Param, StateMutability};
pub use types::AbiType;
pub use value::AbiValue;

/// Compute the 4-byte selector of a human-readable signature like
/// `"payRent()"`.
pub fn selector(signature: &str) -> [u8; 4] {
    let h = lsc_primitives::keccak256(signature.as_bytes());
    [h[0], h[1], h[2], h[3]]
}

#[cfg(test)]
mod tests {
    #[test]
    fn free_selector_helper() {
        assert_eq!(
            lsc_primitives::hex::encode(super::selector("transfer(address,uint256)")),
            "a9059cbb"
        );
    }
}
