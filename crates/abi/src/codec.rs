//! ABI encoding and decoding per the Solidity contract ABI specification
//! (head/tail scheme with 32-byte words).

use crate::types::AbiType;
use crate::value::AbiValue;
use core::fmt;
use lsc_primitives::{Address, U256};

/// Error decoding ABI data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbiError {
    /// Data ended before the declared content.
    ShortData,
    /// An offset pointed outside the buffer.
    BadOffset,
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// A bool word was neither 0 nor 1.
    InvalidBool,
    /// A length prefix exceeded sane bounds.
    LengthOverflow,
    /// Value shape did not match the target type at encode time.
    TypeMismatch {
        /// Expected type rendering.
        expected: String,
        /// Offending value rendering.
        got: String,
    },
}

impl fmt::Display for AbiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShortData => write!(f, "abi data truncated"),
            Self::BadOffset => write!(f, "abi offset out of bounds"),
            Self::InvalidUtf8 => write!(f, "abi string is not valid utf-8"),
            Self::InvalidBool => write!(f, "abi bool word is not 0 or 1"),
            Self::LengthOverflow => write!(f, "abi length prefix too large"),
            Self::TypeMismatch { expected, got } => {
                write!(f, "abi type mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for AbiError {}

fn mismatch(expected: &AbiType, got: &AbiValue) -> AbiError {
    AbiError::TypeMismatch {
        expected: expected.canonical(),
        got: format!("{got}"),
    }
}

/// Encode `values` as if they were function arguments of types `types`.
pub fn encode(types: &[AbiType], values: &[AbiValue]) -> Result<Vec<u8>, AbiError> {
    encode_tuple_inner(types, values)
}

/// Encode a single value.
pub fn encode_one(ty: &AbiType, value: &AbiValue) -> Result<Vec<u8>, AbiError> {
    encode(std::slice::from_ref(ty), std::slice::from_ref(value))
}

fn encode_tuple_inner(types: &[AbiType], values: &[AbiValue]) -> Result<Vec<u8>, AbiError> {
    if types.len() != values.len() {
        return Err(AbiError::TypeMismatch {
            expected: format!("{} values", types.len()),
            got: format!("{} values", values.len()),
        });
    }
    let head_size: usize = types.iter().map(AbiType::head_size).sum();
    let mut head = Vec::with_capacity(head_size);
    let mut tail: Vec<u8> = Vec::new();
    for (ty, value) in types.iter().zip(values) {
        if ty.is_dynamic() {
            let offset = head_size + tail.len();
            head.extend_from_slice(&U256::from(offset).to_be_bytes());
            tail.extend_from_slice(&encode_body(ty, value)?);
        } else {
            head.extend_from_slice(&encode_body(ty, value)?);
        }
    }
    head.extend_from_slice(&tail);
    Ok(head)
}

/// Encode the body of one value (no outer offset word).
fn encode_body(ty: &AbiType, value: &AbiValue) -> Result<Vec<u8>, AbiError> {
    match (ty, value) {
        (AbiType::Uint(_) | AbiType::Int(_), _) => {
            let v = value.as_uint().ok_or_else(|| mismatch(ty, value))?;
            Ok(v.to_be_bytes().to_vec())
        }
        (AbiType::Address, AbiValue::Address(a)) => Ok(a.to_u256().to_be_bytes().to_vec()),
        (AbiType::Bool, AbiValue::Bool(b)) => Ok(U256::from(*b).to_be_bytes().to_vec()),
        (AbiType::String, AbiValue::String(s)) => Ok(encode_len_prefixed(s.as_bytes())),
        (AbiType::Bytes, AbiValue::Bytes(b)) => Ok(encode_len_prefixed(b)),
        (AbiType::FixedBytes(n), AbiValue::FixedBytes(b) | AbiValue::Bytes(b)) => {
            if b.len() != *n as usize {
                return Err(mismatch(ty, value));
            }
            let mut word = [0u8; 32];
            word[..b.len()].copy_from_slice(b);
            Ok(word.to_vec())
        }
        (AbiType::Array(inner), AbiValue::Array(items)) => {
            let mut out = U256::from(items.len()).to_be_bytes().to_vec();
            let inner_types: Vec<AbiType> = items.iter().map(|_| (**inner).clone()).collect();
            out.extend_from_slice(&encode_tuple_inner(&inner_types, items)?);
            Ok(out)
        }
        (AbiType::FixedArray(inner, n), AbiValue::Array(items)) => {
            if items.len() != *n {
                return Err(mismatch(ty, value));
            }
            let inner_types: Vec<AbiType> = items.iter().map(|_| (**inner).clone()).collect();
            encode_tuple_inner(&inner_types, items)
        }
        (AbiType::Tuple(inner_types), AbiValue::Tuple(items)) => {
            encode_tuple_inner(inner_types, items)
        }
        _ => Err(mismatch(ty, value)),
    }
}

fn encode_len_prefixed(data: &[u8]) -> Vec<u8> {
    let mut out = U256::from(data.len()).to_be_bytes().to_vec();
    out.extend_from_slice(data);
    // Right-pad to a word boundary.
    let pad = (32 - data.len() % 32) % 32;
    out.extend(std::iter::repeat_n(0u8, pad));
    out
}

/// Decode `data` into values of the given `types`.
pub fn decode(types: &[AbiType], data: &[u8]) -> Result<Vec<AbiValue>, AbiError> {
    let mut offset = 0usize;
    let mut out = Vec::with_capacity(types.len());
    for ty in types {
        let value = if ty.is_dynamic() {
            let ptr = read_usize(data, offset)?;
            decode_body(ty, data, ptr)?.0
        } else {
            decode_body(ty, data, offset)?.0
        };
        offset += ty.head_size();
        out.push(value);
    }
    Ok(out)
}

/// Decode a single value of type `ty`.
pub fn decode_one(ty: &AbiType, data: &[u8]) -> Result<AbiValue, AbiError> {
    Ok(decode(std::slice::from_ref(ty), data)?.remove(0))
}

fn read_word(data: &[u8], offset: usize) -> Result<U256, AbiError> {
    let end = offset.checked_add(32).ok_or(AbiError::BadOffset)?;
    if end > data.len() {
        return Err(AbiError::ShortData);
    }
    Ok(U256::from_be_slice(&data[offset..end]))
}

fn read_usize(data: &[u8], offset: usize) -> Result<usize, AbiError> {
    read_word(data, offset)?
        .to_usize()
        .filter(|v| *v <= data.len().max(1 << 24))
        .ok_or(AbiError::LengthOverflow)
}

/// Decode the body of one value starting at `offset`; returns the value and
/// the static size it consumed.
fn decode_body(ty: &AbiType, data: &[u8], offset: usize) -> Result<(AbiValue, usize), AbiError> {
    match ty {
        AbiType::Uint(_) => Ok((AbiValue::Uint(read_word(data, offset)?), 32)),
        AbiType::Int(_) => Ok((AbiValue::Int(read_word(data, offset)?), 32)),
        AbiType::Address => Ok((
            AbiValue::Address(Address::from_u256(read_word(data, offset)?)),
            32,
        )),
        AbiType::Bool => {
            let w = read_word(data, offset)?;
            if w == U256::ZERO {
                Ok((AbiValue::Bool(false), 32))
            } else if w == U256::ONE {
                Ok((AbiValue::Bool(true), 32))
            } else {
                Err(AbiError::InvalidBool)
            }
        }
        AbiType::FixedBytes(n) => {
            let end = offset.checked_add(32).ok_or(AbiError::BadOffset)?;
            if end > data.len() {
                return Err(AbiError::ShortData);
            }
            Ok((
                AbiValue::FixedBytes(data[offset..offset + *n as usize].to_vec()),
                32,
            ))
        }
        AbiType::String => {
            let bytes = decode_len_prefixed(data, offset)?;
            let s = String::from_utf8(bytes).map_err(|_| AbiError::InvalidUtf8)?;
            Ok((AbiValue::String(s), 32))
        }
        AbiType::Bytes => Ok((AbiValue::Bytes(decode_len_prefixed(data, offset)?), 32)),
        AbiType::Array(inner) => {
            let len = read_usize(data, offset)?;
            let base = offset + 32;
            let mut items = Vec::with_capacity(len);
            let mut head_cursor = base;
            for _ in 0..len {
                let value = if inner.is_dynamic() {
                    let rel = read_usize(data, head_cursor)?;
                    decode_body(
                        inner,
                        data,
                        base.checked_add(rel).ok_or(AbiError::BadOffset)?,
                    )?
                    .0
                } else {
                    decode_body(inner, data, head_cursor)?.0
                };
                head_cursor += inner.head_size();
                items.push(value);
            }
            Ok((AbiValue::Array(items), 32))
        }
        AbiType::FixedArray(inner, n) => {
            let mut items = Vec::with_capacity(*n);
            let mut head_cursor = offset;
            for _ in 0..*n {
                let value = if inner.is_dynamic() {
                    let rel = read_usize(data, head_cursor)?;
                    decode_body(
                        inner,
                        data,
                        offset.checked_add(rel).ok_or(AbiError::BadOffset)?,
                    )?
                    .0
                } else {
                    decode_body(inner, data, head_cursor)?.0
                };
                head_cursor += inner.head_size();
                items.push(value);
            }
            Ok((AbiValue::Array(items), ty.head_size()))
        }
        AbiType::Tuple(inner_types) => {
            let mut items = Vec::with_capacity(inner_types.len());
            let mut head_cursor = offset;
            for inner in inner_types {
                let value = if inner.is_dynamic() {
                    let rel = read_usize(data, head_cursor)?;
                    decode_body(
                        inner,
                        data,
                        offset.checked_add(rel).ok_or(AbiError::BadOffset)?,
                    )?
                    .0
                } else {
                    decode_body(inner, data, head_cursor)?.0
                };
                head_cursor += inner.head_size();
                items.push(value);
            }
            Ok((AbiValue::Tuple(items), ty.head_size()))
        }
    }
}

fn decode_len_prefixed(data: &[u8], offset: usize) -> Result<Vec<u8>, AbiError> {
    let len = read_usize(data, offset)?;
    let start = offset.checked_add(32).ok_or(AbiError::BadOffset)?;
    let end = start.checked_add(len).ok_or(AbiError::BadOffset)?;
    if end > data.len() {
        return Err(AbiError::ShortData);
    }
    Ok(data[start..end].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_primitives::hex;

    fn t(s: &str) -> AbiType {
        s.parse().unwrap()
    }

    #[test]
    fn encode_static_args() {
        // transfer(address,uint256) example layout: two words.
        let a = Address::from_label("to");
        let enc = encode(
            &[AbiType::Address, AbiType::uint()],
            &[AbiValue::Address(a), AbiValue::uint(1000)],
        )
        .unwrap();
        assert_eq!(enc.len(), 64);
        assert_eq!(U256::from_be_slice(&enc[0..32]), a.to_u256());
        assert_eq!(U256::from_be_slice(&enc[32..64]), U256::from_u64(1000));
    }

    #[test]
    fn encode_string_matches_solidity_layout() {
        // encode(("AB")) = offset 0x20 | len 2 | "AB" padded.
        let enc = encode(&[t("string")], &[AbiValue::string("AB")]).unwrap();
        assert_eq!(enc.len(), 96);
        assert_eq!(U256::from_be_slice(&enc[0..32]), U256::from_u64(0x20));
        assert_eq!(U256::from_be_slice(&enc[32..64]), U256::from_u64(2));
        assert_eq!(&enc[64..66], b"AB");
        assert!(enc[66..].iter().all(|b| *b == 0));
    }

    #[test]
    fn mixed_static_dynamic_heads() {
        // (uint256, string, uint256): heads at 0,32,64; string tail at 96.
        let enc = encode(
            &[t("uint256"), t("string"), t("uint256")],
            &[
                AbiValue::uint(1),
                AbiValue::string("hello"),
                AbiValue::uint(2),
            ],
        )
        .unwrap();
        assert_eq!(U256::from_be_slice(&enc[32..64]), U256::from_u64(96));
        let dec = decode(&[t("uint256"), t("string"), t("uint256")], &enc).unwrap();
        assert_eq!(dec[1].as_str(), Some("hello"));
        assert_eq!(dec[2].as_u64(), Some(2));
    }

    #[test]
    fn roundtrip_complex() {
        let types = [t("uint256[]"), t("(string,bool)"), t("bytes")];
        let values = [
            AbiValue::Array(vec![
                AbiValue::uint(1),
                AbiValue::uint(2),
                AbiValue::uint(3),
            ]),
            AbiValue::Tuple(vec![AbiValue::string("rental"), AbiValue::Bool(true)]),
            AbiValue::Bytes(vec![0xde, 0xad, 0xbe, 0xef]),
        ];
        let enc = encode(&types, &values).unwrap();
        let dec = decode(&types, &enc).unwrap();
        assert_eq!(dec.as_slice(), values.as_slice());
    }

    #[test]
    fn roundtrip_nested_dynamic_array() {
        let types = [t("string[]")];
        let values = [AbiValue::Array(vec![
            AbiValue::string("one"),
            AbiValue::string("twotwo"),
            AbiValue::string(""),
        ])];
        let enc = encode(&types, &values).unwrap();
        let dec = decode(&types, &enc).unwrap();
        assert_eq!(dec.as_slice(), values.as_slice());
    }

    #[test]
    fn fixed_array_roundtrip() {
        let types = [t("uint256[3]")];
        let values = [AbiValue::Array(vec![
            AbiValue::uint(7),
            AbiValue::uint(8),
            AbiValue::uint(9),
        ])];
        let enc = encode(&types, &values).unwrap();
        assert_eq!(enc.len(), 96, "fixed arrays are inline");
        let dec = decode(&types, &enc).unwrap();
        assert_eq!(dec.as_slice(), values.as_slice());
    }

    #[test]
    fn decode_rejects_truncated() {
        let enc = encode(&[t("string")], &[AbiValue::string("hello world")]).unwrap();
        // Cut into the string content itself (not just the padding).
        assert!(decode(&[t("string")], &enc[..enc.len() - 32]).is_err());
        assert_eq!(decode(&[t("uint256")], &[]), Err(AbiError::ShortData));
    }

    #[test]
    fn decode_rejects_bad_bool() {
        let word = U256::from_u64(2).to_be_bytes();
        assert_eq!(decode(&[t("bool")], &word), Err(AbiError::InvalidBool));
    }

    #[test]
    fn encode_rejects_shape_mismatch() {
        assert!(encode(&[t("uint256")], &[AbiValue::string("x")]).is_err());
        assert!(encode(
            &[t("uint256[2]")],
            &[AbiValue::Array(vec![AbiValue::uint(1)])]
        )
        .is_err());
        assert!(encode(&[t("uint256"), t("bool")], &[AbiValue::uint(1)]).is_err());
    }

    #[test]
    fn known_solidity_vector() {
        // web3.eth.abi.encodeParameters(['uint256','string'], ['2345675643', 'Hello!%'])
        let enc = encode(
            &[t("uint256"), t("string")],
            &[
                AbiValue::Uint(U256::from_u64(2345675643)),
                AbiValue::string("Hello!%"),
            ],
        )
        .unwrap();
        let expected = "000000000000000000000000000000000000000000000000000000008bd02b7b\
                        0000000000000000000000000000000000000000000000000000000000000040\
                        0000000000000000000000000000000000000000000000000000000000000007\
                        48656c6c6f212500000000000000000000000000000000000000000000000000";
        assert_eq!(hex::encode(&enc), expected.replace(char::is_whitespace, ""));
    }

    #[test]
    fn fixed_bytes_padding() {
        let enc = encode(&[t("bytes4")], &[AbiValue::FixedBytes(vec![1, 2, 3, 4])]).unwrap();
        assert_eq!(enc.len(), 32);
        assert_eq!(&enc[..4], &[1, 2, 3, 4]);
        assert!(enc[4..].iter().all(|b| *b == 0));
        let dec = decode_one(&t("bytes4"), &enc).unwrap();
        assert_eq!(dec.as_bytes(), Some(&[1u8, 2, 3, 4][..]));
    }
}
