//! Runtime ABI values and conversions.

use crate::types::AbiType;
use core::fmt;
use lsc_primitives::{Address, U256};

/// A decoded/encodable ABI value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbiValue {
    /// Unsigned integer (any width up to 256 bits).
    Uint(U256),
    /// Signed integer in two's-complement.
    Int(U256),
    /// 20-byte address.
    Address(Address),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    String(String),
    /// Dynamic byte array.
    Bytes(Vec<u8>),
    /// Fixed-size byte array (right-padded in encoding).
    FixedBytes(Vec<u8>),
    /// Homogeneous array.
    Array(Vec<AbiValue>),
    /// Heterogeneous tuple.
    Tuple(Vec<AbiValue>),
}

impl AbiValue {
    /// Build a `Uint` from a `u64`.
    pub fn uint(v: u64) -> Self {
        AbiValue::Uint(U256::from_u64(v))
    }

    /// Build a `String`.
    pub fn string(s: impl Into<String>) -> Self {
        AbiValue::String(s.into())
    }

    /// The [`AbiType`] this value encodes as (widths default to 256).
    pub fn type_of(&self) -> AbiType {
        match self {
            AbiValue::Uint(_) => AbiType::Uint(256),
            AbiValue::Int(_) => AbiType::Int(256),
            AbiValue::Address(_) => AbiType::Address,
            AbiValue::Bool(_) => AbiType::Bool,
            AbiValue::String(_) => AbiType::String,
            AbiValue::Bytes(_) => AbiType::Bytes,
            AbiValue::FixedBytes(b) => AbiType::FixedBytes(b.len() as u8),
            AbiValue::Array(items) => AbiType::Array(Box::new(
                items.first().map_or(AbiType::Uint(256), AbiValue::type_of),
            )),
            AbiValue::Tuple(items) => AbiType::Tuple(items.iter().map(AbiValue::type_of).collect()),
        }
    }

    /// Extract as unsigned integer.
    pub fn as_uint(&self) -> Option<U256> {
        match self {
            AbiValue::Uint(v) | AbiValue::Int(v) => Some(*v),
            AbiValue::Bool(b) => Some(U256::from(*b)),
            _ => None,
        }
    }

    /// Extract as `u64` if it fits.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_uint().and_then(|v| v.to_u64())
    }

    /// Extract as address.
    pub fn as_address(&self) -> Option<Address> {
        match self {
            AbiValue::Address(a) => Some(*a),
            _ => None,
        }
    }

    /// Extract as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AbiValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract as string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AbiValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Extract as byte slice (bytes or fixed bytes).
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            AbiValue::Bytes(b) | AbiValue::FixedBytes(b) => Some(b),
            _ => None,
        }
    }

    /// Extract as array/tuple items.
    pub fn as_slice(&self) -> Option<&[AbiValue]> {
        match self {
            AbiValue::Array(items) | AbiValue::Tuple(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for AbiValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbiValue::Uint(v) | AbiValue::Int(v) => write!(f, "{v}"),
            AbiValue::Address(a) => write!(f, "{a}"),
            AbiValue::Bool(b) => write!(f, "{b}"),
            AbiValue::String(s) => write!(f, "{s:?}"),
            AbiValue::Bytes(b) | AbiValue::FixedBytes(b) => {
                write!(f, "0x{}", lsc_primitives::hex::encode(b))
            }
            AbiValue::Array(items) | AbiValue::Tuple(items) => {
                let parts: Vec<String> =
                    items.iter().map(std::string::ToString::to_string).collect();
                let (open, close) = if matches!(self, AbiValue::Array(_)) {
                    ('[', ']')
                } else {
                    ('(', ')')
                };
                write!(f, "{open}{}{close}", parts.join(", "))
            }
        }
    }
}

impl From<U256> for AbiValue {
    fn from(v: U256) -> Self {
        AbiValue::Uint(v)
    }
}

impl From<u64> for AbiValue {
    fn from(v: u64) -> Self {
        AbiValue::uint(v)
    }
}

impl From<Address> for AbiValue {
    fn from(a: Address) -> Self {
        AbiValue::Address(a)
    }
}

impl From<bool> for AbiValue {
    fn from(b: bool) -> Self {
        AbiValue::Bool(b)
    }
}

impl From<&str> for AbiValue {
    fn from(s: &str) -> Self {
        AbiValue::String(s.to_string())
    }
}

impl From<String> for AbiValue {
    fn from(s: String) -> Self {
        AbiValue::String(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(AbiValue::uint(7).as_u64(), Some(7));
        assert_eq!(AbiValue::Bool(true).as_uint(), Some(U256::ONE));
        assert_eq!(AbiValue::string("hi").as_str(), Some("hi"));
        let a = Address::from_label("x");
        assert_eq!(AbiValue::Address(a).as_address(), Some(a));
        assert_eq!(AbiValue::uint(1).as_address(), None);
        assert_eq!(AbiValue::Bytes(vec![1, 2]).as_bytes(), Some(&[1u8, 2][..]));
    }

    #[test]
    fn display_forms() {
        assert_eq!(AbiValue::uint(5).to_string(), "5");
        assert_eq!(AbiValue::Bool(false).to_string(), "false");
        assert_eq!(AbiValue::Bytes(vec![0xab]).to_string(), "0xab");
        assert_eq!(
            AbiValue::Tuple(vec![AbiValue::uint(1), AbiValue::Bool(true)]).to_string(),
            "(1, true)"
        );
        assert_eq!(
            AbiValue::Array(vec![AbiValue::uint(1), AbiValue::uint(2)]).to_string(),
            "[1, 2]"
        );
    }

    #[test]
    fn type_inference() {
        assert_eq!(AbiValue::uint(1).type_of(), AbiType::Uint(256));
        assert_eq!(
            AbiValue::Array(vec![AbiValue::Bool(true)]).type_of(),
            AbiType::Array(Box::new(AbiType::Bool))
        );
    }
}
