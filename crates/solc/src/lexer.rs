//! Tokenizer for the Solidity subset.

use core::fmt;

/// Source position (byte offset + 1-based line) for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Byte offset in the source.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parser,
    /// except the ones below that need special lexing).
    Ident(String),
    /// Decimal or hex number literal.
    Number(String),
    /// String literal (content, unescaped).
    Str(String),
    /// Punctuation / operators.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Number(s) => write!(f, "number `{s}`"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Lexer error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Problem description.
    pub message: String,
    /// Where it happened.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.pos.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "**", "*=", "/=", "%=", "++", "--", "<<",
    ">>", "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":", "=", "+", "-", "*", "/", "%", "!",
    "<", ">", "&", "|", "^", "~",
];

/// Tokenize `source` into a vector ending with [`Tok::Eof`].
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    'outer: while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { offset: i, line };
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < bytes.len() {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        continue 'outer;
                    }
                    i += 1;
                }
                return Err(LexError {
                    message: "unterminated block comment".into(),
                    pos,
                });
            }
            b'"' | b'\'' => {
                let quote = c;
                i += 1;
                let mut out = String::new();
                loop {
                    match bytes.get(i) {
                        None | Some(b'\n') => {
                            return Err(LexError {
                                message: "unterminated string literal".into(),
                                pos,
                            })
                        }
                        Some(&b) if b == quote => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let escaped = bytes.get(i + 1).copied().ok_or(LexError {
                                message: "dangling escape".into(),
                                pos,
                            })?;
                            out.push(match escaped {
                                b'n' => '\n',
                                b't' => '\t',
                                b'r' => '\r',
                                b'\\' => '\\',
                                b'"' => '"',
                                b'\'' => '\'',
                                b'0' => '\0',
                                other => other as char,
                            });
                            i += 2;
                        }
                        Some(&b) => {
                            // Pass through raw byte (sources are UTF-8; string
                            // literals in contracts are effectively ASCII).
                            out.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    tok: Tok::Str(out),
                    pos,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && bytes.get(i + 1) == Some(&b'x') {
                    i += 2;
                    while i < bytes.len() && (bytes[i].is_ascii_hexdigit() || bytes[i] == b'_') {
                        i += 1;
                    }
                } else {
                    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                        i += 1;
                    }
                }
                let text = std::str::from_utf8(&bytes[start..i]).expect("ascii");
                tokens.push(Token {
                    tok: Tok::Number(text.to_string()),
                    pos,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'$' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                let text = std::str::from_utf8(&bytes[start..i]).expect("ascii");
                tokens.push(Token {
                    tok: Tok::Ident(text.to_string()),
                    pos,
                });
            }
            _ => {
                let rest = &source[i..];
                let matched = PUNCTS.iter().find(|p| rest.starts_with(**p));
                match matched {
                    Some(p) => {
                        tokens.push(Token {
                            tok: Tok::Punct(p),
                            pos,
                        });
                        i += p.len();
                    }
                    None => {
                        return Err(LexError {
                            message: format!("unexpected character {:?}", rest.chars().next()),
                            pos,
                        })
                    }
                }
            }
        }
    }
    tokens.push(Token {
        tok: Tok::Eof,
        pos: Pos {
            offset: bytes.len(),
            line,
        },
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("uint x = 42;"),
            vec![
                Tok::Ident("uint".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Number("42".into()),
                Tok::Punct(";"),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line\n /* block\n comment */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn maximal_munch_operators() {
        assert_eq!(
            toks("a=>b == c = d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("=>"),
                Tok::Ident("b".into()),
                Tok::Punct("=="),
                Tok::Ident("c".into()),
                Tok::Punct("="),
                Tok::Ident("d".into()),
                Tok::Eof,
            ]
        );
        assert_eq!(toks("x += 1")[1], Tok::Punct("+="));
        assert_eq!(toks("i++")[1], Tok::Punct("++"));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#""he\"llo\n""#)[0], Tok::Str("he\"llo\n".into()));
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn hex_numbers() {
        assert_eq!(toks("0xff")[0], Tok::Number("0xff".into()));
    }

    #[test]
    fn line_numbers_tracked() {
        let tokens = lex("a\nb\n  c").unwrap();
        assert_eq!(tokens[0].pos.line, 1);
        assert_eq!(tokens[1].pos.line, 2);
        assert_eq!(tokens[2].pos.line, 3);
    }

    #[test]
    fn pragma_line() {
        let t = toks("pragma solidity ^0.5.0;");
        // '^' then '0.5.0' lexes as number 0, '.', 5 ... the parser treats
        // pragma content loosely (skips to ';').
        assert_eq!(t[0], Tok::Ident("pragma".into()));
        assert!(t.contains(&Tok::Punct(";")));
    }
}
