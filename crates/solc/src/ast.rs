//! Abstract syntax tree for the Solidity subset.

use lsc_primitives::U256;

/// A parsed source file: pragmas plus contract definitions.
#[derive(Debug, Clone, Default)]
pub struct SourceUnit {
    /// Raw pragma strings (recorded, not interpreted).
    pub pragmas: Vec<String>,
    /// Contracts in declaration order.
    pub contracts: Vec<ContractDef>,
}

/// A `contract Name is Base { … }` definition.
#[derive(Debug, Clone)]
pub struct ContractDef {
    /// Contract name.
    pub name: String,
    /// Base contract names (single inheritance is supported; the list is
    /// kept for error reporting).
    pub bases: Vec<String>,
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Enum definitions.
    pub enums: Vec<EnumDef>,
    /// State variables in declaration order (drives storage layout).
    pub state_vars: Vec<StateVar>,
    /// Events.
    pub events: Vec<EventDef>,
    /// Functions, including the constructor.
    pub functions: Vec<FunctionDef>,
    /// Modifier definitions.
    pub modifiers: Vec<ModifierDef>,
}

/// A struct definition.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields in order.
    pub fields: Vec<(String, TypeExpr)>,
}

/// An enum definition.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Variant names in order (values 0..n).
    pub variants: Vec<String>,
}

/// A state variable declaration.
#[derive(Debug, Clone)]
pub struct StateVar {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// `public` variables get synthesized getters.
    pub public: bool,
    /// Optional initializer (run in the constructor prologue).
    pub init: Option<Expr>,
}

/// An event definition.
#[derive(Debug, Clone)]
pub struct EventDef {
    /// Event name.
    pub name: String,
    /// Parameters: (name, type, indexed).
    pub params: Vec<(String, TypeExpr, bool)>,
}

/// Function visibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Visibility {
    /// Callable externally and internally (the default in this subset).
    #[default]
    Public,
    /// Callable externally only.
    External,
    /// Callable from this contract and derived ones.
    Internal,
    /// Callable from this contract only.
    Private,
}

impl Visibility {
    /// Does the function appear in the ABI / dispatcher?
    pub fn is_externally_callable(self) -> bool {
        matches!(self, Visibility::Public | Visibility::External)
    }
}

/// Mutability markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutability {
    /// Default: may read and write state, rejects ether.
    #[default]
    NonPayable,
    /// Accepts ether.
    Payable,
    /// Promises not to write state.
    View,
    /// Promises not to touch state.
    Pure,
}

/// A function (or constructor) definition.
#[derive(Debug, Clone)]
pub struct FunctionDef {
    /// Name; empty string for the constructor.
    pub name: String,
    /// Parameters.
    pub params: Vec<(String, TypeExpr)>,
    /// Named or anonymous returns: (name-or-empty, type).
    pub returns: Vec<(String, TypeExpr)>,
    /// Visibility.
    pub visibility: Visibility,
    /// Mutability.
    pub mutability: Mutability,
    /// Body statements (None for unimplemented/abstract — rejected later).
    pub body: Vec<Stmt>,
    /// True for `constructor(...)`.
    pub is_constructor: bool,
    /// Modifier invocations, applied outermost-first: (name, args).
    pub modifiers: Vec<(String, Vec<Expr>)>,
}

/// A `modifier onlyX(args) { …; _; }` definition. The `_` placeholder
/// marks where the modified function's body is spliced in.
#[derive(Debug, Clone)]
pub struct ModifierDef {
    /// Modifier name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(String, TypeExpr)>,
    /// Body (containing [`Stmt::Placeholder`]).
    pub body: Vec<Stmt>,
}

/// A syntactic type expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// A named elementary or user-defined type (`uint256`, `State`, …).
    /// `address payable` is folded to `address`.
    Named(String),
    /// `T[]`
    Array(Box<TypeExpr>),
    /// `T[N]`
    FixedArray(Box<TypeExpr>, u64),
    /// `mapping(K => V)`
    Mapping(Box<TypeExpr>, Box<TypeExpr>),
}

/// Statements.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// Local variable declaration: `uint x = e;` (type, names, init).
    VarDecl {
        /// Declared type.
        ty: TypeExpr,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Expression statement (assignment, call, increment, …).
    Expr(Expr),
    /// `if (cond) then else`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (empty if absent).
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; post) body`
    For {
        /// Initializer (VarDecl or Expr).
        init: Option<Box<Stmt>>,
        /// Condition (true if absent).
        cond: Option<Expr>,
        /// Post-iteration expression.
        post: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return;` / `return e;`
    Return(Option<Expr>),
    /// `require(cond)` / `require(cond, "msg")`
    Require {
        /// Condition that must hold.
        cond: Expr,
        /// Revert reason.
        message: Option<String>,
    },
    /// `revert("msg")` / `revert()`
    Revert(Option<String>),
    /// `emit Event(args);`
    Emit {
        /// Event name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `{ … }`
    Block(Vec<Stmt>),
    /// The `_;` placeholder inside a modifier body.
    Placeholder,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `**`
    Pow,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// Expressions.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Integer literal (already scaled by any unit suffix).
    Number(U256),
    /// String literal.
    Str(String),
    /// `true` / `false`
    Bool(bool),
    /// Identifier.
    Ident(String),
    /// `a.b`
    Member(Box<Expr>, String),
    /// `a[i]`
    Index(Box<Expr>, Box<Expr>),
    /// `f(args)` — function call, struct construction, cast or builtin.
    Call(Box<Expr>, Vec<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `!e`
    Not(Box<Expr>),
    /// `-e`
    Neg(Box<Expr>),
    /// `~e`
    BitNot(Box<Expr>),
    /// `cond ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `lhs = rhs` (also models `+=` etc. after desugaring).
    Assign(Box<Expr>, Box<Expr>),
    /// `e++` / `e--` / `++e` / `--e` (desugared flag: is_increment).
    IncDec {
        /// Target lvalue.
        target: Box<Expr>,
        /// `true` for `++`.
        increment: bool,
    },
}

impl Expr {
    /// Convenience: identifier expression.
    pub fn ident(name: &str) -> Expr {
        Expr::Ident(name.to_string())
    }
}
