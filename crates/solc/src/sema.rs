//! Semantic analysis: inheritance flattening, type resolution, storage
//! layout assignment, and ABI construction.
//!
//! The paper's versioning scheme leans on inheritance (`RentalAgreement is
//! BaseRental is Node`): base-contract state variables must occupy the
//! same storage slots in every derived version so the data-separation
//! layer can migrate values between versions. Flattening bases first (in
//! C3-trivial single-inheritance order) guarantees that.

use crate::ast::*;
use core::fmt;
use lsc_abi::{Abi, AbiType, Event as AbiEvent, Function as AbiFunction, Param, StateMutability};
use std::collections::HashMap;

/// Resolved semantic type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// Unsigned integer of the given bit width.
    Uint(u16),
    /// Signed integer.
    Int(u16),
    /// Boolean.
    Bool,
    /// 20-byte address.
    Address,
    /// Dynamic UTF-8 string.
    String,
    /// Enum (index into [`ContractInfo::enums`]).
    Enum(usize),
    /// Struct (index into [`ContractInfo::structs`]).
    Struct(usize),
    /// Dynamic array.
    Array(Box<Ty>),
    /// Fixed-size array.
    FixedArray(Box<Ty>, u64),
    /// Mapping (storage only).
    Mapping(Box<Ty>, Box<Ty>),
}

impl Ty {
    /// Types representable as a single EVM word on the stack.
    pub fn is_value_type(&self) -> bool {
        matches!(
            self,
            Ty::Uint(_) | Ty::Int(_) | Ty::Bool | Ty::Address | Ty::Enum(_)
        )
    }

    /// Can this be compared with `==`?
    pub fn is_comparable(&self) -> bool {
        self.is_value_type() || matches!(self, Ty::String)
    }

    /// Signed integer?
    pub fn is_signed(&self) -> bool {
        matches!(self, Ty::Int(_))
    }
}

/// A resolved struct.
#[derive(Debug, Clone)]
pub struct StructInfo {
    /// Name.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<(String, Ty)>,
}

impl StructInfo {
    /// Number of storage slots / memory words occupied (strings take one
    /// word — a pointer in memory, a length-root in storage).
    pub fn slot_count(&self, contract: &ContractInfo) -> u64 {
        self.fields
            .iter()
            .map(|(_, ty)| contract.slots_for(ty))
            .sum()
    }

    /// Slot/word offset of a field within the struct.
    pub fn field_offset(&self, contract: &ContractInfo, field: &str) -> Option<(u64, Ty)> {
        let mut offset = 0;
        for (name, ty) in &self.fields {
            if name == field {
                return Some((offset, ty.clone()));
            }
            offset += contract.slots_for(ty);
        }
        None
    }
}

/// A resolved enum.
#[derive(Debug, Clone)]
pub struct EnumInfo {
    /// Name.
    pub name: String,
    /// Variants (value = index).
    pub variants: Vec<String>,
}

/// A state variable with its assigned storage slot.
#[derive(Debug, Clone)]
pub struct StateVarInfo {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Ty,
    /// First storage slot.
    pub slot: u64,
    /// Whether a public getter is synthesized.
    pub public: bool,
    /// Initializer expression (run in the constructor prologue).
    pub init: Option<Expr>,
}

/// A fully flattened, resolved contract ready for code generation.
#[derive(Debug, Clone)]
pub struct ContractInfo {
    /// Contract name.
    pub name: String,
    /// Flattened inheritance chain, base-most first (incl. self).
    pub lineage: Vec<String>,
    /// Structs (bases first).
    pub structs: Vec<StructInfo>,
    /// Enums (bases first).
    pub enums: Vec<EnumInfo>,
    /// State variables with slots (bases first — slot-stable across
    /// versions, which the paper's data migration relies on).
    pub state_vars: Vec<StateVarInfo>,
    /// Events (deduplicated by name; derived overrides base).
    pub events: Vec<EventDef>,
    /// Functions (derived overrides base by name). Constructor is the
    /// derived-most one.
    pub functions: Vec<FunctionDef>,
    /// Total slots used by static layout.
    pub total_slots: u64,
}

/// Semantic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemaError(pub String);

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "semantic error: {}", self.0)
    }
}

impl std::error::Error for SemaError {}

fn err<T>(message: impl Into<String>) -> Result<T, SemaError> {
    Err(SemaError(message.into()))
}

impl ContractInfo {
    /// Storage slots occupied by a type (no packing: every value type gets
    /// a full slot, documented deviation from solc).
    pub fn slots_for(&self, ty: &Ty) -> u64 {
        match ty {
            Ty::Struct(i) => self.structs[*i].slot_count(self),
            Ty::FixedArray(inner, n) => self.slots_for(inner) * n,
            // Dynamic arrays, mappings and strings root in a single slot.
            _ => 1,
        }
    }

    /// Find a state variable.
    pub fn state_var(&self, name: &str) -> Option<&StateVarInfo> {
        self.state_vars.iter().find(|v| v.name == name)
    }

    /// Find a struct by name.
    pub fn struct_by_name(&self, name: &str) -> Option<(usize, &StructInfo)> {
        self.structs
            .iter()
            .enumerate()
            .find(|(_, s)| s.name == name)
    }

    /// Find an enum by name.
    pub fn enum_by_name(&self, name: &str) -> Option<(usize, &EnumInfo)> {
        self.enums.iter().enumerate().find(|(_, e)| e.name == name)
    }

    /// Find a function by name (not the constructor).
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions
            .iter()
            .find(|f| !f.is_constructor && f.name == name)
    }

    /// The constructor, if declared.
    pub fn constructor(&self) -> Option<&FunctionDef> {
        self.functions.iter().find(|f| f.is_constructor)
    }

    /// Find an event by name.
    pub fn event(&self, name: &str) -> Option<&EventDef> {
        self.events.iter().find(|e| e.name == name)
    }

    /// Resolve a syntactic type against this contract's user types.
    pub fn resolve_type(&self, ty: &TypeExpr) -> Result<Ty, SemaError> {
        resolve_type_with(ty, &self.structs, &self.enums)
    }

    /// Map a semantic type to its ABI type.
    pub fn abi_type(&self, ty: &Ty) -> Result<AbiType, SemaError> {
        Ok(match ty {
            Ty::Uint(bits) => AbiType::Uint(*bits),
            Ty::Int(bits) => AbiType::Int(*bits),
            Ty::Bool => AbiType::Bool,
            Ty::Address => AbiType::Address,
            Ty::String => AbiType::String,
            Ty::Enum(_) => AbiType::Uint(8),
            Ty::Struct(i) => {
                let fields = &self.structs[*i].fields;
                AbiType::Tuple(
                    fields
                        .iter()
                        .map(|(_, t)| self.abi_type(t))
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            Ty::Array(inner) => AbiType::Array(Box::new(self.abi_type(inner)?)),
            Ty::FixedArray(inner, n) => {
                AbiType::FixedArray(Box::new(self.abi_type(inner)?), *n as usize)
            }
            Ty::Mapping(_, _) => return err("mappings have no ABI representation"),
        })
    }

    /// Build the contract's JSON-ABI model, including synthesized getters
    /// for public state variables.
    pub fn build_abi(&self) -> Result<Abi, SemaError> {
        let mut abi = Abi::default();
        if let Some(ctor) = self.constructor() {
            abi.constructor_inputs = ctor
                .params
                .iter()
                .map(|(name, ty)| {
                    Ok(Param::new(
                        name.clone(),
                        self.abi_type(&self.resolve_type(ty)?)?,
                    ))
                })
                .collect::<Result<Vec<_>, SemaError>>()?;
            abi.constructor_payable = ctor.mutability == Mutability::Payable;
        }
        for var in &self.state_vars {
            if !var.public {
                continue;
            }
            abi.functions.push(self.getter_abi(var)?);
        }
        for f in &self.functions {
            if f.is_constructor || !f.visibility.is_externally_callable() {
                continue;
            }
            abi.functions.push(AbiFunction {
                name: f.name.clone(),
                inputs: f
                    .params
                    .iter()
                    .map(|(name, ty)| {
                        Ok(Param::new(
                            name.clone(),
                            self.abi_type(&self.resolve_type(ty)?)?,
                        ))
                    })
                    .collect::<Result<Vec<_>, SemaError>>()?,
                outputs: f
                    .returns
                    .iter()
                    .map(|(name, ty)| {
                        Ok(Param::new(
                            name.clone(),
                            self.abi_type(&self.resolve_type(ty)?)?,
                        ))
                    })
                    .collect::<Result<Vec<_>, SemaError>>()?,
                mutability: match f.mutability {
                    Mutability::Payable => StateMutability::Payable,
                    Mutability::View => StateMutability::View,
                    Mutability::Pure => StateMutability::Pure,
                    Mutability::NonPayable => StateMutability::NonPayable,
                },
            });
        }
        for e in &self.events {
            abi.events.push(AbiEvent {
                name: e.name.clone(),
                inputs: e
                    .params
                    .iter()
                    .map(|(name, ty, indexed)| {
                        Ok(Param {
                            name: name.clone(),
                            ty: self.abi_type(&self.resolve_type(ty)?)?,
                            indexed: *indexed,
                        })
                    })
                    .collect::<Result<Vec<_>, SemaError>>()?,
                anonymous: false,
            });
        }
        Ok(abi)
    }

    /// The ABI entry of a public state variable's synthesized getter.
    pub fn getter_abi(&self, var: &StateVarInfo) -> Result<AbiFunction, SemaError> {
        let mut inputs = Vec::new();
        let mut ty = var.ty.clone();
        // Mappings take one key per nesting level; arrays take an index.
        loop {
            match ty {
                Ty::Mapping(key, value) => {
                    inputs.push(Param::new("", self.abi_type(&key)?));
                    ty = *value;
                }
                Ty::Array(inner) | Ty::FixedArray(inner, _) => {
                    inputs.push(Param::new("", AbiType::Uint(256)));
                    ty = *inner;
                }
                _ => break,
            }
        }
        let outputs = match &ty {
            Ty::Struct(i) => self.structs[*i]
                .fields
                .iter()
                .map(|(name, t)| Ok(Param::new(name.clone(), self.abi_type(t)?)))
                .collect::<Result<Vec<_>, SemaError>>()?,
            other => vec![Param::new("", self.abi_type(other)?)],
        };
        Ok(AbiFunction {
            name: var.name.clone(),
            inputs,
            outputs,
            mutability: StateMutability::View,
        })
    }
}

fn resolve_type_with(
    ty: &TypeExpr,
    structs: &[StructInfo],
    enums: &[EnumInfo],
) -> Result<Ty, SemaError> {
    Ok(match ty {
        TypeExpr::Named(name) => match name.as_str() {
            "bool" => Ty::Bool,
            "address" => Ty::Address,
            "string" => Ty::String,
            "uint" => Ty::Uint(256),
            "int" => Ty::Int(256),
            other => {
                if let Some(bits) = other.strip_prefix("uint") {
                    let bits: u16 = bits
                        .parse()
                        .map_err(|_| SemaError(format!("unknown type `{other}`")))?;
                    if bits == 0 || bits > 256 || !bits.is_multiple_of(8) {
                        return err(format!("invalid integer width `{other}`"));
                    }
                    return Ok(Ty::Uint(bits));
                }
                if let Some(bits) = other.strip_prefix("int") {
                    if let Ok(bits) = bits.parse::<u16>() {
                        if bits == 0 || bits > 256 || bits % 8 != 0 {
                            return err(format!("invalid integer width `{other}`"));
                        }
                        return Ok(Ty::Int(bits));
                    }
                }
                if let Some((i, _)) = structs.iter().enumerate().find(|(_, s)| s.name == *other) {
                    return Ok(Ty::Struct(i));
                }
                if let Some((i, _)) = enums.iter().enumerate().find(|(_, e)| e.name == *other) {
                    return Ok(Ty::Enum(i));
                }
                return err(format!("unknown type `{other}`"));
            }
        },
        TypeExpr::Array(inner) => Ty::Array(Box::new(resolve_type_with(inner, structs, enums)?)),
        TypeExpr::FixedArray(inner, n) => {
            Ty::FixedArray(Box::new(resolve_type_with(inner, structs, enums)?), *n)
        }
        TypeExpr::Mapping(key, value) => {
            let key = resolve_type_with(key, structs, enums)?;
            if !key.is_value_type() && key != Ty::String {
                return err("mapping keys must be value types or string");
            }
            Ty::Mapping(
                Box::new(key),
                Box::new(resolve_type_with(value, structs, enums)?),
            )
        }
    })
}

/// Replace every `_;` placeholder in `template` with `body`, recursing
/// into nested statements. Counts splices via `spliced`.
fn splice_placeholder(template: &[Stmt], body: &[Stmt], spliced: &mut usize) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(template.len());
    for stmt in template {
        match stmt {
            Stmt::Placeholder => {
                *spliced += 1;
                out.extend_from_slice(body);
            }
            Stmt::Block(inner) => {
                out.push(Stmt::Block(splice_placeholder(inner, body, spliced)));
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => out.push(Stmt::If {
                cond: cond.clone(),
                then_branch: splice_placeholder(then_branch, body, spliced),
                else_branch: splice_placeholder(else_branch, body, spliced),
            }),
            Stmt::While { cond, body: b } => out.push(Stmt::While {
                cond: cond.clone(),
                body: splice_placeholder(b, body, spliced),
            }),
            Stmt::For {
                init,
                cond,
                post,
                body: b,
            } => out.push(Stmt::For {
                init: init.clone(),
                cond: cond.clone(),
                post: post.clone(),
                body: splice_placeholder(b, body, spliced),
            }),
            other => out.push(other.clone()),
        }
    }
    out
}

/// Flatten and resolve every contract in a source unit.
pub fn analyze(unit: &SourceUnit) -> Result<Vec<ContractInfo>, SemaError> {
    let by_name: HashMap<&str, &ContractDef> = unit
        .contracts
        .iter()
        .map(|c| (c.name.as_str(), c))
        .collect();
    if by_name.len() != unit.contracts.len() {
        return err("duplicate contract name");
    }
    unit.contracts
        .iter()
        .map(|c| flatten(c, &by_name))
        .collect()
}

/// Flatten one contract's inheritance chain and resolve it.
pub fn flatten(
    contract: &ContractDef,
    by_name: &HashMap<&str, &ContractDef>,
) -> Result<ContractInfo, SemaError> {
    // Build the base-most-first lineage (single inheritance chain).
    let mut lineage: Vec<&ContractDef> = Vec::new();
    let mut current = contract;
    let mut seen = vec![contract.name.clone()];
    loop {
        lineage.push(current);
        match current.bases.len() {
            0 => break,
            1 => {
                let base_name = &current.bases[0];
                if seen.contains(base_name) {
                    return err(format!("inheritance cycle through `{base_name}`"));
                }
                seen.push(base_name.clone());
                current = by_name.get(base_name.as_str()).copied().ok_or_else(|| {
                    SemaError(format!(
                        "unknown base contract `{base_name}` for `{}`",
                        current.name
                    ))
                })?;
            }
            _ => {
                return err(format!(
                    "contract `{}` uses multiple inheritance; this subset supports a single base",
                    current.name
                ))
            }
        }
    }
    lineage.reverse(); // base-most first

    // Merge members, base-first.
    let mut structs: Vec<StructInfo> = Vec::new();
    let mut enums: Vec<EnumInfo> = Vec::new();
    // First pass: user types (so state vars can reference them).
    for c in &lineage {
        for e in &c.enums {
            if enums.iter().any(|x| x.name == e.name) {
                continue; // redefinition in derived: keep base (identical in practice)
            }
            enums.push(EnumInfo {
                name: e.name.clone(),
                variants: e.variants.clone(),
            });
        }
    }
    for c in &lineage {
        for s in &c.structs {
            if structs.iter().any(|x| x.name == s.name) {
                continue;
            }
            let fields = s
                .fields
                .iter()
                .map(|(n, t)| Ok((n.clone(), resolve_type_with(t, &structs, &enums)?)))
                .collect::<Result<Vec<_>, SemaError>>()?;
            structs.push(StructInfo {
                name: s.name.clone(),
                fields,
            });
        }
    }

    // State variables: bases first, duplicate names rejected.
    let mut state_vars: Vec<StateVarInfo> = Vec::new();
    for c in &lineage {
        for v in &c.state_vars {
            if state_vars.iter().any(|x| x.name == v.name) {
                return err(format!(
                    "state variable `{}` redeclared in `{}`",
                    v.name, c.name
                ));
            }
            let ty = resolve_type_with(&v.ty, &structs, &enums)?;
            state_vars.push(StateVarInfo {
                name: v.name.clone(),
                ty,
                slot: 0, // assigned below
                public: v.public,
                init: v.init.clone(),
            });
        }
    }

    // Events: derived overrides base with the same name.
    let mut events: Vec<EventDef> = Vec::new();
    for c in &lineage {
        for e in &c.events {
            if let Some(existing) = events.iter_mut().find(|x| x.name == e.name) {
                *existing = e.clone();
            } else {
                events.push(e.clone());
            }
        }
    }

    // Modifiers: derived overrides base by name.
    let mut modifiers: Vec<ModifierDef> = Vec::new();
    for c in &lineage {
        for m in &c.modifiers {
            if let Some(existing) = modifiers.iter_mut().find(|x| x.name == m.name) {
                *existing = m.clone();
            } else {
                modifiers.push(m.clone());
            }
        }
    }

    // Functions: derived overrides base by name; constructor: derived-most.
    let mut functions: Vec<FunctionDef> = Vec::new();
    for c in &lineage {
        for f in &c.functions {
            if f.is_constructor {
                if let Some(existing) = functions.iter_mut().find(|x| x.is_constructor) {
                    *existing = f.clone();
                } else {
                    functions.push(f.clone());
                }
                continue;
            }
            if let Some(existing) = functions
                .iter_mut()
                .find(|x| !x.is_constructor && x.name == f.name)
            {
                *existing = f.clone();
            } else {
                functions.push(f.clone());
            }
        }
    }
    // Expand modifier invocations into function bodies (outermost first).
    for f in &mut functions {
        if f.modifiers.is_empty() {
            continue;
        }
        let invocations = std::mem::take(&mut f.modifiers);
        let mut body = std::mem::take(&mut f.body);
        for (name, args) in invocations.iter().rev() {
            let def = modifiers
                .iter()
                .find(|m| m.name == *name)
                .ok_or_else(|| SemaError(format!("unknown modifier `{name}`")))?;
            if def.params.len() != args.len() {
                return err(format!(
                    "modifier `{name}` takes {} arguments",
                    def.params.len()
                ));
            }
            // Bind modifier parameters as locals, then splice the wrapped
            // body in place of the `_` placeholder.
            let mut wrapped: Vec<Stmt> = def
                .params
                .iter()
                .zip(args)
                .map(|((pname, ty), arg)| Stmt::VarDecl {
                    ty: ty.clone(),
                    name: pname.clone(),
                    init: Some(arg.clone()),
                })
                .collect();
            let mut spliced = 0usize;
            wrapped.extend(splice_placeholder(&def.body, &body, &mut spliced));
            if spliced == 0 {
                return err(format!("modifier `{name}` has no `_;` placeholder"));
            }
            body = wrapped;
        }
        f.body = body;
    }

    // No overloading: names must be unique (getters add more below).
    for f in &functions {
        if f.is_constructor {
            continue;
        }
        if state_vars.iter().any(|v| v.public && v.name == f.name) {
            return err(format!(
                "function `{}` collides with a public state variable getter",
                f.name
            ));
        }
    }

    let mut info = ContractInfo {
        name: contract.name.clone(),
        lineage: lineage.iter().map(|c| c.name.clone()).collect(),
        structs,
        enums,
        state_vars,
        events,
        functions,
        total_slots: 0,
    };
    // Assign slots now that struct sizes are known.
    let mut slot = 0u64;
    let mut slots: Vec<u64> = Vec::with_capacity(info.state_vars.len());
    for var in &info.state_vars {
        slots.push(slot);
        slot += info.slots_for(&var.ty);
    }
    for (var, s) in info.state_vars.iter_mut().zip(slots) {
        var.slot = s;
    }
    info.total_slots = slot;
    Ok(info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze_src(src: &str) -> Vec<ContractInfo> {
        analyze(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn storage_slots_assigned_in_order() {
        let infos = analyze_src(
            r#"contract C {
                uint a;
                struct P { uint x; uint y; }
                P b;
                uint[3] c;
                uint d;
                mapping(address => uint) m;
                string s;
            }"#,
        );
        let c = &infos[0];
        let slots: Vec<(String, u64)> = c
            .state_vars
            .iter()
            .map(|v| (v.name.clone(), v.slot))
            .collect();
        assert_eq!(
            slots,
            vec![
                ("a".into(), 0),
                ("b".into(), 1),
                ("c".into(), 3),
                ("d".into(), 6),
                ("m".into(), 7),
                ("s".into(), 8),
            ]
        );
        assert_eq!(c.total_slots, 9);
    }

    #[test]
    fn inheritance_puts_base_vars_first() {
        let infos = analyze_src(
            r#"
            contract Node { address next; address previous; }
            contract Base is Node { uint rent; }
            contract Derived is Base { uint deposit; }
            "#,
        );
        let derived = infos.iter().find(|c| c.name == "Derived").unwrap();
        assert_eq!(derived.lineage, vec!["Node", "Base", "Derived"]);
        let names: Vec<&str> = derived.state_vars.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["next", "previous", "rent", "deposit"]);
        // Base slots identical in Base and Derived — the versioning
        // invariant the paper's migration depends on.
        let base = infos.iter().find(|c| c.name == "Base").unwrap();
        assert_eq!(
            base.state_var("rent").unwrap().slot,
            derived.state_var("rent").unwrap().slot
        );
    }

    #[test]
    fn derived_overrides_functions_and_keeps_base_ones() {
        let infos = analyze_src(
            r#"
            contract Base {
                function f() public returns (uint) { return 1; }
                function g() public returns (uint) { return 2; }
            }
            contract Derived is Base {
                function g() public returns (uint) { return 20; }
            }
            "#,
        );
        let derived = infos.iter().find(|c| c.name == "Derived").unwrap();
        assert_eq!(derived.functions.len(), 2);
        let g = derived.function("g").unwrap();
        // Overridden body returns 20.
        let Stmt::Return(Some(Expr::Number(v))) = &g.body[0] else {
            panic!()
        };
        assert_eq!(v.to_u64(), Some(20));
    }

    #[test]
    fn abi_includes_getters() {
        let infos = analyze_src(
            r#"contract C {
                uint public rent;
                string public house;
                mapping(address => mapping(string => string)) public kv;
                struct P { uint a; uint b; }
                P[] public items;
                uint internalVar;
                function payRent() public payable {}
                event paidRent();
            }"#,
        );
        let abi = infos[0].build_abi().unwrap();
        let names: Vec<&str> = abi.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["rent", "house", "kv", "items", "payRent"]);
        let kv = abi.function("kv").unwrap();
        assert_eq!(kv.inputs.len(), 2, "nested mapping getter takes two keys");
        let items = abi.function("items").unwrap();
        assert_eq!(items.inputs.len(), 1);
        assert_eq!(items.outputs.len(), 2, "struct getter returns fields");
        assert_eq!(abi.events.len(), 1);
    }

    #[test]
    fn errors() {
        let parsed = parse("contract C is Missing { }").unwrap();
        assert!(analyze(&parsed).is_err());
        let parsed = parse("contract C { uint a; uint a; }").unwrap();
        assert!(analyze(&parsed).is_err());
        let parsed = parse("contract C { floof x; }").unwrap();
        assert!(analyze(&parsed).is_err());
        let parsed = parse("contract C { uint public f; function f() public {} }").unwrap();
        assert!(analyze(&parsed).is_err());
        let parsed = parse("contract A is B {} contract B is A {}").unwrap();
        assert!(analyze(&parsed).is_err());
    }

    #[test]
    fn enum_resolution() {
        let infos = analyze_src(
            "contract C { enum State {Created, Started, Terminated} State public state; }",
        );
        let c = &infos[0];
        assert_eq!(c.state_var("state").unwrap().ty, Ty::Enum(0));
        assert_eq!(c.enums[0].variants.len(), 3);
        let abi = c.build_abi().unwrap();
        assert_eq!(
            abi.function("state").unwrap().outputs[0].ty,
            AbiType::Uint(8)
        );
    }
}
