//! Top-level compile driver: source text → deployable artifacts.

use crate::codegen::{compile_contract, Artifact, CodegenError};
use crate::parser::ParseError;
use crate::sema::{analyze, SemaError};
use core::fmt;

/// Any compilation failure, with the phase that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Semantic analysis failed.
    Sema(SemaError),
    /// Code generation failed.
    Codegen(CodegenError),
    /// The requested contract is not defined in the source.
    UnknownContract(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "{e}"),
            Self::Sema(e) => write!(f, "{e}"),
            Self::Codegen(e) => write!(f, "{e}"),
            Self::UnknownContract(name) => write!(f, "contract `{name}` not found in source"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        Self::Parse(e)
    }
}

impl From<SemaError> for CompileError {
    fn from(e: SemaError) -> Self {
        Self::Sema(e)
    }
}

impl From<CodegenError> for CompileError {
    fn from(e: CodegenError) -> Self {
        Self::Codegen(e)
    }
}

/// Compile every contract in `source`.
pub fn compile_source(source: &str) -> Result<Vec<Artifact>, CompileError> {
    let unit = crate::parser::parse(source)?;
    let infos = analyze(&unit)?;
    infos
        .iter()
        .map(|info| compile_contract(info).map_err(CompileError::from))
        .collect()
}

/// Compile `source` and return the artifact for the named contract.
pub fn compile_single(source: &str, name: &str) -> Result<Artifact, CompileError> {
    compile_source(source)?
        .into_iter()
        .find(|a| a.name == name)
        .ok_or_else(|| CompileError::UnknownContract(name.to_string()))
}
