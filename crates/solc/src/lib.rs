//! # lsc-solc
//!
//! A compiler for the Solidity subset used by the paper's legal smart
//! contracts (pragma 0.5 era), targeting the `lsc-evm` bytecode format.
//! Pipeline: [`lexer`] → [`parser`] → [`sema`] (inheritance flattening,
//! storage layout) → [`codegen`] (init + runtime bytecode, JSON ABI).
//!
//! The subset covers everything in the paper's Figures 3, 5 and 6 and the
//! machinery around them: contracts with single inheritance, structs,
//! enums, state variables with public getters, dynamic arrays with
//! `push`/`length`, nested mappings (including string keys), strings,
//! events/`emit`, `require`/`revert` with `Error(string)` data, payable
//! functions, function `modifier`s with parameters and `_;` splicing,
//! `msg`/`block` builtins, `address.transfer`/`.send`, `selfdestruct`,
//! loops and the usual operator zoo (including right-associative `**`).
//!
//! Documented deviations from solc (see DESIGN.md): no storage packing
//! (every value gets a slot — which keeps layouts version-stable, the
//! property the paper's data migration needs), strings always use
//! length-at-slot layout (no short-string optimization), and `ORIGIN`
//! equals the frame caller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod compile;
pub mod lexer;
pub mod parser;
pub mod sema;

pub use codegen::Artifact;
pub use compile::{compile_single, compile_source, CompileError};
