//! Recursive-descent parser for the Solidity subset.

use crate::ast::*;
use crate::lexer::{lex, LexError, Pos, Tok, Token};
use core::fmt;
use lsc_primitives::U256;

/// Parse error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Problem description.
    pub message: String,
    /// Location.
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.pos.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            pos: e.pos,
        }
    }
}

/// Parse a source file.
pub fn parse(source: &str) -> Result<SourceUnit, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    p.source_unit()
}

/// Elementary type names (plus sized variants checked dynamically).
fn is_elementary(name: &str) -> bool {
    matches!(
        name,
        "uint" | "int" | "address" | "bool" | "string" | "bytes" | "byte"
    ) || (name.starts_with("uint") && name[4..].parse::<u16>().is_ok())
        || (name.starts_with("int") && name[3..].parse::<u16>().is_ok())
        || (name.starts_with("bytes") && name[5..].parse::<u8>().is_ok())
}

fn is_data_location(name: &str) -> bool {
    matches!(name, "memory" | "storage" | "calldata")
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].tok
    }

    fn here(&self) -> Pos {
        self.tokens[self.pos].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            pos: self.here(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.peek()))
        }
    }

    fn is_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Tok::Punct(q) if *q == p)
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.pos += 1;
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn source_unit(&mut self) -> Result<SourceUnit, ParseError> {
        let mut unit = SourceUnit::default();
        loop {
            if matches!(self.peek(), Tok::Eof) {
                return Ok(unit);
            }
            if self.eat_kw("pragma") {
                let mut text = String::from("pragma");
                while !self.is_punct(";") {
                    if matches!(self.peek(), Tok::Eof) {
                        return self.err("unterminated pragma");
                    }
                    text.push(' ');
                    text.push_str(&format!("{}", self.bump()));
                    // strip token formatting backticks for readability
                }
                self.expect_punct(";")?;
                unit.pragmas.push(text);
                continue;
            }
            if self.is_kw("contract") {
                unit.contracts.push(self.contract()?);
                continue;
            }
            return self.err(format!(
                "expected `contract` or `pragma`, found {}",
                self.peek()
            ));
        }
    }

    fn contract(&mut self) -> Result<ContractDef, ParseError> {
        self.expect_kw("contract")?;
        let name = self.ident()?;
        let mut bases = Vec::new();
        if self.eat_kw("is") {
            loop {
                bases.push(self.ident()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct("{")?;
        let mut contract = ContractDef {
            name,
            bases,
            structs: vec![],
            enums: vec![],
            state_vars: vec![],
            events: vec![],
            functions: vec![],
            modifiers: vec![],
        };
        while !self.eat_punct("}") {
            if matches!(self.peek(), Tok::Eof) {
                return self.err("unterminated contract body");
            }
            self.contract_member(&mut contract)?;
        }
        Ok(contract)
    }

    fn contract_member(&mut self, contract: &mut ContractDef) -> Result<(), ParseError> {
        if self.eat_kw("struct") {
            let name = self.ident()?;
            self.expect_punct("{")?;
            let mut fields = Vec::new();
            while !self.eat_punct("}") {
                let ty = self.type_expr()?;
                let field = self.ident()?;
                self.expect_punct(";")?;
                fields.push((field, ty));
            }
            contract.structs.push(StructDef { name, fields });
            return Ok(());
        }
        if self.eat_kw("enum") {
            let name = self.ident()?;
            self.expect_punct("{")?;
            let mut variants = Vec::new();
            loop {
                variants.push(self.ident()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct("}")?;
            contract.enums.push(EnumDef { name, variants });
            return Ok(());
        }
        if self.eat_kw("event") {
            let name = self.ident()?;
            self.expect_punct("(")?;
            let mut params = Vec::new();
            if !self.is_punct(")") {
                loop {
                    let ty = self.type_expr()?;
                    let indexed = self.eat_kw("indexed");
                    let pname = match self.peek() {
                        Tok::Ident(_) => self.ident()?,
                        _ => String::new(),
                    };
                    params.push((pname, ty, indexed));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
            }
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            contract.events.push(EventDef { name, params });
            return Ok(());
        }
        if self.eat_kw("modifier") {
            let name = self.ident()?;
            let mut params = Vec::new();
            if self.eat_punct("(") {
                if !self.is_punct(")") {
                    loop {
                        let ty = self.type_expr()?;
                        let pname = match self.peek() {
                            Tok::Ident(s) if !is_data_location(s) => self.ident()?,
                            _ => String::new(),
                        };
                        params.push((pname, ty));
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                }
                self.expect_punct(")")?;
            }
            let body = self.block()?;
            contract.modifiers.push(ModifierDef { name, params, body });
            return Ok(());
        }
        if self.is_kw("constructor") || self.is_kw("function") {
            contract.functions.push(self.function()?);
            return Ok(());
        }
        // State variable(s).
        let ty = self.type_expr()?;
        let mut public = false;
        loop {
            if self.eat_kw("public") {
                public = true;
            } else if self.eat_kw("private") || self.eat_kw("internal") || self.eat_kw("constant") {
                // accepted and ignored (no packing/constant folding of vars)
            } else {
                break;
            }
        }
        loop {
            let name = self.ident()?;
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            contract.state_vars.push(StateVar {
                name,
                ty: ty.clone(),
                public,
                init,
            });
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(";")?;
        Ok(())
    }

    fn function(&mut self) -> Result<FunctionDef, ParseError> {
        let is_constructor = self.eat_kw("constructor");
        let name = if is_constructor {
            String::new()
        } else {
            self.expect_kw("function")?;
            self.ident()?
        };
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.is_punct(")") {
            loop {
                let ty = self.type_expr()?;
                let pname = match self.peek() {
                    Tok::Ident(s) if !is_data_location(s) => self.ident()?,
                    _ => String::new(),
                };
                params.push((pname, ty));
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        let mut visibility = Visibility::Public;
        let mut mutability = Mutability::NonPayable;
        let mut returns = Vec::new();
        let mut modifiers: Vec<(String, Vec<Expr>)> = Vec::new();
        loop {
            if self.eat_kw("public") {
                visibility = Visibility::Public;
            } else if self.eat_kw("external") {
                visibility = Visibility::External;
            } else if self.eat_kw("internal") {
                visibility = Visibility::Internal;
            } else if self.eat_kw("private") {
                visibility = Visibility::Private;
            } else if self.eat_kw("payable") {
                mutability = Mutability::Payable;
            } else if self.eat_kw("view") || self.eat_kw("constant") {
                mutability = Mutability::View;
            } else if self.eat_kw("pure") {
                mutability = Mutability::Pure;
            } else if self.eat_kw("returns") {
                self.expect_punct("(")?;
                loop {
                    let ty = self.type_expr()?;
                    let rname = match self.peek() {
                        Tok::Ident(s) if !is_data_location(s) => self.ident()?,
                        _ => String::new(),
                    };
                    returns.push((rname, ty));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
            } else if matches!(self.peek(), Tok::Ident(_)) && !self.is_punct("{") {
                // A modifier invocation: `name` or `name(args)`.
                let mod_name = self.ident()?;
                let mut args = Vec::new();
                if self.eat_punct("(") {
                    if !self.is_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                    }
                    self.expect_punct(")")?;
                }
                modifiers.push((mod_name, args));
            } else {
                break;
            }
        }
        if self.eat_punct(";") {
            return self.err("abstract functions are not supported in this subset");
        }
        let body = self.block()?;
        Ok(FunctionDef {
            name,
            params,
            returns,
            visibility,
            mutability,
            body,
            is_constructor,
            modifiers,
        })
    }

    /// Parse a type expression, consuming data-location keywords after it.
    fn type_expr(&mut self) -> Result<TypeExpr, ParseError> {
        let base = if self.eat_kw("mapping") {
            self.expect_punct("(")?;
            let key = self.type_expr()?;
            self.expect_punct("=>")?;
            let value = self.type_expr()?;
            self.expect_punct(")")?;
            TypeExpr::Mapping(Box::new(key), Box::new(value))
        } else {
            let name = self.ident()?;
            // `address payable` folds to address.
            if name == "address" {
                self.eat_kw("payable");
            }
            TypeExpr::Named(name)
        };
        let mut ty = base;
        loop {
            if self.is_punct("[") {
                if let Tok::Punct("]") = self.peek_at(1) {
                    self.bump();
                    self.bump();
                    ty = TypeExpr::Array(Box::new(ty));
                    continue;
                }
                if let Tok::Number(n) = self.peek_at(1).clone() {
                    if matches!(self.peek_at(2), Tok::Punct("]")) {
                        self.bump();
                        self.bump();
                        self.bump();
                        let n = n.replace('_', "").parse::<u64>().map_err(|_| ParseError {
                            message: format!("bad array size {n}"),
                            pos: self.here(),
                        })?;
                        ty = TypeExpr::FixedArray(Box::new(ty), n);
                        continue;
                    }
                }
            }
            break;
        }
        // Trailing data location (in params / local declarations).
        loop {
            match self.peek() {
                Tok::Ident(s) if is_data_location(s) => {
                    self.pos += 1;
                }
                _ => break,
            }
        }
        Ok(ty)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), Tok::Eof) {
                return self.err("unterminated block");
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    /// Does a statement at the cursor start a local variable declaration?
    fn looks_like_declaration(&self) -> bool {
        match self.peek() {
            Tok::Ident(s) if s == "mapping" => true,
            Tok::Ident(s) if is_elementary(s) => true,
            Tok::Ident(_) => {
                // `Type name`, `Type memory name`, `Type[] ...`, `Type[N] ...`
                match self.peek_at(1) {
                    Tok::Ident(next) if is_data_location(next) => true,
                    Tok::Ident(_) => {
                        // Could be `Foo bar` declaration; exclude keywords that
                        // start statements or expressions handled elsewhere.
                        !matches!(self.peek(), Tok::Ident(s) if matches!(s.as_str(),
                            "return" | "if" | "while" | "for" | "require" | "revert" |
                            "emit" | "break" | "continue" | "delete" | "new" | "assert"))
                    }
                    Tok::Punct("[") => {
                        matches!(self.peek_at(2), Tok::Punct("]"))
                            || (matches!(self.peek_at(2), Tok::Number(_))
                                && matches!(self.peek_at(3), Tok::Punct("]"))
                                && matches!(self.peek_at(4), Tok::Ident(_)))
                    }
                    _ => false,
                }
            }
            _ => false,
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        if self.is_punct("{") {
            return Ok(Stmt::Block(self.block()?));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_branch = self.branch_body()?;
            let else_branch = if self.eat_kw("else") {
                self.branch_body()?
            } else {
                vec![]
            };
            return Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
            });
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.branch_body()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else {
                let s = if self.looks_like_declaration() {
                    self.var_decl_statement()?
                } else {
                    Stmt::Expr(self.expr()?)
                };
                self.expect_punct(";")?;
                Some(Box::new(s))
            };
            let cond = if self.is_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let post = if self.is_punct(")") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(")")?;
            let body = self.branch_body()?;
            return Ok(Stmt::For {
                init,
                cond,
                post,
                body,
            });
        }
        if self.eat_kw("return") {
            let value = if self.is_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return(value));
        }
        if self.eat_kw("require") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            let message = if self.eat_punct(",") {
                match self.bump() {
                    Tok::Str(s) => Some(s),
                    other => {
                        return self.err(format!("require message must be a string, found {other}"))
                    }
                }
            } else {
                None
            };
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Require { cond, message });
        }
        if self.eat_kw("assert") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Require {
                cond,
                message: Some("assertion failed".into()),
            });
        }
        if self.eat_kw("revert") {
            self.expect_punct("(")?;
            let message = if self.is_punct(")") {
                None
            } else {
                match self.bump() {
                    Tok::Str(s) => Some(s),
                    other => {
                        return self.err(format!("revert reason must be a string, found {other}"))
                    }
                }
            };
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Revert(message));
        }
        if self.eat_kw("emit") {
            let name = self.ident()?;
            self.expect_punct("(")?;
            let mut args = Vec::new();
            if !self.is_punct(")") {
                loop {
                    args.push(self.expr()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
            }
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Emit { name, args });
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        if self.is_kw("_") && matches!(self.peek_at(1), Tok::Punct(";")) {
            self.bump();
            self.bump();
            return Ok(Stmt::Placeholder);
        }
        if self.looks_like_declaration() {
            let s = self.var_decl_statement()?;
            self.expect_punct(";")?;
            return Ok(s);
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    fn branch_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.is_punct("{") {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn var_decl_statement(&mut self) -> Result<Stmt, ParseError> {
        let ty = self.type_expr()?;
        let name = self.ident()?;
        let init = if self.eat_punct("=") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::VarDecl { ty, name, init })
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.ternary()?;
        for (tok, op) in [
            ("=", None),
            ("+=", Some(BinOp::Add)),
            ("-=", Some(BinOp::Sub)),
            ("*=", Some(BinOp::Mul)),
            ("/=", Some(BinOp::Div)),
            ("%=", Some(BinOp::Mod)),
        ] {
            if self.is_punct(tok) {
                self.bump();
                let rhs = self.assignment()?;
                let rhs = match op {
                    None => rhs,
                    Some(op) => Expr::Binary(op, Box::new(lhs.clone()), Box::new(rhs)),
                };
                return Ok(Expr::Assign(Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.logical_or()?;
        if self.eat_punct("?") {
            let then = self.expr()?;
            self.expect_punct(":")?;
            let otherwise = self.ternary()?;
            return Ok(Expr::Ternary(
                Box::new(cond),
                Box::new(then),
                Box::new(otherwise),
            ));
        }
        Ok(cond)
    }

    fn binary_level(
        &mut self,
        next: fn(&mut Self) -> Result<Expr, ParseError>,
        ops: &[(&str, BinOp)],
    ) -> Result<Expr, ParseError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in ops {
                if self.is_punct(tok) {
                    self.bump();
                    let rhs = next(self)?;
                    lhs = Expr::Binary(*op, Box::new(lhs), Box::new(rhs));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn logical_or(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::logical_and, &[("||", BinOp::Or)])
    }

    fn logical_and(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::bit_or, &[("&&", BinOp::And)])
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::bit_xor, &[("|", BinOp::BitOr)])
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::bit_and, &[("^", BinOp::BitXor)])
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::equality, &[("&", BinOp::BitAnd)])
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::relational, &[("==", BinOp::Eq), ("!=", BinOp::Ne)])
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::shift,
            &[
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
        )
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::additive, &[("<<", BinOp::Shl), (">>", BinOp::Shr)])
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::multiplicative,
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::exponent,
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Mod)],
        )
    }

    fn exponent(&mut self) -> Result<Expr, ParseError> {
        // Right-associative: 2 ** 3 ** 2 == 2 ** (3 ** 2).
        let base = self.unary()?;
        if self.eat_punct("**") {
            let power = self.exponent()?;
            return Ok(Expr::Binary(BinOp::Pow, Box::new(base), Box::new(power)));
        }
        Ok(base)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("!") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        if self.eat_punct("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.eat_punct("~") {
            return Ok(Expr::BitNot(Box::new(self.unary()?)));
        }
        if self.eat_punct("++") {
            let target = self.unary()?;
            return Ok(Expr::IncDec {
                target: Box::new(target),
                increment: true,
            });
        }
        if self.eat_punct("--") {
            let target = self.unary()?;
            return Ok(Expr::IncDec {
                target: Box::new(target),
                increment: false,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct(".") {
                let member = self.ident()?;
                e = Expr::Member(Box::new(e), member);
            } else if self.eat_punct("[") {
                let index = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(index));
            } else if self.eat_punct("(") {
                let mut args = Vec::new();
                if !self.is_punct(")") {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                }
                self.expect_punct(")")?;
                e = Expr::Call(Box::new(e), args);
            } else if self.eat_punct("++") {
                e = Expr::IncDec {
                    target: Box::new(e),
                    increment: true,
                };
            } else if self.eat_punct("--") {
                e = Expr::IncDec {
                    target: Box::new(e),
                    increment: false,
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Number(text) => {
                self.pos += 1;
                let cleaned = text.replace('_', "");
                let value = if let Some(hex) = cleaned.strip_prefix("0x") {
                    U256::from_hex_str(hex)
                } else {
                    U256::from_decimal_str(&cleaned)
                }
                .map_err(|e| ParseError {
                    message: format!("bad number literal: {e}"),
                    pos: self.here(),
                })?;
                // Unit suffix?
                let multiplier = match self.peek() {
                    Tok::Ident(unit) => match unit.as_str() {
                        "wei" => Some(U256::ONE),
                        "gwei" | "szabo" => Some(U256::from_u64(1_000_000_000)),
                        "finney" => Some(U256::from_u128(1_000_000_000_000_000)),
                        "ether" => Some(U256::from_u128(1_000_000_000_000_000_000)),
                        "seconds" => Some(U256::ONE),
                        "minutes" => Some(U256::from_u64(60)),
                        "hours" => Some(U256::from_u64(3600)),
                        "days" => Some(U256::from_u64(86_400)),
                        "weeks" => Some(U256::from_u64(604_800)),
                        _ => None,
                    },
                    _ => None,
                };
                let value = match multiplier {
                    Some(m) => {
                        self.pos += 1;
                        value * m
                    }
                    None => value,
                };
                Ok(Expr::Number(value))
            }
            Tok::Str(s) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            Tok::Ident(name) => {
                self.pos += 1;
                match name.as_str() {
                    "true" => Ok(Expr::Bool(true)),
                    "false" => Ok(Expr::Bool(false)),
                    _ => Ok(Expr::Ident(name)),
                }
            }
            Tok::Punct("(") => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_data_storage_contract() {
        // Fig. 3 of the paper, verbatim (modulo whitespace).
        let src = r#"
            pragma solidity ^0.5.0;
            contract DataStorage {
                mapping (address => mapping( string => string )) keyValuePairs;
            }
        "#;
        let unit = parse(src).unwrap();
        assert_eq!(unit.pragmas.len(), 1);
        let c = &unit.contracts[0];
        assert_eq!(c.name, "DataStorage");
        assert_eq!(c.state_vars.len(), 1);
        assert!(matches!(c.state_vars[0].ty, TypeExpr::Mapping(_, _)));
    }

    #[test]
    fn parses_struct_enum_and_multi_declarators() {
        let src = r#"
            contract C {
                struct PaidRent { uint Monthid; uint value; }
                PaidRent[] public paidrents;
                enum State {Created, Started, Terminated}
                State public state;
                address payable public landlord, tenant;
                uint creationTime, contractTime;
            }
        "#;
        let c = parse(src).unwrap().contracts.remove(0);
        assert_eq!(c.structs[0].fields.len(), 2);
        assert_eq!(
            c.enums[0].variants,
            vec!["Created", "Started", "Terminated"]
        );
        let names: Vec<&str> = c.state_vars.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "paidrents",
                "state",
                "landlord",
                "tenant",
                "creationTime",
                "contractTime"
            ]
        );
        assert!(c.state_vars[2].public);
        assert!(!c.state_vars[4].public);
    }

    #[test]
    fn parses_constructor_and_functions() {
        let src = r#"
            contract C {
                uint public rent;
                constructor (uint _rent, string memory _house) public payable {
                    rent = _rent;
                }
                function payRent() public payable { }
                function getNext() public returns (address addr) { return addr; }
                function check() internal view returns (bool) { return true; }
            }
        "#;
        let c = parse(src).unwrap().contracts.remove(0);
        assert_eq!(c.functions.len(), 4);
        assert!(c.functions[0].is_constructor);
        assert_eq!(c.functions[0].params.len(), 2);
        assert_eq!(c.functions[0].mutability, Mutability::Payable);
        assert_eq!(c.functions[2].returns[0].0, "addr");
        assert_eq!(c.functions[3].visibility, Visibility::Internal);
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            contract C {
                uint x;
                function f(uint n) public {
                    for (uint i = 0; i < n; i++) {
                        if (i % 2 == 0) { x += i; } else x -= 1;
                        while (x > 100) { x /= 2; break; }
                    }
                    require(x > 0, "x must stay positive");
                    emit Done(x);
                    return;
                }
                event Done(uint value);
            }
        "#;
        let c = parse(src).unwrap().contracts.remove(0);
        let f = &c.functions[0];
        assert!(matches!(f.body[0], Stmt::For { .. }));
        assert!(matches!(f.body[1], Stmt::Require { .. }));
        assert!(matches!(f.body[2], Stmt::Emit { .. }));
    }

    #[test]
    fn expression_precedence() {
        let src = "contract C { function f() public { uint x = 1 + 2 * 3; bool b = 1 < 2 && 3 > 2 || false; } }";
        let c = parse(src).unwrap().contracts.remove(0);
        let Stmt::VarDecl {
            init: Some(Expr::Binary(BinOp::Add, _, rhs)),
            ..
        } = &c.functions[0].body[0]
        else {
            panic!("expected add at top");
        };
        assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn unit_literals_scale() {
        let src = "contract C { uint x = 2 ether; uint y = 3 days; }";
        let c = parse(src).unwrap().contracts.remove(0);
        let Some(Expr::Number(v)) = &c.state_vars[0].init else {
            panic!()
        };
        assert_eq!(*v, lsc_primitives::ether(2));
        let Some(Expr::Number(v)) = &c.state_vars[1].init else {
            panic!()
        };
        assert_eq!(*v, U256::from_u64(3 * 86_400));
    }

    #[test]
    fn inheritance_clause() {
        let c = parse("contract RentalAgreement is BaseRental { }")
            .unwrap()
            .contracts
            .remove(0);
        assert_eq!(c.bases, vec!["BaseRental"]);
    }

    #[test]
    fn member_call_chains() {
        let src = "contract C { function f() public { msg.sender; landlord.transfer(msg.value); paidrents.push(PaidRent(1, 2)); } }";
        let c = parse(src).unwrap().contracts.remove(0);
        assert_eq!(c.functions[0].body.len(), 3);
    }

    #[test]
    fn errors_are_located() {
        let err = parse("contract C { function f() public { uint x = ; } }").unwrap_err();
        assert!(err.message.contains("expected expression"));
        assert!(parse("contract C { function f() public; }").is_err());
        assert!(parse("contract { }").is_err());
    }

    #[test]
    fn ternary_and_casts_parse() {
        let src = "contract C { function f(uint a) public returns (uint) { return a > 0 ? uint(1) : 0; } }";
        assert!(parse(src).is_ok());
    }
}
