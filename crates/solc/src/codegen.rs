//! Code generation: lowers a flattened [`ContractInfo`] to EVM bytecode
//! (init + runtime) through the `lsc-evm` assembler.
//!
//! ## Conventions
//!
//! * **Memory map**: `0x00..0x40` hashing scratch, `0x40` free-memory
//!   pointer, `0x60` the canonical empty string (always zero), `0x80..`
//!   locals (globally unique addresses per function — no recursion),
//!   heap from [`HEAP_BASE`].
//! * **Values**: value types are raw words; `string`s are pointers to
//!   `[len][bytes…]` in memory; memory structs are pointers to
//!   word-per-field regions.
//! * **Calls**: caller writes arguments into the callee's parameter slots,
//!   pushes a return label and jumps; the callee writes results into its
//!   return slots and jumps back. Multi-returns work because results
//!   travel through memory.
//! * **Storage**: one slot per value (no packing — a documented deviation
//!   from solc that keeps layouts version-stable, which is exactly what
//!   the paper's data migration needs); strings/arrays root at their slot
//!   with data at `keccak(slot)`; mapping elements at
//!   `keccak(key ++ slot)` (string keys hash their bytes).

use crate::sema::{ContractInfo, SemaError, Ty};
use core::fmt;
use lsc_evm::asm::{Asm, Label};
use lsc_evm::opcode::op;
use lsc_primitives::U256;
use std::collections::HashMap;

/// Start of the dynamic heap (locals live below).
pub const HEAP_BASE: u64 = 0x8000;
/// First local slot.
const LOCALS_BASE: u64 = 0x80;
/// The canonical empty-string pointer (memory at 0x60 is always zero).
const EMPTY_STRING_PTR: u64 = 0x60;

/// Code generation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenError(pub String);

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codegen error: {}", self.0)
    }
}

impl std::error::Error for CodegenError {}

impl From<SemaError> for CodegenError {
    fn from(e: SemaError) -> Self {
        CodegenError(e.0)
    }
}

fn cerr<T>(message: impl Into<String>) -> Result<T, CodegenError> {
    Err(CodegenError(message.into()))
}

/// Where an lvalue lives.
enum LValue {
    /// A local variable at a constant memory address.
    Local { addr: u64, ty: Ty },
    /// A storage location; the slot is on the stack.
    Storage { ty: Ty },
    /// A memory word; the address is on the stack.
    MemWord { ty: Ty },
}

/// Per-function compilation context.
struct FnCtx {
    /// Scoped local variables: name → (address, type).
    scopes: Vec<HashMap<String, (u64, Ty)>>,
    /// Return slots (address, type) in declaration order.
    return_slots: Vec<(u64, Ty)>,
    /// Loop continuation targets (continue, break).
    loops: Vec<(Label, Label)>,
}

impl FnCtx {
    fn lookup(&self, name: &str) -> Option<(u64, Ty)> {
        self.scopes.iter().rev().find_map(|s| s.get(name).cloned())
    }
}

/// One contract's code generator (drives both runtime and init emission).
pub struct CodeGen<'a> {
    contract: &'a ContractInfo,
    asm: Asm,
    next_local: u64,
    fn_entry: HashMap<String, Label>,
    fn_return_slots: HashMap<String, Vec<(u64, Ty)>>,
    fn_param_slots: HashMap<String, Vec<(u64, Ty)>>,
    sub_sload_string: Label,
    sub_sstore_string: Label,
    subs_emitted: bool,
    ctx: FnCtx,
}

impl<'a> CodeGen<'a> {
    fn new(contract: &'a ContractInfo, next_local: u64) -> Self {
        let mut asm = Asm::new();
        let sub_sload_string = asm.new_label();
        let sub_sstore_string = asm.new_label();
        CodeGen {
            contract,
            asm,
            next_local,
            fn_entry: HashMap::new(),
            fn_return_slots: HashMap::new(),
            fn_param_slots: HashMap::new(),
            sub_sload_string,
            sub_sstore_string,
            subs_emitted: false,
            ctx: FnCtx {
                scopes: vec![],
                return_slots: vec![],
                loops: vec![],
            },
        }
    }

    fn alloc_local(&mut self) -> Result<u64, CodegenError> {
        let addr = self.next_local;
        self.next_local += 32;
        if self.next_local > HEAP_BASE {
            return cerr("too many locals: exceeded the reserved locals region");
        }
        Ok(addr)
    }

    // ---- tiny emission helpers ----

    fn push(&mut self, v: U256) {
        self.asm.push(v);
    }

    fn pushn(&mut self, v: u64) {
        self.asm.push_u64(v);
    }

    fn o(&mut self, byte: u8) {
        self.asm.op(byte);
    }

    /// MLOAD from a constant address.
    fn mload_const(&mut self, addr: u64) {
        self.pushn(addr);
        self.o(op::MLOAD);
    }

    /// MSTORE the stack top to a constant address.
    fn mstore_const(&mut self, addr: u64) {
        self.pushn(addr);
        self.o(op::MSTORE);
    }

    /// Initialize the free-memory pointer.
    fn emit_fmp_init(&mut self) {
        self.pushn(HEAP_BASE);
        self.mstore_const(0x40);
    }

    /// Round the stack top up to a multiple of 32.
    fn emit_ceil32(&mut self) {
        // x = (x + 31) & ~31
        self.pushn(31);
        self.o(op::ADD);
        self.push(!U256::from_u64(31));
        self.o(op::AND);
    }

    /// Allocate `[top]` bytes on the heap; leaves the base pointer.
    /// Consumes the size from the stack.
    fn emit_heap_alloc_dynamic(&mut self) {
        // [size] -> [ptr]
        self.mload_const(0x40); // [size, ptr]
        self.o(op::SWAP1); // [ptr, size]
        self.o(op::DUP2); // [ptr, size, ptr]
        self.o(op::ADD); // [ptr, ptr+size]
        self.mstore_const(0x40); // [ptr]
    }

    /// keccak256 of the 64-byte scratch formed from [value_under, value_top].
    /// Stack: [a, b] → [keccak(a ++ b)]
    fn emit_hash_pair(&mut self) {
        self.mstore_const(0x20); // b -> scratch[0x20]
        self.mstore_const(0x00); // a -> scratch[0x00]
        self.pushn(64);
        self.pushn(0);
        self.o(op::KECCAK256);
    }

    /// keccak256 of a single word. Stack: [a] → [keccak(a)]
    fn emit_hash_one(&mut self) {
        self.mstore_const(0x00);
        self.pushn(32);
        self.pushn(0);
        self.o(op::KECCAK256);
    }

    /// Hash a memory string's bytes. Stack: [ptr] → [keccak(bytes)]
    fn emit_hash_string(&mut self) {
        self.o(op::DUP1); // [ptr, ptr]
        self.o(op::MLOAD); // [ptr, len]
        self.o(op::SWAP1); // [len, ptr]
        self.pushn(32);
        self.o(op::ADD); // [len, ptr+32]
        self.o(op::KECCAK256);
    }

    /// Emit `revert(Error(string))` with a static message.
    fn emit_revert_message(&mut self, message: &str) {
        // Layout at heap: selector ++ abi(string).
        // 0x08c379a0 = selector of Error(string).
        let mut payload = vec![0x08u8, 0xc3, 0x79, 0xa0];
        let encoded = lsc_abi::encode(
            &[lsc_abi::AbiType::String],
            &[lsc_abi::AbiValue::string(message)],
        )
        .expect("static string encodes");
        payload.extend_from_slice(&encoded);
        // Write payload into memory word by word at fmp (no alloc needed —
        // we are about to revert).
        self.mload_const(0x40); // [base]
        for (i, chunk) in payload.chunks(32).enumerate() {
            let mut word = [0u8; 32];
            word[..chunk.len()].copy_from_slice(chunk);
            self.push(U256::from_be_bytes(word)); // [base, word]
            self.o(op::DUP2); // [base, word, base]
            self.pushn(32 * i as u64);
            self.o(op::ADD); // [base, word, base+off]
            self.o(op::MSTORE); // [base]
        }
        // revert(base, len)
        self.pushn(payload.len() as u64); // [base, len]
        self.o(op::SWAP1); // [len, base]
        self.o(op::REVERT);
    }

    /// Emit a bare `revert(0,0)`.
    fn emit_revert_bare(&mut self) {
        self.pushn(0);
        self.pushn(0);
        self.o(op::REVERT);
    }

    // ---- subroutines ----

    /// Append shared subroutines (storage-string load/store) once.
    fn emit_subroutines(&mut self) -> Result<(), CodegenError> {
        if self.subs_emitted {
            return Ok(());
        }
        self.subs_emitted = true;

        // --- sload_string: [ret, slot] -> [ptr] ---
        let t_slot = self.alloc_local()?;
        let t_len = self.alloc_local()?;
        let t_ptr = self.alloc_local()?;
        let t_i = self.alloc_local()?;
        {
            let entry = self.sub_sload_string;
            self.asm.place(entry);
            // slot on top
            self.o(op::DUP1);
            self.mstore_const(t_slot); // keep slot
            self.o(op::SLOAD);
            self.o(op::DUP1);
            self.mstore_const(t_len); // [len]
                                      // allocate 32 + ceil32(len)
            self.emit_ceil32();
            self.pushn(32);
            self.o(op::ADD);
            self.emit_heap_alloc_dynamic(); // [ptr]
            self.o(op::DUP1);
            self.mstore_const(t_ptr);
            // mstore(ptr, len)
            self.mload_const(t_len);
            self.o(op::SWAP1);
            self.o(op::MSTORE); // []
                                // base = keccak(slot)
            self.mload_const(t_slot);
            self.emit_hash_one(); // [base]
                                  // i = 0
            self.pushn(0);
            self.mstore_const(t_i);
            let loop_top = self.asm.new_label();
            let done = self.asm.new_label();
            self.asm.place(loop_top);
            // if i*32 >= len: done
            self.mload_const(t_i);
            self.pushn(32);
            self.o(op::MUL); // [base, i32]
            self.mload_const(t_len); // [base, i32, len]
            self.o(op::GT); // len > i32 ? continue : done  (GT: s0>s1 -> len? wait)
                            // Stack was [base, i32, len]; GT pops len (s0) and i32 (s1):
                            // result = len > i32. If 0 → done.
            self.o(op::ISZERO);
            self.asm.push_label(done);
            self.o(op::JUMPI); // [base]
                               // word = sload(base + i)
            self.o(op::DUP1);
            self.mload_const(t_i);
            self.o(op::ADD);
            self.o(op::SLOAD); // [base, word]
                               // mstore(ptr + 32 + i*32, word)
            self.mload_const(t_ptr);
            self.pushn(32);
            self.o(op::ADD);
            self.mload_const(t_i);
            self.pushn(32);
            self.o(op::MUL);
            self.o(op::ADD); // [base, word, dst]
            self.o(op::MSTORE); // [base]
                                // i += 1
            self.mload_const(t_i);
            self.pushn(1);
            self.o(op::ADD);
            self.mstore_const(t_i);
            self.asm.push_label(loop_top);
            self.o(op::JUMP);
            self.asm.place(done);
            self.o(op::POP); // drop base -> [ret]
            self.mload_const(t_ptr); // [ret, ptr]
            self.o(op::SWAP1);
            self.o(op::JUMP);
        }

        // --- sstore_string: [ret, slot, ptr] -> [] ---
        let s_slot = self.alloc_local()?;
        let s_len = self.alloc_local()?;
        let s_ptr = self.alloc_local()?;
        let s_i = self.alloc_local()?;
        {
            let entry = self.sub_sstore_string;
            self.asm.place(entry);
            self.mstore_const(s_ptr); // ptr
            self.o(op::DUP1);
            self.mstore_const(s_slot); // slot (kept on stack too)
                                       // len = mload(ptr); sstore(slot, len)
            self.mload_const(s_ptr);
            self.o(op::MLOAD);
            self.o(op::DUP1);
            self.mstore_const(s_len); // [slot, len]
            self.o(op::SWAP1);
            self.o(op::SSTORE); // []
                                // base = keccak(slot)
            self.mload_const(s_slot);
            self.emit_hash_one(); // [base]
            self.pushn(0);
            self.mstore_const(s_i);
            let loop_top = self.asm.new_label();
            let done = self.asm.new_label();
            self.asm.place(loop_top);
            self.mload_const(s_i);
            self.pushn(32);
            self.o(op::MUL);
            self.mload_const(s_len);
            self.o(op::GT); // len > i32 ?
            self.o(op::ISZERO);
            self.asm.push_label(done);
            self.o(op::JUMPI);
            // word = mload(ptr + 32 + i*32)
            self.mload_const(s_ptr);
            self.pushn(32);
            self.o(op::ADD);
            self.mload_const(s_i);
            self.pushn(32);
            self.o(op::MUL);
            self.o(op::ADD);
            self.o(op::MLOAD); // [base, word]
                               // sstore(base + i, word)
            self.o(op::DUP2);
            self.mload_const(s_i);
            self.o(op::ADD); // [base, word, base+i]
            self.o(op::SSTORE); // [base]
            self.mload_const(s_i);
            self.pushn(1);
            self.o(op::ADD);
            self.mstore_const(s_i);
            self.asm.push_label(loop_top);
            self.o(op::JUMP);
            self.asm.place(done);
            self.o(op::POP); // [ret]
            self.o(op::JUMP);
        }
        Ok(())
    }

    /// Call sload_string; stack: [slot] → [ptr].
    fn call_sload_string(&mut self) {
        let ret = self.asm.new_label();
        self.asm.push_label(ret); // [slot, ret]
        self.o(op::SWAP1); // [ret, slot]
        let entry = self.sub_sload_string;
        self.asm.push_label(entry);
        self.o(op::JUMP);
        self.asm.place(ret); // [ptr]
    }

    /// Call sstore_string; stack: [ptr, slot] → [].
    fn call_sstore_string(&mut self) {
        let ret = self.asm.new_label();
        self.asm.push_label(ret); // [ptr, slot, ret]
        self.o(op::SWAP2); // [ret, slot, ptr]
        let entry = self.sub_sstore_string;
        self.asm.push_label(entry);
        self.o(op::JUMP);
        self.asm.place(ret);
    }
}

mod contract;
mod expr;
mod stmt;

pub use contract::{compile_contract, Artifact};
