//! Expression code generation.

use super::{cerr, CodeGen, CodegenError, LValue, EMPTY_STRING_PTR};
use crate::ast::{BinOp, Expr};
use crate::sema::Ty;
use lsc_evm::opcode::op;
use lsc_primitives::U256;

impl CodeGen<'_> {
    /// Generate an expression; returns its type, or `None` for void calls.
    /// Leaves exactly one value on the stack when `Some`.
    pub(super) fn gen_expr(&mut self, e: &Expr) -> Result<Option<Ty>, CodegenError> {
        match e {
            Expr::Number(v) => {
                self.push(*v);
                Ok(Some(Ty::Uint(256)))
            }
            Expr::Bool(b) => {
                self.pushn(u64::from(*b));
                Ok(Some(Ty::Bool))
            }
            Expr::Str(s) => {
                self.emit_string_literal(s);
                Ok(Some(Ty::String))
            }
            Expr::Ident(name) => self.gen_ident(name).map(Some),
            Expr::Member(base, field) => self.gen_member(base, field),
            Expr::Index(base, index) => {
                // Storage path (mapping/array element read).
                let ty = self.storage_slot_of(&Expr::Index(base.clone(), index.clone()))?;
                match ty {
                    Some(ty) => self.load_from_slot(&ty).map(Some),
                    None => cerr("indexing is only supported on storage mappings and arrays"),
                }
            }
            Expr::Call(callee, args) => self.gen_call(callee, args),
            Expr::Binary(op_, lhs, rhs) => self.gen_binary(*op_, lhs, rhs).map(Some),
            Expr::Not(inner) => {
                self.gen_value(inner)?;
                self.o(op::ISZERO);
                Ok(Some(Ty::Bool))
            }
            Expr::Neg(inner) => {
                let ty = self.gen_value(inner)?;
                self.pushn(0);
                self.o(op::SUB); // 0 - x
                Ok(Some(ty))
            }
            Expr::BitNot(inner) => {
                let ty = self.gen_value(inner)?;
                self.o(op::NOT);
                Ok(Some(ty))
            }
            Expr::Ternary(cond, then, otherwise) => {
                let else_label = self.asm.new_label();
                let end = self.asm.new_label();
                self.gen_value(cond)?;
                self.o(op::ISZERO);
                self.asm.push_label(else_label);
                self.o(op::JUMPI);
                let t1 = self.gen_value(then)?;
                self.asm.push_label(end);
                self.o(op::JUMP);
                self.asm.place(else_label);
                self.gen_value(otherwise)?;
                self.asm.place(end);
                Ok(Some(t1))
            }
            Expr::Assign(lhs, rhs) => {
                self.gen_assign(lhs, rhs)?;
                Ok(None)
            }
            Expr::IncDec { target, increment } => {
                let op_ = if *increment { BinOp::Add } else { BinOp::Sub };
                let rhs = Expr::Binary(op_, target.clone(), Box::new(Expr::Number(U256::ONE)));
                self.gen_assign(target, &rhs)?;
                Ok(None)
            }
        }
    }

    /// Generate an expression that must produce a value.
    pub(super) fn gen_value(&mut self, e: &Expr) -> Result<Ty, CodegenError> {
        match self.gen_expr(e)? {
            Some(ty) => Ok(ty),
            None => cerr("expression has no value in this context"),
        }
    }

    /// Write a string literal into the heap; leaves the pointer.
    fn emit_string_literal(&mut self, s: &str) {
        if s.is_empty() {
            self.pushn(EMPTY_STRING_PTR);
            return;
        }
        let bytes = s.as_bytes();
        let padded = bytes.len().div_ceil(32) * 32;
        self.pushn(32 + padded as u64);
        self.emit_heap_alloc_dynamic(); // [ptr]
                                        // Store length.
        self.pushn(bytes.len() as u64); // [ptr, len]
        self.o(op::DUP2); // [ptr, len, ptr]
        self.o(op::MSTORE); // [ptr]
                            // Store data words.
        for (i, chunk) in bytes.chunks(32).enumerate() {
            let mut word = [0u8; 32];
            word[..chunk.len()].copy_from_slice(chunk);
            self.push(U256::from_be_bytes(word)); // [ptr, word]
            self.o(op::DUP2); // [ptr, word, ptr]
            self.pushn(32 * (i as u64 + 1));
            self.o(op::ADD); // [ptr, word, dst]
            self.o(op::MSTORE); // [ptr]
        }
    }

    fn gen_ident(&mut self, name: &str) -> Result<Ty, CodegenError> {
        // Local variables shadow state variables.
        if let Some((addr, ty)) = self.ctx.lookup(name) {
            self.mload_const(addr);
            return Ok(ty);
        }
        if let Some(var) = self.contract.state_var(name) {
            let ty = var.ty.clone();
            self.pushn(var.slot);
            return self.load_from_slot(&ty);
        }
        match name {
            "now" => {
                self.o(op::TIMESTAMP);
                Ok(Ty::Uint(256))
            }
            "this" => {
                self.o(op::ADDRESS);
                Ok(Ty::Address)
            }
            _ => cerr(format!("unknown identifier `{name}`")),
        }
    }

    /// Load a value of type `ty` from the storage slot on the stack.
    /// [slot] → [value]
    pub(super) fn load_from_slot(&mut self, ty: &Ty) -> Result<Ty, CodegenError> {
        match ty {
            t if t.is_value_type() => {
                self.o(op::SLOAD);
                Ok(t.clone())
            }
            Ty::String => {
                self.call_sload_string();
                Ok(Ty::String)
            }
            Ty::Struct(i) => {
                // Copy the storage struct into a fresh memory struct.
                let idx = *i;
                let fields = self.contract.structs[idx].fields.clone();
                let size = self.contract.structs[idx].slot_count(self.contract);
                self.pushn(size * 32);
                self.emit_heap_alloc_dynamic(); // [slot, ptr] — wait: alloc consumed size
                                                // Stack here: [slot, ptr]
                let mut offset = 0u64;
                for (_, fty) in &fields {
                    // load field
                    self.o(op::DUP2); // [slot, ptr, slot]
                    self.pushn(offset);
                    self.o(op::ADD); // [slot, ptr, fslot]
                    match fty {
                        t if t.is_value_type() => self.o(op::SLOAD),
                        Ty::String => self.call_sload_string(),
                        _ => return cerr("nested composite struct fields are not supported"),
                    }
                    // [slot, ptr, fval]
                    self.o(op::DUP2); // [slot, ptr, fval, ptr]
                    self.pushn(offset * 32);
                    self.o(op::ADD); // [slot, ptr, fval, faddr]
                    self.o(op::MSTORE); // [slot, ptr]
                    offset += self.contract.slots_for(fty);
                }
                self.o(op::SWAP1); // [ptr, slot]
                self.o(op::POP); // [ptr]
                Ok(Ty::Struct(idx))
            }
            Ty::Array(_) | Ty::FixedArray(_, _) => {
                cerr("whole-array reads are not supported; index elements instead")
            }
            Ty::Mapping(_, _) => cerr("mappings cannot be read as values; index them"),
            Ty::Int(_) | Ty::Uint(_) | Ty::Bool | Ty::Address | Ty::Enum(_) => unreachable!(),
        }
    }

    fn gen_member(&mut self, base: &Expr, field: &str) -> Result<Option<Ty>, CodegenError> {
        // Builtin namespaces first.
        if let Expr::Ident(name) = base {
            match (name.as_str(), field) {
                ("msg", "sender") => {
                    self.o(op::CALLER);
                    return Ok(Some(Ty::Address));
                }
                ("msg", "value") => {
                    self.o(op::CALLVALUE);
                    return Ok(Some(Ty::Uint(256)));
                }
                ("block", "timestamp") => {
                    self.o(op::TIMESTAMP);
                    return Ok(Some(Ty::Uint(256)));
                }
                ("block", "number") => {
                    self.o(op::NUMBER);
                    return Ok(Some(Ty::Uint(256)));
                }
                ("block", "coinbase") => {
                    self.o(op::COINBASE);
                    return Ok(Some(Ty::Address));
                }
                ("block", "difficulty") => {
                    self.o(op::DIFFICULTY);
                    return Ok(Some(Ty::Uint(256)));
                }
                ("block", "gaslimit") => {
                    self.o(op::GASLIMIT);
                    return Ok(Some(Ty::Uint(256)));
                }
                ("block", "chainid") => {
                    self.o(op::CHAINID);
                    return Ok(Some(Ty::Uint(256)));
                }
                ("tx", "origin") => {
                    self.o(op::ORIGIN);
                    return Ok(Some(Ty::Address));
                }
                ("tx", "gasprice") => {
                    self.o(op::GASPRICE);
                    return Ok(Some(Ty::Uint(256)));
                }
                _ => {}
            }
            // Enum variant: State.Created
            if let Some((i, info)) = self.contract.enum_by_name(name) {
                let Some(pos) = info.variants.iter().position(|v| v == field) else {
                    return cerr(format!("enum `{name}` has no variant `{field}`"));
                };
                self.pushn(pos as u64);
                return Ok(Some(Ty::Enum(i)));
            }
        }
        // `.length` on a storage array.
        if field == "length" {
            if let Some(Ty::Array(_)) = self.peek_storage_type(base)? {
                let ty = self.storage_slot_of(base)?;
                debug_assert!(matches!(ty, Some(Ty::Array(_))));
                self.o(op::SLOAD);
                return Ok(Some(Ty::Uint(256)));
            }
            if let Some(Ty::String) = self.peek_storage_type(base)? {
                let _ = self.storage_slot_of(base)?;
                self.o(op::SLOAD);
                return Ok(Some(Ty::Uint(256)));
            }
        }
        // `.balance` on an address expression.
        if field == "balance" {
            if let Ok(Some(Ty::Address)) = self.peek_type(base) {
                let ty = self.gen_value(base)?;
                debug_assert_eq!(ty, Ty::Address);
                self.o(op::BALANCE);
                return Ok(Some(Ty::Uint(256)));
            }
        }
        // Storage struct field (paidrents[i].value, or a struct state var).
        if let Some(ty) =
            self.storage_slot_of(&Expr::Member(Box::new(base.clone()), field.to_string()))?
        {
            return self.load_from_slot(&ty).map(Some);
        }
        // Memory struct field.
        let base_ty = self.gen_value(base)?;
        if let Ty::Struct(i) = base_ty {
            let s = &self.contract.structs[i];
            let Some((offset, fty)) = s.field_offset(self.contract, field) else {
                return cerr(format!("struct `{}` has no field `{field}`", s.name));
            };
            self.pushn(offset * 32);
            self.o(op::ADD);
            self.o(op::MLOAD);
            return Ok(Some(fty));
        }
        cerr(format!("unsupported member access `.{field}`"))
    }

    /// Best-effort static type of an expression without emitting code.
    /// Only needs to handle the shapes used by member dispatch above.
    pub(super) fn peek_type(&mut self, e: &Expr) -> Result<Option<Ty>, CodegenError> {
        Ok(match e {
            Expr::Number(_) => Some(Ty::Uint(256)),
            Expr::Bool(_) => Some(Ty::Bool),
            Expr::Str(_) => Some(Ty::String),
            Expr::Ident(name) => {
                if let Some((_, ty)) = self.ctx.lookup(name) {
                    Some(ty)
                } else if let Some(v) = self.contract.state_var(name) {
                    Some(v.ty.clone())
                } else if name == "this" {
                    Some(Ty::Address)
                } else if name == "now" {
                    Some(Ty::Uint(256))
                } else {
                    None
                }
            }
            Expr::Member(base, field) => match (&**base, field.as_str()) {
                (Expr::Ident(n), "sender") if n == "msg" => Some(Ty::Address),
                (Expr::Ident(n), "coinbase") if n == "block" => Some(Ty::Address),
                (Expr::Ident(n), "origin") if n == "tx" => Some(Ty::Address),
                (Expr::Ident(n), _) if n == "msg" || n == "block" || n == "tx" => {
                    Some(Ty::Uint(256))
                }
                _ => {
                    if let Some(Ty::Struct(i)) = self.peek_type(base)? {
                        self.contract.structs[i]
                            .field_offset(self.contract, field)
                            .map(|(_, ty)| ty)
                    } else {
                        None
                    }
                }
            },
            Expr::Index(base, _) => match self.peek_type(base)? {
                Some(Ty::Mapping(_, value)) => Some(*value),
                Some(Ty::Array(inner) | Ty::FixedArray(inner, _)) => Some(*inner),
                _ => None,
            },
            Expr::Call(callee, _) => {
                if let Expr::Ident(name) = &**callee {
                    if name == "address" {
                        return Ok(Some(Ty::Address));
                    }
                    if let Some(f) = self.contract.function(name) {
                        if f.returns.len() == 1 {
                            return Ok(Some(self.contract.resolve_type(&f.returns[0].1)?));
                        }
                    }
                }
                None
            }
            _ => None,
        })
    }

    /// Static storage type of an expression if it denotes a storage path.
    fn peek_storage_type(&mut self, e: &Expr) -> Result<Option<Ty>, CodegenError> {
        Ok(match e {
            Expr::Ident(name) if self.ctx.lookup(name).is_none() => {
                self.contract.state_var(name).map(|v| v.ty.clone())
            }
            Expr::Index(base, _) => match self.peek_storage_type(base)? {
                Some(Ty::Mapping(_, value)) => Some(*value),
                Some(Ty::Array(inner) | Ty::FixedArray(inner, _)) => Some(*inner),
                _ => None,
            },
            Expr::Member(base, field) => match self.peek_storage_type(base)? {
                Some(Ty::Struct(i)) => self.contract.structs[i]
                    .field_offset(self.contract, field)
                    .map(|(_, ty)| ty),
                _ => None,
            },
            _ => None,
        })
    }

    /// If `e` denotes a storage location, emit code leaving its slot on the
    /// stack and return the element type; otherwise emit nothing.
    pub(super) fn storage_slot_of(&mut self, e: &Expr) -> Result<Option<Ty>, CodegenError> {
        match e {
            Expr::Ident(name) => {
                if self.ctx.lookup(name).is_some() {
                    return Ok(None); // locals shadow
                }
                match self.contract.state_var(name) {
                    Some(var) => {
                        self.pushn(var.slot);
                        Ok(Some(var.ty.clone()))
                    }
                    None => Ok(None),
                }
            }
            Expr::Index(base, index) => {
                let Some(base_ty) = self.storage_slot_of(base)? else {
                    return Ok(None);
                };
                match base_ty {
                    Ty::Mapping(key_ty, value_ty) => {
                        // [slot]
                        match *key_ty {
                            Ty::String => {
                                let kty = self.gen_value(index)?;
                                if kty != Ty::String {
                                    return cerr("mapping key must be a string");
                                }
                                // [slot, ptr]
                                self.emit_mapping_slot_string_key()?;
                            }
                            ref k if k.is_value_type() => {
                                let kty = self.gen_value(index)?;
                                if !kty.is_value_type() {
                                    return cerr("mapping key must be a value type");
                                }
                                // [slot, key] → keccak(key ++ slot)
                                self.o(op::SWAP1);
                                self.emit_hash_pair();
                            }
                            _ => return cerr("unsupported mapping key type"),
                        }
                        Ok(Some(*value_ty))
                    }
                    Ty::Array(inner) => {
                        // [slot]; bounds-check then element slot.
                        let t_idx = self.alloc_local()?;
                        let ok = self.asm.new_label();
                        let ity = self.gen_value(index)?;
                        if !ity.is_value_type() {
                            return cerr("array index must be numeric");
                        }
                        self.mstore_const(t_idx); // [slot]
                        self.o(op::DUP1);
                        self.o(op::SLOAD); // [slot, len]
                        self.mload_const(t_idx); // [slot, len, idx]
                        self.o(op::LT); // idx < len
                        self.asm.push_label(ok);
                        self.o(op::JUMPI);
                        self.emit_revert_message("array index out of bounds");
                        self.asm.place(ok); // [slot]
                        self.emit_hash_one(); // [base]
                        self.mload_const(t_idx);
                        let elem_size = self.contract.slots_for(&inner);
                        if elem_size != 1 {
                            self.pushn(elem_size);
                            self.o(op::MUL);
                        }
                        self.o(op::ADD);
                        Ok(Some(*inner))
                    }
                    Ty::FixedArray(inner, n) => {
                        // [slot]
                        let ok = self.asm.new_label();
                        let ity = self.gen_value(index)?;
                        if !ity.is_value_type() {
                            return cerr("array index must be numeric");
                        }
                        // bounds: idx < n
                        self.o(op::DUP1); // [slot, idx, idx]
                        self.pushn(n); // [slot, idx, idx, n]
                        self.o(op::GT); // n > idx
                        self.asm.push_label(ok);
                        self.o(op::JUMPI);
                        self.emit_revert_message("array index out of bounds");
                        self.asm.place(ok); // [slot, idx]
                        let elem_size = self.contract.slots_for(&inner);
                        if elem_size != 1 {
                            self.pushn(elem_size);
                            self.o(op::MUL);
                        }
                        self.o(op::ADD);
                        Ok(Some(*inner))
                    }
                    _ => cerr("only mappings and arrays can be indexed"),
                }
            }
            Expr::Member(base, field) => {
                // Struct field within storage.
                let probe = self.peek_storage_type(base)?;
                let Some(Ty::Struct(i)) = probe else {
                    return Ok(None);
                };
                let Some(base_ty) = self.storage_slot_of(base)? else {
                    return Ok(None);
                };
                debug_assert_eq!(base_ty, Ty::Struct(i));
                let s = &self.contract.structs[i];
                let Some((offset, fty)) = s.field_offset(self.contract, field) else {
                    return cerr(format!("struct `{}` has no field `{field}`", s.name));
                };
                if offset != 0 {
                    self.pushn(offset);
                    self.o(op::ADD);
                }
                Ok(Some(fty))
            }
            _ => Ok(None),
        }
    }

    /// Compute a mapping element slot for a string key.
    /// Stack: [slot, key_ptr] → [element_slot]
    pub(super) fn emit_mapping_slot_string_key(&mut self) -> Result<(), CodegenError> {
        let t_ptr = self.alloc_local()?;
        let t_slot = self.alloc_local()?;
        let t_len = self.alloc_local()?;
        let t_i = self.alloc_local()?;
        self.mstore_const(t_ptr); // [slot]
        self.mstore_const(t_slot); // []
                                   // len = mload(ptr)
        self.mload_const(t_ptr);
        self.o(op::MLOAD);
        self.mstore_const(t_len);
        // dst = fmp (scratch use; not allocated since consumed immediately)
        // copy words
        let loop_top = self.asm.new_label();
        let done = self.asm.new_label();
        self.pushn(0);
        self.mstore_const(t_i);
        self.asm.place(loop_top);
        self.mload_const(t_i);
        self.mload_const(t_len);
        self.o(op::GT); // len > i
        self.o(op::ISZERO);
        self.asm.push_label(done);
        self.o(op::JUMPI);
        // word = mload(ptr + 32 + i)
        self.mload_const(t_ptr);
        self.pushn(32);
        self.o(op::ADD);
        self.mload_const(t_i);
        self.o(op::ADD);
        self.o(op::MLOAD);
        // mstore(fmp + i, word)
        self.mload_const(0x40);
        self.mload_const(t_i);
        self.o(op::ADD);
        self.o(op::MSTORE);
        // i += 32
        self.mload_const(t_i);
        self.pushn(32);
        self.o(op::ADD);
        self.mstore_const(t_i);
        self.asm.push_label(loop_top);
        self.o(op::JUMP);
        self.asm.place(done);
        // mstore(fmp + len, slot)
        self.mload_const(t_slot);
        self.mload_const(0x40);
        self.mload_const(t_len);
        self.o(op::ADD);
        self.o(op::MSTORE);
        // keccak(fmp, len + 32)
        self.mload_const(t_len);
        self.pushn(32);
        self.o(op::ADD);
        self.mload_const(0x40);
        self.o(op::KECCAK256);
        Ok(())
    }

    fn gen_binary(&mut self, op_: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Ty, CodegenError> {
        // Short-circuit logical operators.
        match op_ {
            BinOp::And => {
                let end = self.asm.new_label();
                self.gen_value(lhs)?;
                self.o(op::DUP1);
                self.o(op::ISZERO);
                self.asm.push_label(end);
                self.o(op::JUMPI);
                self.o(op::POP);
                self.gen_value(rhs)?;
                self.asm.place(end);
                return Ok(Ty::Bool);
            }
            BinOp::Or => {
                let end = self.asm.new_label();
                self.gen_value(lhs)?;
                self.o(op::DUP1);
                self.asm.push_label(end);
                self.o(op::JUMPI);
                self.o(op::POP);
                self.gen_value(rhs)?;
                self.asm.place(end);
                return Ok(Ty::Bool);
            }
            _ => {}
        }
        let lt = self.gen_value(lhs)?;
        let rt = self.gen_value(rhs)?;
        // String equality via keccak.
        if (lt == Ty::String || rt == Ty::String) && matches!(op_, BinOp::Eq | BinOp::Ne) {
            if lt != Ty::String || rt != Ty::String {
                return cerr("cannot compare a string with a non-string");
            }
            // [aptr, bptr]
            self.emit_hash_string(); // [aptr, bhash]
            self.o(op::SWAP1); // [bhash, aptr]
            self.emit_hash_string(); // [bhash, ahash]
            self.o(op::EQ);
            if op_ == BinOp::Ne {
                self.o(op::ISZERO);
            }
            return Ok(Ty::Bool);
        }
        if lt == Ty::String || rt == Ty::String {
            return cerr("strings only support == and != comparisons");
        }
        let signed = lt.is_signed() || rt.is_signed();
        let result_ty = match op_ {
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => Ty::Bool,
            _ => {
                if lt.is_value_type() {
                    lt.clone()
                } else {
                    Ty::Uint(256)
                }
            }
        };
        // Stack is [a, b] with b on top.
        match op_ {
            BinOp::Add => self.o(op::ADD),
            BinOp::Mul => self.o(op::MUL),
            BinOp::BitAnd => self.o(op::AND),
            BinOp::BitOr => self.o(op::OR),
            BinOp::BitXor => self.o(op::XOR),
            BinOp::Sub => {
                self.o(op::SWAP1);
                self.o(op::SUB);
            }
            BinOp::Div => {
                self.o(op::SWAP1);
                self.o(if signed { op::SDIV } else { op::DIV });
            }
            BinOp::Mod => {
                self.o(op::SWAP1);
                self.o(if signed { op::SMOD } else { op::MOD });
            }
            BinOp::Eq => self.o(op::EQ),
            BinOp::Ne => {
                self.o(op::EQ);
                self.o(op::ISZERO);
            }
            BinOp::Lt => {
                self.o(op::SWAP1);
                self.o(if signed { op::SLT } else { op::LT });
            }
            BinOp::Gt => {
                self.o(op::SWAP1);
                self.o(if signed { op::SGT } else { op::GT });
            }
            BinOp::Le => {
                // a <= b  ==  !(a > b)
                self.o(op::SWAP1);
                self.o(if signed { op::SGT } else { op::GT });
                self.o(op::ISZERO);
            }
            BinOp::Ge => {
                self.o(op::SWAP1);
                self.o(if signed { op::SLT } else { op::LT });
                self.o(op::ISZERO);
            }
            BinOp::Pow => {
                self.o(op::SWAP1);
                self.o(op::EXP);
            }
            BinOp::Shl => self.o(op::SHL),
            BinOp::Shr => self.o(op::SHR),
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
        Ok(result_ty)
    }

    /// Generate an assignment.
    pub(super) fn gen_assign(&mut self, lhs: &Expr, rhs: &Expr) -> Result<(), CodegenError> {
        let lv = self.classify_lvalue(lhs)?;
        match lv {
            LValue::Local { addr, ty } => {
                let rt = self.gen_value(rhs)?;
                check_assignable(&ty, &rt)?;
                self.mstore_const(addr);
            }
            LValue::Storage { ty } => {
                // classify_lvalue for Storage does NOT emit the slot (it
                // can't — rhs must run first). Re-derive with rhs first.
                let rt = self.gen_value(rhs)?; // [value]
                check_assignable(&ty, &rt)?;
                let slot_ty = self.storage_slot_of(lhs)?; // [value, slot]
                debug_assert!(slot_ty.is_some());
                match ty {
                    t if t.is_value_type() => {
                        self.o(op::SSTORE); // pops slot then value
                    }
                    Ty::String => {
                        // [ptr, slot] expected by call_sstore_string
                        self.call_sstore_string();
                    }
                    Ty::Struct(i) => {
                        self.emit_store_struct_to_storage(i)?;
                    }
                    _ => return cerr("cannot assign to this storage location"),
                }
            }
            LValue::MemWord { ty } => {
                let rt = self.gen_value(rhs)?; // [value]
                check_assignable(&ty, &rt)?;
                self.emit_memword_addr(lhs)?; // [value, addr]
                self.o(op::MSTORE);
            }
        }
        Ok(())
    }

    /// Store a memory struct into storage. Stack: [memptr, base_slot] → [].
    pub(super) fn emit_store_struct_to_storage(
        &mut self,
        struct_idx: usize,
    ) -> Result<(), CodegenError> {
        let fields = self.contract.structs[struct_idx].fields.clone();
        let mut offset = 0u64;
        for (_, fty) in &fields {
            // [memptr, base]
            self.o(op::DUP2); // [memptr, base, memptr]
            self.pushn(offset * 32);
            self.o(op::ADD);
            self.o(op::MLOAD); // [memptr, base, fval]
            self.o(op::DUP2); // [memptr, base, fval, base]
            self.pushn(offset);
            self.o(op::ADD); // [memptr, base, fval, fslot]
            match fty {
                t if t.is_value_type() => self.o(op::SSTORE),
                Ty::String => {
                    // need [ptr, slot]: we have [.., fval(ptr), fslot] ✓
                    self.call_sstore_string();
                }
                _ => return cerr("nested composite struct fields are not supported"),
            }
            offset += self.contract.slots_for(fty);
        }
        self.o(op::POP); // base
        self.o(op::POP); // memptr
        Ok(())
    }

    /// Classify an lvalue without emitting code (except none).
    fn classify_lvalue(&mut self, lhs: &Expr) -> Result<LValue, CodegenError> {
        if let Expr::Ident(name) = lhs {
            if let Some((addr, ty)) = self.ctx.lookup(name) {
                return Ok(LValue::Local { addr, ty });
            }
        }
        if let Some(ty) = self.peek_storage_type(lhs)? {
            return Ok(LValue::Storage { ty });
        }
        // Memory struct field: base.field where base is a memory struct.
        if let Expr::Member(base, field) = lhs {
            if let Some(Ty::Struct(i)) = self.peek_type(base)? {
                let s = &self.contract.structs[i];
                let Some((_, fty)) = s.field_offset(self.contract, field) else {
                    return cerr(format!("struct `{}` has no field `{field}`", s.name));
                };
                return Ok(LValue::MemWord { ty: fty });
            }
        }
        cerr("expression is not assignable")
    }

    /// Emit the memory address of a struct-field lvalue. Stack: → [addr]
    fn emit_memword_addr(&mut self, lhs: &Expr) -> Result<(), CodegenError> {
        let Expr::Member(base, field) = lhs else {
            return cerr("internal: not a memory word lvalue");
        };
        let base_ty = self.gen_value(base)?;
        let Ty::Struct(i) = base_ty else {
            return cerr("internal: memory lvalue base is not a struct");
        };
        let (offset, _) = self.contract.structs[i]
            .field_offset(self.contract, field)
            .ok_or_else(|| CodegenError(format!("no field `{field}`")))?;
        self.pushn(offset * 32);
        self.o(op::ADD);
        Ok(())
    }

    /// Generate a call expression.
    fn gen_call(&mut self, callee: &Expr, args: &[Expr]) -> Result<Option<Ty>, CodegenError> {
        if let Expr::Ident(name) = callee {
            // Casts.
            match name.as_str() {
                "address" => {
                    if args.len() != 1 {
                        return cerr("address() takes one argument");
                    }
                    self.gen_value(&args[0])?;
                    // Mask to 160 bits.
                    self.push((U256::ONE << 160u32) - U256::ONE);
                    self.o(op::AND);
                    return Ok(Some(Ty::Address));
                }
                "payable" => {
                    if args.len() != 1 {
                        return cerr("payable() takes one argument");
                    }
                    self.gen_value(&args[0])?;
                    return Ok(Some(Ty::Address));
                }
                "keccak256" => {
                    if args.len() != 1 {
                        return cerr("keccak256() takes one (string) argument");
                    }
                    let ty = self.gen_value(&args[0])?;
                    if ty != Ty::String {
                        return cerr("keccak256() argument must be a string in this subset");
                    }
                    self.emit_hash_string();
                    return Ok(Some(Ty::Uint(256)));
                }
                "selfdestruct" => {
                    if args.len() != 1 {
                        return cerr("selfdestruct() takes the beneficiary address");
                    }
                    self.gen_value(&args[0])?;
                    self.o(op::SELFDESTRUCT);
                    return Ok(None);
                }
                _ => {}
            }
            if name == "uint" || name == "int" {
                if args.len() != 1 {
                    return cerr("cast takes one argument");
                }
                self.gen_value(&args[0])?;
                return Ok(Some(if name == "uint" {
                    Ty::Uint(256)
                } else {
                    Ty::Int(256)
                }));
            }
            if let Some(bits) = name
                .strip_prefix("uint")
                .and_then(|b| b.parse::<u16>().ok())
            {
                if args.len() != 1 {
                    return cerr("cast takes one argument");
                }
                self.gen_value(&args[0])?;
                if bits < 256 {
                    self.push((U256::ONE << u32::from(bits)) - U256::ONE);
                    self.o(op::AND);
                }
                return Ok(Some(Ty::Uint(bits)));
            }
            // Enum cast: State(x).
            if let Some((i, _)) = self.contract.enum_by_name(name) {
                if args.len() != 1 {
                    return cerr("enum cast takes one argument");
                }
                self.gen_value(&args[0])?;
                return Ok(Some(Ty::Enum(i)));
            }
            // Struct construction.
            if let Some((i, info)) = self.contract.struct_by_name(name) {
                let fields = info.fields.clone();
                if args.len() != fields.len() {
                    return cerr(format!(
                        "struct `{name}` constructor takes {} arguments",
                        fields.len()
                    ));
                }
                let size = self.contract.structs[i].slot_count(self.contract) * 32;
                let t_ptr = self.alloc_local()?;
                self.pushn(size);
                self.emit_heap_alloc_dynamic();
                self.mstore_const(t_ptr);
                let mut offset = 0u64;
                for (arg, (_, fty)) in args.iter().zip(&fields) {
                    let at = self.gen_value(arg)?;
                    check_assignable(fty, &at)?;
                    self.mload_const(t_ptr);
                    self.pushn(offset);
                    self.o(op::ADD);
                    self.o(op::MSTORE);
                    offset += self.contract.slots_for(fty) * 32;
                }
                self.mload_const(t_ptr);
                return Ok(Some(Ty::Struct(i)));
            }
            // Internal/sibling function call.
            if self.contract.function(name).is_some() {
                return self.gen_internal_call(name, args);
            }
            return cerr(format!("unknown function `{name}`"));
        }
        // Member calls.
        if let Expr::Member(base, method) = callee {
            match method.as_str() {
                "transfer" | "send" => {
                    if args.len() != 1 {
                        return cerr(format!("{method}() takes the amount"));
                    }
                    let bt = self.peek_type(base)?;
                    if bt != Some(Ty::Address) {
                        return cerr(format!("`.{method}` is only available on addresses"));
                    }
                    let t_to = self.alloc_local()?;
                    let t_val = self.alloc_local()?;
                    self.gen_value(base)?;
                    self.mstore_const(t_to);
                    self.gen_value(&args[0])?;
                    self.mstore_const(t_val);
                    // CALL(gas=0(+stipend), to, value, 0,0,0,0)
                    self.pushn(0); // outLen
                    self.pushn(0); // outOff
                    self.pushn(0); // inLen
                    self.pushn(0); // inOff
                    self.mload_const(t_val);
                    self.mload_const(t_to);
                    self.pushn(0); // gas (stipend added on value transfer)
                    self.o(op::CALL);
                    if method == "transfer" {
                        let ok = self.asm.new_label();
                        self.asm.push_label(ok);
                        self.o(op::JUMPI);
                        self.emit_revert_message("ether transfer failed");
                        self.asm.place(ok);
                        return Ok(None);
                    }
                    return Ok(Some(Ty::Bool));
                }
                "push" => {
                    if args.len() != 1 {
                        return cerr("push() takes one element");
                    }
                    let Some(Ty::Array(inner)) = self.peek_storage_type(base)? else {
                        return cerr("`.push` is only available on storage arrays");
                    };
                    let elem_size = self.contract.slots_for(&inner);
                    // slot of array
                    let slot_ty = self.storage_slot_of(base)?;
                    debug_assert!(matches!(slot_ty, Some(Ty::Array(_))));
                    // [slot]
                    let t_slot = self.alloc_local()?;
                    let t_len = self.alloc_local()?;
                    self.o(op::DUP1);
                    self.mstore_const(t_slot);
                    self.o(op::SLOAD);
                    self.mstore_const(t_len); // []
                                              // element base = keccak(slot) + len*size
                    let at = self.gen_value(&args[0])?;
                    check_assignable(&inner, &at)?;
                    // [value]
                    self.mload_const(t_slot);
                    self.emit_hash_one();
                    self.mload_const(t_len);
                    if elem_size != 1 {
                        self.pushn(elem_size);
                        self.o(op::MUL);
                    }
                    self.o(op::ADD); // [value, elem_slot]
                    match &*inner {
                        t if t.is_value_type() => self.o(op::SSTORE),
                        Ty::String => self.call_sstore_string(),
                        Ty::Struct(i) => self.emit_store_struct_to_storage(*i)?,
                        _ => return cerr("unsupported array element type for push"),
                    }
                    // len += 1
                    self.mload_const(t_len);
                    self.pushn(1);
                    self.o(op::ADD);
                    self.mload_const(t_slot);
                    self.o(op::SSTORE);
                    return Ok(None);
                }
                _ => {}
            }
        }
        cerr("unsupported call expression")
    }

    /// Internal function call via the memory calling convention.
    fn gen_internal_call(&mut self, name: &str, args: &[Expr]) -> Result<Option<Ty>, CodegenError> {
        let params = self
            .fn_param_slots
            .get(name)
            .ok_or_else(|| CodegenError(format!("function `{name}` has no emitted body")))?
            .clone();
        if params.len() != args.len() {
            return cerr(format!(
                "function `{name}` takes {} arguments",
                params.len()
            ));
        }
        for (arg, (slot, pty)) in args.iter().zip(&params) {
            let at = self.gen_value(arg)?;
            check_assignable(pty, &at)?;
            self.mstore_const(*slot);
        }
        let entry = *self
            .fn_entry
            .get(name)
            .ok_or_else(|| CodegenError(format!("function `{name}` has no entry label")))?;
        let ret = self.asm.new_label();
        self.asm.push_label(ret);
        self.asm.push_label(entry);
        self.o(op::JUMP);
        self.asm.place(ret);
        let returns = self.fn_return_slots.get(name).cloned().unwrap_or_default();
        match returns.len() {
            0 => Ok(None),
            1 => {
                self.mload_const(returns[0].0);
                Ok(Some(returns[0].1.clone()))
            }
            _ => Ok(None), // multi-return calls usable only as statements
        }
    }
}

/// Loose assignment compatibility (numbers flow into any numeric slot).
pub(super) fn check_assignable(target: &Ty, source: &Ty) -> Result<(), CodegenError> {
    let ok = match (target, source) {
        (a, b) if a == b => true,
        (Ty::Uint(_), Ty::Uint(_)) => true,
        (Ty::Int(_), Ty::Int(_) | Ty::Uint(_)) => true,
        (Ty::Uint(_), Ty::Int(_)) => true,
        (Ty::Enum(_), Ty::Uint(_)) | (Ty::Uint(_), Ty::Enum(_)) => true,
        (Ty::Address, Ty::Uint(_)) => false,
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        cerr(format!("cannot assign {source:?} to {target:?}"))
    }
}
