//! Whole-contract emission: dispatcher, external wrappers, getters,
//! constructor/init code, and the final [`Artifact`].

use super::{cerr, CodeGen, CodegenError, EMPTY_STRING_PTR, LOCALS_BASE};
use crate::ast::{FunctionDef, Mutability};
use crate::sema::{ContractInfo, Ty};
use lsc_abi::Abi;
use lsc_evm::opcode::op;
use lsc_primitives::U256;
use std::collections::HashMap;

/// A compiled contract.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Contract name.
    pub name: String,
    /// Deployable init bytecode (constructor args get appended).
    pub bytecode: Vec<u8>,
    /// Runtime bytecode (what ends up on chain).
    pub runtime: Vec<u8>,
    /// The contract ABI.
    pub abi: Abi,
    /// Storage layout: (variable, slot, type rendering).
    pub storage_layout: Vec<(String, u64, String)>,
}

impl Artifact {
    /// Disassemble the runtime bytecode into `offset: mnemonic` rows
    /// (the `solc --asm`-style listing).
    pub fn disassemble_runtime(&self) -> String {
        lsc_evm::opcode::disassemble(&self.runtime)
            .into_iter()
            .map(|(offset, text)| format!("{offset:#06x}: {text}"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Render the storage layout as a table (the `solc --storage-layout`
    /// equivalent; this is what the data-migration layer keys off).
    pub fn storage_layout_table(&self) -> String {
        let mut out = String::from("slot | variable | type\n");
        for (name, slot, ty) in &self.storage_layout {
            out.push_str(&format!("{slot:>4} | {name} | {ty}\n"));
        }
        out
    }
}

impl CodeGen<'_> {
    /// Allocate parameter/return slots and an entry label for every
    /// function, so call sites can be emitted before bodies.
    fn prepare_functions(&mut self) -> Result<(), CodegenError> {
        for f in &self.contract.functions {
            let key = fn_key(f);
            let mut params = Vec::new();
            for (_, ty) in &f.params {
                let ty = self.contract.resolve_type(ty)?;
                params.push((self.alloc_local()?, ty));
            }
            let mut returns = Vec::new();
            for (_, ty) in &f.returns {
                let ty = self.contract.resolve_type(ty)?;
                returns.push((self.alloc_local()?, ty));
            }
            let entry = self.asm.new_label();
            self.fn_entry.insert(key.clone(), entry);
            self.fn_param_slots.insert(key.clone(), params);
            self.fn_return_slots.insert(key, returns);
        }
        Ok(())
    }

    /// Emit a function body behind its entry label (call convention:
    /// `[ret_addr]` on the stack, params pre-written to their slots).
    fn emit_function_body(&mut self, f: &FunctionDef) -> Result<(), CodegenError> {
        let key = fn_key(f);
        let entry = self.fn_entry[&key];
        let params = self.fn_param_slots[&key].clone();
        let returns = self.fn_return_slots[&key].clone();
        self.asm.place(entry);
        // Zero the return slots (functions may be invoked repeatedly within
        // one frame; named returns must start from their defaults).
        for (slot, ty) in &returns {
            if *ty == Ty::String {
                self.pushn(EMPTY_STRING_PTR);
            } else {
                self.pushn(0);
            }
            self.mstore_const(*slot);
        }
        // Scope with params and named returns.
        let mut scope = HashMap::new();
        for ((name, _), (slot, ty)) in f.params.iter().zip(&params) {
            if !name.is_empty() {
                scope.insert(name.clone(), (*slot, ty.clone()));
            }
        }
        for ((name, _), (slot, ty)) in f.returns.iter().zip(&returns) {
            if !name.is_empty() {
                scope.insert(name.clone(), (*slot, ty.clone()));
            }
        }
        self.ctx.scopes.push(scope);
        self.ctx.return_slots = returns;
        self.gen_block(&f.body)?;
        self.ctx.scopes.pop();
        // Implicit return.
        self.o(op::JUMP);
        Ok(())
    }

    /// Emit the calldata-copy prologue shared by wrappers; leaves the arg
    /// blob base address in `t_base`.
    fn emit_copy_calldata_args(&mut self, t_base: u64) -> Result<(), CodegenError> {
        let t_len = self.alloc_local()?;
        self.pushn(4);
        self.o(op::CALLDATASIZE);
        self.o(op::SUB); // size - 4
        self.mstore_const(t_len);
        self.mload_const(0x40);
        self.mstore_const(t_base);
        // fmp = base + ceil32(len)
        self.mload_const(t_len);
        self.emit_ceil32();
        self.mload_const(t_base);
        self.o(op::ADD);
        self.mstore_const(0x40);
        // calldatacopy(base, 4, len)
        self.mload_const(t_len);
        self.pushn(4);
        self.mload_const(t_base);
        self.o(op::CALLDATACOPY);
        Ok(())
    }

    fn emit_nonpayable_check(&mut self) {
        let ok = self.asm.new_label();
        self.o(op::CALLVALUE);
        self.o(op::ISZERO);
        self.asm.push_label(ok);
        self.o(op::JUMPI);
        self.emit_revert_message("function is not payable");
        self.asm.place(ok);
    }

    /// Emit the external wrapper for a declared function.
    fn emit_external_wrapper(
        &mut self,
        f: &FunctionDef,
        wrapper: lsc_evm::asm::Label,
    ) -> Result<(), CodegenError> {
        self.asm.place(wrapper);
        self.o(op::POP); // selector copy
        if f.mutability != Mutability::Payable {
            self.emit_nonpayable_check();
        }
        let key = fn_key(f);
        let params = self.fn_param_slots[&key].clone();
        let returns = self.fn_return_slots[&key].clone();
        if !params.is_empty() {
            let t_base = self.alloc_local()?;
            self.emit_copy_calldata_args(t_base)?;
            self.emit_abi_decode(t_base, &params)?;
        }
        let exit = self.asm.new_label();
        self.asm.push_label(exit);
        let entry = self.fn_entry[&key];
        self.asm.push_label(entry);
        self.o(op::JUMP);
        self.asm.place(exit);
        if returns.is_empty() {
            self.o(op::STOP);
        } else {
            let items: Vec<(Ty, u64)> = returns
                .iter()
                .map(|(slot, ty)| (ty.clone(), *slot))
                .collect();
            self.emit_abi_encode(&items)?;
            self.o(op::SWAP1); // [len, base]
            self.o(op::RETURN);
        }
        Ok(())
    }

    /// Emit the synthesized getter wrapper for a public state variable.
    fn emit_getter(
        &mut self,
        var_name: &str,
        wrapper: lsc_evm::asm::Label,
    ) -> Result<(), CodegenError> {
        let var = self
            .contract
            .state_var(var_name)
            .ok_or_else(|| CodegenError(format!("no state var `{var_name}`")))?
            .clone();
        self.asm.place(wrapper);
        self.o(op::POP);
        self.emit_nonpayable_check();

        // Determine the key chain (mapping keys / array indices).
        let mut keys: Vec<Ty> = Vec::new();
        let mut leaf = var.ty.clone();
        loop {
            match leaf {
                Ty::Mapping(k, v) => {
                    keys.push(*k);
                    leaf = *v;
                }
                Ty::Array(inner) => {
                    keys.push(Ty::Uint(256));
                    leaf = *inner;
                }
                Ty::FixedArray(inner, _) => {
                    keys.push(Ty::Uint(256));
                    leaf = *inner;
                }
                _ => break,
            }
        }
        // Decode keys.
        let mut key_slots: Vec<(u64, Ty)> = Vec::new();
        if !keys.is_empty() {
            let t_base = self.alloc_local()?;
            self.emit_copy_calldata_args(t_base)?;
            for k in &keys {
                key_slots.push((self.alloc_local()?, k.clone()));
            }
            self.emit_abi_decode(t_base, &key_slots)?;
        }
        // Walk the storage path.
        self.pushn(var.slot); // [slot]
        let mut walk = var.ty.clone();
        for (slot, _) in &key_slots {
            match walk {
                Ty::Mapping(k, v) => {
                    match *k {
                        Ty::String => {
                            self.mload_const(*slot); // [mapslot, keyptr]
                            self.emit_mapping_slot_string_key()?;
                        }
                        _ => {
                            self.mload_const(*slot); // [mapslot, key]
                            self.o(op::SWAP1);
                            self.emit_hash_pair();
                        }
                    }
                    walk = *v;
                }
                Ty::Array(inner) => {
                    // bounds check: idx < sload(slot)
                    let ok = self.asm.new_label();
                    self.o(op::DUP1);
                    self.o(op::SLOAD); // [slot, len]
                    self.mload_const(*slot); // [slot, len, idx]
                    self.o(op::LT); // idx < len
                    self.asm.push_label(ok);
                    self.o(op::JUMPI);
                    self.emit_revert_message("array index out of bounds");
                    self.asm.place(ok);
                    self.emit_hash_one();
                    self.mload_const(*slot);
                    let size = self.contract.slots_for(&inner);
                    if size != 1 {
                        self.pushn(size);
                        self.o(op::MUL);
                    }
                    self.o(op::ADD);
                    walk = *inner;
                }
                Ty::FixedArray(inner, n) => {
                    let ok = self.asm.new_label();
                    self.mload_const(*slot);
                    self.pushn(n);
                    self.o(op::GT); // n > idx
                    self.asm.push_label(ok);
                    self.o(op::JUMPI);
                    self.emit_revert_message("array index out of bounds");
                    self.asm.place(ok);
                    self.mload_const(*slot);
                    let size = self.contract.slots_for(&inner);
                    if size != 1 {
                        self.pushn(size);
                        self.o(op::MUL);
                    }
                    self.o(op::ADD);
                    walk = *inner;
                }
                _ => return cerr("getter key chain mismatch"),
            }
        }
        // Load the leaf and encode.
        match walk {
            t if t.is_value_type() => {
                let t_out = self.alloc_local()?;
                self.o(op::SLOAD);
                self.mstore_const(t_out);
                self.emit_abi_encode(&[(t, t_out)])?;
            }
            Ty::String => {
                let t_out = self.alloc_local()?;
                self.call_sload_string();
                self.mstore_const(t_out);
                self.emit_abi_encode(&[(Ty::String, t_out)])?;
            }
            Ty::Struct(i) => {
                // [base_slot]: load each field into temps, encode as tuple.
                let fields = self.contract.structs[i].fields.clone();
                let mut items = Vec::new();
                let mut offset = 0u64;
                for (_, fty) in &fields {
                    let t_out = self.alloc_local()?;
                    self.o(op::DUP1);
                    self.pushn(offset);
                    self.o(op::ADD);
                    match fty {
                        t if t.is_value_type() => self.o(op::SLOAD),
                        Ty::String => self.call_sload_string(),
                        _ => return cerr("nested composite struct fields unsupported in getter"),
                    }
                    self.mstore_const(t_out);
                    items.push((fty.clone(), t_out));
                    offset += self.contract.slots_for(fty);
                }
                self.o(op::POP); // base slot
                self.emit_abi_encode(&items)?;
            }
            _ => return cerr("unsupported public variable type for getter"),
        }
        self.o(op::SWAP1);
        self.o(op::RETURN);
        Ok(())
    }
}

fn fn_key(f: &FunctionDef) -> String {
    if f.is_constructor {
        "constructor".to_string()
    } else {
        f.name.clone()
    }
}

/// Compile a flattened contract into init + runtime bytecode and an ABI.
pub fn compile_contract(info: &ContractInfo) -> Result<Artifact, CodegenError> {
    let abi = info.build_abi()?;

    // ---------- runtime ----------
    let mut rt = CodeGen::new(info, LOCALS_BASE);
    rt.prepare_functions()?;
    rt.emit_fmp_init();
    // Selector dispatch.
    let fallback = rt.asm.new_label();
    rt.o(op::CALLDATASIZE);
    rt.pushn(4);
    rt.o(op::GT); // 4 > size → fallback
    rt.asm.push_label(fallback);
    rt.o(op::JUMPI);
    rt.pushn(0);
    rt.o(op::CALLDATALOAD);
    rt.pushn(224);
    rt.o(op::SHR); // [selector]

    // Wrapper labels per ABI function (getters + declared).
    let mut wrappers: Vec<(String, [u8; 4], lsc_evm::asm::Label, bool)> = Vec::new();
    for af in &abi.functions {
        let label = rt.asm.new_label();
        let is_getter = info.state_var(&af.name).is_some_and(|v| v.public);
        wrappers.push((af.name.clone(), af.selector(), label, is_getter));
    }
    for (_, selector, label, _) in &wrappers {
        rt.o(op::DUP1);
        rt.push(U256::from_be_slice(selector));
        rt.o(op::EQ);
        rt.asm.push_label(*label);
        rt.o(op::JUMPI);
    }
    rt.asm.place(fallback);
    rt.emit_revert_bare();

    // Wrappers.
    for (name, _, label, is_getter) in &wrappers {
        if *is_getter {
            rt.emit_getter(name, *label)?;
        } else {
            let f = info
                .function(name)
                .ok_or_else(|| CodegenError(format!("abi function `{name}` missing body")))?
                .clone();
            rt.emit_external_wrapper(&f, *label)?;
        }
    }
    // Function bodies (reachable via labels only).
    for f in info.functions.clone() {
        if f.is_constructor {
            continue;
        }
        rt.emit_function_body(&f)?;
    }
    rt.emit_subroutines()?;
    let runtime = rt
        .asm
        .assemble()
        .map_err(|e| CodegenError(format!("runtime assembly failed: {e}")))?;
    if runtime.len() > lsc_evm::gas::MAX_CODE_SIZE {
        return cerr(format!(
            "runtime code for `{}` exceeds the EIP-170 size cap ({} bytes)",
            info.name,
            runtime.len()
        ));
    }

    // ---------- init ----------
    let mut init = CodeGen::new(info, LOCALS_BASE);
    init.prepare_functions()?;
    init.emit_fmp_init();
    let end = init.asm.new_label();

    // Copy constructor args (appended after [init][runtime]) into memory.
    let ctor = info.constructor().cloned();
    let has_args = ctor.as_ref().is_some_and(|c| !c.params.is_empty());
    if has_args {
        let t_base = init.alloc_local()?;
        let t_off = init.alloc_local()?;
        let t_len = init.alloc_local()?;
        // off = end_label + runtime_len
        init.asm.push_label(end);
        init.pushn(runtime.len() as u64);
        init.o(op::ADD);
        init.o(op::DUP1);
        init.mstore_const(t_off);
        // len = codesize - off
        init.o(op::CODESIZE);
        init.o(op::SUB); // codesize - off
        init.mstore_const(t_len);
        // base = fmp; fmp += ceil32(len)
        init.mload_const(0x40);
        init.mstore_const(t_base);
        init.mload_const(t_len);
        init.emit_ceil32();
        init.mload_const(t_base);
        init.o(op::ADD);
        init.mstore_const(0x40);
        // codecopy(base, off, len)
        init.mload_const(t_len);
        init.mload_const(t_off);
        init.mload_const(t_base);
        init.o(op::CODECOPY);
        // decode into constructor param slots
        let params = init.fn_param_slots["constructor"].clone();
        init.emit_abi_decode(t_base, &params)?;
    }

    // State variable initializers (paper-era solidity runs them first).
    for var in info.state_vars.clone() {
        let Some(expr) = var.init else { continue };
        let vt = init.gen_value(&expr)?;
        super::expr::check_assignable(&var.ty, &vt)?;
        init.pushn(var.slot);
        match var.ty {
            ref t if t.is_value_type() => init.o(op::SSTORE),
            Ty::String => init.call_sstore_string(),
            _ => return cerr("unsupported state variable initializer type"),
        }
    }

    // Run the constructor body.
    if ctor.is_some() {
        let exit = init.asm.new_label();
        init.asm.push_label(exit);
        let entry = init.fn_entry["constructor"];
        init.asm.push_label(entry);
        init.o(op::JUMP);
        init.asm.place(exit);
    }

    // Return the runtime code.
    init.pushn(runtime.len() as u64);
    init.asm.push_label(end);
    init.pushn(0);
    init.o(op::CODECOPY); // codecopy(0, end, len)
    init.pushn(runtime.len() as u64);
    init.pushn(0);
    init.o(op::RETURN);

    // Bodies callable from the constructor.
    for f in info.functions.clone() {
        init.emit_function_body(&f)?;
    }
    init.emit_subroutines()?;
    init.asm.place_raw(end);
    init.asm.extend_raw(runtime.clone());
    let bytecode = init
        .asm
        .assemble()
        .map_err(|e| CodegenError(format!("init assembly failed: {e}")))?;

    let storage_layout = info
        .state_vars
        .iter()
        .map(|v| (v.name.clone(), v.slot, format!("{:?}", v.ty)))
        .collect();

    Ok(Artifact {
        name: info.name.clone(),
        bytecode,
        runtime,
        abi,
        storage_layout,
    })
}
