//! Statement code generation and the ABI encode/decode helpers.

use super::{cerr, expr::check_assignable, CodeGen, CodegenError, EMPTY_STRING_PTR};
use crate::ast::{Expr, Stmt};
use crate::sema::Ty;
use lsc_evm::opcode::op;
use std::collections::HashMap;

impl CodeGen<'_> {
    pub(super) fn gen_block(&mut self, stmts: &[Stmt]) -> Result<(), CodegenError> {
        self.ctx.scopes.push(HashMap::new());
        for stmt in stmts {
            self.gen_stmt(stmt)?;
        }
        self.ctx.scopes.pop();
        Ok(())
    }

    pub(super) fn gen_stmt(&mut self, stmt: &Stmt) -> Result<(), CodegenError> {
        match stmt {
            Stmt::VarDecl { ty, name, init } => {
                let ty = self.contract.resolve_type(ty)?;
                if matches!(ty, Ty::Mapping(_, _)) {
                    return cerr("mappings cannot be declared as locals");
                }
                let addr = self.alloc_local()?;
                match init {
                    Some(e) => {
                        let et = self.gen_value(e)?;
                        check_assignable(&ty, &et)?;
                    }
                    None => {
                        // Zero default; strings point at the canonical
                        // empty string.
                        if ty == Ty::String {
                            self.pushn(EMPTY_STRING_PTR);
                        } else {
                            self.pushn(0);
                        }
                    }
                }
                self.mstore_const(addr);
                self.ctx
                    .scopes
                    .last_mut()
                    .expect("inside a block")
                    .insert(name.clone(), (addr, ty));
                Ok(())
            }
            Stmt::Expr(e) => {
                if self.gen_expr(e)?.is_some() {
                    self.o(op::POP);
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let else_label = self.asm.new_label();
                let end = self.asm.new_label();
                self.gen_value(cond)?;
                self.o(op::ISZERO);
                self.asm.push_label(else_label);
                self.o(op::JUMPI);
                self.gen_block(then_branch)?;
                self.asm.push_label(end);
                self.o(op::JUMP);
                self.asm.place(else_label);
                self.gen_block(else_branch)?;
                self.asm.place(end);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let top = self.asm.new_label();
                let exit = self.asm.new_label();
                self.asm.place(top);
                self.gen_value(cond)?;
                self.o(op::ISZERO);
                self.asm.push_label(exit);
                self.o(op::JUMPI);
                self.ctx.loops.push((top, exit));
                self.gen_block(body)?;
                self.ctx.loops.pop();
                self.asm.push_label(top);
                self.o(op::JUMP);
                self.asm.place(exit);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                post,
                body,
            } => {
                self.ctx.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.gen_stmt(init)?;
                }
                let top = self.asm.new_label();
                let cont = self.asm.new_label();
                let exit = self.asm.new_label();
                self.asm.place(top);
                if let Some(cond) = cond {
                    self.gen_value(cond)?;
                    self.o(op::ISZERO);
                    self.asm.push_label(exit);
                    self.o(op::JUMPI);
                }
                self.ctx.loops.push((cont, exit));
                self.gen_block(body)?;
                self.ctx.loops.pop();
                self.asm.place(cont);
                if let Some(post) = post {
                    if self.gen_expr(post)?.is_some() {
                        self.o(op::POP);
                    }
                }
                self.asm.push_label(top);
                self.o(op::JUMP);
                self.asm.place(exit);
                self.ctx.scopes.pop();
                Ok(())
            }
            Stmt::Return(value) => {
                if let Some(value) = value {
                    let slots = self.ctx.return_slots.clone();
                    if slots.is_empty() {
                        return cerr("function has no return values");
                    }
                    let vt = self.gen_value(value)?;
                    check_assignable(&slots[0].1, &vt)?;
                    self.mstore_const(slots[0].0);
                }
                // Jump back to the caller: stack is exactly [ret_addr].
                self.o(op::JUMP);
                Ok(())
            }
            Stmt::Require { cond, message } => {
                let ok = self.asm.new_label();
                self.gen_value(cond)?;
                self.asm.push_label(ok);
                self.o(op::JUMPI);
                match message {
                    Some(m) => self.emit_revert_message(m),
                    None => self.emit_revert_bare(),
                }
                self.asm.place(ok);
                Ok(())
            }
            Stmt::Revert(message) => {
                match message {
                    Some(m) => self.emit_revert_message(m),
                    None => self.emit_revert_bare(),
                }
                Ok(())
            }
            Stmt::Emit { name, args } => self.gen_emit(name, args),
            Stmt::Break => {
                let Some((_, exit)) = self.ctx.loops.last().copied() else {
                    return cerr("`break` outside of a loop");
                };
                self.asm.push_label(exit);
                self.o(op::JUMP);
                Ok(())
            }
            Stmt::Continue => {
                let Some((cont, _)) = self.ctx.loops.last().copied() else {
                    return cerr("`continue` outside of a loop");
                };
                self.asm.push_label(cont);
                self.o(op::JUMP);
                Ok(())
            }
            Stmt::Block(stmts) => self.gen_block(stmts),
            Stmt::Placeholder => cerr("`_` placeholder is only valid inside a modifier body"),
        }
    }

    fn gen_emit(&mut self, name: &str, args: &[Expr]) -> Result<(), CodegenError> {
        let event = self
            .contract
            .event(name)
            .ok_or_else(|| CodegenError(format!("unknown event `{name}`")))?
            .clone();
        if event.params.len() != args.len() {
            return cerr(format!(
                "event `{name}` takes {} arguments",
                event.params.len()
            ));
        }
        // Resolve parameter types and the topic-0 signature hash.
        let mut sig_args = Vec::new();
        let mut resolved = Vec::new();
        for (_, ty, indexed) in &event.params {
            let rty = self.contract.resolve_type(ty)?;
            sig_args.push(self.contract.abi_type(&rty)?.canonical());
            resolved.push((rty, *indexed));
        }
        let signature = format!("{}({})", event.name, sig_args.join(","));
        let topic0 = lsc_primitives::keccak256(signature.as_bytes());

        // Evaluate every argument left-to-right into temps.
        let mut temps = Vec::with_capacity(args.len());
        for (arg, (ty, _)) in args.iter().zip(&resolved) {
            let at = self.gen_value(arg)?;
            check_assignable(ty, &at)?;
            let slot = self.alloc_local()?;
            self.mstore_const(slot);
            temps.push(slot);
        }
        let indexed: Vec<u64> = resolved
            .iter()
            .zip(&temps)
            .filter(|((ty, idx), _)| {
                *idx && ty.is_value_type() // indexed strings unsupported
            })
            .map(|(_, slot)| *slot)
            .collect();
        for ((ty, idx), _) in resolved.iter().zip(&temps) {
            if *idx && !ty.is_value_type() {
                return cerr("indexed dynamic event parameters are not supported");
            }
        }
        let unindexed: Vec<(Ty, u64)> = resolved
            .iter()
            .zip(&temps)
            .filter(|((_, idx), _)| !*idx)
            .map(|((ty, _), slot)| (ty.clone(), *slot))
            .collect();

        // Push topics deepest-first: last indexed … first indexed, topic0.
        for slot in indexed.iter().rev() {
            self.mload_const(*slot);
        }
        self.push(lsc_primitives::U256::from_be_bytes(topic0));
        // Encode unindexed data → [base, len] → want [len, base].
        self.emit_abi_encode(&unindexed)?;
        self.o(op::SWAP1);
        let n_topics = 1 + indexed.len() as u8;
        self.o(op::LOG0 + n_topics);
        Ok(())
    }

    /// ABI-encode values held in local slots into fresh heap memory.
    /// Leaves `[base, byte_len]` on the stack.
    pub(super) fn emit_abi_encode(&mut self, items: &[(Ty, u64)]) -> Result<(), CodegenError> {
        let t_base = self.alloc_local()?;
        let t_tail = self.alloc_local()?;
        let head = 32 * items.len() as u64;
        self.mload_const(0x40);
        self.mstore_const(t_base);
        self.pushn(head);
        self.mstore_const(t_tail);
        for (i, (ty, slot)) in items.iter().enumerate() {
            match ty {
                t if t.is_value_type() => {
                    self.mload_const(*slot);
                    self.mload_const(t_base);
                    self.pushn(32 * i as u64);
                    self.o(op::ADD);
                    self.o(op::MSTORE);
                }
                Ty::String => {
                    // head = current tail offset
                    self.mload_const(t_tail);
                    self.mload_const(t_base);
                    self.pushn(32 * i as u64);
                    self.o(op::ADD);
                    self.o(op::MSTORE);
                    // copy [len][data…] into base + tail
                    let t_src = self.alloc_local()?;
                    let t_len = self.alloc_local()?;
                    self.mload_const(*slot);
                    self.mstore_const(t_src);
                    self.mload_const(t_src);
                    self.o(op::MLOAD);
                    self.mstore_const(t_len);
                    // dst = base + tail
                    self.mload_const(t_base);
                    self.mload_const(t_tail);
                    self.o(op::ADD); // [dst]
                                     // src = ptr, len bytes = 32 + ceil32(len)
                    self.mload_const(t_src); // [dst, src]
                    self.mload_const(t_len);
                    self.emit_ceil32();
                    self.pushn(32);
                    self.o(op::ADD); // [dst, src, nbytes]
                    self.emit_memcpy()?;
                    // tail += 32 + ceil32(len)
                    self.mload_const(t_tail);
                    self.mload_const(t_len);
                    self.emit_ceil32();
                    self.o(op::ADD);
                    self.pushn(32);
                    self.o(op::ADD);
                    self.mstore_const(t_tail);
                }
                _ => return cerr("only value types and strings can be ABI-encoded here"),
            }
        }
        // fmp = base + tail
        self.mload_const(t_base);
        self.mload_const(t_tail);
        self.o(op::ADD);
        self.mstore_const(0x40);
        self.mload_const(t_base);
        self.mload_const(t_tail);
        Ok(())
    }

    /// Word-strided memcpy. Stack: `[dst, src, len_bytes]` → `[]`.
    /// May over-copy up to 31 bytes past `len` (targets are always padded).
    pub(super) fn emit_memcpy(&mut self) -> Result<(), CodegenError> {
        let t_dst = self.alloc_local()?;
        let t_src = self.alloc_local()?;
        let t_len = self.alloc_local()?;
        let t_i = self.alloc_local()?;
        self.mstore_const(t_len);
        self.mstore_const(t_src);
        self.mstore_const(t_dst);
        self.pushn(0);
        self.mstore_const(t_i);
        let top = self.asm.new_label();
        let done = self.asm.new_label();
        self.asm.place(top);
        self.mload_const(t_i);
        self.mload_const(t_len);
        self.o(op::GT); // len > i
        self.o(op::ISZERO);
        self.asm.push_label(done);
        self.o(op::JUMPI);
        self.mload_const(t_src);
        self.mload_const(t_i);
        self.o(op::ADD);
        self.o(op::MLOAD);
        self.mload_const(t_dst);
        self.mload_const(t_i);
        self.o(op::ADD);
        self.o(op::MSTORE);
        self.mload_const(t_i);
        self.pushn(32);
        self.o(op::ADD);
        self.mstore_const(t_i);
        self.asm.push_label(top);
        self.o(op::JUMP);
        self.asm.place(done);
        Ok(())
    }

    /// ABI-decode parameters from memory at `mload(t_base)` into locals.
    pub(super) fn emit_abi_decode(
        &mut self,
        t_base: u64,
        params: &[(u64, Ty)],
    ) -> Result<(), CodegenError> {
        for (i, (slot, ty)) in params.iter().enumerate() {
            match ty {
                t if t.is_value_type() => {
                    self.mload_const(t_base);
                    self.pushn(32 * i as u64);
                    self.o(op::ADD);
                    self.o(op::MLOAD);
                    if *t == Ty::Address {
                        self.push(
                            (lsc_primitives::U256::ONE << 160u32) - lsc_primitives::U256::ONE,
                        );
                        self.o(op::AND);
                    }
                    self.mstore_const(*slot);
                }
                Ty::String => {
                    // offset word → pointer into the copied arg blob.
                    self.mload_const(t_base);
                    self.pushn(32 * i as u64);
                    self.o(op::ADD);
                    self.o(op::MLOAD);
                    self.mload_const(t_base);
                    self.o(op::ADD);
                    self.mstore_const(*slot);
                }
                _ => return cerr("unsupported parameter type (value types and strings only)"),
            }
        }
        Ok(())
    }
}
