//! Robustness: the compiler front end must never panic — random byte
//! soup, random token sequences and mutated valid sources all have to
//! come back as `Ok` or a structured `Err`.

use lsc_solc::compile_source;
use proptest::prelude::*;

/// A valid seed program we mutate.
const SEED: &str = r#"
contract Seed {
    uint public x;
    string public s;
    mapping(address => uint) public m;
    event E(uint v);
    constructor (uint _x) public { x = _x; }
    function f(uint a, uint b) public returns (uint) {
        for (uint i = 0; i < a; i++) { x += i % (b + 1); }
        emit E(x);
        return x;
    }
}
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_text_never_panics(text in "\\PC{0,200}") {
        let _ = compile_source(&text);
    }

    #[test]
    fn random_token_soup_never_panics(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("contract"), Just("function"), Just("uint"), Just("string"),
                Just("mapping"), Just("public"), Just("payable"), Just("returns"),
                Just("{"), Just("}"), Just("("), Just(")"), Just(";"), Just(","),
                Just("="), Just("+"), Just("if"), Just("while"), Just("return"),
                Just("x"), Just("y"), Just("42"), Just("=>"), Just("["), Just("]"),
                Just("memory"), Just("require"), Just("emit"), Just("."),
            ],
            0..60,
        )
    ) {
        let source = tokens.join(" ");
        let _ = compile_source(&source);
    }

    #[test]
    fn truncations_of_valid_source_never_panic(cut in 0usize..420) {
        let cut = cut.min(SEED.len());
        // Cut on a char boundary (SEED is ASCII so any index works).
        let _ = compile_source(&SEED[..cut]);
    }

    #[test]
    fn byte_mutations_of_valid_source_never_panic(
        position in 0usize..420,
        replacement in prop_oneof![Just('('), Just('}'), Just(';'), Just('@'), Just('0'), Just('"')],
    ) {
        let mut source: Vec<char> = SEED.chars().collect();
        let position = position.min(source.len() - 1);
        source[position] = replacement;
        let mutated: String = source.into_iter().collect();
        let _ = compile_source(&mutated);
    }
}

#[test]
fn seed_itself_compiles() {
    assert!(compile_source(SEED).is_ok());
}
