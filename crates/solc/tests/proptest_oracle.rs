//! Property-based compiler verification: generate random expressions,
//! compile them into a contract, execute through the full
//! compile→deploy→call pipeline and compare against a Rust oracle that
//! evaluates the same expression tree with EVM semantics.

use lsc_abi::AbiValue;
use lsc_chain::{LocalNode, Transaction};
use lsc_primitives::U256;
use lsc_solc::compile_single;
use proptest::prelude::*;

/// An expression tree over three uint parameters a, b, c.
#[derive(Debug, Clone)]
enum E {
    A,
    B,
    C,
    Lit(u64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Mod(Box<E>, Box<E>),
    Ternary(Box<B>, Box<E>, Box<E>),
}

/// A boolean expression tree.
#[derive(Debug, Clone)]
enum B {
    Lt(Box<E>, Box<E>),
    Ge(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
    And(Box<B>, Box<B>),
    Or(Box<B>, Box<B>),
    Not(Box<B>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::A => "a".into(),
            E::B => "b".into(),
            E::C => "c".into(),
            E::Lit(v) => v.to_string(),
            E::Add(x, y) => format!("({} + {})", x.render(), y.render()),
            E::Sub(x, y) => format!("({} - {})", x.render(), y.render()),
            E::Mul(x, y) => format!("({} * {})", x.render(), y.render()),
            E::Div(x, y) => format!("({} / {})", x.render(), y.render()),
            E::Mod(x, y) => format!("({} % {})", x.render(), y.render()),
            E::Ternary(c, t, f) => {
                format!("({} ? {} : {})", c.render(), t.render(), f.render())
            }
        }
    }

    /// Oracle evaluation with EVM semantics (wrapping, div-by-zero = 0).
    fn eval(&self, a: U256, b: U256, c: U256) -> U256 {
        match self {
            E::A => a,
            E::B => b,
            E::C => c,
            E::Lit(v) => U256::from_u64(*v),
            E::Add(x, y) => x.eval(a, b, c).wrapping_add(y.eval(a, b, c)),
            E::Sub(x, y) => x.eval(a, b, c).wrapping_sub(y.eval(a, b, c)),
            E::Mul(x, y) => x.eval(a, b, c).wrapping_mul(y.eval(a, b, c)),
            E::Div(x, y) => x.eval(a, b, c).div_rem(y.eval(a, b, c)).0,
            E::Mod(x, y) => x.eval(a, b, c).div_rem(y.eval(a, b, c)).1,
            E::Ternary(cond, t, f) => {
                if cond.eval(a, b, c) {
                    t.eval(a, b, c)
                } else {
                    f.eval(a, b, c)
                }
            }
        }
    }
}

impl B {
    fn render(&self) -> String {
        match self {
            B::Lt(x, y) => format!("({} < {})", x.render(), y.render()),
            B::Ge(x, y) => format!("({} >= {})", x.render(), y.render()),
            B::Eq(x, y) => format!("({} == {})", x.render(), y.render()),
            B::And(x, y) => format!("({} && {})", x.render(), y.render()),
            B::Or(x, y) => format!("({} || {})", x.render(), y.render()),
            B::Not(x) => format!("(!{})", x.render()),
        }
    }

    fn eval(&self, a: U256, b: U256, c: U256) -> bool {
        match self {
            B::Lt(x, y) => x.eval(a, b, c) < y.eval(a, b, c),
            B::Ge(x, y) => x.eval(a, b, c) >= y.eval(a, b, c),
            B::Eq(x, y) => x.eval(a, b, c) == y.eval(a, b, c),
            B::And(x, y) => x.eval(a, b, c) && y.eval(a, b, c),
            B::Or(x, y) => x.eval(a, b, c) || y.eval(a, b, c),
            B::Not(x) => !x.eval(a, b, c),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::A),
        Just(E::B),
        Just(E::C),
        (0u64..1000).prop_map(E::Lit),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        let bexpr =
            (inner.clone(), inner.clone()).prop_map(|(x, y)| B::Lt(Box::new(x), Box::new(y)));
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Add(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Sub(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Mul(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Div(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Mod(Box::new(x), Box::new(y))),
            (bexpr, inner.clone(), inner).prop_map(|(c, t, f)| E::Ternary(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
        ]
    })
}

fn arb_bool_expr() -> impl Strategy<Value = B> {
    let leaf = prop_oneof![
        (arb_expr(), arb_expr()).prop_map(|(x, y)| B::Lt(Box::new(x), Box::new(y))),
        (arb_expr(), arb_expr()).prop_map(|(x, y)| B::Ge(Box::new(x), Box::new(y))),
        (arb_expr(), arb_expr()).prop_map(|(x, y)| B::Eq(Box::new(x), Box::new(y))),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| B::And(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| B::Or(Box::new(x), Box::new(y))),
            inner.prop_map(|x| B::Not(Box::new(x))),
        ]
    })
}

/// Compile a one-function contract and evaluate it on chain.
fn run_on_chain(body: &str, returns: &str, args: &[u64]) -> AbiValue {
    let source = format!(
        "contract T {{ function f(uint a, uint b, uint c) public pure returns ({returns}) {{ return {body}; }} }}"
    );
    let artifact = compile_single(&source, "T").expect("generated source compiles");
    let mut node = LocalNode::new(1);
    let from = node.accounts()[0];
    let receipt = node
        .send_transaction(Transaction::deploy(from, artifact.bytecode.clone()))
        .expect("deploy accepted");
    assert!(receipt.is_success(), "deployment reverted");
    let address = receipt.contract_address.unwrap();
    let f = artifact.abi.function("f").unwrap();
    let call = f
        .encode_call(&[
            AbiValue::uint(args[0]),
            AbiValue::uint(args[1]),
            AbiValue::uint(args[2]),
        ])
        .unwrap();
    let result = node.call(from, address, call);
    assert!(result.success, "call reverted: {:?}", result.halt);
    f.decode_output(&result.output).unwrap().remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_expressions_match_oracle(
        expr in arb_expr(),
        a in 0u64..10_000,
        b in 0u64..10_000,
        c in 0u64..10_000,
    ) {
        let expected = expr.eval(U256::from_u64(a), U256::from_u64(b), U256::from_u64(c));
        let got = run_on_chain(&expr.render(), "uint", &[a, b, c]);
        prop_assert_eq!(got.as_uint().unwrap(), expected, "expr: {}", expr.render());
    }

    #[test]
    fn compiled_boolean_expressions_match_oracle(
        expr in arb_bool_expr(),
        a in 0u64..100,
        b in 0u64..100,
        c in 0u64..100,
    ) {
        let expected = expr.eval(U256::from_u64(a), U256::from_u64(b), U256::from_u64(c));
        let got = run_on_chain(&expr.render(), "bool", &[a, b, c]);
        prop_assert_eq!(got.as_bool().unwrap(), expected, "expr: {}", expr.render());
    }

    #[test]
    fn loops_match_iterative_oracle(n in 0u64..200, step in 1u64..7) {
        // sum of `step`-strided values below n.
        let source = format!(
            "contract T {{ function f(uint a, uint b, uint c) public pure returns (uint total) {{
                for (uint i = 0; i < a; i += {step}) {{ total += i; }}
                c; b;
            }} }}"
        );
        let artifact = compile_single(&source, "T").unwrap();
        let mut node = LocalNode::new(1);
        let from = node.accounts()[0];
        let address = node
            .send_transaction(Transaction::deploy(from, artifact.bytecode.clone()))
            .unwrap()
            .contract_address
            .unwrap();
        let f = artifact.abi.function("f").unwrap();
        let call = f
            .encode_call(&[AbiValue::uint(n), AbiValue::uint(0), AbiValue::uint(0)])
            .unwrap();
        let result = node.call(from, address, call);
        prop_assert!(result.success);
        let got = f.decode_output(&result.output).unwrap()[0].as_u64().unwrap();
        let expected: u64 = (0..n).step_by(step as usize).sum();
        prop_assert_eq!(got, expected);
    }
}
