//! Compiler diagnostics and language-corner tests: every rejection path
//! should produce a targeted error, and the supported corners should work.

use lsc_abi::AbiValue;
use lsc_chain::{LocalNode, Transaction};
use lsc_primitives::U256;
use lsc_solc::{compile_single, compile_source, CompileError};

fn err_of(source: &str) -> String {
    match compile_source(source) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("expected a compile error for:\n{source}"),
    }
}

#[test]
fn parse_errors_carry_line_numbers() {
    let message = err_of("contract C {\n  function f() public {\n    uint x = ;\n  }\n}");
    assert!(message.contains("line 3"), "{message}");
    assert!(message.contains("expected expression"), "{message}");
}

#[test]
fn unknown_identifier_named() {
    let message = err_of("contract C { function f() public { missing = 1; } }");
    assert!(
        message.contains("not assignable") || message.contains("missing"),
        "{message}"
    );
    let message = err_of("contract C { function f() public returns (uint) { return missing; } }");
    assert!(message.contains("missing"), "{message}");
}

#[test]
fn unknown_type_named() {
    let message = err_of("contract C { Floof x; }");
    assert!(message.contains("Floof"), "{message}");
}

#[test]
fn unknown_base_contract_named() {
    let message = err_of("contract C is Ghost { }");
    assert!(message.contains("Ghost"), "{message}");
}

#[test]
fn multiple_inheritance_rejected_clearly() {
    let message = err_of("contract A {} contract B {} contract C is A, B { }");
    assert!(message.contains("single base"), "{message}");
}

#[test]
fn abstract_functions_rejected() {
    let message = err_of("contract C { function f() public; }");
    assert!(message.contains("abstract"), "{message}");
}

#[test]
fn break_outside_loop_rejected() {
    let message = err_of("contract C { function f() public { break; } }");
    assert!(message.contains("break"), "{message}");
    let message = err_of("contract C { function f() public { continue; } }");
    assert!(message.contains("continue"), "{message}");
}

#[test]
fn string_arithmetic_rejected() {
    let message =
        err_of(r#"contract C { function f() public returns (uint) { return "a" + 1; } }"#);
    assert!(message.contains("string"), "{message}");
}

#[test]
fn wrong_event_arity_rejected() {
    let message = err_of("contract C { event E(uint a); function f() public { emit E(); } }");
    assert!(message.contains('1'), "{message}");
    let message = err_of("contract C { function f() public { emit Ghost(); } }");
    assert!(message.contains("Ghost"), "{message}");
}

#[test]
fn mapping_locals_rejected() {
    let message = err_of("contract C { function f() public { mapping(uint => uint) m; } }");
    assert!(message.contains("mapping"), "{message}");
}

#[test]
fn getter_collision_rejected() {
    let message = err_of("contract C { uint public f; function f() public {} }");
    assert!(message.contains("collides"), "{message}");
}

#[test]
fn unknown_contract_requested() {
    let result = compile_single("contract A {}", "B");
    assert!(matches!(result, Err(CompileError::UnknownContract(name)) if name == "B"));
}

// ---------- language corners that must work ----------

fn eval(source: &str, fn_name: &str, args: &[AbiValue]) -> Vec<AbiValue> {
    let artifact = compile_single(source, "C").expect("compiles");
    let mut node = LocalNode::new(1);
    let from = node.accounts()[0];
    let receipt = node
        .send_transaction(Transaction::deploy(from, artifact.bytecode.clone()))
        .unwrap();
    assert!(receipt.is_success());
    let address = receipt.contract_address.unwrap();
    let f = artifact.abi.function(fn_name).unwrap();
    let result = node.call(from, address, f.encode_call(args).unwrap());
    assert!(result.success, "call reverted: {:?}", result.halt);
    f.decode_output(&result.output).unwrap()
}

#[test]
fn storage_struct_copies_to_memory() {
    let source = r#"
        contract C {
            struct P { uint a; uint b; }
            P stored;
            constructor () public { stored = P(7, 9); }
            function read() public view returns (uint, uint) {
                P memory p = stored;
                return p.a;
            }
            function readB() public view returns (uint) {
                P memory p = stored;
                return p.b;
            }
        }
    "#;
    // Note: multi-value `return (a, b)` is not in the subset; read fields
    // separately.
    let source = source.replace("returns (uint, uint)", "returns (uint)");
    let out = eval(&source, "read", &[]);
    assert_eq!(out[0].as_u64(), Some(7));
    let out = eval(&source, "readB", &[]);
    assert_eq!(out[0].as_u64(), Some(9));
}

#[test]
fn memory_struct_field_assignment() {
    let source = r#"
        contract C {
            struct P { uint a; uint b; }
            function f() public pure returns (uint) {
                P memory p = P(1, 2);
                p.a = 10;
                p.b = p.b + p.a;
                return p.a + p.b;
            }
        }
    "#;
    assert_eq!(eval(source, "f", &[])[0].as_u64(), Some(22));
}

#[test]
fn while_with_complex_condition() {
    let source = r#"
        contract C {
            function f(uint n) public pure returns (uint steps) {
                uint x = n;
                while (x > 1 && steps < 100) {
                    x = x % 2 == 0 ? x / 2 : x - 1;
                    steps++;
                }
            }
        }
    "#;
    assert_eq!(
        eval(source, "f", &[AbiValue::uint(16)])[0].as_u64(),
        Some(4)
    );
}

#[test]
fn string_length_member() {
    let source = r#"
        contract C {
            string public s;
            function set(string memory v) public { s = v; }
            function len() public view returns (uint) { return s.length; }
        }
    "#;
    let artifact = compile_single(source, "C").unwrap();
    let mut node = LocalNode::new(1);
    let from = node.accounts()[0];
    let address = node
        .send_transaction(Transaction::deploy(from, artifact.bytecode.clone()))
        .unwrap()
        .contract_address
        .unwrap();
    let set = artifact.abi.function("set").unwrap();
    node.send_transaction(Transaction::call(
        from,
        address,
        set.encode_call(&[AbiValue::string("hello")]).unwrap(),
    ))
    .unwrap();
    let len = artifact.abi.function("len").unwrap();
    let result = node.call(from, address, len.encode_call(&[]).unwrap());
    assert_eq!(U256::from_be_slice(&result.output), U256::from_u64(5));
}

#[test]
fn send_returns_bool_instead_of_reverting() {
    let source = r#"
        contract C {
            function trySend(address target) public payable returns (bool) {
                return target.send(msg.value);
            }
        }
    "#;
    // Just compiles and deploys; behavioural check happens in core tests.
    assert!(compile_single(source, "C").is_ok());
}

#[test]
fn chained_else_if() {
    let source = r#"
        contract C {
            function grade(uint score) public pure returns (uint) {
                if (score >= 90) { return 1; }
                else if (score >= 50) { return 2; }
                else { return 3; }
            }
        }
    "#;
    assert_eq!(
        eval(source, "grade", &[AbiValue::uint(95)])[0].as_u64(),
        Some(1)
    );
    assert_eq!(
        eval(source, "grade", &[AbiValue::uint(60)])[0].as_u64(),
        Some(2)
    );
    assert_eq!(
        eval(source, "grade", &[AbiValue::uint(10)])[0].as_u64(),
        Some(3)
    );
}

#[test]
fn fixed_arrays_in_storage() {
    let source = r#"
        contract C {
            uint[3] public slots;
            function set(uint i, uint v) public { slots[i] = v; }
            function sum() public view returns (uint total) {
                for (uint i = 0; i < 3; i++) { total += slots[i]; }
            }
        }
    "#;
    let artifact = compile_single(source, "C").unwrap();
    let mut node = LocalNode::new(1);
    let from = node.accounts()[0];
    let address = node
        .send_transaction(Transaction::deploy(from, artifact.bytecode.clone()))
        .unwrap()
        .contract_address
        .unwrap();
    let set = artifact.abi.function("set").unwrap();
    for (i, v) in [(0u64, 10u64), (1, 20), (2, 30)] {
        let receipt = node
            .send_transaction(Transaction::call(
                from,
                address,
                set.encode_call(&[AbiValue::uint(i), AbiValue::uint(v)])
                    .unwrap(),
            ))
            .unwrap();
        assert!(receipt.is_success());
    }
    let sum = artifact.abi.function("sum").unwrap();
    let result = node.call(from, address, sum.encode_call(&[]).unwrap());
    assert_eq!(U256::from_be_slice(&result.output), U256::from_u64(60));
    // Out-of-bounds write reverts.
    let receipt = node
        .send_transaction(Transaction::call(
            from,
            address,
            set.encode_call(&[AbiValue::uint(3), AbiValue::uint(1)])
                .unwrap(),
        ))
        .unwrap();
    assert!(!receipt.is_success());
}

#[test]
fn exponent_operator() {
    let source = r#"
        contract C {
            function pow(uint b, uint e) public pure returns (uint) { return b ** e; }
            function tower() public pure returns (uint) { return 2 ** 3 ** 2; }
            function mixed() public pure returns (uint) { return 2 * 3 ** 2 + 1; }
        }
    "#;
    assert_eq!(
        eval(source, "pow", &[AbiValue::uint(3), AbiValue::uint(5)])[0].as_u64(),
        Some(243)
    );
    // Right-associative: 2 ** (3 ** 2) = 512, not (2**3)**2 = 64.
    assert_eq!(eval(source, "tower", &[])[0].as_u64(), Some(512));
    // Binds tighter than `*`: 2 * (3**2) + 1 = 19.
    assert_eq!(eval(source, "mixed", &[])[0].as_u64(), Some(19));
}
