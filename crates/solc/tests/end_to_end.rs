//! End-to-end compiler tests: compile Solidity-subset sources, deploy the
//! bytecode on the local chain and interact through the generated ABI.

use lsc_abi::{Abi, AbiValue};
use lsc_chain::{LocalNode, Transaction};
use lsc_primitives::{Address, U256};
use lsc_solc::compile_single;

struct Deployed {
    node: LocalNode,
    address: Address,
    abi: Abi,
    owner: Address,
}

fn deploy(source: &str, contract: &str, args: &[AbiValue]) -> Deployed {
    deploy_with_value(source, contract, args, U256::ZERO)
}

fn deploy_with_value(source: &str, contract: &str, args: &[AbiValue], value: U256) -> Deployed {
    let artifact = compile_single(source, contract).expect("compiles");
    let mut node = LocalNode::new(4);
    let owner = node.accounts()[0];
    let mut init = artifact.bytecode.clone();
    init.extend_from_slice(&artifact.abi.encode_constructor(args).expect("ctor args"));
    let receipt = node
        .send_transaction(Transaction::deploy(owner, init).with_value(value))
        .expect("deploy tx accepted");
    assert!(
        receipt.is_success(),
        "deployment reverted: {:?}",
        receipt.output
    );
    Deployed {
        node,
        address: receipt.contract_address.expect("created"),
        abi: artifact.abi,
        owner,
    }
}

impl Deployed {
    /// eth_call a function and decode its outputs.
    fn call(&mut self, name: &str, args: &[AbiValue]) -> Vec<AbiValue> {
        let f = self
            .abi
            .function(name)
            .unwrap_or_else(|| panic!("no function {name}"));
        let data = f.encode_call(args).expect("encodes");
        let result = self.node.call(self.owner, self.address, data);
        assert!(
            result.success,
            "call {name} reverted: {:?} ({:?})",
            decode_revert(&result.output),
            result.halt
        );
        f.decode_output(&result.output).expect("decodes")
    }

    /// Send a transaction invoking a function.
    fn send(
        &mut self,
        from: Address,
        name: &str,
        args: &[AbiValue],
        value: U256,
    ) -> lsc_chain::Receipt {
        let f = self
            .abi
            .function(name)
            .unwrap_or_else(|| panic!("no function {name}"));
        let data = f.encode_call(args).expect("encodes");
        self.node
            .send_transaction(Transaction::call(from, self.address, data).with_value(value))
            .expect("tx accepted")
    }

    fn call1(&mut self, name: &str, args: &[AbiValue]) -> AbiValue {
        self.call(name, args).remove(0)
    }
}

/// Decode an Error(string) revert payload for nicer assertions.
fn decode_revert(output: &[u8]) -> Option<String> {
    if output.len() < 4 || output[..4] != [0x08, 0xc3, 0x79, 0xa0] {
        return None;
    }
    let values = lsc_abi::decode(&[lsc_abi::AbiType::String], &output[4..]).ok()?;
    values[0].as_str().map(str::to_string)
}

#[test]
fn minimal_counter() {
    let src = r#"
        pragma solidity ^0.5.0;
        contract Counter {
            uint public count;
            function increment() public { count += 1; }
            function add(uint n) public returns (uint) { count += n; return count; }
        }
    "#;
    let mut d = deploy(src, "Counter", &[]);
    assert_eq!(d.call1("count", &[]).as_u64(), Some(0));
    let r = d.send(d.owner, "increment", &[], U256::ZERO);
    assert!(r.is_success(), "revert: {:?}", decode_revert(&r.output));
    assert_eq!(d.call1("count", &[]).as_u64(), Some(1));
    let r = d.send(d.owner, "add", &[AbiValue::uint(41)], U256::ZERO);
    assert!(r.is_success());
    assert_eq!(d.call1("count", &[]).as_u64(), Some(42));
}

#[test]
fn constructor_arguments_and_getters() {
    let src = r#"
        contract Config {
            uint public rent;
            string public house;
            address public landlord;
            constructor (uint _rent, string memory _house) public payable {
                rent = _rent;
                house = _house;
                landlord = msg.sender;
            }
        }
    "#;
    let mut d = deploy_with_value(
        src,
        "Config",
        &[AbiValue::uint(1500), AbiValue::string("12345-42 Main St")],
        U256::from_u64(7),
    );
    assert_eq!(d.call1("rent", &[]).as_u64(), Some(1500));
    assert_eq!(d.call1("house", &[]).as_str(), Some("12345-42 Main St"));
    let owner = d.owner;
    assert_eq!(d.call1("landlord", &[]).as_address(), Some(owner));
    assert_eq!(d.node.balance(d.address), U256::from_u64(7));
}

#[test]
fn arithmetic_and_control_flow() {
    let src = r#"
        contract Math {
            function sumTo(uint n) public pure returns (uint total) {
                for (uint i = 1; i <= n; i++) { total += i; }
            }
            function collatz(uint n) public pure returns (uint steps) {
                while (n != 1) {
                    if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                    steps += 1;
                }
            }
            function minmax(uint a, uint b) public pure returns (uint) {
                return a < b ? a : b;
            }
            function parity(uint n) public pure returns (bool) {
                return n % 2 == 0 && n > 0 || n == 7;
            }
        }
    "#;
    let mut d = deploy(src, "Math", &[]);
    assert_eq!(
        d.call1("sumTo", &[AbiValue::uint(100)]).as_u64(),
        Some(5050)
    );
    assert_eq!(
        d.call1("collatz", &[AbiValue::uint(27)]).as_u64(),
        Some(111)
    );
    assert_eq!(
        d.call1("minmax", &[AbiValue::uint(9), AbiValue::uint(4)])
            .as_u64(),
        Some(4)
    );
    assert_eq!(
        d.call1("parity", &[AbiValue::uint(4)]).as_bool(),
        Some(true)
    );
    assert_eq!(
        d.call1("parity", &[AbiValue::uint(7)]).as_bool(),
        Some(true)
    );
    assert_eq!(
        d.call1("parity", &[AbiValue::uint(3)]).as_bool(),
        Some(false)
    );
}

#[test]
fn require_reverts_with_message() {
    let src = r#"
        contract Guard {
            uint public value;
            function set(uint v) public {
                require(v < 100, "value too large");
                value = v;
            }
        }
    "#;
    let mut d = deploy(src, "Guard", &[]);
    let owner = d.owner;
    let r = d.send(owner, "set", &[AbiValue::uint(5)], U256::ZERO);
    assert!(r.is_success());
    assert_eq!(d.call1("value", &[]).as_u64(), Some(5));
    let r = d.send(owner, "set", &[AbiValue::uint(100)], U256::ZERO);
    assert!(!r.is_success());
    assert_eq!(decode_revert(&r.output).as_deref(), Some("value too large"));
    // State untouched by the reverted call.
    assert_eq!(d.call1("value", &[]).as_u64(), Some(5));
}

#[test]
fn nonpayable_functions_reject_value() {
    let src = r#"
        contract Strict {
            function free() public {}
            function paid() public payable {}
        }
    "#;
    let mut d = deploy(src, "Strict", &[]);
    let owner = d.owner;
    let r = d.send(owner, "paid", &[], U256::from_u64(10));
    assert!(r.is_success());
    let r = d.send(owner, "free", &[], U256::from_u64(10));
    assert!(!r.is_success());
    assert_eq!(
        decode_revert(&r.output).as_deref(),
        Some("function is not payable")
    );
}

#[test]
fn mappings_including_nested_string_keys() {
    // Fig. 3's DataStorage shape, made public so getters are synthesized.
    let src = r#"
        pragma solidity ^0.5.0;
        contract DataStorage {
            mapping (address => mapping( string => string )) public keyValuePairs;
            mapping (address => uint) public balances;
            function set(address owner, string memory key, string memory value) public {
                keyValuePairs[owner][key] = value;
            }
            function credit(address owner, uint amount) public {
                balances[owner] += amount;
            }
        }
    "#;
    let mut d = deploy(src, "DataStorage", &[]);
    let owner = d.owner;
    let alice = Address::from_label("alice");
    let r = d.send(
        owner,
        "set",
        &[
            AbiValue::Address(alice),
            AbiValue::string("rent"),
            AbiValue::string("1500"),
        ],
        U256::ZERO,
    );
    assert!(r.is_success(), "revert: {:?}", decode_revert(&r.output));
    assert_eq!(
        d.call1(
            "keyValuePairs",
            &[AbiValue::Address(alice), AbiValue::string("rent")]
        )
        .as_str(),
        Some("1500")
    );
    // Unset key reads as empty string.
    assert_eq!(
        d.call1(
            "keyValuePairs",
            &[AbiValue::Address(alice), AbiValue::string("deposit")]
        )
        .as_str(),
        Some("")
    );
    d.send(
        owner,
        "credit",
        &[AbiValue::Address(alice), AbiValue::uint(10)],
        U256::ZERO,
    );
    d.send(
        owner,
        "credit",
        &[AbiValue::Address(alice), AbiValue::uint(5)],
        U256::ZERO,
    );
    assert_eq!(
        d.call1("balances", &[AbiValue::Address(alice)]).as_u64(),
        Some(15)
    );
}

#[test]
fn structs_arrays_and_push() {
    let src = r#"
        contract Ledger {
            struct PaidRent { uint Monthid; uint value; }
            PaidRent[] public paidrents;
            function pay(uint month, uint amount) public {
                paidrents.push(PaidRent(month, amount));
            }
            function count() public view returns (uint) {
                return paidrents.length;
            }
            function total() public view returns (uint sum) {
                for (uint i = 0; i < paidrents.length; i++) {
                    sum += paidrents[i].value;
                }
            }
        }
    "#;
    let mut d = deploy(src, "Ledger", &[]);
    let owner = d.owner;
    for (m, v) in [(1u64, 100u64), (2, 150), (3, 150)] {
        let r = d.send(
            owner,
            "pay",
            &[AbiValue::uint(m), AbiValue::uint(v)],
            U256::ZERO,
        );
        assert!(r.is_success(), "revert: {:?}", decode_revert(&r.output));
    }
    assert_eq!(d.call1("count", &[]).as_u64(), Some(3));
    assert_eq!(d.call1("total", &[]).as_u64(), Some(400));
    // Struct-array getter returns the fields.
    let fields = d.call("paidrents", &[AbiValue::uint(1)]);
    assert_eq!(fields[0].as_u64(), Some(2));
    assert_eq!(fields[1].as_u64(), Some(150));
    // Out-of-bounds access reverts.
    let f = d.abi.function("paidrents").unwrap().clone();
    let data = f.encode_call(&[AbiValue::uint(9)]).unwrap();
    let result = d.node.call(owner, d.address, data);
    assert!(!result.success);
    assert_eq!(
        decode_revert(&result.output).as_deref(),
        Some("array index out of bounds")
    );
}

#[test]
fn enums_and_state_machine() {
    let src = r#"
        contract Machine {
            enum State {Created, Started, Terminated}
            State public state;
            function start() public {
                require(state == State.Created, "wrong state");
                state = State.Started;
            }
            function terminate() public {
                require(state == State.Started, "wrong state");
                state = State.Terminated;
            }
        }
    "#;
    let mut d = deploy(src, "Machine", &[]);
    let owner = d.owner;
    assert_eq!(d.call1("state", &[]).as_u64(), Some(0));
    let r = d.send(owner, "terminate", &[], U256::ZERO);
    assert!(!r.is_success());
    d.send(owner, "start", &[], U256::ZERO);
    assert_eq!(d.call1("state", &[]).as_u64(), Some(1));
    d.send(owner, "terminate", &[], U256::ZERO);
    assert_eq!(d.call1("state", &[]).as_u64(), Some(2));
}

#[test]
fn events_are_emitted_with_args() {
    let src = r#"
        contract Emitter {
            event paidRent(uint amount, address tenant);
            event simple();
            function pay(uint amount) public {
                emit paidRent(amount, msg.sender);
                emit simple();
            }
        }
    "#;
    let mut d = deploy(src, "Emitter", &[]);
    let owner = d.owner;
    let r = d.send(owner, "pay", &[AbiValue::uint(77)], U256::ZERO);
    assert!(r.is_success());
    assert_eq!(r.logs.len(), 2);
    let paid = d.abi.event("paidRent").unwrap();
    assert_eq!(r.logs[0].topics[0], paid.topic0());
    let decoded = paid.decode_data(&r.logs[0].data).unwrap();
    assert_eq!(decoded[0].as_u64(), Some(77));
    assert_eq!(decoded[1].as_address(), Some(owner));
    let simple = d.abi.event("simple").unwrap();
    assert_eq!(r.logs[1].topics[0], simple.topic0());
}

#[test]
fn indexed_event_params_become_topics() {
    let src = r#"
        contract Emitter {
            event transferred(address indexed from, address indexed to, uint amount);
            function go(address to, uint amount) public {
                emit transferred(msg.sender, to, amount);
            }
        }
    "#;
    let mut d = deploy(src, "Emitter", &[]);
    let owner = d.owner;
    let to = Address::from_label("receiver");
    let r = d.send(
        owner,
        "go",
        &[AbiValue::Address(to), AbiValue::uint(5)],
        U256::ZERO,
    );
    assert!(r.is_success());
    let log = &r.logs[0];
    assert_eq!(log.topics.len(), 3);
    assert_eq!(log.topics[1].to_u256(), owner.to_u256());
    assert_eq!(log.topics[2].to_u256(), to.to_u256());
    let decoded = d
        .abi
        .event("transferred")
        .unwrap()
        .decode_data(&log.data)
        .unwrap();
    assert_eq!(decoded[0].as_u64(), Some(5));
}

#[test]
fn ether_transfer_between_accounts() {
    let src = r#"
        contract Escrow {
            address payable public landlord;
            constructor () public { landlord = msg.sender; }
            function payRent() public payable {
                landlord.transfer(msg.value);
            }
            function poolBalance() public view returns (uint) {
                return address(this).balance;
            }
        }
    "#;
    let mut d = deploy(src, "Escrow", &[]);
    let tenant = d.node.accounts()[1];
    let landlord_before = d.node.balance(d.owner);
    let r = d.send(tenant, "payRent", &[], lsc_primitives::ether(2));
    assert!(r.is_success(), "revert: {:?}", decode_revert(&r.output));
    assert_eq!(
        d.node.balance(d.owner),
        landlord_before + lsc_primitives::ether(2)
    );
    assert_eq!(d.call1("poolBalance", &[]).as_u64(), Some(0));
}

#[test]
fn internal_calls_and_named_returns() {
    let src = r#"
        contract Lib {
            uint public hits;
            function double(uint x) internal pure returns (uint y) { y = 2 * x; }
            function quadruple(uint x) public returns (uint) {
                hits += 1;
                return double(double(x));
            }
        }
    "#;
    let mut d = deploy(src, "Lib", &[]);
    let owner = d.owner;
    let r = d.send(owner, "quadruple", &[AbiValue::uint(3)], U256::ZERO);
    assert!(r.is_success(), "revert: {:?}", decode_revert(&r.output));
    assert_eq!(d.call1("hits", &[]).as_u64(), Some(1));
    assert_eq!(
        d.call1("quadruple", &[AbiValue::uint(3)]).as_u64(),
        Some(12)
    );
}

#[test]
fn inheritance_overrides_and_base_slots() {
    let src = r#"
        contract Base {
            uint public rent;
            address next;
            function setNext(address _next) public { next = _next; }
            function getNext() public view returns (address addr) { return next; }
            function kind() public pure returns (uint) { return 1; }
        }
        contract Derived is Base {
            uint public deposit;
            function kind() public pure returns (uint) { return 2; }
            function setBoth(uint r, uint d) public { rent = r; deposit = d; }
        }
    "#;
    let mut d = deploy(src, "Derived", &[]);
    let owner = d.owner;
    assert_eq!(d.call1("kind", &[]).as_u64(), Some(2));
    d.send(
        owner,
        "setBoth",
        &[AbiValue::uint(10), AbiValue::uint(20)],
        U256::ZERO,
    );
    assert_eq!(d.call1("rent", &[]).as_u64(), Some(10));
    assert_eq!(d.call1("deposit", &[]).as_u64(), Some(20));
    let next = Address::from_label("next-version");
    d.send(owner, "setNext", &[AbiValue::Address(next)], U256::ZERO);
    assert_eq!(d.call1("getNext", &[]).as_address(), Some(next));
    // `rent` sits in slot 0 (base-first layout).
    assert_eq!(d.node.storage_at(d.address, U256::ZERO), U256::from_u64(10));
}

#[test]
fn timestamps_and_now() {
    let src = r#"
        contract Clock {
            uint public createdTimestamp;
            constructor () public { createdTimestamp = block.timestamp; }
            function age() public view returns (uint) { return now - createdTimestamp; }
        }
    "#;
    let mut d = deploy(src, "Clock", &[]);
    let created = d.call1("createdTimestamp", &[]).as_u64().unwrap();
    assert!(created > 0);
    d.node.increase_time(3600);
    let age = d.call1("age", &[]).as_u64().unwrap();
    assert!(age >= 3600, "age {age}");
}

#[test]
fn string_equality_and_keccak() {
    let src = r#"
        contract Strings {
            string public stored;
            function set(string memory s) public { stored = s; }
            function matches(string memory s) public view returns (bool) {
                return keccak256(stored) == keccak256(s);
            }
            function eq(string memory a, string memory b) public pure returns (bool) {
                return a == b;
            }
        }
    "#;
    let mut d = deploy(src, "Strings", &[]);
    let owner = d.owner;
    d.send(owner, "set", &[AbiValue::string("hello world")], U256::ZERO);
    assert_eq!(d.call1("stored", &[]).as_str(), Some("hello world"));
    assert_eq!(
        d.call1("matches", &[AbiValue::string("hello world")])
            .as_bool(),
        Some(true)
    );
    assert_eq!(
        d.call1("matches", &[AbiValue::string("hello")]).as_bool(),
        Some(false)
    );
    assert_eq!(
        d.call1("eq", &[AbiValue::string("a"), AbiValue::string("a")])
            .as_bool(),
        Some(true)
    );
    assert_eq!(
        d.call1("eq", &[AbiValue::string("a"), AbiValue::string("b")])
            .as_bool(),
        Some(false)
    );
}

#[test]
fn long_strings_roundtrip_through_storage() {
    let src = r#"
        contract Store {
            string public doc;
            function set(string memory s) public { doc = s; }
        }
    "#;
    let mut d = deploy(src, "Store", &[]);
    let owner = d.owner;
    let long: String = "lease agreement clause ".repeat(20); // > 32 bytes, multi-chunk
    d.send(owner, "set", &[AbiValue::string(&long)], U256::ZERO);
    assert_eq!(d.call1("doc", &[]).as_str(), Some(long.as_str()));
    // Shrink and verify cleanly.
    d.send(owner, "set", &[AbiValue::string("short")], U256::ZERO);
    assert_eq!(d.call1("doc", &[]).as_str(), Some("short"));
}

#[test]
fn selfdestruct_supported() {
    let src = r#"
        contract Ephemeral {
            address payable owner;
            constructor () public payable { owner = msg.sender; }
            function destroy() public { selfdestruct(owner); }
        }
    "#;
    let mut d = deploy_with_value(src, "Ephemeral", &[], lsc_primitives::ether(1));
    let owner = d.owner;
    let before = d.node.balance(owner);
    let r = d.send(owner, "destroy", &[], U256::ZERO);
    assert!(r.is_success());
    assert!(d.node.code(d.address).is_empty());
    assert!(d.node.balance(owner) > before, "balance refunded");
}

#[test]
fn state_var_initializers_run_at_deploy() {
    let src = r#"
        contract Init {
            uint public fee = 3 ether;
            string public label = "genesis";
            uint public sum = 2 + 3 * 4;
        }
    "#;
    let mut d = deploy(src, "Init", &[]);
    assert_eq!(
        d.call1("fee", &[]).as_uint(),
        Some(lsc_primitives::ether(3))
    );
    assert_eq!(d.call1("label", &[]).as_str(), Some("genesis"));
    assert_eq!(d.call1("sum", &[]).as_u64(), Some(14));
}

#[test]
fn casts_and_masks() {
    let src = r#"
        contract Casts {
            function low(uint x) public pure returns (uint) { return uint8(x); }
            function toAddr(uint x) public pure returns (address) { return address(x); }
        }
    "#;
    let mut d = deploy(src, "Casts", &[]);
    assert_eq!(
        d.call1("low", &[AbiValue::uint(0x1ff)]).as_u64(),
        Some(0xff)
    );
    let got = d
        .call1("toAddr", &[AbiValue::uint(0x1234)])
        .as_address()
        .unwrap();
    let mut expected = [0u8; 20];
    expected[18] = 0x12;
    expected[19] = 0x34;
    assert_eq!(got, Address(expected));
}

#[test]
fn break_and_continue() {
    let src = r#"
        contract Loops {
            function oddSumBelow(uint n) public pure returns (uint total) {
                for (uint i = 0; i < 1000; i++) {
                    if (i >= n) { break; }
                    if (i % 2 == 0) { continue; }
                    total += i;
                }
            }
        }
    "#;
    let mut d = deploy(src, "Loops", &[]);
    // 1 + 3 + 5 + 7 + 9 = 25
    assert_eq!(
        d.call1("oddSumBelow", &[AbiValue::uint(10)]).as_u64(),
        Some(25)
    );
}
