//! Tests of `modifier` support: guard expansion, parameterized modifiers,
//! stacking, inheritance and error cases.

use lsc_abi::AbiValue;
use lsc_chain::{LocalNode, Transaction};
use lsc_primitives::{Address, U256};
use lsc_solc::{compile_single, compile_source};

struct Deployed {
    node: LocalNode,
    address: Address,
    abi: lsc_abi::Abi,
    owner: Address,
    other: Address,
}

fn deploy(source: &str, name: &str) -> Deployed {
    let artifact = compile_single(source, name).expect("compiles");
    let mut node = LocalNode::new(2);
    let owner = node.accounts()[0];
    let other = node.accounts()[1];
    let address = node
        .send_transaction(Transaction::deploy(owner, artifact.bytecode.clone()))
        .unwrap()
        .contract_address
        .unwrap();
    Deployed {
        node,
        address,
        abi: artifact.abi,
        owner,
        other,
    }
}

impl Deployed {
    fn send(&mut self, from: Address, name: &str, args: &[AbiValue]) -> bool {
        let f = self.abi.function(name).unwrap();
        self.node
            .send_transaction(Transaction::call(
                from,
                self.address,
                f.encode_call(args).unwrap(),
            ))
            .unwrap()
            .is_success()
    }

    fn get_u64(&mut self, name: &str) -> u64 {
        let f = self.abi.function(name).unwrap();
        let result = self
            .node
            .call(self.owner, self.address, f.encode_call(&[]).unwrap());
        assert!(result.success);
        U256::from_be_slice(&result.output).to_u64().unwrap()
    }
}

const OWNED: &str = r#"
    contract Owned {
        address public owner;
        uint public value;
        constructor () public { owner = msg.sender; }
        modifier onlyOwner() {
            require(msg.sender == owner, "caller is not the owner");
            _;
        }
        function set(uint v) public onlyOwner { value = v; }
        function free(uint v) public { value = v; }
    }
"#;

#[test]
fn only_owner_guard_expands() {
    let mut d = deploy(OWNED, "Owned");
    let other = d.other;
    let owner = d.owner;
    assert!(!d.send(other, "set", &[AbiValue::uint(5)]), "guarded");
    assert_eq!(d.get_u64("value"), 0);
    assert!(d.send(owner, "set", &[AbiValue::uint(5)]));
    assert_eq!(d.get_u64("value"), 5);
    // Unguarded function is open to everyone.
    assert!(d.send(other, "free", &[AbiValue::uint(9)]));
    assert_eq!(d.get_u64("value"), 9);
}

#[test]
fn parameterized_and_stacked_modifiers() {
    let source = r#"
        contract C {
            uint public value;
            uint public entries;
            modifier atLeast(uint minimum) {
                require(value >= minimum, "below minimum");
                _;
            }
            modifier counted() {
                entries += 1;
                _;
                entries += 1;
            }
            function bump(uint v) public counted atLeast(0) { value += v; }
            function strict(uint v) public atLeast(10) { value = v; }
        }
    "#;
    let mut d = deploy(source, "C");
    let owner = d.owner;
    // counted runs code before AND after the body.
    assert!(d.send(owner, "bump", &[AbiValue::uint(3)]));
    assert_eq!(d.get_u64("entries"), 2);
    assert_eq!(d.get_u64("value"), 3);
    // strict requires value >= 10; currently 3 → guard fires.
    assert!(!d.send(owner, "strict", &[AbiValue::uint(99)]));
    assert!(d.send(owner, "bump", &[AbiValue::uint(7)])); // value = 10
    assert!(d.send(owner, "strict", &[AbiValue::uint(99)]));
    assert_eq!(d.get_u64("value"), 99);
}

#[test]
fn modifiers_inherit_and_guard_rental_roles() {
    // The natural use in the paper's domain: role guards via modifiers.
    let source = r#"
        contract Roles {
            address payable public landlord;
            constructor () public { landlord = msg.sender; }
            modifier onlyLandlord() {
                require(msg.sender == landlord, "only the landlord");
                _;
            }
        }
        contract Lease is Roles {
            uint public terminations;
            function terminate() public onlyLandlord { terminations += 1; }
        }
    "#;
    let mut d = deploy(source, "Lease");
    let other = d.other;
    let owner = d.owner;
    assert!(!d.send(other, "terminate", &[]));
    assert!(d.send(owner, "terminate", &[]));
    assert_eq!(d.get_u64("terminations"), 1);
}

#[test]
fn modifier_errors() {
    // Unknown modifier.
    let err = compile_source("contract C { function f() public ghost {} }")
        .unwrap_err()
        .to_string();
    assert!(err.contains("ghost"), "{err}");
    // Missing placeholder.
    let err =
        compile_source("contract C { modifier m() { uint x = 1; } function f() public m {} }")
            .unwrap_err()
            .to_string();
    assert!(err.contains("placeholder"), "{err}");
    // Wrong arity.
    let err = compile_source("contract C { modifier m(uint a) { _; } function f() public m {} }")
        .unwrap_err()
        .to_string();
    assert!(err.contains("argument"), "{err}");
    // Placeholder outside a modifier.
    let err = compile_source("contract C { function f() public { _; } }")
        .unwrap_err()
        .to_string();
    assert!(err.contains("placeholder"), "{err}");
}

#[test]
fn modifier_with_conditional_placeholder() {
    // The body only runs when the gate is open.
    let source = r#"
        contract C {
            bool public open;
            uint public hits;
            modifier gated() {
                if (open) { _; }
            }
            function toggle() public { open = !open; }
            function hit() public gated { hits += 1; }
        }
    "#;
    let mut d = deploy(source, "C");
    let owner = d.owner;
    assert!(d.send(owner, "hit", &[]), "tx succeeds but body skipped");
    assert_eq!(d.get_u64("hits"), 0);
    assert!(d.send(owner, "toggle", &[]));
    assert!(d.send(owner, "hit", &[]));
    assert_eq!(d.get_u64("hits"), 1);
}
