//! The pre-deployment vetting gate (ISSUE acceptance): bytecode with a
//! reentrancy shape or an invalid jump must be rejected by
//! `ContractManager::deploy` AND by the modify flow (both the direct
//! `deploy_version` call and the negotiated `enact` path), while every
//! legitimate template still deploys; findings land in the audit trail.

use lsc_abi::AbiValue;
use lsc_chain::LocalNode;
use lsc_core::{audit_chain, contracts, ContractManager, CoreError, NegotiationBook, VersionState};
use lsc_evm::asm::Asm;
use lsc_evm::opcode::op;
use lsc_ipfs::IpfsNode;
use lsc_primitives::{ether, Address, U256};
use lsc_web3::Web3;

struct World {
    manager: ContractManager,
    landlord: Address,
    tenant: Address,
}

fn setup() -> World {
    let web3 = Web3::new(LocalNode::new(4));
    let manager = ContractManager::new(web3.clone(), IpfsNode::new());
    let accounts = web3.accounts();
    World {
        manager,
        landlord: accounts[0],
        tenant: accounts[1],
    }
}

fn base_args() -> Vec<AbiValue> {
    vec![
        AbiValue::Uint(ether(1)),
        AbiValue::string("10001-42 Main"),
        AbiValue::uint(365 * 24 * 3600),
    ]
}

/// Init code with the DAO shape: full-gas CALL, then a storage write.
fn reentrant_bytecode() -> Vec<u8> {
    let mut asm = Asm::new();
    for _ in 0..6 {
        asm.push_u64(0);
    }
    asm.op(op::GAS).op(op::CALL).op(op::POP);
    asm.push_u64(1).push_u64(0).op(op::SSTORE).op(op::STOP);
    asm.assemble().unwrap()
}

/// Init code that jumps to pc 0, which is a PUSH, not a JUMPDEST.
fn invalid_jump_bytecode() -> Vec<u8> {
    let mut asm = Asm::new();
    asm.push_u64(0).op(op::JUMP);
    asm.assemble().unwrap()
}

fn expect_vetting_error(result: Result<lsc_web3::Contract, CoreError>, needle: &str) {
    match result {
        Err(CoreError::Vetting(e)) => {
            assert!(e.to_string().contains(needle), "{e}");
        }
        Err(other) => panic!("expected a vetting error, got {other}"),
        Ok(c) => panic!("deployment of bad bytecode succeeded at {}", c.address()),
    }
}

#[test]
fn deploy_rejects_reentrancy_shape() {
    let w = setup();
    let id = w
        .manager
        .upload("evil", reentrant_bytecode(), "[]")
        .unwrap();
    expect_vetting_error(
        w.manager.deploy(w.landlord, id, &[], U256::ZERO),
        "write-after-call",
    );
    // Nothing was deployed or recorded.
    assert!(w.manager.records().is_empty());
}

#[test]
fn deploy_rejects_invalid_jump() {
    let w = setup();
    let id = w
        .manager
        .upload("broken", invalid_jump_bytecode(), "[]")
        .unwrap();
    expect_vetting_error(
        w.manager.deploy(w.landlord, id, &[], U256::ZERO),
        "invalid-jump",
    );
}

#[test]
fn modify_flow_rejects_bad_upgrade() {
    let w = setup();
    let artifact = contracts::compile_base_rental().unwrap();
    let good = w.manager.upload_artifact("base", &artifact).unwrap();
    let v1 = w
        .manager
        .deploy(w.landlord, good, &base_args(), U256::ZERO)
        .unwrap();

    // Direct deploy_version path.
    let evil = w
        .manager
        .upload("evil", reentrant_bytecode(), "[]")
        .unwrap();
    expect_vetting_error(
        w.manager
            .deploy_version(w.landlord, evil, &[], U256::ZERO, v1.address(), &[]),
        "write-after-call",
    );

    // Negotiated path: the tenant can accept the terms, but enacting
    // still runs the verifier and refuses to put the code on chain.
    let book = NegotiationBook::new(w.manager.clone());
    let proposal = book
        .propose(
            w.landlord,
            w.tenant,
            v1.address(),
            "upgrade with a surprise",
            evil,
            vec![],
            vec![],
        )
        .unwrap();
    book.accept(proposal, w.tenant).unwrap();
    match book.enact(proposal, w.landlord) {
        Err(CoreError::Vetting(e)) => assert!(e.to_string().contains("write-after-call"), "{e}"),
        other => panic!("expected a vetting error, got {other:?}"),
    }

    // The original version is untouched and still active.
    let record = w.manager.record(v1.address()).unwrap();
    assert_eq!(record.state, VersionState::Active);
    assert_eq!(record.version, 1);
    assert_eq!(w.manager.history(v1.address()).unwrap(), vec![v1.address()]);
}

#[test]
fn permissive_policy_lets_flagged_code_through_and_audits_it() {
    let w = setup();
    w.manager
        .set_vetting_policy(lsc_analyzer::VettingPolicy::permissive());
    let id = w
        .manager
        .upload("evil", reentrant_bytecode(), "[]")
        .unwrap();
    let contract = w.manager.deploy(w.landlord, id, &[], U256::ZERO).unwrap();

    // The findings the default policy would have denied are on record.
    let findings = w.manager.vetting_findings(contract.address());
    assert!(
        findings.iter().any(|f| f.contains("write-after-call")),
        "{findings:?}"
    );
}

#[test]
fn template_deployment_records_clean_or_warning_findings_only() {
    let w = setup();
    let artifact = contracts::compile_base_rental().unwrap();
    let id = w.manager.upload_artifact("base", &artifact).unwrap();
    let contract = w
        .manager
        .deploy(w.landlord, id, &base_args(), U256::ZERO)
        .unwrap();
    // Whatever is recorded got through the default deny policy, so it
    // can only be warning-level.
    let findings = w.manager.vetting_findings(contract.address());
    for finding in &findings {
        assert!(finding.contains("warning"), "{finding}");
    }
    // The evidence report carries the recorded findings verbatim.
    let report = audit_chain(&w.manager, contract.address()).unwrap();
    assert_eq!(report.entries.len(), 1);
    assert_eq!(report.entries[0].vetting, findings);
    for finding in &findings {
        assert!(report.render().contains(finding), "{finding}");
    }
}
