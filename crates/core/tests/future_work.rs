//! Tests of the Section V future-work features implemented beyond the
//! paper's prototype: guarded write-once version links, the negotiation
//! workflow, and the evidence-line audit report.

use lsc_abi::AbiValue;
use lsc_chain::LocalNode;
use lsc_core::{audit_chain, contracts, ContractManager, NegotiationBook, ProposalStatus};
use lsc_ipfs::IpfsNode;
use lsc_primitives::{ether, Address, U256};
use lsc_web3::Web3;

fn setup() -> (ContractManager, Address, Address) {
    let web3 = Web3::new(LocalNode::new(4));
    let accounts = web3.accounts();
    (
        ContractManager::new(web3, IpfsNode::new()),
        accounts[0],
        accounts[1],
    )
}

fn base_args() -> Vec<AbiValue> {
    vec![
        AbiValue::Uint(ether(1)),
        AbiValue::string("H-1"),
        AbiValue::uint(1000),
    ]
}

// ---------- guarded write-once links ----------

#[test]
fn guarded_links_reject_strangers() {
    let (manager, landlord, stranger) = setup();
    let artifact = contracts::compile_guarded_rental().unwrap();
    let upload = manager.upload_artifact("guarded", &artifact).unwrap();
    let contract = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();

    let target = Address::from_label("next-version");
    // A stranger cannot relink the evidence line.
    let attempt = contract.send(
        stranger,
        "setNext",
        &[AbiValue::Address(target)],
        U256::ZERO,
    );
    assert!(attempt.is_err());
    match attempt {
        Err(lsc_web3::Web3Error::Reverted { reason, .. }) => {
            assert_eq!(reason.as_deref(), Some("only the landlord links versions"));
        }
        other => panic!("expected revert, got {other:?}"),
    }
    // The landlord can.
    contract
        .send(
            landlord,
            "setNext",
            &[AbiValue::Address(target)],
            U256::ZERO,
        )
        .unwrap();
    assert_eq!(
        contract.call1("getNext", &[]).unwrap().as_address(),
        Some(target)
    );
}

#[test]
fn guarded_links_are_write_once() {
    let (manager, landlord, _) = setup();
    let artifact = contracts::compile_guarded_rental().unwrap();
    let upload = manager.upload_artifact("guarded", &artifact).unwrap();
    let contract = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();

    let v2 = Address::from_label("v2");
    let attacker_choice = Address::from_label("elsewhere");
    contract
        .send(landlord, "setNext", &[AbiValue::Address(v2)], U256::ZERO)
        .unwrap();
    assert_eq!(
        contract.call1("isSuperseded", &[]).unwrap().as_bool(),
        Some(true)
    );
    // Even the landlord cannot rewrite history afterwards.
    let attempt = contract.send(
        landlord,
        "setNext",
        &[AbiValue::Address(attacker_choice)],
        U256::ZERO,
    );
    assert!(attempt.is_err());
    assert_eq!(
        contract.call1("getNext", &[]).unwrap().as_address(),
        Some(v2)
    );
    // The zero address is never linkable.
    let fresh = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();
    assert!(fresh
        .send(
            landlord,
            "setPrev",
            &[AbiValue::Address(Address::ZERO)],
            U256::ZERO
        )
        .is_err());
}

#[test]
fn guarded_contract_emits_link_events() {
    let (manager, landlord, _) = setup();
    let artifact = contracts::compile_guarded_rental().unwrap();
    let upload = manager.upload_artifact("guarded", &artifact).unwrap();
    let contract = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();
    let v2 = Address::from_label("v2");
    let receipt = contract
        .send(landlord, "setNext", &[AbiValue::Address(v2)], U256::ZERO)
        .unwrap();
    let events = contract.decode_logs(&receipt);
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].name, "versionLinked");
    assert_eq!(events[0].params[0].1.as_address(), Some(v2));
    assert_eq!(events[0].params[1].1.as_bool(), Some(true));
}

// ---------- negotiation workflow ----------

#[test]
fn negotiation_accept_then_enact() {
    let (manager, landlord, tenant) = setup();
    let base = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &base).unwrap();
    let v1 = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();

    let book = NegotiationBook::new(manager.clone());
    let id = book
        .propose(
            landlord,
            tenant,
            v1.address(),
            "raise rent to 2 ETH from next term",
            upload,
            vec![
                AbiValue::Uint(ether(2)),
                AbiValue::string("H-1"),
                AbiValue::uint(1000),
            ],
            vec![],
        )
        .unwrap();
    assert_eq!(book.pending_for(tenant).len(), 1);
    // Cannot enact before acceptance.
    assert!(book.enact(id, landlord).is_err());
    book.accept(id, tenant).unwrap();
    let v2 = book.enact(id, landlord).unwrap();

    // The proposal is enacted and the chain is linked.
    let proposal = book.proposal(id).unwrap();
    assert_eq!(proposal.status, ProposalStatus::Enacted);
    assert_eq!(proposal.enacted_as, Some(v2));
    assert_eq!(manager.history(v2).unwrap(), vec![v1.address(), v2]);
    // The new version carries the negotiated rent.
    let c2 = manager.contract_at(v2).unwrap();
    assert_eq!(c2.call1("rent", &[]).unwrap().as_uint(), Some(ether(2)));
}

#[test]
fn negotiation_rejection_and_withdrawal() {
    let (manager, landlord, tenant) = setup();
    let base = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &base).unwrap();
    let v1 = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();
    let book = NegotiationBook::new(manager.clone());

    let id = book
        .propose(
            landlord,
            tenant,
            v1.address(),
            "worse terms",
            upload,
            base_args(),
            vec![],
        )
        .unwrap();
    // The wrong party cannot decide.
    assert!(book.accept(id, landlord).is_err());
    book.reject(id, tenant).unwrap();
    assert_eq!(book.proposal(id).unwrap().status, ProposalStatus::Rejected);
    // A rejected proposal cannot be enacted; no new version exists.
    assert!(book.enact(id, landlord).is_err());
    assert_eq!(manager.history(v1.address()).unwrap().len(), 1);

    // Withdrawal path.
    let id2 = book
        .propose(
            landlord,
            tenant,
            v1.address(),
            "second thoughts",
            upload,
            base_args(),
            vec![],
        )
        .unwrap();
    book.withdraw(id2, landlord).unwrap();
    assert_eq!(
        book.proposal(id2).unwrap().status,
        ProposalStatus::Withdrawn
    );
    assert!(
        book.accept(id2, tenant).is_err(),
        "withdrawn proposals are closed"
    );
}

#[test]
fn negotiation_guards_proposer_identity() {
    let (manager, landlord, tenant) = setup();
    let base = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &base).unwrap();
    let v1 = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();
    let book = NegotiationBook::new(manager.clone());
    // Tenant cannot propose on the landlord's contract.
    assert!(book
        .propose(
            tenant,
            landlord,
            v1.address(),
            "x",
            upload,
            base_args(),
            vec![]
        )
        .is_err());
    // Self-negotiation is rejected.
    assert!(book
        .propose(
            landlord,
            landlord,
            v1.address(),
            "x",
            upload,
            base_args(),
            vec![]
        )
        .is_err());
    // Unknown target contract.
    assert!(book
        .propose(
            landlord,
            tenant,
            Address::from_label("ghost"),
            "x",
            upload,
            base_args(),
            vec![]
        )
        .is_err());
}

// ---------- evidence audit ----------

#[test]
fn audit_report_covers_whole_chain() {
    let (manager, landlord, _) = setup();
    let base = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &base).unwrap();
    let v1 = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();
    manager.attach_document(v1.address(), b"%PDF original terms");
    let v2 = manager
        .deploy_version(
            landlord,
            upload,
            &base_args(),
            U256::ZERO,
            v1.address(),
            &[],
        )
        .unwrap();

    let report = audit_chain(&manager, v2.address()).unwrap();
    assert!(report.chain_intact);
    assert_eq!(report.entries.len(), 2);
    assert_eq!(report.entries[0].version, 1);
    assert_eq!(report.entries[0].deployer, Some(landlord));
    assert!(report.entries[0].document_cid.is_some());
    assert!(report.entries[1].document_cid.is_none());
    assert!(report.entries[0].abi_cid.is_some());
    // Identical code ⇒ identical code hashes across versions.
    assert_eq!(report.entries[0].code_hash, report.entries[1].code_hash);

    let text = report.render();
    assert!(text.contains("EVIDENCE LINE AUDIT"));
    assert!(text.contains("INTACT"));
    assert!(text.contains("v1"));
    assert!(text.contains("v2"));
}

#[test]
fn audit_flags_tampered_chain() {
    let (manager, landlord, _) = setup();
    let base = contracts::compile_base_rental().unwrap();
    let upload = manager.upload_artifact("base", &base).unwrap();
    let v1 = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();
    let v2 = manager
        .deploy_version(
            landlord,
            upload,
            &base_args(),
            U256::ZERO,
            v1.address(),
            &[],
        )
        .unwrap();
    // Tamper: point v2's previous somewhere else (unguarded base setters).
    let v3 = manager
        .deploy(landlord, upload, &base_args(), U256::ZERO)
        .unwrap();
    v2.send(
        landlord,
        "setPrev",
        &[AbiValue::Address(v3.address())],
        U256::ZERO,
    )
    .unwrap();
    let report = audit_chain(&manager, v1.address()).unwrap();
    assert!(!report.chain_intact);
    assert!(report.render().contains("BROKEN"));
}
