//! Vet every built-in template combination and every end-to-end solc
//! artifact, and ratchet the findings against a committed baseline:
//!
//! * every artifact must pass the default vetting policy (no denials),
//! * any NEW warning — a (artifact, region, rule) count above the
//!   baseline — fails the test,
//! * counts below the baseline are fine (improvements don't break the
//!   build; regenerate the baseline to lock them in).
//!
//! Regenerate with
//! `LSC_UPDATE_VETTING_BASELINE=1 cargo test -p lsc-core --test vetting_baseline`.

use lsc_analyzer::{vet_deployment, VettingPolicy};
use lsc_core::contracts;
use lsc_core::templates::RentalTemplate;
use lsc_solc::Artifact;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

/// All 16 feature combinations of the rental template, named after the
/// features they enable.
fn template_matrix() -> Vec<(String, Artifact)> {
    let mut out = Vec::new();
    for bits in 0u8..16 {
        let mut template = RentalTemplate::named("BaselineHouse");
        let mut name = String::from("template");
        if bits & 1 != 0 {
            template = template.with_deposit();
            name.push_str("+deposit");
        }
        if bits & 2 != 0 {
            template = template.with_discount();
            name.push_str("+discount");
        }
        if bits & 4 != 0 {
            template = template.with_maintenance();
            name.push_str("+maintenance");
        }
        if bits & 8 != 0 {
            template = template.with_guarded_links();
            name.push_str("+guarded");
        }
        let artifact = template
            .compile()
            .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        out.push((name, artifact));
    }
    out
}

fn solc_artifacts() -> Vec<(String, Artifact)> {
    vec![
        (
            "solc:base-rental".into(),
            contracts::compile_base_rental().unwrap(),
        ),
        (
            "solc:rental-agreement".into(),
            contracts::compile_rental_agreement().unwrap(),
        ),
        (
            "solc:guarded-rental".into(),
            contracts::compile_guarded_rental().unwrap(),
        ),
        ("solc:node".into(), contracts::compile_node().unwrap()),
        (
            "solc:data-storage".into(),
            contracts::compile_data_storage().unwrap(),
        ),
    ]
}

type FindingCounts = BTreeMap<(String, String, String), usize>;

fn parse_baseline(text: &str) -> FindingCounts {
    let mut counts = FindingCounts::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let [name, region, rule, count] = fields.as_slice() else {
            panic!("malformed baseline line: {line}");
        };
        counts.insert(
            (name.to_string(), region.to_string(), rule.to_string()),
            count
                .parse()
                .unwrap_or_else(|_| panic!("bad count in: {line}")),
        );
    }
    counts
}

fn render_baseline(counts: &FindingCounts) -> String {
    let mut out = String::from(
        "# Vetting-findings baseline: artifact region rule count\n\
         # New findings (count above this file) fail vetting_baseline.rs; fewer is fine.\n\
         # Regenerate: LSC_UPDATE_VETTING_BASELINE=1 cargo test -p lsc-core --test vetting_baseline\n",
    );
    for ((name, region, rule), count) in counts {
        writeln!(out, "{name} {region} {rule} {count}").unwrap();
    }
    out
}

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("vetting_baseline.txt")
}

#[test]
fn all_artifacts_pass_the_gate_and_warnings_are_ratcheted() {
    let policy = VettingPolicy::default();
    let mut current = FindingCounts::new();
    for (name, artifact) in template_matrix().into_iter().chain(solc_artifacts()) {
        let vetting = vet_deployment(&artifact.bytecode);
        if let Err(e) = vetting.enforce(&policy) {
            panic!("{name} is denied by the default policy: {e}");
        }
        for (region, finding) in vetting.findings() {
            *current
                .entry((name.clone(), region.to_string(), finding.rule.to_string()))
                .or_insert(0) += 1;
        }
    }

    let path = baseline_path();
    if std::env::var_os("LSC_UPDATE_VETTING_BASELINE").is_some() {
        std::fs::write(&path, render_baseline(&current)).unwrap();
        return;
    }
    let baseline = parse_baseline(
        &std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing {}: {e}", path.display())),
    );

    let mut regressions = Vec::new();
    for (key, count) in &current {
        let allowed = baseline.get(key).copied().unwrap_or(0);
        if *count > allowed {
            regressions.push(format!(
                "{} {} {}: {count} finding(s), baseline allows {allowed}",
                key.0, key.1, key.2
            ));
        }
    }
    assert!(
        regressions.is_empty(),
        "new vetting findings (fix them or consciously regenerate the baseline):\n{}\n\
         current totals:\n{}",
        regressions.join("\n"),
        render_baseline(&current),
    );
}
