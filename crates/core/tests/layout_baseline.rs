//! Recover the storage layout of every built-in template combination
//! and every end-to-end solc artifact, and pin the result to a committed
//! baseline. Unlike the findings ratchet (vetting_baseline.rs) this is
//! an exact-match fingerprint: a layout is a *fact* about the artifact,
//! and any drift — a slot gained or lost, a provenance class changing, a
//! hash base disappearing, an unknown bit flipping — must be a conscious
//! decision, because the upgrade gate's verdicts are built on these
//! facts.
//!
//! Regenerate with
//! `LSC_UPDATE_LAYOUT_BASELINE=1 cargo test -p lsc-core --test layout_baseline`.

use lsc_analyzer::{extract_runtime, layout::recover_layout};
use lsc_core::contracts;
use lsc_core::templates::RentalTemplate;
use lsc_solc::Artifact;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

fn template_matrix() -> Vec<(String, Artifact)> {
    let mut out = Vec::new();
    for bits in 0u8..16 {
        let mut template = RentalTemplate::named("BaselineHouse");
        let mut name = String::from("template");
        if bits & 1 != 0 {
            template = template.with_deposit();
            name.push_str("+deposit");
        }
        if bits & 2 != 0 {
            template = template.with_discount();
            name.push_str("+discount");
        }
        if bits & 4 != 0 {
            template = template.with_maintenance();
            name.push_str("+maintenance");
        }
        if bits & 8 != 0 {
            template = template.with_guarded_links();
            name.push_str("+guarded");
        }
        let artifact = template
            .compile()
            .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        out.push((name, artifact));
    }
    out
}

fn solc_artifacts() -> Vec<(String, Artifact)> {
    vec![
        (
            "solc:base-rental".into(),
            contracts::compile_base_rental().unwrap(),
        ),
        (
            "solc:rental-agreement".into(),
            contracts::compile_rental_agreement().unwrap(),
        ),
        (
            "solc:guarded-rental".into(),
            contracts::compile_guarded_rental().unwrap(),
        ),
        ("solc:node".into(), contracts::compile_node().unwrap()),
        (
            "solc:data-storage".into(),
            contracts::compile_data_storage().unwrap(),
        ),
    ]
}

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("layout_baseline.txt")
}

fn current_layouts() -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for (name, artifact) in template_matrix().into_iter().chain(solc_artifacts()) {
        let range = extract_runtime(&artifact.bytecode)
            .unwrap_or_else(|| panic!("{name}: runtime not recoverable from init code"));
        let layout = recover_layout(&artifact.bytecode[range]);
        out.insert(name, layout.summary());
    }
    out
}

fn render(layouts: &BTreeMap<String, String>) -> String {
    let mut out = String::from(
        "# Storage-layout baseline: artifact = recovered runtime layout\n\
         # Exact match required by layout_baseline.rs; any drift is a conscious regeneration.\n\
         # Regenerate: LSC_UPDATE_LAYOUT_BASELINE=1 cargo test -p lsc-core --test layout_baseline\n",
    );
    for (name, summary) in layouts {
        writeln!(out, "{name} = {summary}").unwrap();
    }
    out
}

#[test]
fn recovered_layouts_match_the_committed_baseline() {
    let current = current_layouts();
    let path = baseline_path();
    if std::env::var_os("LSC_UPDATE_LAYOUT_BASELINE").is_some() {
        std::fs::write(&path, render(&current)).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
    let mut baseline = BTreeMap::new();
    for line in committed.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, summary) = line
            .split_once(" = ")
            .unwrap_or_else(|| panic!("malformed baseline line: {line}"));
        baseline.insert(name.to_string(), summary.to_string());
    }
    assert_eq!(
        baseline,
        current,
        "recovered layouts drifted from the committed baseline; \
         if intentional, regenerate it:\n{}",
        render(&current)
    );
}
