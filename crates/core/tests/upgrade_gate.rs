//! The upgrade-compatibility gate (ISSUE 9 acceptance): a successor
//! whose recovered storage layout repurposes a live slot, scalar-clobbers
//! a mapping base, or rebinds the version-chain link pointers must be
//! rejected by `ContractManager::deploy_version` AND by the negotiated
//! `enact` path, with the structured finding visible in the audit chain —
//! while every legitimate template upgrade still deploys clean.

use lsc_abi::AbiValue;
use lsc_chain::LocalNode;
use lsc_core::templates::RentalTemplate;
use lsc_core::{audit_chain, contracts, ContractManager, CoreError, NegotiationBook, VersionState};
use lsc_ipfs::IpfsNode;
use lsc_primitives::{ether, Address, U256};
use lsc_solc::compile_single;
use lsc_web3::{Contract, Web3};

struct World {
    manager: ContractManager,
    landlord: Address,
    tenant: Address,
}

fn setup() -> World {
    let web3 = Web3::new(LocalNode::new(4));
    let manager = ContractManager::new(web3.clone(), IpfsNode::new());
    let accounts = web3.accounts();
    World {
        manager,
        landlord: accounts[0],
        tenant: accounts[1],
    }
}

fn base_args() -> Vec<AbiValue> {
    vec![
        AbiValue::Uint(ether(1)),
        AbiValue::string("10001-42 Main"),
        AbiValue::uint(365 * 24 * 3600),
    ]
}

/// Deploy BaseRental as v1 — the live predecessor every evil successor
/// is vetted against. Its recovered layout has proven write classes at
/// slot 7 (tenant: input) and slot 10 (state: const), and roots the
/// paidrents array at hash base 2.
fn deploy_base(w: &World) -> Contract {
    let artifact = contracts::compile_base_rental().unwrap();
    let id = w.manager.upload_artifact("base", &artifact).unwrap();
    w.manager
        .deploy(w.landlord, id, &base_args(), U256::ZERO)
        .unwrap()
}

/// A successor that keeps BaseRental's slot map but writes `msg.sender`
/// into slot 10 — the slot where the predecessor keeps its `State` enum
/// as PUSH constants. Input-classed vs const-classed: provably disjoint.
const REPURPOSE_SOURCE: &str = r#"
pragma solidity ^0.5.0;
contract EvilRepurpose {
    address next;
    address previous;
    uint f2;
    uint f3;
    uint f4;
    uint f5;
    uint f6;
    uint f7;
    uint f8;
    uint f9;
    address payable hijacker;

    function seize() public {
        hijacker = msg.sender;
    }
    /* A plausible upgrade keeps the Node linking surface. */
    function setNext(address _next) public { next = _next; }
    function setPrev(address _previous) public { previous = _previous; }
    function getNext() public view returns (address addr) { return next; }
    function getPrev() public view returns (address addr) { return previous; }
}
"#;

/// A successor that declares a scalar where the predecessor roots its
/// `paidrents` array (slot 2) and writes it — without ever using slot 2
/// as a keccak base itself.
const COLLIDE_SOURCE: &str = r#"
pragma solidity ^0.5.0;
contract EvilCollide {
    address next;
    address previous;
    uint counter;

    function bump(uint v) public {
        counter = v;
    }
}
"#;

/// A successor that rebinds the version chain's `next` pointer (slot 0)
/// from storage instead of the designated calldata-carrying
/// setNext/setPrev path.
const REBIND_SOURCE: &str = r#"
pragma solidity ^0.5.0;
contract EvilRebind {
    address next;
    address previous;
    address shadow;

    function rebind() public {
        next = shadow;
    }
}
"#;

fn upload_evil(w: &World, name: &str, source: &str) -> u64 {
    let artifact = compile_single(source, name).unwrap();
    w.manager.upload_artifact(name, &artifact).unwrap()
}

fn expect_upgrade_rejection(result: Result<Contract, CoreError>, rule: &str) {
    match result {
        Err(CoreError::Vetting(e)) => {
            assert!(e.to_string().contains(rule), "{e}");
        }
        Err(other) => panic!("expected a vetting error mentioning {rule}, got {other}"),
        Ok(c) => panic!("incompatible upgrade deployed at {}", c.address()),
    }
}

#[test]
fn deploy_version_rejects_slot_repurposing() {
    let w = setup();
    let v1 = deploy_base(&w);
    let evil = upload_evil(&w, "EvilRepurpose", REPURPOSE_SOURCE);
    expect_upgrade_rejection(
        w.manager
            .deploy_version(w.landlord, evil, &[], U256::ZERO, v1.address(), &[]),
        "slot-repurposed",
    );
    // The predecessor is untouched: still active, still version 1.
    let record = w.manager.record(v1.address()).unwrap();
    assert_eq!(record.state, VersionState::Active);
    assert_eq!(w.manager.history(v1.address()).unwrap(), vec![v1.address()]);
}

#[test]
fn deploy_version_rejects_mapping_base_collision() {
    let w = setup();
    let v1 = deploy_base(&w);
    let evil = upload_evil(&w, "EvilCollide", COLLIDE_SOURCE);
    expect_upgrade_rejection(
        w.manager
            .deploy_version(w.landlord, evil, &[], U256::ZERO, v1.address(), &[]),
        "mapping-base-collision",
    );
}

#[test]
fn deploy_version_rejects_link_pointer_clobbering() {
    let w = setup();
    let v1 = deploy_base(&w);
    let evil = upload_evil(&w, "EvilRebind", REBIND_SOURCE);
    expect_upgrade_rejection(
        w.manager
            .deploy_version(w.landlord, evil, &[], U256::ZERO, v1.address(), &[]),
        "link-pointer-clobbered",
    );
}

#[test]
fn enact_runs_the_same_upgrade_gate() {
    let w = setup();
    let v1 = deploy_base(&w);
    let evil = upload_evil(&w, "EvilRepurpose", REPURPOSE_SOURCE);

    let book = NegotiationBook::new(w.manager.clone());
    let proposal = book
        .propose(
            w.landlord,
            w.tenant,
            v1.address(),
            "upgrade with a land grab",
            evil,
            vec![],
            vec![],
        )
        .unwrap();
    book.accept(proposal, w.tenant).unwrap();
    match book.enact(proposal, w.landlord) {
        Err(CoreError::Vetting(e)) => {
            assert!(e.to_string().contains("slot-repurposed"), "{e}");
        }
        other => panic!("expected a vetting error, got {other:?}"),
    }
    // Negotiation failed safely: v1 stays the active head of its chain.
    let record = w.manager.record(v1.address()).unwrap();
    assert_eq!(record.state, VersionState::Active);
}

#[test]
fn audited_upgrade_findings_reach_the_evidence_report() {
    let w = setup();
    // Audit-only mode: the incompatibility is recorded, not denied.
    w.manager
        .set_vetting_policy(lsc_analyzer::VettingPolicy::permissive());
    let v1 = deploy_base(&w);
    let evil = upload_evil(&w, "EvilRepurpose", REPURPOSE_SOURCE);
    let v2 = w
        .manager
        .deploy_version(w.landlord, evil, &[], U256::ZERO, v1.address(), &[])
        .unwrap();

    let findings = w.manager.vetting_findings(v2.address());
    assert!(
        findings
            .iter()
            .any(|f| f.starts_with("[upgrade]") && f.contains("slot-repurposed")),
        "{findings:?}"
    );
    // Both layouts — the facts behind the verdict — are on record too.
    assert!(
        findings
            .iter()
            .any(|f| f.starts_with("[layout] predecessor")),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.starts_with("[layout] successor")),
        "{findings:?}"
    );

    let report = audit_chain(&w.manager, v2.address()).unwrap();
    let rendered = report.render();
    assert!(rendered.contains("slot-repurposed"), "{rendered}");
    assert!(rendered.contains("[layout] predecessor"), "{rendered}");
}

#[test]
fn every_template_combination_upgrades_clean() {
    let w = setup();
    // v1: the plain base template.
    let base = RentalTemplate::named("BaselineHouse").compile().unwrap();
    let id = w.manager.upload_artifact("template", &base).unwrap();
    let mut head = w
        .manager
        .deploy(w.landlord, id, &base_args(), U256::ZERO)
        .unwrap()
        .address();

    // Then every feature combination, each deployed as the next version
    // of the previous one — a 16-link chain none of which the upgrade
    // gate may refuse.
    for bits in 1u8..16 {
        let mut template = RentalTemplate::named("BaselineHouse");
        let mut name = String::from("template");
        if bits & 1 != 0 {
            template = template.with_deposit();
            name.push_str("+deposit");
        }
        if bits & 2 != 0 {
            template = template.with_discount();
            name.push_str("+discount");
        }
        if bits & 4 != 0 {
            template = template.with_maintenance();
            name.push_str("+maintenance");
        }
        if bits & 8 != 0 {
            template = template.with_guarded_links();
            name.push_str("+guarded");
        }
        let mut args = base_args();
        if template.with_deposit {
            args.push(AbiValue::Uint(ether(1)));
        }
        if template.with_discount {
            args.push(AbiValue::Uint(U256::ZERO));
        }
        let artifact = template.compile().unwrap();
        let id = w.manager.upload_artifact(&name, &artifact).unwrap();
        let next = w
            .manager
            .deploy_version(w.landlord, id, &args, U256::ZERO, head, &[])
            .unwrap_or_else(|e| panic!("{name} was refused as an upgrade: {e}"));
        head = next.address();
    }
    assert_eq!(w.manager.history(head).unwrap().len(), 16);
}
