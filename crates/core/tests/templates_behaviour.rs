//! Behavioural tests of templated contracts: the generated clauses carry
//! real semantics, custom clauses run with their role guards, and
//! templated versions slot into the standard versioning machinery.

use lsc_abi::AbiValue;
use lsc_chain::LocalNode;
use lsc_core::{ContractManager, CustomClause, Party, Rental, RentalTemplate};
use lsc_ipfs::IpfsNode;
use lsc_primitives::{ether, Address, U256};
use lsc_web3::Web3;

fn world() -> (ContractManager, Address, Address) {
    let web3 = Web3::new(LocalNode::new(4));
    let accounts = web3.accounts();
    (
        ContractManager::new(web3, IpfsNode::new()),
        accounts[0],
        accounts[1],
    )
}

#[test]
fn templated_deposit_contract_behaves_like_handwritten_v2() {
    let (manager, landlord, tenant) = world();
    let template = RentalTemplate::named("DepositRental")
        .with_deposit()
        .with_discount();
    let artifact = template.compile().unwrap();
    let upload = manager.upload_artifact("templated", &artifact).unwrap();
    let contract = manager
        .deploy(
            landlord,
            upload,
            &[
                AbiValue::Uint(ether(1)),
                AbiValue::string("T-1"),
                AbiValue::uint(365 * 24 * 3600),
                AbiValue::Uint(ether(2)),                      // deposit
                AbiValue::Uint(ether(1) / U256::from_u64(10)), // discount
            ],
            U256::ZERO,
        )
        .unwrap();
    let rental = Rental::at(contract.clone());
    // Deposit escrow enforced.
    assert!(contract
        .send(tenant, "confirmAgreement", &[], U256::ZERO)
        .is_err());
    rental.confirm_agreement(tenant).unwrap();
    assert_eq!(manager.web3().balance(contract.address()), ether(2));
    // Discounted rent.
    let before = manager.web3().balance(landlord);
    rental.pay_rent(tenant).unwrap();
    assert_eq!(
        manager.web3().balance(landlord) - before,
        ether(1) - ether(1) / U256::from_u64(10)
    );
    // Early tenant termination: half the deposit back, half to landlord.
    let landlord_before = manager.web3().balance(landlord);
    rental.terminate(tenant).unwrap();
    assert_eq!(manager.web3().balance(landlord) - landlord_before, ether(1));
    assert_eq!(manager.web3().balance(contract.address()), U256::ZERO);
}

#[test]
fn custom_clause_with_role_guard() {
    let (manager, landlord, tenant) = world();
    let template = RentalTemplate::named("Inspected").with_clause(CustomClause {
        name: "recordInspection".into(),
        body: "inspections += 1;".into(),
        payable: false,
        restricted_to: Some(Party::Landlord),
    });
    // The clause body references a variable; add it via a second clause-free
    // template edit: render + inject is overkill — instead use a counter the
    // template already provides? No — custom clauses may reference their own
    // state; the template does not declare it, so this must fail to compile.
    assert!(
        template.compile().is_err(),
        "undeclared state in clause is a compile error"
    );

    // A clause that only touches declared state works.
    let template = RentalTemplate::named("Pinged").with_clause(CustomClause {
        name: "pingLandlord".into(),
        body: "landlord.transfer(msg.value);".into(),
        payable: true,
        restricted_to: Some(Party::Tenant),
    });
    let artifact = template.compile().unwrap();
    let upload = manager.upload_artifact("pinged", &artifact).unwrap();
    let contract = manager
        .deploy(
            landlord,
            upload,
            &[
                AbiValue::Uint(ether(1)),
                AbiValue::string("T-2"),
                AbiValue::uint(1000),
            ],
            U256::ZERO,
        )
        .unwrap();
    Rental::at(contract.clone())
        .confirm_agreement(tenant)
        .unwrap();
    // Guarded: the landlord cannot invoke the tenant-only clause.
    assert!(contract
        .send(landlord, "pingLandlord", &[], ether(1))
        .is_err());
    let before = manager.web3().balance(landlord);
    contract
        .send(tenant, "pingLandlord", &[], ether(1))
        .unwrap();
    assert_eq!(manager.web3().balance(landlord) - before, ether(1));
}

#[test]
fn templated_contracts_version_like_any_other() {
    let (manager, landlord, _) = world();
    let v1_art = RentalTemplate::named("Tpl").compile().unwrap();
    let v2_art = RentalTemplate::named("Tpl")
        .with_maintenance()
        .compile()
        .unwrap();
    let up1 = manager.upload_artifact("tpl-v1", &v1_art).unwrap();
    let up2 = manager.upload_artifact("tpl-v2", &v2_art).unwrap();
    let args = vec![
        AbiValue::Uint(ether(1)),
        AbiValue::string("T-3"),
        AbiValue::uint(1000),
    ];
    let v1 = manager.deploy(landlord, up1, &args, U256::ZERO).unwrap();
    let v2 = manager
        .deploy_version(landlord, up2, &args, U256::ZERO, v1.address(), &[])
        .unwrap();
    assert_eq!(
        manager.history(v2.address()).unwrap(),
        vec![v1.address(), v2.address()]
    );
    // The new clause exists only on v2.
    assert!(v1.abi().function("payMaintenance").is_none());
    assert!(v2.abi().function("payMaintenance").is_some());
    // Shared layout: `rent` sits in the same slot in both versions.
    let s1 = v1_art
        .storage_layout
        .iter()
        .find(|(n, _, _)| n == "rent")
        .unwrap()
        .1;
    let s2 = v2_art
        .storage_layout
        .iter()
        .find(|(n, _, _)| n == "rent")
        .unwrap()
        .1;
    assert_eq!(s1, s2);
}

#[test]
fn guarded_template_protects_links() {
    let (manager, landlord, stranger) = world();
    let artifact = RentalTemplate::named("Locked")
        .with_guarded_links()
        .compile()
        .unwrap();
    let upload = manager.upload_artifact("locked", &artifact).unwrap();
    let contract = manager
        .deploy(
            landlord,
            upload,
            &[
                AbiValue::Uint(ether(1)),
                AbiValue::string("T-4"),
                AbiValue::uint(1000),
            ],
            U256::ZERO,
        )
        .unwrap();
    let target = Address::from_label("v2");
    assert!(contract
        .send(
            stranger,
            "setNext",
            &[AbiValue::Address(target)],
            U256::ZERO
        )
        .is_err());
    contract
        .send(
            landlord,
            "setNext",
            &[AbiValue::Address(target)],
            U256::ZERO,
        )
        .unwrap();
    // Write-once.
    assert!(contract
        .send(
            landlord,
            "setNext",
            &[AbiValue::Address(Address::from_label("x"))],
            U256::ZERO
        )
        .is_err());
}
