//! Integration tests of the paper's core mechanisms: the versioning
//! linked list (Fig. 2), data/logic separation (Fig. 3), the address→ABI
//! path through IPFS, the rental lifecycle (Fig. 4) and the modification
//! workflow (Fig. 11).

use lsc_abi::AbiValue;
use lsc_chain::LocalNode;
use lsc_core::contracts::{self, RENTAL_DATA_KEYS};
use lsc_core::{ContractManager, Rental, RentalState, VersionState};
use lsc_ipfs::IpfsNode;
use lsc_primitives::{ether, Address, U256};
use lsc_web3::Web3;

struct World {
    manager: ContractManager,
    landlord: Address,
    tenant: Address,
}

fn setup() -> World {
    let web3 = Web3::new(LocalNode::new(4));
    let manager = ContractManager::new(web3.clone(), IpfsNode::new());
    let accounts = web3.accounts();
    World {
        manager,
        landlord: accounts[0],
        tenant: accounts[1],
    }
}

fn base_args() -> Vec<AbiValue> {
    vec![
        AbiValue::Uint(ether(1)),          // rent
        AbiValue::string("10001-42 Main"), // house
        AbiValue::uint(365 * 24 * 3600),   // contractTime
    ]
}

fn v2_args() -> Vec<AbiValue> {
    vec![
        AbiValue::Uint(ether(1)),                      // rent
        AbiValue::Uint(ether(2)),                      // deposit
        AbiValue::uint(365 * 24 * 3600),               // contractTime
        AbiValue::Uint(ether(1) / U256::from_u64(10)), // discount
        AbiValue::Uint(ether(1) / U256::from_u64(2)),  // fine
        AbiValue::string("10001-42 Main"),
    ]
}

#[test]
fn full_lifecycle_on_base_contract() {
    let w = setup();
    let artifact = contracts::compile_base_rental().unwrap();
    let upload = w
        .manager
        .upload_artifact("Basic rental contract", &artifact)
        .unwrap();
    let contract = w
        .manager
        .deploy(w.landlord, upload, &base_args(), U256::ZERO)
        .unwrap();
    let rental = Rental::at(contract);

    assert_eq!(rental.state().unwrap(), RentalState::Created);
    assert_eq!(rental.rent().unwrap(), ether(1));

    // Tenant confirms (no deposit on the base version).
    rental.confirm_agreement(w.tenant).unwrap();
    assert_eq!(rental.state().unwrap(), RentalState::Started);

    // Ether moves tenant → landlord on payRent.
    let landlord_before = w.manager.web3().balance(w.landlord);
    rental.pay_rent(w.tenant).unwrap();
    rental.pay_rent(w.tenant).unwrap();
    assert_eq!(
        w.manager.web3().balance(w.landlord),
        landlord_before + ether(2)
    );
    let paid = rental.paid_rents().unwrap();
    assert_eq!(paid.len(), 2);
    assert_eq!(paid[0], (1, ether(1)));
    assert_eq!(paid[1], (2, ether(1)));

    // Role checks: only the landlord terminates the base contract.
    assert!(rental.terminate(w.tenant).is_err());
    rental.terminate(w.landlord).unwrap();
    assert_eq!(rental.state().unwrap(), RentalState::Terminated);

    // And a terminated contract rejects further rent.
    assert!(rental.pay_rent(w.tenant).is_err());
}

#[test]
fn role_checks_enforced_on_chain() {
    let w = setup();
    let artifact = contracts::compile_base_rental().unwrap();
    let upload = w.manager.upload_artifact("base", &artifact).unwrap();
    let contract = w
        .manager
        .deploy(w.landlord, upload, &base_args(), U256::ZERO)
        .unwrap();
    let rental = Rental::at(contract);

    // Landlord cannot be their own tenant.
    assert!(rental.confirm_agreement(w.landlord).is_err());
    // Rent before confirmation is rejected.
    assert!(rental.pay_rent(w.tenant).is_err());
    rental.confirm_agreement(w.tenant).unwrap();
    // A third party cannot pay the rent.
    let other = w.manager.web3().accounts()[2];
    assert!(rental.pay_rent(other).is_err());
    // Wrong amount is rejected.
    assert!(rental
        .contract()
        .send(w.tenant, "payRent", &[], ether(3))
        .is_err());
}

#[test]
fn modification_links_versions_both_ways() {
    let w = setup();
    let base = contracts::compile_base_rental().unwrap();
    let v2 = contracts::compile_rental_agreement().unwrap();
    let up_base = w
        .manager
        .upload_artifact("Basic rental contract", &base)
        .unwrap();
    let up_v2 = w
        .manager
        .upload_artifact("Modified rental contract", &v2)
        .unwrap();

    let c1 = w
        .manager
        .deploy(w.landlord, up_base, &base_args(), U256::ZERO)
        .unwrap();
    let c2 = w
        .manager
        .deploy_version(w.landlord, up_v2, &v2_args(), U256::ZERO, c1.address(), &[])
        .unwrap();

    // On-chain pointers (the evidence line).
    let chain = w.manager.version_chain();
    assert_eq!(chain.next_of(c1.address()).unwrap(), Some(c2.address()));
    assert_eq!(chain.prev_of(c2.address()).unwrap(), Some(c1.address()));
    assert_eq!(chain.next_of(c2.address()).unwrap(), None);
    assert_eq!(chain.prev_of(c1.address()).unwrap(), None);

    // History discovered from either end.
    let expected = vec![c1.address(), c2.address()];
    assert_eq!(w.manager.history(c1.address()).unwrap(), expected);
    assert_eq!(w.manager.history(c2.address()).unwrap(), expected);
    assert_eq!(w.manager.verify_chain(c1.address()).unwrap(), expected);

    // Records: v1 inactive, v2 active, version numbers increment.
    assert_eq!(
        w.manager.record(c1.address()).unwrap().state,
        VersionState::Inactive
    );
    let r2 = w.manager.record(c2.address()).unwrap();
    assert_eq!(r2.state, VersionState::Active);
    assert_eq!(r2.version, 2);
    assert_eq!(r2.previous, Some(c1.address()));
}

#[test]
fn three_version_evidence_line() {
    let w = setup();
    let v2 = contracts::compile_rental_agreement().unwrap();
    let up = w.manager.upload_artifact("Rental", &v2).unwrap();
    let c1 = w
        .manager
        .deploy(w.landlord, up, &v2_args(), U256::ZERO)
        .unwrap();
    let c2 = w
        .manager
        .deploy_version(w.landlord, up, &v2_args(), U256::ZERO, c1.address(), &[])
        .unwrap();
    let c3 = w
        .manager
        .deploy_version(w.landlord, up, &v2_args(), U256::ZERO, c2.address(), &[])
        .unwrap();
    let expected = vec![c1.address(), c2.address(), c3.address()];
    // Traversal from the middle recovers the whole line.
    assert_eq!(w.manager.history(c2.address()).unwrap(), expected);
    assert_eq!(w.manager.verify_chain(c3.address()).unwrap(), expected);
    assert_eq!(
        w.manager.version_chain().latest_of(c1.address()).unwrap(),
        c3.address()
    );
    assert_eq!(
        w.manager.version_chain().head_of(c3.address()).unwrap(),
        c1.address()
    );
    assert_eq!(w.manager.record(c3.address()).unwrap().version, 3);
}

#[test]
fn only_original_landlord_can_modify() {
    let w = setup();
    let base = contracts::compile_base_rental().unwrap();
    let up = w.manager.upload_artifact("base", &base).unwrap();
    let c1 = w
        .manager
        .deploy(w.landlord, up, &base_args(), U256::ZERO)
        .unwrap();
    let intruder = w.manager.web3().accounts()[2];
    let result =
        w.manager
            .deploy_version(intruder, up, &base_args(), U256::ZERO, c1.address(), &[]);
    match result {
        Err(err) => assert!(err.to_string().contains("landlord")),
        Ok(_) => panic!("intruder was allowed to modify the contract"),
    }
}

#[test]
fn data_separation_migrates_attributes() {
    let w = setup();
    w.manager.init_data_store(w.landlord).unwrap();
    let store = w.manager.data_store().unwrap();

    let base = contracts::compile_base_rental().unwrap();
    let up_base = w.manager.upload_artifact("base", &base).unwrap();
    let c1 = w
        .manager
        .deploy(w.landlord, up_base, &base_args(), U256::ZERO)
        .unwrap();

    // Snapshot the live contract's attributes into the DataStorage contract.
    let written = store
        .snapshot_contract(w.landlord, &c1, RENTAL_DATA_KEYS)
        .unwrap();
    assert_eq!(written, RENTAL_DATA_KEYS.len());
    assert_eq!(store.get(c1.address(), "house").unwrap(), "10001-42 Main");
    assert_eq!(
        store.get(c1.address(), "rent").unwrap(),
        ether(1).to_string()
    );

    // Deploy v2 with migration: the new version's record carries the data.
    let v2 = contracts::compile_rental_agreement().unwrap();
    let up_v2 = w.manager.upload_artifact("v2", &v2).unwrap();
    let c2 = w
        .manager
        .deploy_version(
            w.landlord,
            up_v2,
            &v2_args(),
            U256::ZERO,
            c1.address(),
            RENTAL_DATA_KEYS,
        )
        .unwrap();
    assert_eq!(store.get(c2.address(), "house").unwrap(), "10001-42 Main");
    assert_eq!(
        store.get(c2.address(), "rent").unwrap(),
        ether(1).to_string()
    );
    // Old record still intact (history preserved).
    assert_eq!(store.get(c1.address(), "house").unwrap(), "10001-42 Main");
    // Unset keys read as empty.
    assert_eq!(store.get(c2.address(), "unset").unwrap(), "");
}

#[test]
fn abi_travels_through_ipfs_by_address() {
    let w = setup();
    let base = contracts::compile_base_rental().unwrap();
    let up = w.manager.upload_artifact("base", &base).unwrap();
    let c1 = w
        .manager
        .deploy(w.landlord, up, &base_args(), U256::ZERO)
        .unwrap();

    // A different party holding only the ADDRESS can reconstruct the
    // interface: registry → CID → IPFS → ABI → call.
    let registry = w.manager.registry();
    let cid = registry.cid_of(c1.address()).expect("abi pinned at deploy");
    let raw = registry.ipfs().cat(&cid).unwrap();
    let abi = lsc_abi::Abi::from_json(std::str::from_utf8(&raw).unwrap()).unwrap();
    assert!(abi.function("payRent").is_some());

    let rebound = w.manager.contract_at(c1.address()).unwrap();
    assert_eq!(
        rebound.call1("house", &[]).unwrap().as_str(),
        Some("10001-42 Main")
    );
}

#[test]
fn registry_manifest_bootstraps_second_party() {
    let w = setup();
    let base = contracts::compile_base_rental().unwrap();
    let up = w.manager.upload_artifact("base", &base).unwrap();
    let c1 = w
        .manager
        .deploy(w.landlord, up, &base_args(), U256::ZERO)
        .unwrap();
    let manifest = w.manager.registry().publish_manifest();

    // Second party: same IPFS network, fresh registry from the manifest.
    let registry2 =
        lsc_core::AbiRegistry::from_manifest(w.manager.registry().ipfs().clone(), manifest)
            .unwrap();
    assert!(registry2
        .abi_of(c1.address())
        .unwrap()
        .function("payRent")
        .is_some());
}

#[test]
fn tenant_reconfirms_after_modification() {
    // The paper: "A tenant has to confirm the agreement again if the
    // landlord modifies the contract."
    let w = setup();
    let base = contracts::compile_base_rental().unwrap();
    let v2 = contracts::compile_rental_agreement().unwrap();
    let up_base = w.manager.upload_artifact("base", &base).unwrap();
    let up_v2 = w.manager.upload_artifact("v2", &v2).unwrap();

    let c1 = w
        .manager
        .deploy(w.landlord, up_base, &base_args(), U256::ZERO)
        .unwrap();
    let rental_v1 = Rental::at(c1.clone());
    rental_v1.confirm_agreement(w.tenant).unwrap();
    rental_v1.pay_rent(w.tenant).unwrap();

    // Landlord modifies: deploys v2 linked to v1; v1 is terminated.
    let c2 = w
        .manager
        .deploy_version(w.landlord, up_v2, &v2_args(), U256::ZERO, c1.address(), &[])
        .unwrap();
    rental_v1.terminate(w.landlord).unwrap();
    w.manager.mark_terminated(c1.address());

    // The new version starts fresh: tenant must confirm again (with the
    // new deposit clause) before paying the discounted rent.
    let rental_v2 = Rental::at(c2);
    assert_eq!(rental_v2.state().unwrap(), RentalState::Created);
    assert!(rental_v2.pay_rent(w.tenant).is_err());
    rental_v2.confirm_agreement(w.tenant).unwrap();
    assert_eq!(rental_v2.deposit().unwrap(), ether(2));
    let landlord_before = w.manager.web3().balance(w.landlord);
    rental_v2.pay_rent(w.tenant).unwrap();
    // Discounted rent: 1 ether - 0.1 ether.
    assert_eq!(
        w.manager.web3().balance(w.landlord) - landlord_before,
        ether(1) - ether(1) / U256::from_u64(10)
    );
    // The old transactions remain reachable via the evidence line.
    assert_eq!(rental_v1.paid_rents().unwrap().len(), 1);
    assert_eq!(
        w.manager.history(rental_v2.address()).unwrap(),
        vec![rental_v1.address(), rental_v2.address()]
    );
}

#[test]
fn maintenance_clause_only_on_v2() {
    let w = setup();
    let base = contracts::compile_base_rental().unwrap();
    let v2 = contracts::compile_rental_agreement().unwrap();
    let up_base = w.manager.upload_artifact("base", &base).unwrap();
    let up_v2 = w.manager.upload_artifact("v2", &v2).unwrap();
    let c1 = w
        .manager
        .deploy(w.landlord, up_base, &base_args(), U256::ZERO)
        .unwrap();
    let c2 = w
        .manager
        .deploy(w.landlord, up_v2, &v2_args(), U256::ZERO)
        .unwrap();

    let r1 = Rental::at(c1);
    let r2 = Rental::at(c2);
    assert!(
        r1.pay_maintenance(w.tenant, ether(1)).is_err(),
        "v1 has no such clause"
    );
    r2.confirm_agreement(w.tenant).unwrap();
    let landlord_before = w.manager.web3().balance(w.landlord);
    r2.pay_maintenance(w.tenant, ether(1) / U256::from_u64(20))
        .unwrap();
    assert_eq!(
        w.manager.web3().balance(w.landlord) - landlord_before,
        ether(1) / U256::from_u64(20)
    );
}

#[test]
fn untimely_termination_splits_deposit() {
    let w = setup();
    let v2 = contracts::compile_rental_agreement().unwrap();
    let up = w.manager.upload_artifact("v2", &v2).unwrap();
    let c = w
        .manager
        .deploy(w.landlord, up, &v2_args(), U256::ZERO)
        .unwrap();
    let rental = Rental::at(c);
    rental.confirm_agreement(w.tenant).unwrap();
    // Contract escrows the deposit.
    assert_eq!(w.manager.web3().balance(rental.address()), ether(2));

    // Tenant cancels early (untimely): half the deposit + fine withheld.
    let tenant_before = w.manager.web3().balance(w.tenant);
    let landlord_before = w.manager.web3().balance(w.landlord);
    rental.terminate(w.tenant).unwrap();
    let kept = ether(1) + ether(1) / U256::from_u64(2); // deposit/2 + fine
    let refunded = ether(2) - kept;
    assert_eq!(w.manager.web3().balance(w.landlord) - landlord_before, kept);
    let tenant_after = w.manager.web3().balance(w.tenant);
    // Tenant got the refund minus gas.
    assert!(tenant_after > tenant_before);
    assert!(tenant_after - tenant_before <= refunded);
    assert_eq!(rental.state().unwrap(), RentalState::Terminated);
    assert_eq!(w.manager.web3().balance(rental.address()), U256::ZERO);
}

#[test]
fn timely_termination_returns_full_deposit() {
    let w = setup();
    let v2 = contracts::compile_rental_agreement().unwrap();
    let up = w.manager.upload_artifact("v2", &v2).unwrap();
    // One-month agreement.
    let args = vec![
        AbiValue::Uint(ether(1)),
        AbiValue::Uint(ether(2)),
        AbiValue::uint(30 * 24 * 3600),
        AbiValue::Uint(U256::ZERO),
        AbiValue::Uint(ether(1) / U256::from_u64(2)),
        AbiValue::string("10001-42 Main"),
    ];
    let c = w.manager.deploy(w.landlord, up, &args, U256::ZERO).unwrap();
    let rental = Rental::at(c);
    rental.confirm_agreement(w.tenant).unwrap();

    // Warp past the agreed period: termination is timely, full deposit.
    w.manager.web3().increase_time(31 * 24 * 3600);
    let landlord_before = w.manager.web3().balance(w.landlord);
    rental.terminate(w.tenant).unwrap();
    assert_eq!(
        w.manager.web3().balance(w.landlord),
        landlord_before,
        "landlord keeps nothing"
    );
    assert_eq!(w.manager.web3().balance(rental.address()), U256::ZERO);
}

#[test]
fn documents_linked_to_versions() {
    let w = setup();
    let base = contracts::compile_base_rental().unwrap();
    let up = w.manager.upload_artifact("base", &base).unwrap();
    let c1 = w
        .manager
        .deploy(w.landlord, up, &base_args(), U256::ZERO)
        .unwrap();
    let pdf = b"%PDF-1.4 Rental agreement, 12 months, 1 ETH monthly";
    w.manager.attach_document(c1.address(), pdf);
    assert_eq!(w.manager.document(c1.address()).unwrap(), pdf);
    assert!(w.manager.document(Address::from_label("nowhere")).is_err());
}

#[test]
fn upload_validation() {
    let w = setup();
    assert!(w.manager.upload("bad", vec![], "[]").is_err());
    assert!(w.manager.upload("bad", vec![1, 2, 3], "not json").is_err());
    let id = w.manager.upload("ok", vec![0x60, 0x00], "[]").unwrap();
    assert_eq!(id, 0);
    assert!(w.manager.deploy(w.landlord, 99, &[], U256::ZERO).is_err());
}
