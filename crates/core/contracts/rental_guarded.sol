/* Section V (future work): "more sophisticated techniques for
   implementing the versioning where the already executed part of the
   contract will not be able to change" and "introducing trust to the
   system".

   GuardedRental hardens the Fig. 2 Node by overriding the link setters:
   (a) restricted to the landlord — a stranger cannot relink the evidence
   line — and (b) write-once — once a version has a successor the link is
   frozen, so the executed prefix of the chain can never be rewritten. */
contract GuardedRental is BaseRental {
    bool nextLocked;
    bool prevLocked;

    event versionLinked(address indexed neighbour, bool isNext);

    function setNext(address _next) public {
        require(msg.sender == landlord, "only the landlord links versions");
        require(!nextLocked, "next pointer is write-once");
        require(_next != address(0), "cannot link the zero address");
        next = _next;
        nextLocked = true;
        emit versionLinked(_next, true);
    }

    function setPrev(address _previous) public {
        require(msg.sender == landlord, "only the landlord links versions");
        require(!prevLocked, "previous pointer is write-once");
        require(_previous != address(0), "cannot link the zero address");
        previous = _previous;
        prevLocked = true;
        emit versionLinked(_previous, false);
    }

    function isSuperseded() public view returns (bool) {
        return nextLocked;
    }
}
