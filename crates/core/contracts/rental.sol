pragma solidity ^0.5.0;

/* Fig. 2: the versioning node every legal contract derives from. Each
   deployed version is a node in a doubly linked list; the links hold the
   addresses of the neighbouring versions and are set by the contract
   manager when a new version is deployed. */
contract Node {
    /* Address of the next contract linked */
    address next;
    /* Address of the previous contract linked */
    address previous;

    function getNext() public view returns (address addr) { return next; }
    function getPrev() public view returns (address addr) { return previous; }
    function setNext(address _next) public { next = _next; }
    function setPrev(address _previous) public { previous = _previous; }
}

/* Fig. 3: the minimal data storage contract. The mapping keys are the
   addresses of legal-contract versions; each version maps attribute names
   to stringified values so logic-only updates can rebind the same data. */
contract DataStorage {
    mapping (address => mapping( string => string )) public keyValuePairs;

    function setValue(address owner, string memory key, string memory value) public {
        keyValuePairs[owner][key] = value;
    }
    function getValue(address owner, string memory key) public view returns (string memory) {
        return keyValuePairs[owner][key];
    }
}

/* Fig. 5: the base rental agreement. The paper elides the function bodies
   ("confirmAgreement logic" etc.); they are implemented here following the
   lifecycle in Section IV-A. */
contract BaseRental is Node {
    /* This declares a new complex type which will hold the paid rents */
    struct PaidRent {
        uint Monthid; /* The paid rent id */
        uint value;   /* The amount of rent that is paid */
    }
    PaidRent[] public paidrents;
    uint public createdTimestamp;
    uint public rent;
    /* Combination of zip code and house number */
    string public house;
    address payable public landlord, tenant;
    uint public creationTime, contractTime;
    enum State {Created, Started, Terminated}
    State public state;

    constructor (uint _rent, string memory _house, uint _contractTime) public payable {
        rent = _rent;
        house = _house;
        contractTime = _contractTime;
        landlord = msg.sender;
        creationTime = now;
        createdTimestamp = now;
        state = State.Created;
    }

    event agreementConfirmed();
    event paidRent();
    event contractTerminated();

    /* Confirm the lease agreement as tenant */
    function confirmAgreement() public payable {
        require(state == State.Created, "contract is not open for confirmation");
        require(msg.sender != landlord, "landlord cannot confirm own agreement");
        tenant = msg.sender;
        state = State.Started;
        emit agreementConfirmed();
    }

    function payRent() public payable {
        require(state == State.Started, "agreement is not active");
        require(msg.sender == tenant, "only the tenant pays rent");
        require(msg.value == rent, "rent amount mismatch");
        landlord.transfer(msg.value);
        paidrents.push(PaidRent(paidrents.length + 1, msg.value));
        emit paidRent();
    }

    function terminateContract() public payable {
        require(msg.sender == landlord, "only the landlord can terminate");
        require(state != State.Terminated, "already terminated");
        state = State.Terminated;
        emit contractTerminated();
    }
}
