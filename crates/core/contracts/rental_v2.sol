/* Fig. 6: the updated (modified) rental agreement, deployed as the next
   version in the linked list. Relative to BaseRental it adds a deposit
   held in escrow by the contract, a rent discount, an early-termination
   fine with the half/full deposit-refund rule of Section IV, a billing
   schedule, and a new clause function (a maintenance fee — the example
   modification the paper's Section III motivates). */
contract RentalAgreement is BaseRental {
    uint public deposit;
    uint public discount;
    uint public fine;
    uint public nextBillingDate;
    uint public monthCounter;
    uint public maintenanceFeesPaid;

    constructor (uint _rent, uint _deposit, uint _contractTime,
                 uint _discount, uint _fine,
                 string memory _house) public payable {
        rent = _rent;
        deposit = _deposit;
        house = _house;
        discount = _discount;
        fine = _fine;
        contractTime = _contractTime;
        landlord = msg.sender;
        createdTimestamp = block.timestamp;
        creationTime = block.timestamp;
        state = State.Created;
    }

    /* Events for DApps to listen to */
    event agreementConfirmed();
    event paidRent();
    event contractTerminated();
    event paidMaintenance(uint amount);

    /* Confirm the lease agreement as tenant: the deposit is escrowed in
       the contract until termination. */
    function confirmAgreement() public payable {
        require(state == State.Created, "contract is not open for confirmation");
        require(msg.sender != landlord, "landlord cannot confirm own agreement");
        require(msg.value == deposit, "deposit amount mismatch");
        tenant = msg.sender;
        state = State.Started;
        nextBillingDate = now + 30 days;
        emit agreementConfirmed();
    }

    /* Updated pay-rent logic: the discount applies and the billing
       schedule advances. */
    function payRent() public payable {
        require(state == State.Started, "agreement is not active");
        require(msg.sender == tenant, "only the tenant pays rent");
        require(msg.value == rent - discount, "rent amount mismatch");
        landlord.transfer(msg.value);
        monthCounter += 1;
        nextBillingDate += 30 days;
        paidrents.push(PaidRent(monthCounter, msg.value));
        emit paidRent();
    }

    /* Updated termination: the tenant may cancel midway paying the fine
       (half the deposit is withheld); at or after the agreed period the
       full deposit is returned. The landlord may also terminate, which
       returns the full deposit to the tenant. */
    function terminateContract() public payable {
        require(state != State.Terminated, "already terminated");
        if (state == State.Started && msg.sender == tenant) {
            if (now < creationTime + contractTime) {
                uint kept = deposit / 2 + fine;
                if (kept > deposit) { kept = deposit; }
                tenant.transfer(deposit - kept);
                landlord.transfer(kept);
            } else {
                tenant.transfer(deposit);
            }
        } else {
            require(msg.sender == landlord, "only the parties can terminate");
            if (state == State.Started) {
                tenant.transfer(deposit);
            }
        }
        state = State.Terminated;
        emit contractTerminated();
    }

    /* A new function to do something advanced: the maintenance-fee clause
       introduced by the contract modification. */
    function aNewFunction() public payable {
        require(state == State.Started, "agreement is not active");
        require(msg.sender == tenant, "only the tenant pays maintenance");
        maintenanceFeesPaid += msg.value;
        landlord.transfer(msg.value);
        emit paidMaintenance(msg.value);
    }
}
