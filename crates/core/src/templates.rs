//! Contract templates (Section III-A): "Our proposal for domain-specific
//! applications is to base them on pre-existing templates that can
//! significantly contribute to the development … while users can focus on
//! the application logic instead of the coding issues."
//!
//! [`RentalTemplate`] assembles a rental agreement from selectable
//! clauses — deposit escrow, rent discount, maintenance fee, guarded
//! write-once version links — rendering Solidity-subset source that
//! `lsc-solc` compiles. Non-developers pick clauses; the template does
//! the coding.

use crate::error::{CoreError, CoreResult};
use lsc_solc::{compile_single, Artifact};
use std::fmt::Write as _;

/// A clause the user adds verbatim (an escape hatch for bespoke terms).
#[derive(Debug, Clone)]
pub struct CustomClause {
    /// Function name (must be a valid identifier, unique in the contract).
    pub name: String,
    /// Solidity-subset statements forming the function body.
    pub body: String,
    /// Whether the clause function is payable.
    pub payable: bool,
    /// Restrict the clause to a party.
    pub restricted_to: Option<Party>,
}

/// Contract parties a clause can be restricted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Party {
    /// The deploying landlord.
    Landlord,
    /// The confirming tenant.
    Tenant,
}

/// A parameterized rental-agreement template.
#[derive(Debug, Clone)]
pub struct RentalTemplate {
    /// Contract name.
    pub name: String,
    /// Escrow a deposit at confirmation, refunded per the termination rules.
    pub with_deposit: bool,
    /// Apply a rent discount.
    pub with_discount: bool,
    /// Include the maintenance-fee clause (the paper's example new clause).
    pub with_maintenance: bool,
    /// Use landlord-only, write-once version links (the §V hardening).
    pub with_guarded_links: bool,
    /// Additional bespoke clauses.
    pub custom_clauses: Vec<CustomClause>,
}

impl Default for RentalTemplate {
    fn default() -> Self {
        RentalTemplate {
            name: "TemplatedRental".to_string(),
            with_deposit: false,
            with_discount: false,
            with_maintenance: false,
            with_guarded_links: false,
            custom_clauses: Vec::new(),
        }
    }
}

impl RentalTemplate {
    /// A fresh template with the given contract name.
    pub fn named(name: &str) -> Self {
        RentalTemplate {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Enable the deposit clause.
    pub fn with_deposit(mut self) -> Self {
        self.with_deposit = true;
        self
    }

    /// Enable the discount clause.
    pub fn with_discount(mut self) -> Self {
        self.with_discount = true;
        self
    }

    /// Enable the maintenance-fee clause.
    pub fn with_maintenance(mut self) -> Self {
        self.with_maintenance = true;
        self
    }

    /// Enable guarded write-once version links.
    pub fn with_guarded_links(mut self) -> Self {
        self.with_guarded_links = true;
        self
    }

    /// Add a bespoke clause.
    pub fn with_clause(mut self, clause: CustomClause) -> Self {
        self.custom_clauses.push(clause);
        self
    }

    /// The constructor argument names, in order, for this configuration.
    pub fn constructor_params(&self) -> Vec<&'static str> {
        let mut params = vec!["_rent", "_house", "_contractTime"];
        if self.with_deposit {
            params.push("_deposit");
        }
        if self.with_discount {
            params.push("_discount");
        }
        params
    }

    /// Render the Solidity-subset source.
    pub fn render(&self) -> CoreResult<String> {
        let name = &self.name;
        if !is_identifier(name) {
            return Err(CoreError::Invalid(format!(
                "`{name}` is not a valid contract name"
            )));
        }
        for clause in &self.custom_clauses {
            if !is_identifier(&clause.name) {
                return Err(CoreError::Invalid(format!(
                    "`{}` is not a valid clause name",
                    clause.name
                )));
            }
        }
        let mut src = String::new();
        let w = &mut src;
        let _ = writeln!(w, "pragma solidity ^0.5.0;\n");
        let _ = writeln!(w, "contract Node {{");
        let _ = writeln!(w, "    address next;");
        let _ = writeln!(w, "    address previous;");
        let _ = writeln!(
            w,
            "    function getNext() public view returns (address addr) {{ return next; }}"
        );
        let _ = writeln!(
            w,
            "    function getPrev() public view returns (address addr) {{ return previous; }}"
        );
        if !self.with_guarded_links {
            let _ = writeln!(
                w,
                "    function setNext(address _next) public {{ next = _next; }}"
            );
            let _ = writeln!(
                w,
                "    function setPrev(address _previous) public {{ previous = _previous; }}"
            );
        }
        let _ = writeln!(w, "}}\n");

        let _ = writeln!(w, "contract {name} is Node {{");
        let _ = writeln!(w, "    struct PaidRent {{ uint Monthid; uint value; }}");
        let _ = writeln!(w, "    PaidRent[] public paidrents;");
        let _ = writeln!(w, "    uint public rent;");
        let _ = writeln!(w, "    string public house;");
        let _ = writeln!(w, "    address payable public landlord, tenant;");
        let _ = writeln!(w, "    uint public creationTime, contractTime;");
        if self.with_deposit {
            let _ = writeln!(w, "    uint public deposit;");
        }
        if self.with_discount {
            let _ = writeln!(w, "    uint public discount;");
        }
        if self.with_maintenance {
            let _ = writeln!(w, "    uint public maintenanceFeesPaid;");
        }
        if self.with_guarded_links {
            let _ = writeln!(w, "    bool nextLocked;");
            let _ = writeln!(w, "    bool prevLocked;");
        }
        let _ = writeln!(w, "    enum State {{Created, Started, Terminated}}");
        let _ = writeln!(w, "    State public state;\n");
        let _ = writeln!(w, "    event agreementConfirmed();");
        let _ = writeln!(w, "    event paidRent();");
        let _ = writeln!(w, "    event contractTerminated();\n");

        // Role modifiers — the template writes the guards so users don't.
        let _ = writeln!(w, "    modifier onlyLandlord() {{");
        let _ = writeln!(
            w,
            "        require(msg.sender == landlord, \"only the landlord\");"
        );
        let _ = writeln!(w, "        _;");
        let _ = writeln!(w, "    }}");
        let _ = writeln!(w, "    modifier onlyTenant() {{");
        let _ = writeln!(
            w,
            "        require(msg.sender == tenant, \"only the tenant\");"
        );
        let _ = writeln!(w, "        _;");
        let _ = writeln!(w, "    }}");
        let _ = writeln!(w, "    modifier inState(State s) {{");
        let _ = writeln!(w, "        require(state == s, \"wrong lifecycle state\");");
        let _ = writeln!(w, "        _;");
        let _ = writeln!(w, "    }}\n");

        // Constructor.
        let mut ctor_params = vec![
            "uint _rent".to_string(),
            "string memory _house".to_string(),
            "uint _contractTime".to_string(),
        ];
        if self.with_deposit {
            ctor_params.push("uint _deposit".to_string());
        }
        if self.with_discount {
            ctor_params.push("uint _discount".to_string());
        }
        let _ = writeln!(
            w,
            "    constructor ({}) public payable {{",
            ctor_params.join(", ")
        );
        let _ = writeln!(w, "        rent = _rent;");
        let _ = writeln!(w, "        house = _house;");
        let _ = writeln!(w, "        contractTime = _contractTime;");
        if self.with_deposit {
            let _ = writeln!(w, "        deposit = _deposit;");
        }
        if self.with_discount {
            let _ = writeln!(w, "        discount = _discount;");
        }
        let _ = writeln!(w, "        landlord = msg.sender;");
        let _ = writeln!(w, "        creationTime = now;");
        let _ = writeln!(w, "        state = State.Created;");
        let _ = writeln!(w, "    }}\n");

        // confirmAgreement.
        let _ = writeln!(
            w,
            "    function confirmAgreement() public payable inState(State.Created) {{"
        );
        let _ = writeln!(
            w,
            "        require(msg.sender != landlord, \"landlord cannot confirm\");"
        );
        if self.with_deposit {
            let _ = writeln!(
                w,
                "        require(msg.value == deposit, \"deposit amount mismatch\");"
            );
        }
        let _ = writeln!(w, "        tenant = msg.sender;");
        let _ = writeln!(w, "        state = State.Started;");
        let _ = writeln!(w, "        emit agreementConfirmed();");
        let _ = writeln!(w, "    }}\n");

        // payRent.
        let due = if self.with_discount {
            "rent - discount"
        } else {
            "rent"
        };
        let _ = writeln!(
            w,
            "    function payRent() public payable onlyTenant inState(State.Started) {{"
        );
        let _ = writeln!(
            w,
            "        require(msg.value == {due}, \"rent amount mismatch\");"
        );
        let _ = writeln!(w, "        landlord.transfer(msg.value);");
        let _ = writeln!(
            w,
            "        paidrents.push(PaidRent(paidrents.length + 1, msg.value));"
        );
        let _ = writeln!(w, "        emit paidRent();");
        let _ = writeln!(w, "    }}\n");

        // terminateContract.
        let _ = writeln!(w, "    function terminateContract() public payable {{");
        let _ = writeln!(
            w,
            "        require(state != State.Terminated, \"already terminated\");"
        );
        if self.with_deposit {
            let _ = writeln!(
                w,
                "        if (state == State.Started && msg.sender == tenant) {{"
            );
            let _ = writeln!(w, "            if (now < creationTime + contractTime) {{");
            let _ = writeln!(w, "                uint kept = deposit / 2;");
            let _ = writeln!(w, "                tenant.transfer(deposit - kept);");
            let _ = writeln!(w, "                landlord.transfer(kept);");
            let _ = writeln!(w, "            }} else {{ tenant.transfer(deposit); }}");
            let _ = writeln!(w, "        }} else {{");
            let _ = writeln!(
                w,
                "            require(msg.sender == landlord, \"only the parties\");"
            );
            let _ = writeln!(
                w,
                "            if (state == State.Started) {{ tenant.transfer(deposit); }}"
            );
            let _ = writeln!(w, "        }}");
        } else {
            let _ = writeln!(
                w,
                "        require(msg.sender == landlord, \"only the landlord\");"
            );
        }
        let _ = writeln!(w, "        state = State.Terminated;");
        let _ = writeln!(w, "        emit contractTerminated();");
        let _ = writeln!(w, "    }}\n");

        // Optional maintenance clause.
        if self.with_maintenance {
            let _ = writeln!(
                w,
                "    function payMaintenance() public payable onlyTenant inState(State.Started) {{"
            );
            let _ = writeln!(w, "        maintenanceFeesPaid += msg.value;");
            let _ = writeln!(w, "        landlord.transfer(msg.value);");
            let _ = writeln!(w, "    }}\n");
        }

        // Guarded links.
        if self.with_guarded_links {
            let _ = writeln!(
                w,
                "    function setNext(address _next) public onlyLandlord {{"
            );
            let _ = writeln!(
                w,
                "        require(!nextLocked, \"next pointer is write-once\");"
            );
            let _ = writeln!(w, "        next = _next;");
            let _ = writeln!(w, "        nextLocked = true;");
            let _ = writeln!(w, "    }}");
            let _ = writeln!(
                w,
                "    function setPrev(address _previous) public onlyLandlord {{"
            );
            let _ = writeln!(
                w,
                "        require(!prevLocked, \"previous pointer is write-once\");"
            );
            let _ = writeln!(w, "        previous = _previous;");
            let _ = writeln!(w, "        prevLocked = true;");
            let _ = writeln!(w, "    }}\n");
        }

        // Custom clauses.
        for clause in &self.custom_clauses {
            let payable = if clause.payable { " payable" } else { "" };
            let guard = match clause.restricted_to {
                Some(Party::Landlord) => " onlyLandlord",
                Some(Party::Tenant) => " onlyTenant",
                None => "",
            };
            let _ = writeln!(
                w,
                "    function {}() public{payable}{guard} {{",
                clause.name
            );
            let _ = writeln!(w, "        {}", clause.body);
            let _ = writeln!(w, "    }}\n");
        }

        let _ = writeln!(w, "}}");
        Ok(src)
    }

    /// Render and compile the template.
    pub fn compile(&self) -> CoreResult<Artifact> {
        let source = self.render()?;
        Ok(compile_single(&source, &self.name)?)
    }
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_clause_combination_compiles() {
        for bits in 0u8..16 {
            let mut template = RentalTemplate::named("Combo");
            template.with_deposit = bits & 1 != 0;
            template.with_discount = bits & 2 != 0;
            template.with_maintenance = bits & 4 != 0;
            template.with_guarded_links = bits & 8 != 0;
            let artifact = template.compile().unwrap_or_else(|e| {
                panic!(
                    "combination {bits:#06b} failed: {e}\n{}",
                    template.render().unwrap()
                )
            });
            assert!(artifact.abi.function("payRent").is_some());
            assert_eq!(
                artifact.abi.constructor_inputs.len(),
                template.constructor_params().len(),
                "combination {bits:#06b}"
            );
            assert_eq!(
                artifact.abi.function("payMaintenance").is_some(),
                template.with_maintenance
            );
        }
    }

    #[test]
    fn invalid_names_rejected() {
        assert!(RentalTemplate::named("1bad").render().is_err());
        assert!(RentalTemplate::named("has space").render().is_err());
        let template = RentalTemplate::named("Ok").with_clause(CustomClause {
            name: "bad-clause".into(),
            body: String::new(),
            payable: false,
            restricted_to: None,
        });
        assert!(template.render().is_err());
    }

    #[test]
    fn rendered_source_is_deterministic() {
        let t = RentalTemplate::named("Det")
            .with_deposit()
            .with_maintenance();
        assert_eq!(t.render().unwrap(), t.render().unwrap());
    }
}
