//! Evidence-line auditing (Section V: "introducing trust to the system"):
//! assemble, for any version address, a complete report of the chain of
//! modifications with every independently verifiable fact — on-chain
//! pointers, code hashes, ABI CIDs, document CIDs and block provenance.

use crate::error::CoreResult;
use crate::manager::ContractManager;
use lsc_primitives::{Address, H256};

/// One audited version.
#[derive(Debug, Clone)]
pub struct AuditEntry {
    /// Position in the chain (1-based).
    pub version: u32,
    /// On-chain address.
    pub address: Address,
    /// keccak of the deployed runtime code (immutable identity).
    pub code_hash: H256,
    /// Deployer per the manager's records, if known.
    pub deployer: Option<Address>,
    /// Deployment block, if known.
    pub block: Option<u64>,
    /// CID of the ABI file in IPFS, if registered.
    pub abi_cid: Option<String>,
    /// CID of the linked legal document, if any.
    pub document_cid: Option<String>,
    /// Static-verifier findings recorded when the version was vetted at
    /// deploy time (empty for clean or pre-verifier deployments).
    pub vetting: Vec<String>,
}

/// A full evidence report over a version chain.
#[derive(Debug, Clone)]
pub struct EvidenceReport {
    /// Audited versions, earliest first.
    pub entries: Vec<AuditEntry>,
    /// Whether the bidirectional pointer check passed.
    pub chain_intact: bool,
}

impl EvidenceReport {
    /// Render as a fixed-width text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("EVIDENCE LINE AUDIT\n");
        out.push_str(&format!(
            "chain integrity: {}\n",
            if self.chain_intact {
                "INTACT (bidirectional)"
            } else {
                "BROKEN"
            }
        ));
        out.push_str(&format!(
            "{:<4} | {:<44} | {:<10} | {:<8} | doc\n",
            "ver", "address", "code hash", "block"
        ));
        out.push_str(&"-".repeat(90));
        out.push('\n');
        for entry in &self.entries {
            let hash = entry.code_hash.to_string();
            out.push_str(&format!(
                "v{:<3} | {:<44} | {}…{} | {:<8} | {}\n",
                entry.version,
                entry.address.to_string(),
                &hash[2..6],
                &hash[hash.len() - 4..],
                entry.block.map_or_else(|| "?".into(), |b| b.to_string()),
                if entry.document_cid.is_some() {
                    "linked"
                } else {
                    "-"
                },
            ));
            for finding in &entry.vetting {
                out.push_str(&format!("     | vet: {finding}\n"));
            }
        }
        out
    }
}

/// Build an evidence report for the chain containing `address`.
///
/// Every on-chain fact in the report is read from ONE published MVCC
/// snapshot — lock-free, and internally consistent even while blocks are
/// being mined concurrently.
pub fn audit_chain(manager: &ContractManager, address: Address) -> CoreResult<EvidenceReport> {
    let chain_intact = manager.verify_chain(address).is_ok();
    let chain = manager.history(address)?;
    let snapshot = manager.web3().read_snapshot();
    let mut entries = Vec::with_capacity(chain.len());
    for (i, version_address) in chain.iter().enumerate() {
        let record = manager.record(*version_address);
        let code = snapshot.code(*version_address);
        // Deployed code hashes come from the account's memoized analysis
        // (keccak runs at most once per blob); codeless addresses hash
        // the empty blob, matching the pre-MVCC report bit for bit.
        let code_hash = if code.is_empty() {
            H256::keccak(code.as_slice())
        } else {
            snapshot.code_hash(*version_address)
        };
        entries.push(AuditEntry {
            version: i as u32 + 1,
            address: *version_address,
            code_hash,
            deployer: record.as_ref().map(|r| r.deployer),
            block: record.as_ref().map(|r| r.block),
            abi_cid: manager
                .registry()
                .cid_of(*version_address)
                .map(|c| c.to_string()),
            document_cid: manager
                .documents()
                .cid_of(*version_address)
                .map(|c| c.to_string()),
            vetting: manager.vetting_findings(*version_address),
        });
    }
    Ok(EvidenceReport {
        entries,
        chain_intact,
    })
}
