//! Error type for the contract-management layer.

use core::fmt;
use lsc_ipfs::DagError;
use lsc_solc::CompileError;
use lsc_web3::Web3Error;

/// Anything that can go wrong in the business tier.
#[derive(Debug)]
pub enum CoreError {
    /// Chain/client failure.
    Web3(Web3Error),
    /// Compilation failure.
    Compile(CompileError),
    /// IPFS retrieval failure.
    Ipfs(DagError),
    /// ABI JSON was malformed.
    AbiJson(lsc_abi::AbiJsonError),
    /// No ABI registered for an address.
    UnknownContract(lsc_primitives::Address),
    /// No upload with that id.
    UnknownUpload(u64),
    /// The version chain is inconsistent on-chain.
    BrokenChain(String),
    /// The bytecode verifier refused to let the contract through.
    Vetting(lsc_analyzer::VetError),
    /// A value failed validation.
    Invalid(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Web3(e) => write!(f, "{e}"),
            Self::Compile(e) => write!(f, "{e}"),
            Self::Ipfs(e) => write!(f, "{e}"),
            Self::AbiJson(e) => write!(f, "{e}"),
            Self::UnknownContract(a) => write!(f, "no ABI registered for contract {a}"),
            Self::UnknownUpload(id) => write!(f, "no uploaded contract with id {id}"),
            Self::BrokenChain(m) => write!(f, "version chain broken: {m}"),
            Self::Vetting(e) => write!(f, "{e}"),
            Self::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<Web3Error> for CoreError {
    fn from(e: Web3Error) -> Self {
        Self::Web3(e)
    }
}

impl From<CompileError> for CoreError {
    fn from(e: CompileError) -> Self {
        Self::Compile(e)
    }
}

impl From<DagError> for CoreError {
    fn from(e: DagError) -> Self {
        Self::Ipfs(e)
    }
}

impl From<lsc_abi::AbiJsonError> for CoreError {
    fn from(e: lsc_abi::AbiJsonError) -> Self {
        Self::AbiJson(e)
    }
}

impl From<lsc_analyzer::VetError> for CoreError {
    fn from(e: lsc_analyzer::VetError) -> Self {
        Self::Vetting(e)
    }
}

/// Result alias for the business tier.
pub type CoreResult<T> = Result<T, CoreError>;
