//! The paper's Solidity contracts (Figs. 2, 3, 5, 6), embedded as source
//! and compiled on demand by `lsc-solc`.

use lsc_solc::{compile_single, Artifact, CompileError};

/// Fig. 2 (Node), Fig. 3 (DataStorage) and Fig. 5 (BaseRental) sources.
pub const RENTAL_BASE_SOURCE: &str = include_str!("../contracts/rental.sol");

/// Fig. 6 (RentalAgreement, the modified version) source.
pub const RENTAL_V2_SOURCE: &str = include_str!("../contracts/rental_v2.sol");

/// Section V future-work variant: guarded, write-once version links.
pub const RENTAL_GUARDED_SOURCE: &str = include_str!("../contracts/rental_guarded.sol");

/// The combined compilation unit (v2 inherits from the base file).
pub fn full_source() -> String {
    format!("{RENTAL_BASE_SOURCE}\n{RENTAL_V2_SOURCE}\n{RENTAL_GUARDED_SOURCE}")
}

/// Compile the guarded (future-work) rental contract.
pub fn compile_guarded_rental() -> Result<Artifact, CompileError> {
    compile_single(&full_source(), "GuardedRental")
}

/// Compile the `Node` linked-list base contract (Fig. 2).
pub fn compile_node() -> Result<Artifact, CompileError> {
    compile_single(RENTAL_BASE_SOURCE, "Node")
}

/// Compile the `DataStorage` contract (Fig. 3).
pub fn compile_data_storage() -> Result<Artifact, CompileError> {
    compile_single(RENTAL_BASE_SOURCE, "DataStorage")
}

/// Compile the `BaseRental` contract (Fig. 5).
pub fn compile_base_rental() -> Result<Artifact, CompileError> {
    compile_single(RENTAL_BASE_SOURCE, "BaseRental")
}

/// Compile the updated `RentalAgreement` contract (Fig. 6).
pub fn compile_rental_agreement() -> Result<Artifact, CompileError> {
    compile_single(&full_source(), "RentalAgreement")
}

/// The attribute names the rental agreements expose via public getters and
/// migrate through the data-separation layer.
pub const RENTAL_DATA_KEYS: &[&str] = &["rent", "house", "contractTime", "createdTimestamp"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_contracts_compile() {
        let node = compile_node().expect("Node compiles");
        assert!(node.abi.function("getNext").is_some());
        assert!(node.abi.function("setPrev").is_some());

        let ds = compile_data_storage().expect("DataStorage compiles");
        assert!(ds.abi.function("keyValuePairs").is_some());
        assert_eq!(ds.abi.function("keyValuePairs").unwrap().inputs.len(), 2);

        let base = compile_base_rental().expect("BaseRental compiles");
        for f in [
            "confirmAgreement",
            "payRent",
            "terminateContract",
            "getNext",
            "setNext",
        ] {
            assert!(base.abi.function(f).is_some(), "BaseRental missing {f}");
        }
        assert_eq!(base.abi.constructor_inputs.len(), 3);

        let v2 = compile_rental_agreement().expect("RentalAgreement compiles");
        for f in [
            "confirmAgreement",
            "payRent",
            "terminateContract",
            "aNewFunction",
            "deposit",
        ] {
            assert!(v2.abi.function(f).is_some(), "RentalAgreement missing {f}");
        }
        assert_eq!(v2.abi.constructor_inputs.len(), 6);
    }

    #[test]
    fn version_layouts_are_slot_compatible() {
        // The data-separation design requires base slots to be identical
        // across versions: check `rent` and friends line up.
        let base = compile_base_rental().unwrap();
        let v2 = compile_rental_agreement().unwrap();
        for key in ["rent", "house", "state", "landlord", "tenant", "paidrents"] {
            let b = base
                .storage_layout
                .iter()
                .find(|(n, _, _)| n == key)
                .unwrap();
            let v = v2.storage_layout.iter().find(|(n, _, _)| n == key).unwrap();
            assert_eq!(b.1, v.1, "slot of `{key}` moved between versions");
        }
    }
}
