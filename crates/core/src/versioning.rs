//! The contract versioning system (Fig. 2): every legal contract derives
//! from `Node`, a doubly-linked-list node whose `next`/`previous` fields
//! hold the addresses of the neighbouring versions *on chain*. The chain
//! of versions is the tamper-evident "evidence line" of modifications.

use crate::error::{CoreError, CoreResult};
use crate::registry::AbiRegistry;
use lsc_abi::AbiValue;
use lsc_primitives::{Address, U256};
use lsc_web3::{Contract, Web3};

/// Operations over the on-chain doubly linked list of versions.
#[derive(Clone)]
pub struct VersionChain {
    web3: Web3,
    registry: AbiRegistry,
}

impl VersionChain {
    /// Bind to a client and an ABI registry.
    pub fn new(web3: Web3, registry: AbiRegistry) -> Self {
        VersionChain { web3, registry }
    }

    /// Resolve a contract handle for an address via the ABI registry —
    /// the paper's address→IPFS→ABI→interaction path.
    pub fn contract_at(&self, address: Address) -> CoreResult<Contract> {
        let abi = self.registry.abi_of(address)?;
        Ok(self.web3.contract_at(abi, address))
    }

    /// Read the `next` pointer of a version (zero address = none).
    pub fn next_of(&self, address: Address) -> CoreResult<Option<Address>> {
        let contract = self.contract_at(address)?;
        let next = contract.call1("getNext", &[])?;
        Ok(next.as_address().filter(|a| !a.is_zero()))
    }

    /// Read the `previous` pointer of a version (zero address = none).
    pub fn prev_of(&self, address: Address) -> CoreResult<Option<Address>> {
        let contract = self.contract_at(address)?;
        let prev = contract.call1("getPrev", &[])?;
        Ok(prev.as_address().filter(|a| !a.is_zero()))
    }

    /// Link `new_version` after `previous` by setting both pointers, as
    /// the contract manager does whenever a new version is deployed. The
    /// pointer transactions are durably logged like any other; on top of
    /// that the link event itself is marked in the write-ahead log, so
    /// the evidence line (Fig. 2) is auditable straight from the log.
    pub fn link(&self, from: Address, previous: Address, new_version: Address) -> CoreResult<()> {
        let prev_contract = self.contract_at(previous)?;
        let new_contract = self.contract_at(new_version)?;
        prev_contract.send(
            from,
            "setNext",
            &[AbiValue::Address(new_version)],
            U256::ZERO,
        )?;
        new_contract.send(from, "setPrev", &[AbiValue::Address(previous)], U256::ZERO)?;
        self.web3.note_version_pointer(previous, new_version)?;
        Ok(())
    }

    /// Walk back to the first version.
    pub fn head_of(&self, address: Address) -> CoreResult<Address> {
        let mut current = address;
        let mut hops = 0usize;
        while let Some(prev) = self.prev_of(current)? {
            current = prev;
            hops += 1;
            if hops > 10_000 {
                return Err(CoreError::BrokenChain("previous-pointer cycle".into()));
            }
        }
        Ok(current)
    }

    /// Walk forward to the latest version.
    pub fn latest_of(&self, address: Address) -> CoreResult<Address> {
        let mut current = address;
        let mut hops = 0usize;
        while let Some(next) = self.next_of(current)? {
            current = next;
            hops += 1;
            if hops > 10_000 {
                return Err(CoreError::BrokenChain("next-pointer cycle".into()));
            }
        }
        Ok(current)
    }

    /// Full version history, earliest first, discovered entirely from
    /// on-chain pointers (the evidence line).
    pub fn history(&self, address: Address) -> CoreResult<Vec<Address>> {
        let head = self.head_of(address)?;
        let mut chain = vec![head];
        let mut current = head;
        while let Some(next) = self.next_of(current)? {
            if chain.contains(&next) {
                return Err(CoreError::BrokenChain("next-pointer cycle".into()));
            }
            chain.push(next);
            current = next;
        }
        Ok(chain)
    }

    /// Verify the chain's bidirectional integrity: for every adjacent
    /// pair, `a.next == b` and `b.previous == a`.
    pub fn verify(&self, address: Address) -> CoreResult<Vec<Address>> {
        let chain = self.history(address)?;
        for pair in chain.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if self.next_of(a)? != Some(b) {
                return Err(CoreError::BrokenChain(format!(
                    "{a} does not point forward to {b}"
                )));
            }
            if self.prev_of(b)? != Some(a) {
                return Err(CoreError::BrokenChain(format!(
                    "{b} does not point back to {a}"
                )));
            }
        }
        Ok(chain)
    }
}
