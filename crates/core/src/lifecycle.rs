//! Typed lifecycle API over a deployed rental agreement — the sequence of
//! Fig. 4: confirm agreement (+ deposit), pay rent (ether moves tenant →
//! landlord), modify, terminate (timely/untimely deposit split).

use crate::error::{CoreError, CoreResult};
use core::fmt;
use lsc_abi::AbiValue;
use lsc_chain::{Receipt, Transaction};
use lsc_primitives::{Address, U256};
use lsc_web3::Contract;

/// The on-chain `State` enum of the rental contracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RentalState {
    /// Deployed, waiting for a tenant.
    Created,
    /// Tenant confirmed; rent is being paid.
    Started,
    /// Agreement over.
    Terminated,
}

impl fmt::Display for RentalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Created => write!(f, "Created"),
            Self::Started => write!(f, "Started"),
            Self::Terminated => write!(f, "Terminated"),
        }
    }
}

/// A point-in-time summary of an agreement (dashboard row).
#[derive(Debug, Clone)]
pub struct RentalSummary {
    /// Contract address.
    pub address: Address,
    /// Monthly rent in wei.
    pub rent: U256,
    /// Property identifier (zip code + house number).
    pub house: String,
    /// Landlord account.
    pub landlord: Address,
    /// Tenant account (zero until confirmed).
    pub tenant: Address,
    /// Current state.
    pub state: RentalState,
    /// Number of rents paid so far.
    pub rents_paid: u64,
}

/// Typed wrapper over a deployed `BaseRental`/`RentalAgreement` version.
#[derive(Clone)]
pub struct Rental {
    contract: Contract,
}

impl Rental {
    /// Wrap a contract handle.
    pub fn at(contract: Contract) -> Self {
        Rental { contract }
    }

    /// The underlying handle.
    pub fn contract(&self) -> &Contract {
        &self.contract
    }

    /// On-chain address.
    pub fn address(&self) -> Address {
        self.contract.address()
    }

    /// Current lifecycle state.
    pub fn state(&self) -> CoreResult<RentalState> {
        let value = self.contract.call1("state", &[])?;
        match value.as_u64() {
            Some(0) => Ok(RentalState::Created),
            Some(1) => Ok(RentalState::Started),
            Some(2) => Ok(RentalState::Terminated),
            other => Err(CoreError::Invalid(format!(
                "unexpected state value {other:?}"
            ))),
        }
    }

    /// Monthly rent.
    pub fn rent(&self) -> CoreResult<U256> {
        Ok(self
            .contract
            .call1("rent", &[])?
            .as_uint()
            .unwrap_or(U256::ZERO))
    }

    /// Required deposit (zero for the base version which has none).
    pub fn deposit(&self) -> CoreResult<U256> {
        if self.contract.abi().function("deposit").is_none() {
            return Ok(U256::ZERO);
        }
        Ok(self
            .contract
            .call1("deposit", &[])?
            .as_uint()
            .unwrap_or(U256::ZERO))
    }

    /// The effective rent payment amount (v2 applies the discount).
    pub fn amount_due(&self) -> CoreResult<U256> {
        let rent = self.rent()?;
        if self.contract.abi().function("discount").is_none() {
            return Ok(rent);
        }
        let discount = self
            .contract
            .call1("discount", &[])?
            .as_uint()
            .unwrap_or(U256::ZERO);
        Ok(rent - discount)
    }

    /// Tenant confirms the agreement, attaching the required deposit.
    pub fn confirm_agreement(&self, tenant: Address) -> CoreResult<Receipt> {
        let deposit = self.deposit()?;
        Ok(self
            .contract
            .send(tenant, "confirmAgreement", &[], deposit)?)
    }

    /// Tenant pays one month's rent; ether moves tenant → landlord.
    pub fn pay_rent(&self, tenant: Address) -> CoreResult<Receipt> {
        let amount = self.amount_due()?;
        Ok(self.contract.send(tenant, "payRent", &[], amount)?)
    }

    /// Build (but do not send) the rent-payment transaction, for batch
    /// submission: on "rent day" every tenant's payment is queued and the
    /// whole batch is mined as one block.
    pub fn rent_payment_transaction(&self, tenant: Address) -> CoreResult<Transaction> {
        let amount = self.amount_due()?;
        Ok(self.contract.transaction(tenant, "payRent", &[], amount)?)
    }

    /// Pay the maintenance fee (only on the modified version's new clause).
    pub fn pay_maintenance(&self, tenant: Address, amount: U256) -> CoreResult<Receipt> {
        if self.contract.abi().function("aNewFunction").is_none() {
            return Err(CoreError::Invalid(
                "this contract version has no maintenance clause".into(),
            ));
        }
        Ok(self.contract.send(tenant, "aNewFunction", &[], amount)?)
    }

    /// Terminate the agreement (rules depend on caller and timing).
    pub fn terminate(&self, who: Address) -> CoreResult<Receipt> {
        Ok(self
            .contract
            .send(who, "terminateContract", &[], U256::ZERO)?)
    }

    /// Paid-rent history `(month_id, amount)` read from the public array.
    pub fn paid_rents(&self) -> CoreResult<Vec<(u64, U256)>> {
        let mut out = Vec::new();
        for i in 0.. {
            match self.contract.call("paidrents", &[AbiValue::uint(i)]) {
                Ok(fields) => {
                    let month = fields[0].as_u64().unwrap_or(0);
                    let amount = fields[1].as_uint().unwrap_or(U256::ZERO);
                    out.push((month, amount));
                }
                Err(_) => break, // out-of-bounds revert ends the scan
            }
        }
        Ok(out)
    }

    /// Dashboard summary.
    pub fn summary(&self) -> CoreResult<RentalSummary> {
        Ok(RentalSummary {
            address: self.address(),
            rent: self.rent()?,
            house: self
                .contract
                .call1("house", &[])?
                .as_str()
                .unwrap_or_default()
                .to_string(),
            landlord: self
                .contract
                .call1("landlord", &[])?
                .as_address()
                .unwrap_or(Address::ZERO),
            tenant: self
                .contract
                .call1("tenant", &[])?
                .as_address()
                .unwrap_or(Address::ZERO),
            state: self.state()?,
            rents_paid: self.paid_rents()?.len() as u64,
        })
    }
}
