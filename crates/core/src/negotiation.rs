//! The modification-negotiation workflow (Sections I and IV): "we have
//! unilateral changes that are negotiated among the parties while changes
//! lead to the contract modification" — the landlord proposes new terms,
//! the tenant reviews and accepts or rejects, and only an accepted
//! proposal is enacted as a new linked version. Rejection terminates the
//! previous contract, exactly the lifecycle bullet of Section IV-A2.

use crate::error::{CoreError, CoreResult};
use crate::manager::ContractManager;
use lsc_abi::AbiValue;
use lsc_primitives::{Address, U256};
use parking_lot::RwLock;
use std::sync::Arc;

/// Proposal lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposalStatus {
    /// Waiting for the counterparty's decision.
    Proposed,
    /// Accepted but not yet deployed.
    Accepted,
    /// Rejected by the counterparty.
    Rejected,
    /// Deployed as a new version.
    Enacted,
    /// Withdrawn by the proposer.
    Withdrawn,
}

/// A proposed modification of a deployed legal contract.
#[derive(Debug, Clone)]
pub struct Proposal {
    /// Proposal id.
    pub id: u64,
    /// The version being modified.
    pub target: Address,
    /// Proposing account (the landlord).
    pub proposer: Address,
    /// Counterparty who must decide (the tenant).
    pub counterparty: Address,
    /// Human-readable description of the change.
    pub description: String,
    /// Upload id of the new contract version.
    pub upload_id: u64,
    /// Constructor arguments of the new version.
    pub args: Vec<AbiValue>,
    /// Attribute keys to migrate through the data store.
    pub migrate_keys: Vec<String>,
    /// Current status.
    pub status: ProposalStatus,
    /// Address of the enacted version (once deployed).
    pub enacted_as: Option<Address>,
}

/// Negotiation book over a contract manager.
#[derive(Clone)]
pub struct NegotiationBook {
    manager: ContractManager,
    proposals: Arc<RwLock<Vec<Proposal>>>,
}

impl NegotiationBook {
    /// New book over a manager.
    pub fn new(manager: ContractManager) -> Self {
        NegotiationBook {
            manager,
            proposals: Arc::new(RwLock::new(Vec::new())),
        }
    }

    /// Landlord proposes a modification of `target` to `counterparty`.
    #[allow(clippy::too_many_arguments)] // a proposal really has this many facets
    pub fn propose(
        &self,
        proposer: Address,
        counterparty: Address,
        target: Address,
        description: &str,
        upload_id: u64,
        args: Vec<AbiValue>,
        migrate_keys: Vec<String>,
    ) -> CoreResult<u64> {
        let record = self
            .manager
            .record(target)
            .ok_or(CoreError::UnknownContract(target))?;
        if record.deployer != proposer {
            return Err(CoreError::Invalid(
                "only the landlord who deployed a contract may propose changes".into(),
            ));
        }
        if proposer == counterparty {
            return Err(CoreError::Invalid("cannot negotiate with oneself".into()));
        }
        let mut proposals = self.proposals.write();
        let id = proposals.len() as u64;
        proposals.push(Proposal {
            id,
            target,
            proposer,
            counterparty,
            description: description.to_string(),
            upload_id,
            args,
            migrate_keys,
            status: ProposalStatus::Proposed,
            enacted_as: None,
        });
        Ok(id)
    }

    /// Fetch a proposal.
    pub fn proposal(&self, id: u64) -> Option<Proposal> {
        self.proposals.read().get(id as usize).cloned()
    }

    /// All proposals awaiting a party's decision.
    pub fn pending_for(&self, counterparty: Address) -> Vec<Proposal> {
        self.proposals
            .read()
            .iter()
            .filter(|p| p.counterparty == counterparty && p.status == ProposalStatus::Proposed)
            .cloned()
            .collect()
    }

    fn transition(
        &self,
        id: u64,
        who: Address,
        expect_party: fn(&Proposal) -> Address,
        from: ProposalStatus,
        to: ProposalStatus,
    ) -> CoreResult<()> {
        let mut proposals = self.proposals.write();
        let proposal = proposals
            .get_mut(id as usize)
            .ok_or_else(|| CoreError::Invalid(format!("no proposal {id}")))?;
        if expect_party(proposal) != who {
            return Err(CoreError::Invalid("wrong party for this decision".into()));
        }
        if proposal.status != from {
            return Err(CoreError::Invalid(format!(
                "proposal {id} is {:?}, not {from:?}",
                proposal.status
            )));
        }
        proposal.status = to;
        Ok(())
    }

    /// Counterparty accepts the proposed terms.
    pub fn accept(&self, id: u64, who: Address) -> CoreResult<()> {
        self.transition(
            id,
            who,
            |p| p.counterparty,
            ProposalStatus::Proposed,
            ProposalStatus::Accepted,
        )
    }

    /// Counterparty rejects; per the paper the previous contract is then
    /// terminated by the landlord out-of-band.
    pub fn reject(&self, id: u64, who: Address) -> CoreResult<()> {
        self.transition(
            id,
            who,
            |p| p.counterparty,
            ProposalStatus::Proposed,
            ProposalStatus::Rejected,
        )
    }

    /// Proposer withdraws a pending proposal.
    pub fn withdraw(&self, id: u64, who: Address) -> CoreResult<()> {
        self.transition(
            id,
            who,
            |p| p.proposer,
            ProposalStatus::Proposed,
            ProposalStatus::Withdrawn,
        )
    }

    /// Enact an accepted proposal: deploy the new version linked after the
    /// target, migrating the listed attributes. Returns the new address.
    pub fn enact(&self, id: u64, who: Address) -> CoreResult<Address> {
        // Validate, deploy and flip the status under ONE write lock. The
        // previous validate-unlock-relock shape let a concurrent accept/
        // withdraw/enact slip in between (the re-lookup was an
        // `expect("checked above")` waiting to double-enact or panic).
        let mut proposals = self.proposals.write();
        let proposal = proposals
            .get_mut(id as usize)
            .ok_or_else(|| CoreError::Invalid(format!("no proposal {id}")))?;
        if proposal.proposer != who {
            return Err(CoreError::Invalid("only the proposer enacts".into()));
        }
        if proposal.status != ProposalStatus::Accepted {
            return Err(CoreError::Invalid(format!(
                "proposal {id} is {:?}, not Accepted",
                proposal.status
            )));
        }
        let keys: Vec<&str> = proposal.migrate_keys.iter().map(String::as_str).collect();
        let contract = self.manager.deploy_version(
            proposal.proposer,
            proposal.upload_id,
            &proposal.args,
            U256::ZERO,
            proposal.target,
            &keys,
        )?;
        proposal.status = ProposalStatus::Enacted;
        proposal.enacted_as = Some(contract.address());
        Ok(contract.address())
    }
}
