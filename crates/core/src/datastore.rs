//! Data/logic separation (Section III-C1): a shared on-chain
//! `DataStorage` contract holds each version's attributes as string
//! key/value pairs keyed by the version's address, so contract *logic* can
//! be redeployed while the *data* survives. The application layer fetches
//! values from the storage contract and assigns them into new versions.

use crate::contracts::compile_data_storage;
use crate::error::{CoreError, CoreResult};
use lsc_abi::AbiValue;
use lsc_primitives::{Address, U256};
use lsc_web3::{Contract, Web3};

/// Handle over a deployed `DataStorage` contract (Fig. 3).
#[derive(Clone)]
pub struct DataStore {
    contract: Contract,
}

impl DataStore {
    /// Compile and deploy a fresh `DataStorage` contract.
    pub fn deploy(web3: &Web3, from: Address) -> CoreResult<Self> {
        let artifact = compile_data_storage()?;
        let (contract, _) = web3.deploy(from, artifact.abi, artifact.bytecode, &[], U256::ZERO)?;
        Ok(DataStore { contract })
    }

    /// Bind to an existing deployment.
    pub fn at(contract: Contract) -> Self {
        DataStore { contract }
    }

    /// The on-chain address of the storage contract.
    pub fn address(&self) -> Address {
        self.contract.address()
    }

    /// Store one attribute of a contract version.
    pub fn set(&self, from: Address, owner: Address, key: &str, value: &str) -> CoreResult<()> {
        self.contract.send(
            from,
            "setValue",
            &[
                AbiValue::Address(owner),
                AbiValue::string(key),
                AbiValue::string(value),
            ],
            U256::ZERO,
        )?;
        Ok(())
    }

    /// Read one attribute of a contract version.
    pub fn get(&self, owner: Address, key: &str) -> CoreResult<String> {
        let value = self.contract.call1(
            "getValue",
            &[AbiValue::Address(owner), AbiValue::string(key)],
        )?;
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| CoreError::Invalid("getValue returned a non-string".into()))
    }

    /// Snapshot a set of public attributes of a deployed legal contract
    /// into the data store, stringified (the paper's "take the data from
    /// the data store smart contract" direction is the inverse,
    /// [`DataStore::fetch_all`]).
    pub fn snapshot_contract(
        &self,
        from: Address,
        contract: &Contract,
        keys: &[&str],
    ) -> CoreResult<usize> {
        let mut written = 0;
        for key in keys {
            let value = contract.call1(key, &[])?;
            self.set(from, contract.address(), key, &value.to_plain_string())?;
            written += 1;
        }
        Ok(written)
    }

    /// Fetch all attributes recorded for a version.
    pub fn fetch_all(&self, owner: Address, keys: &[&str]) -> CoreResult<Vec<(String, String)>> {
        keys.iter()
            .map(|key| Ok((key.to_string(), self.get(owner, key)?)))
            .collect()
    }

    /// Migrate every listed attribute from one version's record to the
    /// next version's record (run by the manager on modification).
    pub fn migrate(
        &self,
        from: Address,
        old_version: Address,
        new_version: Address,
        keys: &[&str],
    ) -> CoreResult<usize> {
        let mut moved = 0;
        for key in keys {
            let value = self.get(old_version, key)?;
            if value.is_empty() {
                continue;
            }
            self.set(from, new_version, key, &value)?;
            moved += 1;
        }
        Ok(moved)
    }
}

/// Stringify ABI values the way the data store records them.
trait ToPlainString {
    fn to_plain_string(&self) -> String;
}

impl ToPlainString for AbiValue {
    fn to_plain_string(&self) -> String {
        match self {
            AbiValue::String(s) => s.clone(),
            other => other.to_string(),
        }
    }
}
