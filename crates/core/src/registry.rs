//! The ABI registry: `address → CID → ABI JSON in IPFS`.
//!
//! This is the paper's Section III-C2 mechanism verbatim: versioning gives
//! you the *address* of the next/previous contract, but interacting with
//! it needs its *ABI*; so each deployed version's ABI file is stored in
//! IPFS keyed by the contract address. The registry also publishes its
//! address→CID manifest into IPFS so another party can bootstrap from a
//! single manifest CID.

use crate::error::{CoreError, CoreResult};
use lsc_abi::json::{parse, JsonValue};
use lsc_abi::Abi;
use lsc_ipfs::{Cid, IpfsNode};
use lsc_primitives::Address;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Thread-safe address→ABI registry backed by IPFS.
#[derive(Clone)]
pub struct AbiRegistry {
    ipfs: IpfsNode,
    map: Arc<RwLock<BTreeMap<Address, Cid>>>,
}

impl AbiRegistry {
    /// New registry over an IPFS node.
    pub fn new(ipfs: IpfsNode) -> Self {
        AbiRegistry {
            ipfs,
            map: Arc::new(RwLock::new(BTreeMap::new())),
        }
    }

    /// The underlying IPFS node.
    pub fn ipfs(&self) -> &IpfsNode {
        &self.ipfs
    }

    /// Pin an ABI's JSON into IPFS and map the contract address to it.
    pub fn register(&self, address: Address, abi: &Abi) -> Cid {
        let cid = self.ipfs.add_pinned(abi.to_json().as_bytes());
        self.map.write().insert(address, cid);
        cid
    }

    /// CID of the ABI for an address.
    pub fn cid_of(&self, address: Address) -> Option<Cid> {
        self.map.read().get(&address).copied()
    }

    /// Fetch and parse the ABI for an address (the address→ABI path the
    /// paper's interaction flow depends on).
    pub fn abi_of(&self, address: Address) -> CoreResult<Abi> {
        let cid = self
            .cid_of(address)
            .ok_or(CoreError::UnknownContract(address))?;
        let bytes = self.ipfs.cat(&cid)?;
        let text = String::from_utf8(bytes)
            .map_err(|_| CoreError::Invalid("abi file is not utf-8".into()))?;
        Ok(Abi::from_json(&text)?)
    }

    /// Number of registered contracts.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Publish the address→CID manifest to IPFS; returns the manifest CID.
    pub fn publish_manifest(&self) -> Cid {
        let map = self.map.read();
        let object: BTreeMap<String, JsonValue> = map
            .iter()
            .map(|(addr, cid)| (addr.to_string(), JsonValue::String(cid.to_string())))
            .collect();
        let json = JsonValue::Object(object).to_json();
        self.ipfs.add_pinned(json.as_bytes())
    }

    /// Rebuild a registry from a published manifest CID.
    pub fn from_manifest(ipfs: IpfsNode, manifest: Cid) -> CoreResult<Self> {
        let bytes = ipfs.cat(&manifest)?;
        let text = String::from_utf8(bytes)
            .map_err(|_| CoreError::Invalid("manifest is not utf-8".into()))?;
        let doc = parse(&text).map_err(|e| CoreError::Invalid(e.to_string()))?;
        let JsonValue::Object(entries) = doc else {
            return Err(CoreError::Invalid("manifest must be a json object".into()));
        };
        let mut map = BTreeMap::new();
        for (addr, cid) in entries {
            let address: Address = addr
                .parse()
                .map_err(|_| CoreError::Invalid(format!("bad address in manifest: {addr}")))?;
            let cid: Cid = cid
                .as_str()
                .ok_or_else(|| CoreError::Invalid("manifest cid must be a string".into()))?
                .parse()
                .map_err(|_| CoreError::Invalid("bad cid in manifest".into()))?;
            map.insert(address, cid);
        }
        Ok(AbiRegistry {
            ipfs,
            map: Arc::new(RwLock::new(map)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_abi::{Function, Param, StateMutability};

    fn sample_abi() -> Abi {
        Abi {
            functions: vec![Function {
                name: "payRent".into(),
                inputs: vec![],
                outputs: vec![],
                mutability: StateMutability::Payable,
            }],
            ..Abi::default()
        }
    }

    #[test]
    fn register_and_fetch_roundtrip() {
        let registry = AbiRegistry::new(IpfsNode::new());
        let address = Address::from_label("contract-v1");
        let cid = registry.register(address, &sample_abi());
        assert_eq!(registry.cid_of(address), Some(cid));
        let fetched = registry.abi_of(address).unwrap();
        assert!(fetched.function("payRent").is_some());
    }

    #[test]
    fn unknown_address_errors() {
        let registry = AbiRegistry::new(IpfsNode::new());
        let ghost = Address::from_label("ghost");
        assert!(matches!(
            registry.abi_of(ghost),
            Err(CoreError::UnknownContract(a)) if a == ghost
        ));
    }

    #[test]
    fn manifest_roundtrip_bootstraps_fresh_registry() {
        let ipfs = IpfsNode::new();
        let registry = AbiRegistry::new(ipfs.clone());
        let a1 = Address::from_label("v1");
        let a2 = Address::from_label("v2");
        registry.register(a1, &sample_abi());
        registry.register(a2, &Abi::default());
        let manifest = registry.publish_manifest();

        let restored = AbiRegistry::from_manifest(ipfs, manifest).unwrap();
        assert_eq!(restored.len(), 2);
        assert!(restored.abi_of(a1).unwrap().function("payRent").is_some());
        let p = Param::new("x", lsc_abi::AbiType::Uint(256));
        let _ = p; // silence unused import path in older toolchains
    }

    #[test]
    fn same_abi_same_cid() {
        let registry = AbiRegistry::new(IpfsNode::new());
        let c1 = registry.register(Address::from_label("a"), &sample_abi());
        let c2 = registry.register(Address::from_label("b"), &sample_abi());
        assert_eq!(c1, c2, "content addressing dedups identical ABIs");
        assert_eq!(registry.ipfs().store().len(), 1);
    }
}
