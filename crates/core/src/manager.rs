//! The Contract Manager — the business tier of Fig. 1. It owns the
//! upload/deploy/modify workflow: contracts are uploaded as bytecode + ABI
//! (Fig. 9), deployed to the blockchain tier (Fig. 10), and modified by
//! deploying a new version that the manager links into the on-chain
//! doubly linked list and whose data it migrates through the
//! data-separation layer (Fig. 11).

use crate::datastore::DataStore;
use crate::documents::DocumentStore;
use crate::error::{CoreError, CoreResult};
use crate::registry::AbiRegistry;
use crate::versioning::VersionChain;
use lsc_abi::{Abi, AbiValue};
use lsc_analyzer::{
    vet_deployment_cached, vet_upgrade, DeploymentVetting, UpgradeVetting, VettingPolicy,
};
use lsc_ipfs::{Cid, IpfsNode};
use lsc_primitives::{Address, U256};
use lsc_solc::Artifact;
use lsc_web3::{Contract, Web3};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A contract uploaded to the manager (bytecode + ABI), ready to deploy.
#[derive(Debug, Clone)]
pub struct UploadedContract {
    /// Upload id.
    pub id: u64,
    /// Display name ("Basic rental contract", …).
    pub name: String,
    /// Init bytecode.
    pub bytecode: Vec<u8>,
    /// Parsed ABI.
    pub abi: Abi,
    /// CID of the ABI JSON pinned in IPFS at upload time.
    pub abi_cid: Cid,
}

/// Lifecycle state of a *version record* (the paper's active / inactive /
/// terminated states from Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionState {
    /// The currently executing version.
    Active,
    /// Superseded by a newer version (the paper's "passive").
    Inactive,
    /// The agreement ended.
    Terminated,
}

/// Bookkeeping for one deployed version.
#[derive(Debug, Clone)]
pub struct VersionRecord {
    /// On-chain address.
    pub address: Address,
    /// 1-based version number within its chain.
    pub version: u32,
    /// Name of the upload it came from.
    pub name: String,
    /// Deploying account (the landlord).
    pub deployer: Address,
    /// Block the deployment landed in.
    pub block: u64,
    /// Previous version (zero for the first).
    pub previous: Option<Address>,
    /// Record state.
    pub state: VersionState,
}

/// The business-tier facade.
#[derive(Clone)]
pub struct ContractManager {
    web3: Web3,
    registry: AbiRegistry,
    chain: VersionChain,
    documents: DocumentStore,
    data_store: Arc<RwLock<Option<DataStore>>>,
    inner: Arc<RwLock<ManagerState>>,
}

#[derive(Default)]
struct ManagerState {
    uploads: Vec<UploadedContract>,
    versions: HashMap<Address, VersionRecord>,
    policy: VettingPolicy,
    vetting: HashMap<Address, Vec<String>>,
}

impl ContractManager {
    /// Create a manager over a client and an IPFS node.
    pub fn new(web3: Web3, ipfs: IpfsNode) -> Self {
        let registry = AbiRegistry::new(ipfs.clone());
        let chain = VersionChain::new(web3.clone(), registry.clone());
        ContractManager {
            web3,
            registry,
            chain,
            documents: DocumentStore::new(ipfs),
            data_store: Arc::new(RwLock::new(None)),
            inner: Arc::new(RwLock::new(ManagerState::default())),
        }
    }

    /// The chain client.
    pub fn web3(&self) -> &Web3 {
        &self.web3
    }

    /// The ABI registry (address → IPFS CID → ABI).
    pub fn registry(&self) -> &AbiRegistry {
        &self.registry
    }

    /// The version-chain walker.
    pub fn version_chain(&self) -> &VersionChain {
        &self.chain
    }

    /// The legal-document store.
    pub fn documents(&self) -> &DocumentStore {
        &self.documents
    }

    /// Deploy the shared `DataStorage` contract and enable data migration.
    pub fn init_data_store(&self, from: Address) -> CoreResult<Address> {
        let store = DataStore::deploy(&self.web3, from)?;
        let address = store.address();
        *self.data_store.write() = Some(store);
        Ok(address)
    }

    /// The data-separation layer, when initialized.
    pub fn data_store(&self) -> Option<DataStore> {
        self.data_store.read().clone()
    }

    /// Upload a contract from raw bytecode + ABI JSON (Fig. 9: the
    /// landlord uploads both files). The ABI is pinned into IPFS.
    pub fn upload(&self, name: &str, bytecode: Vec<u8>, abi_json: &str) -> CoreResult<u64> {
        let abi = Abi::from_json(abi_json)?;
        if bytecode.is_empty() {
            return Err(CoreError::Invalid("bytecode must not be empty".into()));
        }
        let abi_cid = self.registry.ipfs().add_pinned(abi_json.as_bytes());
        let mut inner = self.inner.write();
        let id = inner.uploads.len() as u64;
        inner.uploads.push(UploadedContract {
            id,
            name: name.to_string(),
            bytecode,
            abi,
            abi_cid,
        });
        Ok(id)
    }

    /// Upload a compiler artifact directly.
    pub fn upload_artifact(&self, name: &str, artifact: &Artifact) -> CoreResult<u64> {
        self.upload(name, artifact.bytecode.clone(), &artifact.abi.to_json())
    }

    /// All uploads (dashboard's "available contracts to deploy").
    pub fn uploads(&self) -> Vec<UploadedContract> {
        self.inner.read().uploads.clone()
    }

    fn upload_by_id(&self, id: u64) -> CoreResult<UploadedContract> {
        self.inner
            .read()
            .uploads
            .get(id as usize)
            .cloned()
            .ok_or(CoreError::UnknownUpload(id))
    }

    /// Replace the vetting policy enforced on deploy and modify.
    pub fn set_vetting_policy(&self, policy: VettingPolicy) {
        self.inner.write().policy = policy;
    }

    /// The vetting policy currently enforced.
    pub fn vetting_policy(&self) -> VettingPolicy {
        self.inner.read().policy.clone()
    }

    /// Run the static verifier over an upload's init bytecode without
    /// deploying anything (the dashboard/CLI `vet` entry point). The
    /// result is content-addressed: identical bytecode is analyzed once.
    pub fn vet_upload(&self, upload_id: u64) -> CoreResult<Arc<DeploymentVetting>> {
        let upload = self.upload_by_id(upload_id)?;
        Ok(vet_deployment_cached(&upload.bytecode))
    }

    /// Run the upgrade-compatibility pass: diff an upload's recovered
    /// storage layout against the live runtime at `previous` (the CLI
    /// `vet --against` entry point). Does not enforce the policy.
    pub fn vet_upload_against(
        &self,
        upload_id: u64,
        previous: Address,
    ) -> CoreResult<UpgradeVetting> {
        let upload = self.upload_by_id(upload_id)?;
        let old_runtime = self.web3.code(previous);
        if old_runtime.is_empty() {
            return Err(CoreError::Invalid(format!(
                "no code on chain at predecessor {previous}"
            )));
        }
        Ok(vet_upgrade(&old_runtime, &upload.bytecode))
    }

    /// The vetting gate both deploy paths pass through: analyze the init
    /// blob (and the extracted runtime), enforce the policy, and return
    /// the surviving findings rendered for the audit record.
    fn vet_for_deploy(&self, upload: &UploadedContract) -> CoreResult<Vec<String>> {
        let vetting = vet_deployment_cached(&upload.bytecode);
        vetting.enforce(&self.vetting_policy())?;
        Ok(vetting
            .findings()
            .iter()
            .map(|(region, f)| format!("[{region}] {f}"))
            .collect())
    }

    /// The upgrade gate `deploy_version` (and through it
    /// `Negotiation::enact`) passes through: fetch the predecessor's
    /// *runtime* from chain state, diff the recovered layouts, enforce
    /// the policy, and return the audit-record lines — the surviving
    /// findings plus both layout summaries, so the audit chain shows the
    /// facts the verdict was computed from.
    fn vet_for_upgrade(&self, previous: Address, new_init: &[u8]) -> CoreResult<Vec<String>> {
        let old_runtime = self.web3.code(previous);
        if old_runtime.is_empty() {
            return Err(CoreError::Invalid(format!(
                "no code on chain at predecessor {previous}"
            )));
        }
        let vetting = vet_upgrade(&old_runtime, new_init);
        vetting.enforce(&self.vetting_policy())?;
        let mut lines: Vec<String> = vetting
            .findings()
            .iter()
            .map(|(region, f)| format!("[{region}] {f}"))
            .collect();
        lines.push(format!(
            "[layout] predecessor {}",
            vetting.old_layout.summary()
        ));
        if let Some(new_layout) = &vetting.new_layout {
            lines.push(format!("[layout] successor {}", new_layout.summary()));
        }
        Ok(lines)
    }

    /// Findings recorded when `address` was vetted at deploy time (empty
    /// for clean contracts or pre-verifier deployments).
    pub fn vetting_findings(&self, address: Address) -> Vec<String> {
        self.inner
            .read()
            .vetting
            .get(&address)
            .cloned()
            .unwrap_or_default()
    }

    /// Deploy an upload as version 1 of a new legal contract (Fig. 10).
    pub fn deploy(
        &self,
        from: Address,
        upload_id: u64,
        args: &[AbiValue],
        value: U256,
    ) -> CoreResult<Contract> {
        let upload = self.upload_by_id(upload_id)?;
        let findings = self.vet_for_deploy(&upload)?;
        let (contract, receipt) = self.web3.deploy(
            from,
            upload.abi.clone(),
            upload.bytecode.clone(),
            args,
            value,
        )?;
        self.registry.register(contract.address(), &upload.abi);
        let mut inner = self.inner.write();
        inner.vetting.insert(contract.address(), findings);
        inner.versions.insert(
            contract.address(),
            VersionRecord {
                address: contract.address(),
                version: 1,
                name: upload.name.clone(),
                deployer: from,
                block: receipt.block_number,
                previous: None,
                state: VersionState::Active,
            },
        );
        Ok(contract)
    }

    /// Deploy an upload as the *next version* of `previous` (Fig. 11):
    /// deploys, links both on-chain pointers, migrates data-store
    /// attributes, and marks the old record inactive while keeping its
    /// transaction history intact.
    pub fn deploy_version(
        &self,
        from: Address,
        upload_id: u64,
        args: &[AbiValue],
        value: U256,
        previous: Address,
        migrate_keys: &[&str],
    ) -> CoreResult<Contract> {
        let prior = self
            .inner
            .read()
            .versions
            .get(&previous)
            .cloned()
            .ok_or(CoreError::UnknownContract(previous))?;
        if prior.deployer != from {
            return Err(CoreError::Invalid(
                "only the landlord who deployed a contract may modify it".into(),
            ));
        }
        let upload = self.upload_by_id(upload_id)?;
        let mut findings = self.vet_for_deploy(&upload)?;
        // The upgrade gate: the successor's recovered storage layout must
        // be compatible with the live predecessor's, or the deploy is
        // refused before anything touches the chain.
        findings.extend(self.vet_for_upgrade(previous, &upload.bytecode)?);
        let (contract, receipt) = self.web3.deploy(
            from,
            upload.abi.clone(),
            upload.bytecode.clone(),
            args,
            value,
        )?;
        self.registry.register(contract.address(), &upload.abi);
        // Link the versions on chain (the evidence line).
        self.chain.link(from, previous, contract.address())?;
        // Migrate attributes through the data-separation layer.
        if !migrate_keys.is_empty() {
            if let Some(store) = self.data_store() {
                store.migrate(from, previous, contract.address(), migrate_keys)?;
            }
        }
        let mut inner = self.inner.write();
        if let Some(record) = inner.versions.get_mut(&previous) {
            record.state = VersionState::Inactive;
        }
        inner.vetting.insert(contract.address(), findings);
        inner.versions.insert(
            contract.address(),
            VersionRecord {
                address: contract.address(),
                version: prior.version + 1,
                name: upload.name.clone(),
                deployer: from,
                block: receipt.block_number,
                previous: Some(previous),
                state: VersionState::Active,
            },
        );
        Ok(contract)
    }

    /// Install a version record replayed from the durable log: registers
    /// the ABI of the upload the version came from (so the address→ABI
    /// path works again) and inserts the record as-is. The deployment
    /// transaction itself is re-executed by the chain replay; this only
    /// restores the business-tier bookkeeping around it.
    pub fn adopt_version(&self, record: VersionRecord, upload_id: u64) -> CoreResult<()> {
        let upload = self.upload_by_id(upload_id)?;
        self.registry.register(record.address, &upload.abi);
        self.inner.write().versions.insert(record.address, record);
        Ok(())
    }

    /// Set a version record's lifecycle state (durable-log replay helper).
    pub fn set_version_state(&self, address: Address, state: VersionState) {
        if let Some(record) = self.inner.write().versions.get_mut(&address) {
            record.state = state;
        }
    }

    /// The record for a deployed version.
    pub fn record(&self, address: Address) -> Option<VersionRecord> {
        self.inner.read().versions.get(&address).cloned()
    }

    /// All version records.
    pub fn records(&self) -> Vec<VersionRecord> {
        let mut records: Vec<VersionRecord> =
            self.inner.read().versions.values().cloned().collect();
        records.sort_by_key(|r| (r.block, r.address));
        records
    }

    /// Mark a record terminated (called after the on-chain terminate).
    pub fn mark_terminated(&self, address: Address) {
        if let Some(record) = self.inner.write().versions.get_mut(&address) {
            record.state = VersionState::Terminated;
        }
    }

    /// Bind a contract handle using the registered ABI.
    pub fn contract_at(&self, address: Address) -> CoreResult<Contract> {
        self.chain.contract_at(address)
    }

    /// On-chain version history (earliest first) for any version address.
    pub fn history(&self, address: Address) -> CoreResult<Vec<Address>> {
        self.chain.history(address)
    }

    /// Verify the on-chain evidence line around `address`.
    pub fn verify_chain(&self, address: Address) -> CoreResult<Vec<Address>> {
        self.chain.verify(address)
    }

    /// Attach the natural-language agreement (PDF bytes) to a version.
    pub fn attach_document(&self, contract: Address, pdf: &[u8]) -> Cid {
        self.documents.attach(contract, pdf)
    }

    /// Fetch the linked legal document.
    pub fn document(&self, contract: Address) -> CoreResult<Vec<u8>> {
        self.documents.fetch(contract)
    }
}
