//! The legal-document store: every smart contract is linked to the PDF of
//! the natural-language agreement (Section IV: "Each smart contract is
//! linked to a pdf of the legal contract"), stored content-addressed.

use crate::error::{CoreError, CoreResult};
use lsc_ipfs::{Cid, IpfsNode};
use lsc_primitives::Address;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Address → legal document (PDF bytes in IPFS).
#[derive(Clone)]
pub struct DocumentStore {
    ipfs: IpfsNode,
    map: Arc<RwLock<HashMap<Address, Cid>>>,
}

impl DocumentStore {
    /// New store over an IPFS node.
    pub fn new(ipfs: IpfsNode) -> Self {
        DocumentStore {
            ipfs,
            map: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// Attach a document to a deployed contract version.
    pub fn attach(&self, contract: Address, pdf_bytes: &[u8]) -> Cid {
        let cid = self.ipfs.add_pinned(pdf_bytes);
        self.map.write().insert(contract, cid);
        cid
    }

    /// CID of a contract's document.
    pub fn cid_of(&self, contract: Address) -> Option<Cid> {
        self.map.read().get(&contract).copied()
    }

    /// Fetch the document a tenant reviews before confirming (Fig. 4 flow).
    pub fn fetch(&self, contract: Address) -> CoreResult<Vec<u8>> {
        let cid = self
            .cid_of(contract)
            .ok_or(CoreError::UnknownContract(contract))?;
        Ok(self.ipfs.cat(&cid)?)
    }

    /// Number of linked documents.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when no documents are linked.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_and_fetch() {
        let store = DocumentStore::new(IpfsNode::new());
        let contract = Address::from_label("v1");
        let pdf = b"%PDF-1.4 rental agreement for H-12345";
        let cid = store.attach(contract, pdf);
        assert_eq!(store.cid_of(contract), Some(cid));
        assert_eq!(store.fetch(contract).unwrap(), pdf);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn missing_document_errors() {
        let store = DocumentStore::new(IpfsNode::new());
        assert!(store.fetch(Address::from_label("none")).is_err());
    }

    #[test]
    fn versions_share_identical_documents() {
        let store = DocumentStore::new(IpfsNode::new());
        let c1 = store.attach(Address::from_label("v1"), b"same pdf");
        let c2 = store.attach(Address::from_label("v2"), b"same pdf");
        assert_eq!(c1, c2, "content-addressing dedups");
        assert_eq!(store.len(), 2);
    }
}
