//! # lsc-core
//!
//! The paper's contribution: a contract-management layer for **legal smart
//! contracts that can be modified** despite blockchain immutability.
//!
//! * [`manager::ContractManager`] — the business tier (Fig. 1): upload,
//!   deploy, modify, terminate.
//! * [`versioning::VersionChain`] — the doubly-linked-list versioning
//!   system (Fig. 2): each deployed version is a `Node`; the pointer chain
//!   is the on-chain evidence line of modifications.
//! * [`datastore::DataStore`] — data/logic separation via the shared
//!   `DataStorage` contract (Fig. 3).
//! * [`registry::AbiRegistry`] — address → CID → ABI-in-IPFS, so a version
//!   address alone suffices to interact with it (Section III-C2).
//! * [`documents::DocumentStore`] — each version links to the PDF of the
//!   natural-language agreement.
//! * [`lifecycle::Rental`] — the typed rental-agreement lifecycle
//!   (Fig. 4): confirm + deposit, pay rent, modify, terminate with the
//!   timely/untimely deposit split.
//! * [`contracts`] — the paper's Solidity sources (Figs. 3, 5, 6),
//!   compiled by `lsc-solc`.
//! * [`negotiation::NegotiationBook`] and [`audit::audit_chain`] — the
//!   Section V future-work extensions: negotiated modifications and
//!   evidence-line audit reports.
//!
//! # Example
//!
//! Deploy the paper's base rental agreement, run a month of the lifecycle
//! and modify the contract into a linked second version:
//!
//! ```
//! use lsc_chain::LocalNode;
//! use lsc_core::{contracts, ContractManager, Rental};
//! use lsc_ipfs::IpfsNode;
//! use lsc_web3::Web3;
//! use lsc_abi::AbiValue;
//! use lsc_primitives::{ether, U256};
//!
//! let web3 = Web3::new(LocalNode::new(4));
//! let (landlord, tenant) = (web3.accounts()[0], web3.accounts()[1]);
//! let manager = ContractManager::new(web3, IpfsNode::new());
//!
//! let base = contracts::compile_base_rental().unwrap();
//! let upload = manager.upload_artifact("Basic rental contract", &base).unwrap();
//! let args = vec![
//!     AbiValue::Uint(ether(1)),
//!     AbiValue::string("10001-42 Main St"),
//!     AbiValue::uint(365 * 24 * 3600),
//! ];
//! let v1 = manager.deploy(landlord, upload, &args, U256::ZERO).unwrap();
//!
//! let rental = Rental::at(v1.clone());
//! rental.confirm_agreement(tenant).unwrap();
//! rental.pay_rent(tenant).unwrap();
//!
//! let v2 = manager
//!     .deploy_version(landlord, upload, &args, U256::ZERO, v1.address(), &[])
//!     .unwrap();
//! assert_eq!(
//!     manager.history(v2.address()).unwrap(),
//!     vec![v1.address(), v2.address()],
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod contracts;
pub mod datastore;
pub mod documents;
pub mod error;
pub mod lifecycle;
pub mod manager;
pub mod negotiation;
pub mod registry;
pub mod templates;
pub mod versioning;

pub use audit::{audit_chain, AuditEntry, EvidenceReport};
pub use datastore::DataStore;
pub use documents::DocumentStore;
pub use error::{CoreError, CoreResult};
pub use lifecycle::{Rental, RentalState, RentalSummary};
pub use manager::{ContractManager, UploadedContract, VersionRecord, VersionState};
pub use negotiation::{NegotiationBook, Proposal, ProposalStatus};
pub use registry::AbiRegistry;
pub use templates::{CustomClause, Party, RentalTemplate};
pub use versioning::VersionChain;
