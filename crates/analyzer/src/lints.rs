//! The lint pass: one walk over every reachable block with its fixpoint
//! entry state, emitting structured findings, plus a block-granular
//! unreachable-code sweep.

use crate::absint::{self, AbsState, Analysis};
use crate::{Finding, Rule};
use lsc_evm::cfg::Cfg;
use lsc_evm::opcode::{self, op};
use lsc_evm::stack::STACK_LIMIT;

/// Which optional lints to run. Stack/jump verification always runs.
#[derive(Debug, Clone, Copy)]
pub struct LintOptions {
    /// Report unreachable blocks. Off when vetting *init* code: solc-style
    /// init blobs legitimately carry function bodies, subroutine pools and
    /// the runtime image after the deploy tail.
    pub unreachable: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions { unreachable: true }
    }
}

pub(crate) fn lint(cfg: &Cfg, analysis: &Analysis, opts: LintOptions) -> Vec<Finding> {
    let mut findings = Vec::new();
    for b in 0..cfg.blocks.len() {
        // Every concrete path through the block is covered by one of its
        // entry disjuncts, so linting each disjunct catches everything;
        // the same (pc, rule) firing from several disjuncts is one
        // diagnostic.
        for entry in &analysis.entry[b] {
            lint_block(cfg, b, entry.clone(), &mut findings);
        }
    }
    if opts.unreachable {
        lint_unreachable(cfg, analysis, &mut findings);
    }
    findings.sort_by_key(|f| (f.pc, f.rule as u8));
    findings.dedup_by_key(|f| (f.pc, f.rule));
    findings
}

fn lint_block(cfg: &Cfg, block: usize, mut st: AbsState, findings: &mut Vec<Finding>) {
    let blk = &cfg.blocks[block];
    for (idx, ins) in cfg.instrs[blk.instr_range()].iter().enumerate() {
        let i = blk.first + idx;
        let byte = ins.opcode;

        if let Some((pops, pushes)) = opcode::stack_io(byte) {
            if st.lo < pops {
                findings.push(Finding::new(
                    Rule::StackUnderflow,
                    ins.pc,
                    format!(
                        "{} needs {pops} operand(s) but the stack may hold only {}",
                        opcode::mnemonic(byte),
                        st.lo
                    ),
                ));
            }
            if st.hi.saturating_sub(pops) + pushes > STACK_LIMIT {
                findings.push(Finding::new(
                    Rule::StackOverflow,
                    ins.pc,
                    format!(
                        "{} may push past the {STACK_LIMIT}-slot stack limit",
                        opcode::mnemonic(byte)
                    ),
                ));
            }
        }

        if ins.truncated {
            findings.push(Finding::new(
                Rule::TruncatedPush,
                ins.pc,
                format!(
                    "PUSH{} immediate is cut off by the end of the code (zero-padded at runtime)",
                    opcode::immediate_len(byte)
                ),
            ));
        }

        match byte {
            op::ORIGIN => findings.push(Finding::new(
                Rule::Origin,
                ins.pc,
                "tx.origin-style authentication is phishable; prefer CALLER".into(),
            )),
            op::SELFDESTRUCT => findings.push(Finding::new(
                Rule::Selfdestruct,
                ins.pc,
                "SELFDESTRUCT permanently destroys the contract and force-sends its balance".into(),
            )),
            op::SSTORE if st.after_call => findings.push(Finding::new(
                Rule::WriteAfterCall,
                ins.pc,
                "storage write after a reentrancy-capable external call \
                 (checks-effects-interactions violation)"
                    .into(),
            )),
            op::JUMP | op::JUMPI => {
                if let absint::JumpTarget::Invalid(v) = absint::jump_target(cfg, &st) {
                    findings.push(Finding::new(
                        Rule::InvalidJump,
                        ins.pc,
                        format!(
                            "{} to 0x{v:x}, which is not a JUMPDEST",
                            opcode::mnemonic(byte)
                        ),
                    ));
                }
            }
            op::CALL
            | op::CALLCODE
            | op::DELEGATECALL
            | op::STATICCALL
            | op::CREATE
            | op::CREATE2
                if !result_is_checked(cfg, i) =>
            {
                findings.push(Finding::new(
                    Rule::UncheckedCall,
                    ins.pc,
                    format!(
                        "{} result is discarded without being checked",
                        opcode::mnemonic(byte)
                    ),
                ));
            }
            _ => {}
        }

        // Stipend-limited transfers (gas argument a known constant ≤ the
        // 2300 stipend, the solc `.transfer()`/`.send()` shape) cannot
        // re-enter state-changing code; `absint::step` only arms
        // `after_call` for calls above the stipend.
        absint::step(&mut st, ins);
    }
}

/// Heuristic: a call/create's status push counts as checked if, scanning
/// the straight-line continuation (through fallthrough block splits,
/// stopping at a JUMP or halting terminator), an `ISZERO` or `JUMPI`
/// consumes or tests it before the frame moves on — and as *unchecked*
/// when the very next instruction `POP`s it away.
fn result_is_checked(cfg: &Cfg, call_idx: usize) -> bool {
    let next = cfg.instrs.get(call_idx + 1);
    if next.is_some_and(|n| n.opcode == op::POP) {
        return false;
    }
    for ins in &cfg.instrs[call_idx + 1..] {
        match ins.opcode {
            op::ISZERO | op::JUMPI => return true,
            op::JUMP => return false,
            b if opcode::is_terminator(b) => return false,
            _ => {}
        }
    }
    false
}

fn lint_unreachable(cfg: &Cfg, analysis: &Analysis, findings: &mut Vec<Finding>) {
    let mut b = 0;
    while b < cfg.blocks.len() {
        if analysis.reachable(b) {
            b += 1;
            continue;
        }
        let run_start = b;
        while b < cfg.blocks.len() && !analysis.reachable(b) {
            b += 1;
        }
        let start_pc = cfg.blocks[run_start].start_pc;
        let end_pc = cfg.blocks[b - 1].end_pc;
        findings.push(Finding::new(
            Rule::UnreachableCode,
            start_pc,
            format!(
                "bytes {start_pc}..{end_pc} ({} block(s)) are unreachable from the entry point",
                b - run_start
            ),
        ));
    }
}
