//! Runtime-code extraction from init (constructor) bytecode.
//!
//! A deployment transaction carries *init* code whose job is to return
//! the *runtime* code that actually gets installed. lsc-solc (like real
//! solc) ends its constructor with the canonical deploy tail
//!
//! ```text
//! PUSH len  PUSH off  PUSH 0  CODECOPY   ; copy runtime image to mem 0
//! PUSH len  PUSH 0    RETURN             ; return it
//! ```
//!
//! and appends the runtime image as raw bytes at `off`. Matching that
//! seven-instruction window with consistent constants recovers the
//! region, letting the vetting gate analyze the code that will actually
//! live at the contract address instead of the init wrapper around it.

use lsc_evm::cfg::decode;
use lsc_evm::opcode::op;
use lsc_primitives::U256;
use std::ops::Range;

/// Locate the runtime image inside `init_code` via the deploy-tail
/// peephole. Returns `None` when the shape is absent (hand-written init
/// code) or the constants are inconsistent/out of range.
pub fn extract_runtime(init_code: &[u8]) -> Option<Range<usize>> {
    let instrs = decode(init_code);
    for w in instrs.windows(7) {
        if w[3].opcode != op::CODECOPY || w[6].opcode != op::RETURN {
            continue;
        }
        let (Some(len), Some(off), Some(dst), Some(len2), Some(roff)) =
            (w[0].push, w[1].push, w[2].push, w[4].push, w[5].push)
        else {
            continue;
        };
        if dst != U256::ZERO || roff != U256::ZERO || len != len2 {
            continue;
        }
        let (Some(len), Some(off)) = (len.to_usize(), off.to_usize()) else {
            continue;
        };
        if len == 0 || off.checked_add(len).is_none_or(|end| end > init_code.len()) {
            continue;
        }
        return Some(off..off + len);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_evm::asm::Asm;

    #[test]
    fn extracts_canonical_deploy_tail() {
        let runtime = vec![op::CALLER, op::POP, op::STOP];
        let mut asm = Asm::new();
        let end = asm.new_label();
        asm.push_u64(runtime.len() as u64);
        asm.push_label(end);
        asm.push_u64(0);
        asm.op(op::CODECOPY);
        asm.push_u64(runtime.len() as u64);
        asm.push_u64(0);
        asm.op(op::RETURN);
        asm.place_raw(end);
        asm.extend_raw(runtime.clone());
        let init = asm.assemble().unwrap();
        let range = extract_runtime(&init).expect("deploy tail present");
        assert_eq!(&init[range], runtime.as_slice());
    }

    #[test]
    fn rejects_inconsistent_or_absent_tails() {
        assert_eq!(extract_runtime(&[]), None);
        assert_eq!(extract_runtime(&[op::STOP]), None);
        // Length claims more bytes than the blob holds.
        let mut asm = Asm::new();
        asm.push_u64(1000);
        asm.push_u64(1);
        asm.push_u64(0);
        asm.op(op::CODECOPY);
        asm.push_u64(1000);
        asm.push_u64(0);
        asm.op(op::RETURN);
        let code = asm.assemble().unwrap();
        assert_eq!(extract_runtime(&code), None);
    }
}
