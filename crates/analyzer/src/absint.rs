//! Abstract interpretation over the recovered CFG.
//!
//! The abstract domain per block entry is deliberately small:
//!
//! * a stack-depth interval `[lo, hi]` (every concrete depth reaching the
//!   block lies inside it),
//! * bounded constant-*set* tracking of the top [`TRACKED`] stack slots,
//!   *relative to the top* so it stays meaningful when different paths
//!   reach the block at different absolute depths (`tops[0]` is the top).
//!   Sets rather than single constants matter for return addresses:
//!   lsc-solc calls an internal function by pushing a per-call-site
//!   return label and jumping, so a function entry joins a *different*
//!   constant per caller — a single-constant domain decays them to
//!   unknown and the return `JUMP` degenerates to an edge into every
//!   `JUMPDEST`, flooding the interval analysis with junk,
//! * a sticky `after_call` bit: some path to this point has performed a
//!   reentrancy-capable external call (CALL/CALLCODE/DELEGATECALL with a
//!   gas argument that is unknown or exceeds the 2 300 stipend).
//!
//! Soundness invariants the lints and proptests rely on:
//!
//! * `tops[i] == In(S)` ⇒ *every* concrete execution reaching this
//!   point holds some member of `S` in that slot (join unions the sets,
//!   decaying to `Top` past [`MAX_CONSTS`]), so a jump through the slot
//!   can only go to members of `S` — edges to its valid `JUMPDEST`s
//!   cover every non-halting continuation;
//! * an unresolved jump conservatively edges to every `JUMPDEST` block,
//!   so the reachable set over-approximates the executed set;
//! * `lo ≤ depth ≤ hi` for every concrete depth, so "may underflow"
//!   (`lo < pops`) catches every real underflow and "may overflow"
//!   (`hi - pops + pushes > limit`) every real overflow.
//!
//! The join is monotone in a finite lattice (`lo` only decreases, `hi`
//! only increases, both clamped; constant sets only grow until they
//! decay to `Top`; the tracked window is bounded by [`TRACKED`] and the
//! `deeper` bit only flips one way), so the worklist fixpoint
//! terminates.

use lsc_evm::cfg::{Cfg, Instr};
use lsc_evm::opcode::{self, op};
use lsc_evm::stack::STACK_LIMIT;
use lsc_primitives::U256;
use std::collections::VecDeque;

/// How many top-of-stack slots carry constant values through the
/// analysis. Deep enough for lsc-solc's call frames (selector, return
/// label, a handful of arguments); everything deeper is `None`.
pub const TRACKED: usize = 32;

/// Gas at or below the call stipend cannot re-enter state-changing code.
pub const STIPEND: u64 = 2_300;

/// Cap on per-slot constant sets. Sized for the fan-in of lsc-solc
/// internal functions (one return label per call site); joins past the
/// cap decay to [`Consts::Top`].
pub const MAX_CONSTS: usize = 16;

/// May-value set for one stack slot: the slot holds one of a bounded set
/// of known constants, or anything at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Consts {
    /// Any value.
    Top,
    /// One of these values (sorted, deduped, non-empty, at most
    /// [`MAX_CONSTS`] entries — the canonical order makes the fixpoint's
    /// equality-based change detection reliable).
    In(Vec<U256>),
}

impl Consts {
    /// Exactly one known value.
    pub fn only(v: U256) -> Consts {
        Consts::In(vec![v])
    }

    /// The value if the set is a singleton.
    pub fn as_single(&self) -> Option<U256> {
        match self {
            Consts::In(vs) if vs.len() == 1 => Some(vs[0]),
            _ => None,
        }
    }

    /// Set union, decaying to `Top` past [`MAX_CONSTS`].
    pub fn join(&self, other: &Consts) -> Consts {
        match (self, other) {
            (Consts::In(a), Consts::In(b)) => {
                let mut merged = a.clone();
                merged.extend_from_slice(b);
                merged.sort_unstable();
                merged.dedup();
                if merged.len() > MAX_CONSTS {
                    Consts::Top
                } else {
                    Consts::In(merged)
                }
            }
            _ => Consts::Top,
        }
    }
}

/// Abstract machine state at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsState {
    /// Minimum possible stack depth.
    pub lo: usize,
    /// Maximum possible stack depth (clamped to [`STACK_LIMIT`]).
    pub hi: usize,
    /// Known constant sets for the top slots; `tops[0]` is the top.
    pub tops: Vec<Consts>,
    /// Whether stack slots exist below the tracked window. `false` means
    /// the window covers the *whole* stack on every path reaching here;
    /// `true` means deeper slots exist with unknown contents. The
    /// distinction matters at joins: when both sides cover their whole
    /// stacks, a shorter side has *no* slot at the longer side's extra
    /// indices — any access past its bottom underflows and halts — so
    /// the longer window survives verbatim instead of being truncated.
    /// That keeps outer-frame return addresses alive across joins of
    /// lsc-solc call sites at different depths.
    pub deeper: bool,
    /// A reentrancy-capable external call may have happened on some path.
    pub after_call: bool,
}

impl AbsState {
    /// State at frame entry: empty stack, no calls made.
    pub fn initial() -> AbsState {
        AbsState {
            lo: 0,
            hi: 0,
            tops: Vec::new(),
            deeper: false,
            after_call: false,
        }
    }

    /// The may-value set on top of the stack (`Top` when untracked).
    pub fn top(&self) -> Consts {
        self.tops.first().cloned().unwrap_or(Consts::Top)
    }

    /// Least upper bound of two states reaching the same block.
    pub fn join(&self, other: &AbsState) -> AbsState {
        // Window length after the join: a side with unknown deeper slots
        // caps it at its own length (its slots past that are untracked);
        // a side whose window is its whole stack contributes nothing at
        // indices past its bottom, so it imposes no cap.
        let cap = |st: &AbsState| {
            if st.deeper {
                st.tops.len()
            } else {
                usize::MAX
            }
        };
        let n = self
            .tops
            .len()
            .max(other.tops.len())
            .min(cap(self))
            .min(cap(other));
        let slot = |st: &AbsState, i: usize| match st.tops.get(i) {
            Some(c) => Some(c.clone()),
            None if st.deeper => Some(Consts::Top),
            None => None, // below this side's stack bottom: no contribution
        };
        let tops = (0..n)
            .map(|i| match (slot(self, i), slot(other, i)) {
                (Some(a), Some(b)) => a.join(&b),
                (Some(c), None) | (None, Some(c)) => c,
                (None, None) => unreachable!("n caps at both window ends"),
            })
            .collect();
        AbsState {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            tops,
            deeper: self.deeper || other.deeper,
            after_call: self.after_call || other.after_call,
        }
    }
}

/// Where control can go after a block's last instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exit {
    /// The block halts the frame (STOP/RETURN/REVERT/SELFDESTRUCT/
    /// INVALID/undefined opcode).
    Halt,
    /// Straight-line continuation into the next block (or the implicit
    /// STOP past the end of the code).
    Fallthrough,
    /// Unconditional `JUMP`.
    Jump(JumpTarget),
    /// `JUMPI`: the jump target plus fallthrough.
    Branch(JumpTarget),
}

/// Resolution of a dynamic jump from the abstract top of stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JumpTarget {
    /// Every value the jump can take is one of these valid `JUMPDEST`
    /// pcs (more than one when the slot carries a return-label set).
    /// Possible invalid members of a mixed set are dropped — those
    /// executions halt at the jump and reach nothing.
    Known(Vec<usize>),
    /// *Every* possible target fails the `JUMPDEST` check — the jump, if
    /// taken, halts with `InvalidJump` at runtime (one representative
    /// value is carried for the diagnostic).
    Invalid(U256),
    /// Target unknown: conservatively, any `JUMPDEST` block.
    Unknown,
}

/// Resolve the jump the state is about to take (called with the state
/// *before* the JUMP/JUMPI pops its operands).
pub fn jump_target(cfg: &Cfg, st: &AbsState) -> JumpTarget {
    match st.top() {
        Consts::In(vs) => {
            let valid: Vec<usize> = vs
                .iter()
                .filter_map(U256::to_usize)
                .filter(|&d| cfg.jump_target_block(d).is_some())
                .collect();
            if valid.is_empty() {
                JumpTarget::Invalid(vs[0])
            } else {
                JumpTarget::Known(valid)
            }
        }
        Consts::Top => JumpTarget::Unknown,
    }
}

/// Apply one instruction to the abstract state. Undefined opcodes halt
/// the frame and leave the state untouched (the block exit is `Halt`).
pub fn step(st: &mut AbsState, ins: &Instr) {
    let byte = ins.opcode;
    let Some((pops, pushes)) = opcode::stack_io(byte) else {
        return;
    };

    // The gas argument of a call is its top-of-stack operand; capture it
    // before the stack effect is applied. Stipend-safe only when *every*
    // possible gas value fits the stipend.
    if matches!(byte, op::CALL | op::CALLCODE | op::DELEGATECALL) {
        let capable = match st.top() {
            Consts::In(gs) => gs.iter().any(|g| g.to_u64().is_none_or(|g| g > STIPEND)),
            Consts::Top => true,
        };
        if capable {
            st.after_call = true;
        }
    }

    match byte {
        op::PUSH0 => st.tops.insert(0, Consts::only(U256::ZERO)),
        _ if opcode::is_push(byte) => {
            st.tops
                .insert(0, ins.push.map_or(Consts::Top, Consts::only));
        }
        0x80..=0x8f => {
            // DUPn copies the n-th slot from the top.
            let n = (byte - op::DUP1) as usize;
            let v = st.tops.get(n).cloned().unwrap_or(Consts::Top);
            st.tops.insert(0, v);
        }
        0x90..=0x9f => {
            // SWAPn exchanges the top with the (n+1)-th slot.
            let n = (byte - op::SWAP1 + 1) as usize;
            if n < st.tops.len() {
                st.tops.swap(0, n);
            } else if !st.tops.is_empty() {
                st.tops[0] = Consts::Top;
            }
        }
        _ => {
            let drop = pops.min(st.tops.len());
            st.tops.drain(..drop);
            for _ in 0..pushes {
                st.tops.insert(0, Consts::Top);
            }
        }
    }
    if st.tops.len() > TRACKED {
        st.tops.truncate(TRACKED);
        st.deeper = true;
    }

    st.lo = (st.lo.saturating_sub(pops) + pushes).min(STACK_LIMIT);
    st.hi = (st.hi.saturating_sub(pops) + pushes).min(STACK_LIMIT);
}

/// Run a whole block from `entry`, returning the out-state and the exit.
pub fn simulate_block(cfg: &Cfg, block: usize, entry: AbsState) -> (AbsState, Exit) {
    let blk = &cfg.blocks[block];
    let mut st = entry;
    let mut exit = if blk.falls_through {
        Exit::Fallthrough
    } else {
        Exit::Halt
    };
    for ins in &cfg.instrs[blk.instr_range()] {
        match ins.opcode {
            op::JUMP => exit = Exit::Jump(jump_target(cfg, &st)),
            op::JUMPI => exit = Exit::Branch(jump_target(cfg, &st)),
            _ => {}
        }
        step(&mut st, ins);
    }
    (st, exit)
}

/// Cap on depth-keyed disjuncts per block; overflow collapses them all
/// into one joined state (the plain interval analysis as the fallback).
pub const MAX_DISJUNCTS: usize = 8;

/// Fixpoint result: per-block entry states plus the static gas floor
/// from entry to any frame exit.
#[derive(Debug)]
pub struct Analysis {
    /// Entry states per block, partitioned by exact stack depth
    /// (disjuncts); empty ⇔ unreachable. Keeping distinct concrete
    /// depths apart is what makes return continuations precise: an
    /// internal function reached from call sites at different depths
    /// would otherwise blur both depths into one interval and carry it
    /// back to *every* return label, manufacturing underflow paths that
    /// no caller actually has.
    pub entry: Vec<Vec<AbsState>>,
    /// Static lower bound on gas consumed by any execution that runs the
    /// frame to a normal end (success or revert). `0` for empty code.
    pub gas_floor: u64,
}

impl Analysis {
    /// Whether a block is reachable from the entry point.
    pub fn reachable(&self, block: usize) -> bool {
        self.entry.get(block).is_some_and(|d| !d.is_empty())
    }
}

/// States with one exact concrete depth get their own disjunct; states
/// whose depth is already an interval share a single catch-all.
fn disjunct_key(st: &AbsState) -> Option<usize> {
    (st.lo == st.hi).then_some(st.lo)
}

/// Merge an incoming state into a block's disjunct set; true ⇔ changed.
fn merge_disjunct(set: &mut Vec<AbsState>, st: AbsState) -> bool {
    // Subsumed by an existing disjunct: joining adds nothing (this check
    // also keeps the fixpoint from re-adding states after a collapse).
    if set.iter().any(|d| d.join(&st) == *d) {
        return false;
    }
    let key = disjunct_key(&st);
    if let Some(d) = set.iter_mut().find(|d| disjunct_key(d) == key) {
        *d = d.join(&st);
        return true;
    }
    set.push(st);
    if set.len() > MAX_DISJUNCTS {
        let joined = set
            .iter()
            .skip(1)
            .fold(set[0].clone(), |acc, d| acc.join(d));
        *set = vec![joined];
    }
    true
}

fn successors(cfg: &Cfg, block: usize, exit: &Exit, out: &mut Vec<usize>) {
    out.clear();
    let fall = |out: &mut Vec<usize>| {
        if block + 1 < cfg.blocks.len() {
            out.push(block + 1);
        }
    };
    let jump = |t: &JumpTarget, out: &mut Vec<usize>| match t {
        JumpTarget::Known(pcs) => {
            out.extend(pcs.iter().filter_map(|&pc| cfg.jump_target_block(pc)));
        }
        JumpTarget::Invalid(_) => {}
        JumpTarget::Unknown => out.extend_from_slice(&cfg.jumpdest_blocks),
    };
    match exit {
        Exit::Halt => {}
        Exit::Fallthrough => fall(out),
        Exit::Jump(t) => jump(t, out),
        Exit::Branch(t) => {
            fall(out);
            jump(t, out);
        }
    }
    out.sort_unstable();
    out.dedup();
}

/// Worklist fixpoint over block-entry disjuncts, then a shortest-path
/// relaxation for the gas floor. Each disjunct is simulated on its own,
/// so its exit (and jump resolution) reflects only the paths it covers.
pub fn run(cfg: &Cfg) -> Analysis {
    let nb = cfg.blocks.len();
    let mut entry: Vec<Vec<AbsState>> = vec![Vec::new(); nb];
    if nb == 0 {
        return Analysis {
            entry,
            gas_floor: 0,
        };
    }

    entry[0].push(AbsState::initial());
    let mut work: VecDeque<usize> = VecDeque::from([0]);
    let mut queued = vec![false; nb];
    queued[0] = true;
    let mut succs = Vec::new();
    while let Some(b) = work.pop_front() {
        queued[b] = false;
        for st in entry[b].clone() {
            let (out, exit) = simulate_block(cfg, b, st);
            successors(cfg, b, &exit, &mut succs);
            for &s in &succs {
                if merge_disjunct(&mut entry[s], out.clone()) && !queued[s] {
                    queued[s] = true;
                    work.push_back(s);
                }
            }
        }
    }

    let gas_floor = gas_floor(cfg, &entry);
    Analysis { entry, gas_floor }
}

/// Min-cost-to-exit relaxation over the resolved CFG. Block weight is
/// the sum of [`opcode::base_gas`] lower bounds; the floor is the
/// cheapest entry→exit path, where an exit is a halting block or falling
/// off the end of the code. Executions that halt exceptionally consume
/// their whole gas limit and are outside this bound's contract.
fn gas_floor(cfg: &Cfg, entry: &[Vec<AbsState>]) -> u64 {
    let nb = cfg.blocks.len();
    let weight: Vec<u64> = cfg
        .blocks
        .iter()
        .map(|b| {
            cfg.instrs[b.instr_range()]
                .iter()
                .map(|i| opcode::base_gas(i.opcode))
                .sum()
        })
        .collect();

    let mut dist: Vec<Option<u64>> = vec![None; nb];
    dist[0] = Some(0);
    let mut work: VecDeque<usize> = VecDeque::from([0]);
    let mut succs = Vec::new();
    let mut floor: Option<u64> = None;
    while let Some(b) = work.pop_front() {
        let d = dist[b].expect("queued blocks have distances");
        let through = d.saturating_add(weight[b]);
        for st in &entry[b] {
            let (_, exit) = simulate_block(cfg, b, st.clone());
            let exits_frame = matches!(exit, Exit::Halt)
                || (b + 1 == nb && matches!(exit, Exit::Fallthrough | Exit::Branch(_)));
            if exits_frame {
                floor = Some(floor.map_or(through, |f| f.min(through)));
            }
            successors(cfg, b, &exit, &mut succs);
            for &s in &succs {
                if dist[s].is_none_or(|old| old > through) {
                    dist[s] = Some(through);
                    work.push_back(s);
                }
            }
        }
    }
    floor.unwrap_or(0)
}
