//! Cross-version storage compatibility: diff two recovered
//! [`StorageLayout`]s and report upgrade hazards as [`Finding`]s.
//!
//! The version chain (paper Fig. 2) keeps every version's storage alive
//! under the successor's code, so an upgrade is only safe when v(N+1)
//! still treats v(N)'s live slots as the same kind of data. Four rules,
//! each a distinct way an upgrade can silently break the legal record:
//!
//! * [`Rule::SlotRepurposed`] — a slot the predecessor *reads* is
//!   written by the successor with a provably different provenance class
//!   (e.g. a slot that always held a PUSH constant is now assigned
//!   `msg.sender`). Fires only when both sides' write-class sets are
//!   non-empty, fully recovered (no `unknown`), and disjoint — any
//!   overlap or any imprecision suppresses the rule, because "different
//!   meaning" is then not provable.
//! * [`Rule::MappingBaseCollision`] — a slot that roots mapping/array
//!   data in the predecessor is scalar-written by the successor *without*
//!   the successor also using it as a hash base. (Array length slots are
//!   legitimately both scalar-written and hash roots, hence the second
//!   clause.)
//! * [`Rule::LinkPointerClobbered`] — the successor writes the version
//!   chain's `next`/`previous` pointer slots (0 and 1) with a value that
//!   is provably not calldata-derived. The designated upgrade path
//!   (`setNext`/`setPrev`) stores its address argument, so a const-,
//!   storage-, or keccak-classed write there is a contract rebinding the
//!   chain out from under the registry.
//! * [`Rule::LayoutUnknown`] — either layout has unrecovered reads or
//!   writes, so compatibility is unprovable. Warn-level: the gate
//!   records it but does not deny on it by default.
//!
//! The asymmetry is deliberate: `check_upgrade` judges the *successor*
//! against the predecessor's live layout. The predecessor is already on
//! chain; its own hazards were vetted when it deployed.

use crate::layout::{ClassSet, StorageLayout};
use crate::{Finding, Rule};
use lsc_primitives::U256;
use std::collections::BTreeSet;

/// Slots holding the version chain's doubly-linked list pointers: the
/// `Node` base contract declares `next` then `previous` first, so every
/// chain participant has them at slots 0 and 1.
pub const LINK_SLOTS: [u64; 2] = [0, 1];

/// Diff `new` (the successor candidate) against `old` (the live
/// predecessor). Finding pcs point into the successor's runtime except
/// for [`Rule::LayoutUnknown`] on the predecessor side (pc 0).
pub fn check_upgrade(old: &StorageLayout, new: &StorageLayout) -> Vec<Finding> {
    let mut findings = Vec::new();

    if old.unknown_reads || old.unknown_writes {
        findings.push(Finding::new(
            Rule::LayoutUnknown,
            0,
            format!(
                "predecessor layout incomplete (unknown reads: {}, unknown writes: {}); compatibility is unprovable for the escaped accesses",
                old.unknown_reads, old.unknown_writes
            ),
        ));
    }
    if new.unknown_reads || new.unknown_writes {
        findings.push(Finding::new(
            Rule::LayoutUnknown,
            0,
            format!(
                "successor layout incomplete (unknown reads: {}, unknown writes: {}); compatibility is unprovable for the escaped accesses",
                new.unknown_reads, new.unknown_writes
            ),
        ));
    }

    // SlotRepurposed: a live (read-by-old) slot now written with a
    // provably disjoint provenance class.
    for (slot, nu) in &new.slots {
        if !nu.writes {
            continue;
        }
        let Some(ou) = old.slots.get(slot) else {
            continue;
        };
        if !ou.reads {
            continue;
        }
        let ow = ou.write_classes;
        let nw = nu.write_classes;
        let proven = |c: ClassSet| !c.is_empty() && !c.contains(ClassSet::UNKNOWN);
        if proven(ow) && proven(nw) && !ow.intersects(nw) {
            findings.push(Finding::new(
                Rule::SlotRepurposed,
                nu.write_pc.unwrap_or(0),
                format!(
                    "slot {slot} is read by the predecessor and held {ow} data there, but the successor writes {nw} values to it"
                ),
            ));
        }
    }

    // MappingBaseCollision: old hash root scalar-written by new without
    // new also rooting hashed data there.
    let old_bases: BTreeSet<U256> = old
        .keccak_read_bases
        .union(&old.keccak_write_bases)
        .copied()
        .collect();
    for base in old_bases {
        let scalar_written = new.slots.get(&base).is_some_and(|u| u.writes);
        let still_a_base =
            new.keccak_read_bases.contains(&base) || new.keccak_write_bases.contains(&base);
        if scalar_written && !still_a_base {
            let pc = new.slots[&base].write_pc.unwrap_or(0);
            findings.push(Finding::new(
                Rule::MappingBaseCollision,
                pc,
                format!(
                    "slot {base} roots mapping/array data in the predecessor but the successor scalar-writes it without using it as a hash base"
                ),
            ));
        }
    }

    // LinkPointerClobbered: next/previous written with a provably
    // non-calldata value.
    for slot in LINK_SLOTS.map(U256::from_u64) {
        let Some(nu) = new.slots.get(&slot) else {
            continue;
        };
        if !nu.writes {
            continue;
        }
        let suspicious = ClassSet::CONST
            .union(ClassSet::STORAGE)
            .union(ClassSet::KECCAK);
        if nu.write_classes.intersects(suspicious) {
            findings.push(Finding::new(
                Rule::LinkPointerClobbered,
                nu.write_pc.unwrap_or(0),
                format!(
                    "version-chain link pointer slot {slot} is written with {} values outside the designated setNext/setPrev path",
                    nu.write_classes
                ),
            ));
        }
    }

    findings.sort_by_key(|f| (std::cmp::Reverse(f.severity), f.rule as u8, f.pc));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::SlotUse;

    fn slot(n: u64) -> U256 {
        U256::from_u64(n)
    }

    fn layout_with(slots: &[(u64, bool, bool, ClassSet)]) -> StorageLayout {
        let mut l = StorageLayout::default();
        for &(s, reads, writes, classes) in slots {
            l.slots.insert(
                slot(s),
                SlotUse {
                    reads,
                    writes,
                    write_classes: classes,
                    read_pc: reads.then_some(1),
                    write_pc: writes.then_some(2),
                },
            );
        }
        l
    }

    #[test]
    fn repurposed_slot_detected() {
        let old = layout_with(&[(9, true, true, ClassSet::CONST)]);
        let new = layout_with(&[(9, false, true, ClassSet::INPUT)]);
        let f = check_upgrade(&old, &new);
        assert!(f.iter().any(|f| f.rule == Rule::SlotRepurposed));
    }

    #[test]
    fn overlapping_classes_pass() {
        let old = layout_with(&[(9, true, true, ClassSet::CONST.union(ClassSet::INPUT))]);
        let new = layout_with(&[(9, false, true, ClassSet::INPUT)]);
        assert!(check_upgrade(&old, &new).is_empty());
    }

    #[test]
    fn unknown_class_suppresses_repurposing() {
        let old = layout_with(&[(9, true, true, ClassSet::UNKNOWN)]);
        let new = layout_with(&[(9, false, true, ClassSet::INPUT)]);
        let f = check_upgrade(&old, &new);
        assert!(!f.iter().any(|f| f.rule == Rule::SlotRepurposed));
    }

    #[test]
    fn link_pointer_clobber_detected() {
        let old = StorageLayout::default();
        let new = layout_with(&[(0, false, true, ClassSet::STORAGE)]);
        let f = check_upgrade(&old, &new);
        assert!(f.iter().any(|f| f.rule == Rule::LinkPointerClobbered));
    }

    #[test]
    fn calldata_link_write_is_fine() {
        let old = StorageLayout::default();
        let new = layout_with(&[(0, false, true, ClassSet::INPUT)]);
        assert!(check_upgrade(&old, &new).is_empty());
    }

    #[test]
    fn mapping_base_collision_detected() {
        let mut old = StorageLayout::default();
        old.keccak_write_bases.insert(slot(2));
        let new = layout_with(&[(2, false, true, ClassSet::CONST)]);
        let f = check_upgrade(&old, &new);
        assert!(f.iter().any(|f| f.rule == Rule::MappingBaseCollision));
    }

    #[test]
    fn array_length_slot_is_not_a_collision() {
        let mut old = StorageLayout::default();
        old.keccak_write_bases.insert(slot(2));
        let mut new = layout_with(&[(2, true, true, ClassSet::STORAGE)]);
        new.keccak_write_bases.insert(slot(2));
        assert!(check_upgrade(&old, &new).is_empty());
    }

    #[test]
    fn incomplete_layout_warns() {
        let old = StorageLayout {
            unknown_writes: true,
            ..StorageLayout::default()
        };
        let f = check_upgrade(&old, &StorageLayout::default());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::LayoutUnknown);
        assert_eq!(f[0].severity, crate::Severity::Warning);
    }
}
