//! # lsc-analyzer
//!
//! Static bytecode verifier for the legal-smart-contracts stack. The
//! paper's version chain (Fig. 2) makes every deployed contract part of
//! the permanent legal record, and its modify flow (Figs. 7–8) swaps new
//! logic in against shared storage with no admission check. This crate
//! is that missing check: before a deployment or version upgrade enters
//! the chain, its bytecode is
//!
//! 1. decoded and shaped into a CFG ([`lsc_evm::cfg`]),
//! 2. abstractly interpreted ([`absint`]) — stack-depth intervals,
//!    bounded constant tracking for jump resolution, reachability, and a
//!    static lower-bound gas estimate,
//! 3. linted ([`lints`]) into structured [`Finding`]s,
//! 4. judged against a [`VettingPolicy`] that maps each [`Rule`] to
//!    deny/warn/allow.
//!
//! `lsc-core` enforces the policy in `ContractManager::deploy` and the
//! negotiation `enact` path; the CLI exposes it as `vet`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod compat;
mod extract;
pub mod layout;
pub mod lints;

pub use compat::check_upgrade;
pub use extract::extract_runtime;
pub use layout::{ClassSet, SlotUse, StorageLayout};
pub use lints::LintOptions;

use lsc_evm::cfg::Cfg;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// What a finding is about. Discriminants are stable and ordered by how
/// alarming the rule is by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Rule {
    /// A jump whose (constant) target is not a `JUMPDEST`: guaranteed
    /// `InvalidJump` halt if executed.
    InvalidJump,
    /// Some reachable path reaches an instruction with too few operands.
    StackUnderflow,
    /// Some reachable path may push past the 1024-slot limit.
    StackOverflow,
    /// Storage write after a reentrancy-capable external call — the
    /// checks-effects-interactions violation behind the DAO-style bugs.
    WriteAfterCall,
    /// A CALL/CREATE status code is discarded without being inspected.
    UncheckedCall,
    /// PUSH immediate truncated by the end of the code (zero-padded at
    /// runtime; almost always a build artifact).
    TruncatedPush,
    /// `SELFDESTRUCT` present on a reachable path.
    Selfdestruct,
    /// `ORIGIN` present on a reachable path.
    Origin,
    /// Code that no path from the entry point can reach.
    UnreachableCode,
    /// Upgrade hazard: a storage slot the predecessor reads is written
    /// by the successor with a provably different provenance class.
    SlotRepurposed,
    /// Upgrade hazard: a predecessor mapping/array root slot is
    /// scalar-written by the successor without remaining a hash base.
    MappingBaseCollision,
    /// Upgrade hazard: the version-chain `next`/`previous` pointer slots
    /// are written with a provably non-calldata value.
    LinkPointerClobbered,
    /// Layout recovery was incomplete, so upgrade compatibility is
    /// unprovable (warn-level by design: the gate records, not denies).
    LayoutUnknown,
}

impl Rule {
    /// Every rule. New variants append — the discriminant and name of an
    /// existing rule never change, which is what keeps committed
    /// finding baselines stable across analyzer growth.
    pub const ALL: [Rule; 13] = [
        Rule::InvalidJump,
        Rule::StackUnderflow,
        Rule::StackOverflow,
        Rule::WriteAfterCall,
        Rule::UncheckedCall,
        Rule::TruncatedPush,
        Rule::Selfdestruct,
        Rule::Origin,
        Rule::UnreachableCode,
        Rule::SlotRepurposed,
        Rule::MappingBaseCollision,
        Rule::LinkPointerClobbered,
        Rule::LayoutUnknown,
    ];

    /// Stable kebab-case name (used in audit records and CLI output).
    pub fn name(self) -> &'static str {
        match self {
            Rule::InvalidJump => "invalid-jump",
            Rule::StackUnderflow => "stack-underflow",
            Rule::StackOverflow => "stack-overflow",
            Rule::WriteAfterCall => "write-after-call",
            Rule::UncheckedCall => "unchecked-call",
            Rule::TruncatedPush => "truncated-push",
            Rule::Selfdestruct => "selfdestruct",
            Rule::Origin => "origin",
            Rule::UnreachableCode => "unreachable-code",
            Rule::SlotRepurposed => "slot-repurposed",
            Rule::MappingBaseCollision => "mapping-base-collision",
            Rule::LinkPointerClobbered => "link-pointer-clobbered",
            Rule::LayoutUnknown => "layout-unknown",
        }
    }

    /// Intrinsic severity, independent of any policy.
    pub fn severity(self) -> Severity {
        match self {
            Rule::InvalidJump
            | Rule::StackUnderflow
            | Rule::StackOverflow
            | Rule::WriteAfterCall
            | Rule::SlotRepurposed
            | Rule::MappingBaseCollision
            | Rule::LinkPointerClobbered => Severity::Error,
            _ => Severity::Warning,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How bad a finding is on its own terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing about; the contract still behaves as written.
    Warning,
    /// The contract can halt or be exploited on a reachable path.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One diagnostic produced by the lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Intrinsic severity ([`Rule::severity`]).
    pub severity: Severity,
    /// Offset of the offending instruction (or region start).
    pub pc: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(rule: Rule, pc: usize, message: String) -> Finding {
        Finding {
            severity: rule.severity(),
            pc,
            rule,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] at pc {}: {}",
            self.severity, self.rule, self.pc, self.message
        )
    }
}

/// What the policy does when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Reject the deployment.
    Deny,
    /// Record the finding, allow the deployment.
    Warn,
    /// Ignore the rule entirely.
    Allow,
}

/// Per-rule deny/warn/allow decisions enforced by the deployment gate.
///
/// The default denies the [`Severity::Error`] rules and warns on the
/// rest — every built-in template passes it, while invalid jumps, stack
/// hazards, reentrancy shapes and incompatible upgrades are kept out of
/// the version chain.
#[derive(Debug, Clone, Default)]
pub struct VettingPolicy {
    overrides: Vec<(Rule, Action)>,
}

impl VettingPolicy {
    /// Policy that records findings but denies nothing (audit-only mode).
    pub fn permissive() -> VettingPolicy {
        let mut p = VettingPolicy::default();
        for rule in Rule::ALL {
            p = p.with_action(rule, Action::Warn);
        }
        p
    }

    /// Override the action for one rule (last write wins).
    pub fn with_action(mut self, rule: Rule, action: Action) -> VettingPolicy {
        self.overrides.retain(|(r, _)| *r != rule);
        self.overrides.push((rule, action));
        self
    }

    /// The action this policy takes for `rule`.
    pub fn action(&self, rule: Rule) -> Action {
        self.overrides.iter().find(|(r, _)| *r == rule).map_or(
            match rule.severity() {
                Severity::Error => Action::Deny,
                Severity::Warning => Action::Warn,
            },
            |(_, a)| *a,
        )
    }
}

/// Analysis result for one bytecode blob.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by pc.
    pub findings: Vec<Finding>,
    /// Static lower bound on gas consumed by any run of this code that
    /// ends without an exceptional halt (see `absint`).
    pub gas_floor: u64,
    /// Number of basic blocks recovered.
    pub block_count: usize,
    /// Number of decoded instructions.
    pub instr_count: usize,
    reachable_pcs: Vec<bool>,
}

impl Report {
    /// True when `pc` starts a reachable instruction — the set the
    /// interpreter's executed pcs must be a subset of (soundness
    /// property (a)).
    pub fn is_reachable_pc(&self, pc: usize) -> bool {
        self.reachable_pcs.get(pc).copied().unwrap_or(false)
    }

    /// Findings for one rule.
    pub fn findings_for(&self, rule: Rule) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.rule == rule)
    }

    /// Findings the given policy denies.
    pub fn denied<'a>(&'a self, policy: &'a VettingPolicy) -> impl Iterator<Item = &'a Finding> {
        self.findings
            .iter()
            .filter(|f| policy.action(f.rule) == Action::Deny)
    }
}

/// Analyze a bytecode blob with the default lint set.
pub fn analyze(code: &[u8]) -> Report {
    analyze_with(code, LintOptions::default())
}

/// Analyze with explicit lint options.
pub fn analyze_with(code: &[u8], opts: LintOptions) -> Report {
    let cfg = Cfg::build(code);
    let analysis = absint::run(&cfg);
    let findings = lints::lint(&cfg, &analysis, opts);
    let mut reachable_pcs = vec![false; code.len()];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if analysis.reachable(b) {
            for ins in &cfg.instrs[blk.instr_range()] {
                reachable_pcs[ins.pc] = true;
            }
        }
    }
    Report {
        findings,
        gas_floor: analysis.gas_floor,
        block_count: cfg.blocks.len(),
        instr_count: cfg.instrs.len(),
        reachable_pcs,
    }
}

/// Which blob a deployment finding came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// The constructor wrapper executed once at deploy time.
    Init,
    /// The code installed at the contract address.
    Runtime,
    /// A cross-version comparison (the finding is about the pair, not
    /// one blob).
    Upgrade,
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Region::Init => "init",
            Region::Runtime => "runtime",
            Region::Upgrade => "upgrade",
        })
    }
}

/// Vetting result for a full deployment blob: the init wrapper (analyzed
/// without the unreachable lint — appended function bodies and the
/// runtime image are data from init's perspective) plus, when the
/// canonical deploy tail is found, the extracted runtime under the full
/// lint set.
#[derive(Debug)]
pub struct DeploymentVetting {
    /// Report over the init (deploy-transaction) code.
    pub init: Report,
    /// Report over the extracted runtime image, when recoverable.
    pub runtime: Option<Report>,
    /// Byte range of the runtime image inside the init blob.
    pub runtime_range: Option<std::ops::Range<usize>>,
    /// One-line superinstruction compile summary for the extracted
    /// runtime — the acceleration artifact built from the same CFG this
    /// verifier vets ("vetting and acceleration share one trusted
    /// artifact"). `None` when the runtime was not recovered or the
    /// block compiler bailed; such contracts execute on the plain
    /// interpreter path. Deliberately NOT a [`Finding`]: compile status
    /// is an execution property, not a safety verdict, and must never
    /// move the vetting baseline.
    pub superinstr: Option<String>,
}

impl DeploymentVetting {
    /// All findings with the region they came from, errors first.
    pub fn findings(&self) -> Vec<(Region, &Finding)> {
        let mut all: Vec<(Region, &Finding)> = self
            .init
            .findings
            .iter()
            .map(|f| (Region::Init, f))
            .chain(
                self.runtime
                    .iter()
                    .flat_map(|r| r.findings.iter().map(|f| (Region::Runtime, f))),
            )
            .collect();
        all.sort_by_key(|(region, f)| {
            (
                std::cmp::Reverse(f.severity),
                f.rule as u8,
                *region as u8,
                f.pc,
            )
        });
        all
    }

    /// Enforce a policy: `Err` carries every denied finding.
    pub fn enforce(&self, policy: &VettingPolicy) -> Result<(), VetError> {
        let denied: Vec<(Region, Finding)> = self
            .findings()
            .into_iter()
            .filter(|(_, f)| policy.action(f.rule) == Action::Deny)
            .map(|(region, f)| (region, f.clone()))
            .collect();
        if denied.is_empty() {
            Ok(())
        } else {
            Err(VetError { denied })
        }
    }
}

/// Vet a deployment blob (init code as submitted in a create
/// transaction, *before* constructor arguments are appended).
pub fn vet_deployment(init_code: &[u8]) -> DeploymentVetting {
    let init = analyze_with(init_code, LintOptions { unreachable: false });
    let runtime_range = extract_runtime(init_code);
    let runtime = runtime_range
        .clone()
        .map(|r| analyze_with(&init_code[r], LintOptions::default()));
    let superinstr = runtime_range.clone().and_then(|r| {
        let analysis = lsc_evm::AnalyzedCode::analyze(std::sync::Arc::new(init_code[r].to_vec()));
        lsc_evm::compile::summary(&analysis)
    });
    DeploymentVetting {
        init,
        runtime,
        runtime_range,
        superinstr,
    }
}

/// Vetting rejected a deployment: the findings the policy denied.
#[derive(Debug, Clone)]
pub struct VetError {
    /// Denied findings with their region.
    pub denied: Vec<(Region, Finding)>,
}

impl fmt::Display for VetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vetting denied {} finding(s): ", self.denied.len())?;
        for (i, (region, finding)) in self.denied.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "[{region}] {finding}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VetError {}

/// Vetting result for a version upgrade: the predecessor's recovered
/// layout, the successor's (when its runtime was recoverable), and the
/// compatibility findings between them.
#[derive(Debug, Clone)]
pub struct UpgradeVetting {
    /// Layout of the live predecessor's runtime.
    pub old_layout: Arc<StorageLayout>,
    /// Layout of the successor's runtime; `None` when runtime extraction
    /// failed (which itself yields a hard [`Rule::LayoutUnknown`]
    /// finding — extraction failure is never silently skipped).
    pub new_layout: Option<Arc<StorageLayout>>,
    /// Byte range of the successor's runtime inside its init blob, when
    /// it was extracted here rather than supplied directly.
    pub new_runtime_range: Option<std::ops::Range<usize>>,
    /// Compatibility findings, sorted errors-first.
    pub findings: Vec<Finding>,
}

impl UpgradeVetting {
    /// All findings with their region (always [`Region::Upgrade`]),
    /// matching [`DeploymentVetting::findings`]'s shape so callers can
    /// render both the same way.
    pub fn findings(&self) -> Vec<(Region, &Finding)> {
        self.findings.iter().map(|f| (Region::Upgrade, f)).collect()
    }

    /// Enforce a policy: `Err` carries every denied finding.
    pub fn enforce(&self, policy: &VettingPolicy) -> Result<(), VetError> {
        let denied: Vec<(Region, Finding)> = self
            .findings
            .iter()
            .filter(|f| policy.action(f.rule) == Action::Deny)
            .map(|f| (Region::Upgrade, f.clone()))
            .collect();
        if denied.is_empty() {
            Ok(())
        } else {
            Err(VetError { denied })
        }
    }
}

/// Vet an upgrade where the successor is still an init blob (the deploy
/// transaction's code, as `deploy_version`/`enact` see it). The
/// comparison must run runtime-against-runtime — init code writes
/// constructor state and would drown the diff — so the successor's
/// runtime image is extracted first; when extraction fails, layout
/// compatibility is unprovable and a [`Rule::LayoutUnknown`] finding is
/// emitted instead of silently skipping the check.
pub fn vet_upgrade(old_runtime: &[u8], new_init: &[u8]) -> UpgradeVetting {
    match extract_runtime(new_init) {
        Some(range) => {
            let mut vetting = vet_upgrade_runtime(old_runtime, &new_init[range.clone()]);
            vetting.new_runtime_range = Some(range);
            vetting
        }
        None => {
            let old_layout = recover_layout_cached(old_runtime);
            let findings = vec![Finding::new(
                Rule::LayoutUnknown,
                0,
                "successor runtime image not recoverable from init code; upgrade compatibility is unprovable".to_string(),
            )];
            UpgradeVetting {
                old_layout,
                new_layout: None,
                new_runtime_range: None,
                findings,
            }
        }
    }
}

/// Vet an upgrade where both sides are already runtime images (e.g. both
/// fetched from chain state).
pub fn vet_upgrade_runtime(old_runtime: &[u8], new_runtime: &[u8]) -> UpgradeVetting {
    let old_layout = recover_layout_cached(old_runtime);
    let new_layout = recover_layout_cached(new_runtime);
    let findings = compat::check_upgrade(&old_layout, &new_layout);
    UpgradeVetting {
        old_layout,
        new_layout: Some(new_layout),
        new_runtime_range: None,
        findings,
    }
}

// ---- content-addressed memoization ----
//
// The 16 template combos deploy byte-identical runtimes to many
// addresses, and the upgrade gate re-analyzes the same predecessor for
// every candidate successor, so vetting and layout recovery are keyed on
// code content. Same discipline as the compiler's analysis memo: hash
// for the bucket, byte-compare for the hit (a hash collision must never
// serve another blob's verdict), bounded size with wholesale eviction.

/// Cached blobs across both memos before they are cleared wholesale.
const MEMO_CAP: usize = 1024;

type MemoMap<T> = Mutex<BTreeMap<u64, Vec<(Arc<Vec<u8>>, Arc<T>)>>>;

/// FNV-1a; the byte-verified chain behind it makes collision quality a
/// throughput concern only.
fn content_key(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn memo_get_or_insert<T>(memo: &MemoMap<T>, code: &[u8], build: impl FnOnce() -> T) -> Arc<T> {
    let key = content_key(code);
    {
        let map = memo.lock().expect("analyzer memo poisoned");
        if let Some(chain) = map.get(&key) {
            if let Some((_, cached)) = chain.iter().find(|(bytes, _)| ***bytes == *code) {
                return Arc::clone(cached);
            }
        }
    }
    // Build outside the lock: analysis is the expensive part and two
    // racing builders of the same blob agree on the result anyway.
    let built = Arc::new(build());
    let mut map = memo.lock().expect("analyzer memo poisoned");
    if map.values().map(Vec::len).sum::<usize>() >= MEMO_CAP {
        map.clear();
    }
    let chain = map.entry(key).or_default();
    if let Some((_, cached)) = chain.iter().find(|(bytes, _)| ***bytes == *code) {
        return Arc::clone(cached);
    }
    chain.push((Arc::new(code.to_vec()), Arc::clone(&built)));
    built
}

static VET_MEMO: MemoMap<DeploymentVetting> = Mutex::new(BTreeMap::new());
static LAYOUT_MEMO: MemoMap<StorageLayout> = Mutex::new(BTreeMap::new());

/// [`vet_deployment`] behind the content-addressed memo. Identical init
/// blobs (the common case for template re-deploys) analyze once.
pub fn vet_deployment_cached(init_code: &[u8]) -> Arc<DeploymentVetting> {
    memo_get_or_insert(&VET_MEMO, init_code, || vet_deployment(init_code))
}

/// [`layout::recover_layout`] behind the content-addressed memo.
pub fn recover_layout_cached(code: &[u8]) -> Arc<StorageLayout> {
    memo_get_or_insert(&LAYOUT_MEMO, code, || layout::recover_layout(code))
}

#[cfg(test)]
mod memo_tests {
    use super::*;

    #[test]
    fn identical_bytes_share_one_analysis() {
        let code = [0x60, 0x2a, 0x60, 0x07, 0x55, 0x00]; // PUSH PUSH SSTORE STOP
        let a = recover_layout_cached(&code);
        let b = recover_layout_cached(&code);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn different_bytes_never_share() {
        let a = recover_layout_cached(&[0x60, 0x01, 0x60, 0x02, 0x55, 0x00]);
        let b = recover_layout_cached(&[0x60, 0x01, 0x60, 0x03, 0x55, 0x00]);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.slots.keys().next(), b.slots.keys().next());
    }
}
