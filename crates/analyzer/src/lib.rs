//! # lsc-analyzer
//!
//! Static bytecode verifier for the legal-smart-contracts stack. The
//! paper's version chain (Fig. 2) makes every deployed contract part of
//! the permanent legal record, and its modify flow (Figs. 7–8) swaps new
//! logic in against shared storage with no admission check. This crate
//! is that missing check: before a deployment or version upgrade enters
//! the chain, its bytecode is
//!
//! 1. decoded and shaped into a CFG ([`lsc_evm::cfg`]),
//! 2. abstractly interpreted ([`absint`]) — stack-depth intervals,
//!    bounded constant tracking for jump resolution, reachability, and a
//!    static lower-bound gas estimate,
//! 3. linted ([`lints`]) into structured [`Finding`]s,
//! 4. judged against a [`VettingPolicy`] that maps each [`Rule`] to
//!    deny/warn/allow.
//!
//! `lsc-core` enforces the policy in `ContractManager::deploy` and the
//! negotiation `enact` path; the CLI exposes it as `vet`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
mod extract;
pub mod lints;

pub use extract::extract_runtime;
pub use lints::LintOptions;

use lsc_evm::cfg::Cfg;
use std::fmt;

/// What a finding is about. Discriminants are stable and ordered by how
/// alarming the rule is by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Rule {
    /// A jump whose (constant) target is not a `JUMPDEST`: guaranteed
    /// `InvalidJump` halt if executed.
    InvalidJump,
    /// Some reachable path reaches an instruction with too few operands.
    StackUnderflow,
    /// Some reachable path may push past the 1024-slot limit.
    StackOverflow,
    /// Storage write after a reentrancy-capable external call — the
    /// checks-effects-interactions violation behind the DAO-style bugs.
    WriteAfterCall,
    /// A CALL/CREATE status code is discarded without being inspected.
    UncheckedCall,
    /// PUSH immediate truncated by the end of the code (zero-padded at
    /// runtime; almost always a build artifact).
    TruncatedPush,
    /// `SELFDESTRUCT` present on a reachable path.
    Selfdestruct,
    /// `ORIGIN` present on a reachable path.
    Origin,
    /// Code that no path from the entry point can reach.
    UnreachableCode,
}

impl Rule {
    /// Every rule, in severity order.
    pub const ALL: [Rule; 9] = [
        Rule::InvalidJump,
        Rule::StackUnderflow,
        Rule::StackOverflow,
        Rule::WriteAfterCall,
        Rule::UncheckedCall,
        Rule::TruncatedPush,
        Rule::Selfdestruct,
        Rule::Origin,
        Rule::UnreachableCode,
    ];

    /// Stable kebab-case name (used in audit records and CLI output).
    pub fn name(self) -> &'static str {
        match self {
            Rule::InvalidJump => "invalid-jump",
            Rule::StackUnderflow => "stack-underflow",
            Rule::StackOverflow => "stack-overflow",
            Rule::WriteAfterCall => "write-after-call",
            Rule::UncheckedCall => "unchecked-call",
            Rule::TruncatedPush => "truncated-push",
            Rule::Selfdestruct => "selfdestruct",
            Rule::Origin => "origin",
            Rule::UnreachableCode => "unreachable-code",
        }
    }

    /// Intrinsic severity, independent of any policy.
    pub fn severity(self) -> Severity {
        match self {
            Rule::InvalidJump
            | Rule::StackUnderflow
            | Rule::StackOverflow
            | Rule::WriteAfterCall => Severity::Error,
            _ => Severity::Warning,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How bad a finding is on its own terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing about; the contract still behaves as written.
    Warning,
    /// The contract can halt or be exploited on a reachable path.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One diagnostic produced by the lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Intrinsic severity ([`Rule::severity`]).
    pub severity: Severity,
    /// Offset of the offending instruction (or region start).
    pub pc: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(rule: Rule, pc: usize, message: String) -> Finding {
        Finding {
            severity: rule.severity(),
            pc,
            rule,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] at pc {}: {}",
            self.severity, self.rule, self.pc, self.message
        )
    }
}

/// What the policy does when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Reject the deployment.
    Deny,
    /// Record the finding, allow the deployment.
    Warn,
    /// Ignore the rule entirely.
    Allow,
}

/// Per-rule deny/warn/allow decisions enforced by the deployment gate.
///
/// The default denies the four [`Severity::Error`] rules and warns on
/// the rest — every built-in template passes it, while invalid jumps,
/// stack hazards and reentrancy shapes are kept out of the version
/// chain.
#[derive(Debug, Clone, Default)]
pub struct VettingPolicy {
    overrides: Vec<(Rule, Action)>,
}

impl VettingPolicy {
    /// Policy that records findings but denies nothing (audit-only mode).
    pub fn permissive() -> VettingPolicy {
        let mut p = VettingPolicy::default();
        for rule in Rule::ALL {
            p = p.with_action(rule, Action::Warn);
        }
        p
    }

    /// Override the action for one rule (last write wins).
    pub fn with_action(mut self, rule: Rule, action: Action) -> VettingPolicy {
        self.overrides.retain(|(r, _)| *r != rule);
        self.overrides.push((rule, action));
        self
    }

    /// The action this policy takes for `rule`.
    pub fn action(&self, rule: Rule) -> Action {
        self.overrides.iter().find(|(r, _)| *r == rule).map_or(
            match rule.severity() {
                Severity::Error => Action::Deny,
                Severity::Warning => Action::Warn,
            },
            |(_, a)| *a,
        )
    }
}

/// Analysis result for one bytecode blob.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by pc.
    pub findings: Vec<Finding>,
    /// Static lower bound on gas consumed by any run of this code that
    /// ends without an exceptional halt (see `absint`).
    pub gas_floor: u64,
    /// Number of basic blocks recovered.
    pub block_count: usize,
    /// Number of decoded instructions.
    pub instr_count: usize,
    reachable_pcs: Vec<bool>,
}

impl Report {
    /// True when `pc` starts a reachable instruction — the set the
    /// interpreter's executed pcs must be a subset of (soundness
    /// property (a)).
    pub fn is_reachable_pc(&self, pc: usize) -> bool {
        self.reachable_pcs.get(pc).copied().unwrap_or(false)
    }

    /// Findings for one rule.
    pub fn findings_for(&self, rule: Rule) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.rule == rule)
    }

    /// Findings the given policy denies.
    pub fn denied<'a>(&'a self, policy: &'a VettingPolicy) -> impl Iterator<Item = &'a Finding> {
        self.findings
            .iter()
            .filter(|f| policy.action(f.rule) == Action::Deny)
    }
}

/// Analyze a bytecode blob with the default lint set.
pub fn analyze(code: &[u8]) -> Report {
    analyze_with(code, LintOptions::default())
}

/// Analyze with explicit lint options.
pub fn analyze_with(code: &[u8], opts: LintOptions) -> Report {
    let cfg = Cfg::build(code);
    let analysis = absint::run(&cfg);
    let findings = lints::lint(&cfg, &analysis, opts);
    let mut reachable_pcs = vec![false; code.len()];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if analysis.reachable(b) {
            for ins in &cfg.instrs[blk.instr_range()] {
                reachable_pcs[ins.pc] = true;
            }
        }
    }
    Report {
        findings,
        gas_floor: analysis.gas_floor,
        block_count: cfg.blocks.len(),
        instr_count: cfg.instrs.len(),
        reachable_pcs,
    }
}

/// Which blob a deployment finding came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// The constructor wrapper executed once at deploy time.
    Init,
    /// The code installed at the contract address.
    Runtime,
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Region::Init => "init",
            Region::Runtime => "runtime",
        })
    }
}

/// Vetting result for a full deployment blob: the init wrapper (analyzed
/// without the unreachable lint — appended function bodies and the
/// runtime image are data from init's perspective) plus, when the
/// canonical deploy tail is found, the extracted runtime under the full
/// lint set.
#[derive(Debug)]
pub struct DeploymentVetting {
    /// Report over the init (deploy-transaction) code.
    pub init: Report,
    /// Report over the extracted runtime image, when recoverable.
    pub runtime: Option<Report>,
    /// Byte range of the runtime image inside the init blob.
    pub runtime_range: Option<std::ops::Range<usize>>,
    /// One-line superinstruction compile summary for the extracted
    /// runtime — the acceleration artifact built from the same CFG this
    /// verifier vets ("vetting and acceleration share one trusted
    /// artifact"). `None` when the runtime was not recovered or the
    /// block compiler bailed; such contracts execute on the plain
    /// interpreter path. Deliberately NOT a [`Finding`]: compile status
    /// is an execution property, not a safety verdict, and must never
    /// move the vetting baseline.
    pub superinstr: Option<String>,
}

impl DeploymentVetting {
    /// All findings with the region they came from, errors first.
    pub fn findings(&self) -> Vec<(Region, &Finding)> {
        let mut all: Vec<(Region, &Finding)> = self
            .init
            .findings
            .iter()
            .map(|f| (Region::Init, f))
            .chain(
                self.runtime
                    .iter()
                    .flat_map(|r| r.findings.iter().map(|f| (Region::Runtime, f))),
            )
            .collect();
        all.sort_by_key(|(region, f)| {
            (
                std::cmp::Reverse(f.severity),
                f.rule as u8,
                *region as u8,
                f.pc,
            )
        });
        all
    }

    /// Enforce a policy: `Err` carries every denied finding.
    pub fn enforce(&self, policy: &VettingPolicy) -> Result<(), VetError> {
        let denied: Vec<(Region, Finding)> = self
            .findings()
            .into_iter()
            .filter(|(_, f)| policy.action(f.rule) == Action::Deny)
            .map(|(region, f)| (region, f.clone()))
            .collect();
        if denied.is_empty() {
            Ok(())
        } else {
            Err(VetError { denied })
        }
    }
}

/// Vet a deployment blob (init code as submitted in a create
/// transaction, *before* constructor arguments are appended).
pub fn vet_deployment(init_code: &[u8]) -> DeploymentVetting {
    let init = analyze_with(init_code, LintOptions { unreachable: false });
    let runtime_range = extract_runtime(init_code);
    let runtime = runtime_range
        .clone()
        .map(|r| analyze_with(&init_code[r], LintOptions::default()));
    let superinstr = runtime_range.clone().and_then(|r| {
        let analysis = lsc_evm::AnalyzedCode::analyze(std::sync::Arc::new(init_code[r].to_vec()));
        lsc_evm::compile::summary(&analysis)
    });
    DeploymentVetting {
        init,
        runtime,
        runtime_range,
        superinstr,
    }
}

/// Vetting rejected a deployment: the findings the policy denied.
#[derive(Debug, Clone)]
pub struct VetError {
    /// Denied findings with their region.
    pub denied: Vec<(Region, Finding)>,
}

impl fmt::Display for VetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vetting denied {} finding(s): ", self.denied.len())?;
        for (i, (region, finding)) in self.denied.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "[{region}] {finding}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VetError {}
