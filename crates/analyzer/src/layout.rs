//! Storage-layout recovery: which slots a contract's runtime reads and
//! writes, and where the written values come from.
//!
//! The version chain makes upgrades first-class, so the question the
//! upgrade gate has to answer is not "is this bytecode well-formed" (the
//! lint pass answers that) but "does v(N+1) still mean the same thing
//! v(N)'s storage meant". This module recovers the evidence: a
//! [`StorageLayout`] per runtime image, built on the same [`absint`]
//! fixpoint the lints use — the entry disjuncts give reachability and
//! sound constant sets for SSTORE/SLOAD keys, and a second, block-local
//! walk layers a *provenance* domain on top of them.
//!
//! ## Provenance tags
//!
//! Each shadow-stack slot carries a [`Tag`] describing where its value
//! came from:
//!
//! * `Const` — built from PUSH immediates only (the carried [`Consts`]
//!   set is the value set when still known),
//! * `Input` — derived from transaction input (CALLER / CALLVALUE /
//!   CALLDATALOAD / CALLDATASIZE / ORIGIN),
//! * `Storage` — derived from an SLOAD result,
//! * `Keccak(bases)` — a hash of one of the given constant root slots,
//!   recovered from lsc-solc's hashing idiom: the slot word is MSTOREd
//!   at `offset + len - 32` of the hashed region (`keccak(key ++ slot)`
//!   for mappings, `keccak(slot)` for string/array data), so a KECCAK256
//!   over a constant-offset region whose last word is a known constant
//!   yields the mapping/array base. Nested mappings chain through: the
//!   outer hash is the "slot" word of the inner one and keeps the root
//!   base set.
//! * `Unknown` — anything else.
//!
//! Binary operators keep the non-`Const` operand's tag (adding an index
//! to a hash base stays keccak-derived; `x += msg.value` on a loaded
//! value joins `Storage ⊕ Input` and decays to `Unknown`).
//!
//! ## Bail conditions (and why they are sound)
//!
//! Tags and the constant-offset memory model reset at every basic-block
//! boundary, so provenance that crosses a branch (e.g. the storage-string
//! subroutines, which carry a hash base around a copy loop) degrades to
//! `Unknown`. An SSTORE whose key is neither a known constant set nor a
//! recovered hash base sets [`StorageLayout::unknown_writes`] (likewise
//! `unknown_reads` for SLOAD); the compatibility pass treats either bit
//! as "layout incomplete" and refuses to *prove* anything about such a
//! contract instead of guessing. Every imprecision therefore widens the
//! recovered layout, never narrows it — the direction the soundness
//! proptest (`tests/layout_soundness.rs`) checks against the real
//! interpreter.

use crate::absint::{self, AbsState, Consts};
use lsc_evm::cfg::{Cfg, Instr};
use lsc_evm::opcode::{self, op};
use lsc_primitives::U256;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Cap on the number of root slots one `Keccak` tag can carry; unions
/// past the cap decay the tag to `Unknown` (sound: the slot write is
/// then recorded under the unknown bit instead of a too-small base set).
const MAX_BASES: usize = 8;

/// Provenance classes an SSTOREd value can belong to, as a bitset (a
/// slot written on several paths accumulates several classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct ClassSet(u8);

impl ClassSet {
    /// Built from PUSH immediates only.
    pub const CONST: ClassSet = ClassSet(1);
    /// Derived from transaction input (caller, value, calldata).
    pub const INPUT: ClassSet = ClassSet(2);
    /// Derived from a storage read.
    pub const STORAGE: ClassSet = ClassSet(4);
    /// Derived from a recovered mapping/array hash.
    pub const KECCAK: ClassSet = ClassSet(8);
    /// Provenance not recovered.
    pub const UNKNOWN: ClassSet = ClassSet(16);

    /// The empty set.
    pub fn empty() -> ClassSet {
        ClassSet(0)
    }

    /// True when no class has been recorded.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True when `other`'s classes are all present in `self`.
    pub fn contains(self, other: ClassSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when the two sets share at least one class.
    pub fn intersects(self, other: ClassSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Set union.
    pub fn union(self, other: ClassSet) -> ClassSet {
        ClassSet(self.0 | other.0)
    }
}

impl fmt::Display for ClassSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        let mut first = true;
        for (bit, name) in [
            (ClassSet::CONST, "const"),
            (ClassSet::INPUT, "input"),
            (ClassSet::STORAGE, "storage"),
            (ClassSet::KECCAK, "keccak"),
            (ClassSet::UNKNOWN, "unknown"),
        ] {
            if self.contains(bit) {
                if !first {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        Ok(())
    }
}

/// How one statically-known slot is used by the runtime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotUse {
    /// The slot is read (SLOAD) on some reachable path.
    pub reads: bool,
    /// The slot is written (SSTORE) on some reachable path.
    pub writes: bool,
    /// Union of the provenance classes of every value written to it.
    pub write_classes: ClassSet,
    /// A representative read site, for diagnostics.
    pub read_pc: Option<usize>,
    /// A representative write site, for diagnostics.
    pub write_pc: Option<usize>,
}

/// Recovered storage layout of one runtime image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageLayout {
    /// Constant slots with their read/write direction and write
    /// provenance.
    pub slots: BTreeMap<U256, SlotUse>,
    /// Root slots whose hashed region (mapping/array data) is read.
    pub keccak_read_bases: BTreeSet<U256>,
    /// Root slots whose hashed region is written.
    pub keccak_write_bases: BTreeSet<U256>,
    /// Some reachable SLOAD key escaped the domain.
    pub unknown_reads: bool,
    /// Some reachable SSTORE key escaped the domain — the slot map is an
    /// under-approximation of the write set and the compatibility pass
    /// must not treat absence as proof.
    pub unknown_writes: bool,
}

impl StorageLayout {
    /// Whether a concrete write to `slot` is accounted for: the slot is
    /// in the map as written, the layout admits unknown writes, or the
    /// write went through a recovered hash base. This is the exact
    /// predicate the interpreter-differential soundness test holds over
    /// every executed SSTORE.
    pub fn covers_write(&self, slot: U256) -> bool {
        self.unknown_writes
            || !self.keccak_write_bases.is_empty()
            || self.slots.get(&slot).is_some_and(|u| u.writes)
    }

    /// One-line summary used in per-address vetting records.
    pub fn summary(&self) -> String {
        let written: Vec<String> = self
            .slots
            .iter()
            .filter(|(_, u)| u.writes)
            .map(|(s, u)| format!("{s}:{}", u.write_classes))
            .collect();
        let read: Vec<String> = self
            .slots
            .iter()
            .filter(|(_, u)| u.reads)
            .map(|(s, _)| s.to_string())
            .collect();
        let bases: Vec<String> = self
            .keccak_read_bases
            .union(&self.keccak_write_bases)
            .map(std::string::ToString::to_string)
            .collect();
        format!(
            "writes {{{}}} reads {{{}}} hash-bases {{{}}} unknown r/w {}/{}",
            written.join(", "),
            read.join(", "),
            bases.join(", "),
            self.unknown_reads,
            self.unknown_writes,
        )
    }
}

/// Shadow value: provenance of one stack slot, layered over the absint
/// constant sets (which remain authoritative for *values*; tags only add
/// the *origin* dimension plus value propagation through memory, which
/// the absint domain does not model).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tag {
    /// PUSH-derived; the set is the known value set, `Top` once
    /// arithmetic obscured it.
    Const(Consts),
    /// Constant reloaded from a fixed memory local across a block
    /// boundary (lsc-solc's `mstore_const`/`mload_const` idiom). The
    /// value set comes from the whole-code may-analysis of stores to
    /// that offset and can be stale under memory aliasing, so it is good
    /// enough to *derive hash bases* (a keccak-classed write covers
    /// every slot, see [`StorageLayout::covers_write`]) but must never
    /// resolve a storage key on its own — key uses record the slot facts
    /// *and* set the unknown bit.
    MemConst(Consts),
    Input,
    Storage,
    Keccak(BTreeSet<U256>),
    Unknown,
}

impl Tag {
    fn class(&self) -> ClassSet {
        match self {
            Tag::Const(_) | Tag::MemConst(_) => ClassSet::CONST,
            Tag::Input => ClassSet::INPUT,
            Tag::Storage => ClassSet::STORAGE,
            Tag::Keccak(_) => ClassSet::KECCAK,
            Tag::Unknown => ClassSet::UNKNOWN,
        }
    }

    fn is_const(&self) -> bool {
        matches!(self, Tag::Const(_) | Tag::MemConst(_))
    }

    /// Tag of a binary operator's result. A constant operand is the
    /// identity: offsetting a value does not change where it came from.
    /// Joining two distinct non-const origins is not attributable to
    /// either.
    fn combine(&self, other: &Tag) -> Tag {
        match (self, other) {
            // A keccak-derived pointer stays keccak-derived under any
            // offset arithmetic — array/struct element addressing adds
            // dynamic indexes to the hash base.
            (Tag::Keccak(a), Tag::Keccak(b)) => {
                let merged: BTreeSet<U256> = a.union(b).copied().collect();
                if merged.len() > MAX_BASES {
                    Tag::Unknown
                } else {
                    Tag::Keccak(merged)
                }
            }
            (Tag::Keccak(b), _) | (_, Tag::Keccak(b)) => Tag::Keccak(b.clone()),
            (Tag::Const(_), Tag::Const(_)) => Tag::Const(Consts::Top),
            (a, b) if a.is_const() && b.is_const() => Tag::MemConst(Consts::Top),
            (t, c) | (c, t) if c.is_const() => match t {
                // Re-deriving the value set through arithmetic is out of
                // scope; only provenance survives.
                Tag::Input => Tag::Input,
                Tag::Storage => Tag::Storage,
                _ => Tag::Unknown,
            },
            (Tag::Input, Tag::Input) => Tag::Input,
            (Tag::Storage, Tag::Storage) => Tag::Storage,
            _ => Tag::Unknown,
        }
    }
}

/// Block-local model of scratch memory at constant offsets: lsc-solc
/// stages hash inputs and subroutine locals through MSTOREs at known
/// offsets, all within straight-line code. Any write at an unknown
/// offset, or any opcode that can write memory wholesale, clears it.
#[derive(Default)]
struct ScratchMem {
    words: HashMap<u64, Tag>,
}

impl ScratchMem {
    fn clear(&mut self) {
        self.words.clear();
    }

    fn store(&mut self, offset: Option<u64>, value: Tag) {
        match offset {
            Some(off) => {
                self.words.insert(off, value);
            }
            None => self.clear(),
        }
    }

    fn load(&self, offset: Option<u64>) -> Tag {
        offset
            .and_then(|off| self.words.get(&off).cloned())
            .unwrap_or(Tag::Unknown)
    }
}

/// The shadow stack mirrors the structural stack effects of
/// [`absint::step`] exactly, so `tags[i]` always describes the same slot
/// as `st.tops[i]`.
struct Shadow {
    tags: Vec<Tag>,
}

impl Shadow {
    fn at_block_entry(st: &AbsState) -> Shadow {
        Shadow {
            tags: vec![Tag::Unknown; st.tops.len()],
        }
    }

    fn get(&self, i: usize) -> Tag {
        self.tags.get(i).cloned().unwrap_or(Tag::Unknown)
    }

    /// Key-grade constant knowledge of a slot: the absint domain first
    /// (sound across blocks), a pure `Const` tag second. `MemConst` is
    /// deliberately excluded — storage keys resolved from it must go
    /// through the conservative path in the SLOAD/SSTORE handlers.
    fn key_consts(&self, st: &AbsState, i: usize) -> Consts {
        match st.tops.get(i) {
            Some(Consts::In(vs)) => Consts::In(vs.clone()),
            _ => match self.tags.get(i) {
                Some(Tag::Const(c)) => c.clone(),
                _ => Consts::Top,
            },
        }
    }

    /// Value-grade constant knowledge: like [`Shadow::key_consts`] but
    /// accepting `MemConst` — fine for memory offsets and hash-region
    /// bounds, where staleness only mis-attributes a hash base.
    fn value_consts(&self, st: &AbsState, i: usize) -> Consts {
        match st.tops.get(i) {
            Some(Consts::In(vs)) => Consts::In(vs.clone()),
            _ => match self.tags.get(i) {
                Some(Tag::Const(c) | Tag::MemConst(c)) => c.clone(),
                _ => Consts::Top,
            },
        }
    }
}

/// Whole-code may-analysis of constant-offset memory locals, built by
/// the phase-A walk: for each fixed offset, the join of every constant
/// value observed stored there. Offsets whose stores were not all
/// constant decay to `Top` and are dropped before phase B.
type LocalStores = HashMap<u64, Consts>;

/// Walk one instruction: record storage accesses into `out`, then apply
/// the same structural stack transformation as [`absint::step`]. Must be
/// called with `st` still holding the *pre*-instruction state.
/// `locals` is the phase-A store map (phase B only); `collect` is the
/// map being built (phase A only).
fn step_shadow(
    sh: &mut Shadow,
    mem: &mut ScratchMem,
    st: &AbsState,
    ins: &Instr,
    locals: Option<&LocalStores>,
    collect: Option<&mut LocalStores>,
    out: &mut StorageLayout,
) {
    let byte = ins.opcode;
    let Some((pops, pushes)) = opcode::stack_io(byte) else {
        return;
    };

    // Resolve operands against the pre-state before any stack mutation.
    let result: Option<Tag> = match byte {
        op::SLOAD => {
            match sh.key_consts(st, 0) {
                Consts::In(slots) => {
                    for slot in slots {
                        let u = out.slots.entry(slot).or_default();
                        u.reads = true;
                        u.read_pc.get_or_insert(ins.pc);
                    }
                }
                Consts::Top => match sh.get(0) {
                    Tag::Keccak(bases) => out.keccak_read_bases.extend(bases),
                    // A key reloaded from a memory local: keep the slot
                    // facts for diagnostics, but the set may be stale
                    // under aliasing, so the unknown bit stays honest.
                    Tag::MemConst(Consts::In(slots)) => {
                        for slot in slots {
                            let u = out.slots.entry(slot).or_default();
                            u.reads = true;
                            u.read_pc.get_or_insert(ins.pc);
                        }
                        out.unknown_reads = true;
                    }
                    _ => out.unknown_reads = true,
                },
            }
            Some(Tag::Storage)
        }
        op::SSTORE => {
            let class = sh.get(1).class();
            let record = |slots: Vec<U256>, out: &mut StorageLayout| {
                for slot in slots {
                    let u = out.slots.entry(slot).or_default();
                    u.writes = true;
                    u.write_classes = u.write_classes.union(class);
                    u.write_pc.get_or_insert(ins.pc);
                }
            };
            match sh.key_consts(st, 0) {
                Consts::In(slots) => record(slots, out),
                Consts::Top => match sh.get(0) {
                    Tag::Keccak(bases) => out.keccak_write_bases.extend(bases),
                    Tag::MemConst(Consts::In(slots)) => {
                        record(slots, out);
                        out.unknown_writes = true;
                    }
                    _ => out.unknown_writes = true,
                },
            }
            None
        }
        op::KECCAK256 => {
            // lsc-solc's hashing idiom: the root-slot word sits at the
            // end of the hashed region. Both bounds must be known for
            // the scratch model to find it.
            let off = sh.value_consts(st, 0).as_single().and_then(|v| v.to_u64());
            let len = sh.value_consts(st, 1).as_single().and_then(|v| v.to_u64());
            let tag = match (off, len) {
                (Some(off), Some(len)) if len >= 32 => match mem.load(off.checked_add(len - 32)) {
                    Tag::Const(Consts::In(vs)) | Tag::MemConst(Consts::In(vs)) => {
                        Tag::Keccak(vs.into_iter().collect())
                    }
                    Tag::Keccak(bases) => Tag::Keccak(bases),
                    _ => Tag::Unknown,
                },
                _ => Tag::Unknown,
            };
            Some(tag)
        }
        op::MLOAD => {
            let off = sh.value_consts(st, 0).as_single().and_then(|v| v.to_u64());
            let tag = match mem.load(off) {
                // Block-local knowledge first; the cross-block store map
                // second, downgraded to MemConst.
                Tag::Unknown => off
                    .and_then(|o| locals.and_then(|l| l.get(&o)))
                    .map_or(Tag::Unknown, |c| Tag::MemConst(c.clone())),
                t => t,
            };
            Some(tag)
        }
        op::MSTORE => {
            let off = sh.value_consts(st, 0).as_single().and_then(|v| v.to_u64());
            // Prefer the absint value set for the stored word; fall back
            // to the shadow tag (which may itself carry a value set).
            let value = match st.tops.get(1) {
                Some(Consts::In(vs)) => Tag::Const(Consts::In(vs.clone())),
                _ => sh.get(1),
            };
            if let (Some(off), Some(collect)) = (off, collect) {
                let stored = match &value {
                    Tag::Const(c) | Tag::MemConst(c) => c.clone(),
                    _ => Consts::Top,
                };
                collect
                    .entry(off)
                    .and_modify(|c| *c = c.join(&stored))
                    .or_insert(stored);
            }
            mem.store(off, value);
            None
        }
        op::MSTORE8 | op::CALLDATACOPY | op::CODECOPY | op::RETURNDATACOPY | op::EXTCODECOPY => {
            // Byte-granular or bulk memory writes: drop the model.
            mem.clear();
            None
        }
        op::CALL | op::CALLCODE | op::DELEGATECALL | op::STATICCALL => {
            // The return-data region overwrites memory.
            mem.clear();
            Some(Tag::Unknown)
        }
        op::CALLER | op::CALLVALUE | op::CALLDATALOAD | op::CALLDATASIZE | op::ORIGIN => {
            Some(Tag::Input)
        }
        op::ISZERO | op::NOT => Some(match sh.get(0) {
            // Value changes, provenance does not.
            Tag::Const(_) => Tag::Const(Consts::Top),
            t => t,
        }),
        op::ADD
        | op::SUB
        | op::MUL
        | op::DIV
        | op::SDIV
        | op::MOD
        | op::SMOD
        | op::EXP
        | op::SIGNEXTEND
        | op::LT
        | op::GT
        | op::SLT
        | op::SGT
        | op::EQ
        | op::AND
        | op::OR
        | op::XOR
        | op::BYTE
        | op::SHL
        | op::SHR
        | op::SAR => Some(sh.get(0).combine(&sh.get(1))),
        _ => None,
    };

    // Structural mirror of absint::step.
    match byte {
        op::PUSH0 => sh.tags.insert(0, Tag::Const(Consts::only(U256::ZERO))),
        _ if opcode::is_push(byte) => {
            sh.tags
                .insert(0, Tag::Const(ins.push.map_or(Consts::Top, Consts::only)));
        }
        0x80..=0x8f => {
            let n = (byte - op::DUP1) as usize;
            let v = sh.get(n);
            sh.tags.insert(0, v);
        }
        0x90..=0x9f => {
            let n = (byte - op::SWAP1 + 1) as usize;
            if n < sh.tags.len() {
                sh.tags.swap(0, n);
            } else if !sh.tags.is_empty() {
                sh.tags[0] = Tag::Unknown;
            }
        }
        _ => {
            let drop = pops.min(sh.tags.len());
            sh.tags.drain(..drop);
            for _ in 0..pushes {
                sh.tags.insert(0, result.clone().unwrap_or(Tag::Unknown));
            }
        }
    }
    if sh.tags.len() > absint::TRACKED {
        sh.tags.truncate(absint::TRACKED);
    }
}

fn walk_blocks(
    cfg: &Cfg,
    analysis: &absint::Analysis,
    locals: Option<&LocalStores>,
    mut collect: Option<&mut LocalStores>,
    out: &mut StorageLayout,
) {
    for (b, blk) in cfg.blocks.iter().enumerate() {
        let Some(disjuncts) = analysis.entry.get(b) else {
            continue;
        };
        for entry in disjuncts {
            let mut st = entry.clone();
            let mut sh = Shadow::at_block_entry(&st);
            let mut mem = ScratchMem::default();
            for ins in &cfg.instrs[blk.instr_range()] {
                step_shadow(
                    &mut sh,
                    &mut mem,
                    &st,
                    ins,
                    locals,
                    collect.as_deref_mut(),
                    out,
                );
                absint::step(&mut st, ins);
                debug_assert_eq!(sh.tags.len(), st.tops.len());
            }
        }
    }
}

/// Recover the storage layout of a runtime image.
///
/// Runs the shared absint fixpoint, then re-walks every reachable block
/// (once per entry disjunct) with the provenance shadow on top —
/// unioning over disjuncts is sound because each concrete execution is
/// covered by the disjunct that abstracts it. Two walks: phase A builds
/// the may-set of constants stored at each fixed memory offset (the
/// `mstore_const` locals lsc-solc threads values through), phase B
/// recovers the layout with that map as the cross-block MLOAD fallback.
pub fn recover_layout(code: &[u8]) -> StorageLayout {
    let cfg = Cfg::build(code);
    let analysis = absint::run(&cfg);

    let mut stores = LocalStores::new();
    walk_blocks(
        &cfg,
        &analysis,
        None,
        Some(&mut stores),
        &mut StorageLayout::default(),
    );
    stores.retain(|_, c| matches!(c, Consts::In(_)));
    if std::env::var_os("LSC_LAYOUT_DEBUG").is_some() {
        let mut dump: Vec<_> = stores.iter().collect();
        dump.sort_by_key(|(k, _)| **k);
        for (off, c) in dump {
            eprintln!("local 0x{off:x} = {c:?}");
        }
    }

    let mut out = StorageLayout::default();
    walk_blocks(&cfg, &analysis, Some(&stores), None, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pushed(slot: u64) -> U256 {
        U256::from_u64(slot)
    }

    // PUSH1 v; PUSH1 slot; SSTORE — constant write to a constant slot.
    #[test]
    fn constant_write_recovered() {
        let code = [op::PUSH1, 0x2a, op::PUSH1, 0x07, op::SSTORE, op::STOP];
        let layout = recover_layout(&code);
        let u = &layout.slots[&pushed(7)];
        assert!(u.writes && !u.reads);
        assert_eq!(u.write_classes, ClassSet::CONST);
        assert!(!layout.unknown_writes);
        assert!(layout.covers_write(pushed(7)));
    }

    // CALLER; PUSH1 slot; SSTORE — calldata-derived write.
    #[test]
    fn input_write_classified() {
        let code = [op::CALLER, op::PUSH1, 0x03, op::SSTORE, op::STOP];
        let layout = recover_layout(&code);
        assert_eq!(layout.slots[&pushed(3)].write_classes, ClassSet::INPUT);
    }

    // SLOAD-derived value written back: storage class, slot read+write.
    #[test]
    fn storage_roundtrip_classified() {
        let code = [
            op::PUSH1,
            0x05,
            op::SLOAD,
            op::PUSH1,
            0x01,
            op::ADD,
            op::PUSH1,
            0x05,
            op::SSTORE,
            op::STOP,
        ];
        let layout = recover_layout(&code);
        let u = &layout.slots[&pushed(5)];
        assert!(u.reads && u.writes);
        assert_eq!(u.write_classes, ClassSet::STORAGE);
    }

    // The emit_hash_one idiom: MSTORE(0, slot); KECCAK256(0, 32) → base.
    #[test]
    fn hash_one_base_recovered() {
        let code = [
            op::PUSH1,
            0x02, // slot
            op::PUSH0,
            op::MSTORE, // mem[0] = 2
            op::PUSH1,
            0x20,
            op::PUSH0,
            op::KECCAK256, // keccak(mem[0..32])
            op::PUSH1,
            0x2a,
            op::SWAP1, // value under the key
            op::SSTORE,
            op::STOP,
        ];
        let layout = recover_layout(&code);
        assert!(layout.keccak_write_bases.contains(&pushed(2)));
        assert!(!layout.unknown_writes);
        // A write through a hash base covers arbitrary concrete slots.
        assert!(layout.covers_write(pushed(1234)));
    }

    // The emit_hash_pair idiom: key at 0x00, slot at 0x20, hash 64 bytes.
    #[test]
    fn hash_pair_base_recovered() {
        let code = [
            op::PUSH1,
            0x04, // slot
            op::PUSH1,
            0x20,
            op::MSTORE, // mem[0x20] = slot
            op::CALLER,
            op::PUSH0,
            op::MSTORE, // mem[0x00] = key
            op::PUSH1,
            0x40,
            op::PUSH0,
            op::KECCAK256,
            op::SLOAD,
            op::POP,
            op::STOP,
        ];
        let layout = recover_layout(&code);
        assert!(layout.keccak_read_bases.contains(&pushed(4)));
        assert!(!layout.unknown_reads);
    }

    // A computed key the domain cannot see sets the unknown bit.
    #[test]
    fn escaped_key_sets_unknown() {
        let code = [
            op::PUSH1,
            0x01,
            op::CALLDATALOAD, // key from calldata
            op::PUSH1,
            0x2a,
            op::SWAP1,
            op::SSTORE,
            op::STOP,
        ];
        let layout = recover_layout(&code);
        assert!(layout.unknown_writes);
        assert!(layout.covers_write(pushed(999)));
    }
}
