//! Soundness of the static analyzer, cross-checked against the real
//! interpreter:
//!
//! (a) every pc the interpreter executes in the analyzed frame lies in
//!     the CFG's reachable set (reachability over-approximates),
//! (b) a program the verifier accepts (no stack-underflow finding) never
//!     halts with a runtime stack underflow,
//! (c) the static gas floor never exceeds the gas actually consumed by
//!     an execution that ends without an exceptional halt.
//!
//! Two program populations: raw random bytes (adversarial decoding,
//! wild jumps) and structured asm-builder programs (labels, subroutine
//! jumps, mostly-balanced stacks) so the "accepted" arm of (b) is
//! exercised densely, which raw noise almost never does.

use lsc_analyzer::{analyze, Report, Rule};
use lsc_evm::asm::Asm;
use lsc_evm::opcode::{self, op};
use lsc_evm::{CallResult, Config, Evm, Halt, Host, Message, MockHost, TraceStep};
use lsc_primitives::{Address, U256};
use proptest::prelude::*;

const GAS: u64 = 200_000;

fn traced_run(code: &[u8]) -> (CallResult, Vec<TraceStep>) {
    let mut host = MockHost::new();
    let contract = Address::from_label("vet-contract");
    let caller = Address::from_label("vet-caller");
    host.fund(caller, U256::from_u64(1_000_000_000));
    host.fund(contract, U256::from_u64(777));
    host.set_code(contract, code.to_vec());
    let config = Config {
        trace: true,
        ..Default::default()
    };
    let mut evm = Evm::with_config(&mut host, config);
    let result = evm.execute(Message::call(
        caller,
        contract,
        U256::from_u64(3),
        vec![0xaa; 8],
        GAS,
    ));
    let trace = std::mem::take(&mut evm.trace);
    (result, trace)
}

fn accepted_no_underflow(report: &Report) -> bool {
    report.findings_for(Rule::StackUnderflow).next().is_none()
}

/// Assert all three properties for one program; returns whether the
/// verifier accepted it (for the vacuity counter).
fn check_soundness(code: &[u8]) -> (Report, CallResult) {
    let report = analyze(code);
    let (result, trace) = traced_run(code);

    // (a) reachability over-approximates execution (top frame only:
    // child frames run other accounts' code).
    for step in trace.iter().filter(|s| s.depth == 0) {
        assert!(
            report.is_reachable_pc(step.pc),
            "executed pc {} ({}) not in reachable set",
            step.pc,
            opcode::mnemonic(step.opcode),
        );
    }

    // (b) no false acceptance on stack depth.
    if accepted_no_underflow(&report) {
        assert!(
            !matches!(result.halt, Some(Halt::StackUnderflow)),
            "verifier accepted a program that underflowed at runtime",
        );
    }

    // (c) static gas floor is a true lower bound for non-halting runs
    // (exceptional halts consume the entire gas limit by fiat, which
    // says nothing about the path actually taken).
    if result.halt.is_none() {
        let gas_used = GAS - result.gas_left;
        assert!(
            report.gas_floor <= gas_used,
            "gas floor {} exceeds actual gas used {}",
            report.gas_floor,
            gas_used,
        );
    }

    (report, result)
}

/// One structured-program token; segments are concatenated in order and
/// each starts with a placed label (JUMPDEST).
#[derive(Debug, Clone)]
enum Tok {
    /// Raw opcode straight from the pool — arity violations welcome.
    Wild(u8),
    /// Push a small constant.
    Push(u64),
    /// Push exactly the operands the opcode needs, then the opcode.
    Balanced(u8),
    /// `PUSH label(seg); JUMP`.
    Jump(usize),
    /// `PUSH cond; PUSH label(seg); JUMPI`.
    Branch(u64, usize),
    /// STOP (true) or `RETURN(2,1)` (false).
    Halt(bool),
}

/// Opcodes the wild generator may emit bare.
const WILD_POOL: &[u8] = &[
    op::ADD,
    op::MUL,
    op::SUB,
    op::DIV,
    op::ISZERO,
    op::NOT,
    op::EQ,
    op::LT,
    op::AND,
    op::POP,
    op::DUP1,
    op::DUP3,
    op::SWAP1,
    op::SWAP2,
    op::CALLER,
    op::CALLVALUE,
    op::CALLDATASIZE,
    op::CALLDATALOAD,
    op::PC,
    op::GAS,
    op::MSIZE,
    op::MLOAD,
    op::MSTORE,
    op::SLOAD,
    op::SSTORE,
    op::KECCAK256,
    op::CALL,
    op::ORIGIN,
    op::SELFDESTRUCT,
    op::JUMP,
    op::JUMPI,
];

/// Opcodes the balanced generator wraps with exact-arity constant
/// operands (small values, so memory/storage stay cheap).
const BALANCED_POOL: &[u8] = &[
    op::ADD,
    op::MUL,
    op::SUB,
    op::ISZERO,
    op::EQ,
    op::LT,
    op::AND,
    op::POP,
    op::DUP1,
    op::SWAP1,
    op::MSTORE,
    op::MLOAD,
    op::SLOAD,
    op::SSTORE,
    op::KECCAK256,
    op::CALLER,
    op::GAS,
];

fn assemble(segments: &[Vec<Tok>]) -> Vec<u8> {
    let mut asm = Asm::new();
    let labels: Vec<_> = segments.iter().map(|_| asm.new_label()).collect();
    for (i, seg) in segments.iter().enumerate() {
        asm.place(labels[i]);
        for tok in seg {
            match tok {
                Tok::Wild(b) => {
                    asm.op(*b);
                }
                Tok::Push(v) => {
                    asm.push_u64(*v);
                }
                Tok::Balanced(b) => {
                    let (pops, _) = opcode::stack_io(*b).expect("pool ops are defined");
                    for k in 0..pops {
                        asm.push_u64(k as u64 + 1);
                    }
                    asm.op(*b);
                }
                Tok::Jump(t) => {
                    asm.push_label(labels[t % labels.len()]);
                    asm.op(op::JUMP);
                }
                Tok::Branch(cond, t) => {
                    asm.push_u64(*cond);
                    asm.push_label(labels[t % labels.len()]);
                    asm.op(op::JUMPI);
                }
                Tok::Halt(true) => {
                    asm.op(op::STOP);
                }
                Tok::Halt(false) => {
                    asm.push_u64(1).push_u64(2).op(op::RETURN);
                }
            }
        }
    }
    asm.assemble().expect("all labels are placed")
}

fn tok_strategy(wild: bool, segs: usize) -> BoxedStrategy<Tok> {
    let pick = move |pool: &'static [u8]| (0..pool.len()).prop_map(move |i| pool[i]).boxed();
    let mut arms = vec![
        pick(BALANCED_POOL).prop_map(Tok::Balanced).boxed(),
        (0u64..512).prop_map(Tok::Push).boxed(),
        (0..segs).prop_map(Tok::Jump).boxed(),
        ((0u64..2), (0..segs))
            .prop_map(|(c, t)| Tok::Branch(c, t))
            .boxed(),
        (0..2usize).prop_map(|v| Tok::Halt(v == 0)).boxed(),
    ];
    if wild {
        arms.push(pick(WILD_POOL).prop_map(Tok::Wild).boxed());
    }
    proptest::Union::new(arms).boxed()
}

fn program_strategy(wild: bool) -> BoxedStrategy<Vec<Vec<Tok>>> {
    const SEGS: usize = 5;
    proptest::collection::vec(
        proptest::collection::vec(tok_strategy(wild, SEGS), 0..10),
        1..=SEGS,
    )
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn soundness_on_raw_random_bytes(
        code in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        check_soundness(&code);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn soundness_on_wild_structured_programs(
        segments in program_strategy(true),
    ) {
        check_soundness(&assemble(&segments));
    }
}

#[test]
fn soundness_on_balanced_programs_and_acceptance_is_exercised() {
    // Deterministic sweep of balanced programs; the verifier must accept
    // a healthy share of them or property (b) is tested vacuously.
    let strat = program_strategy(false);
    let mut rng = proptest::TestRng::for_test("balanced-soundness");
    let mut accepted = 0u32;
    const CASES: u32 = 192;
    for _ in 0..CASES {
        let code = assemble(&strat.generate(&mut rng));
        let (report, _) = check_soundness(&code);
        if accepted_no_underflow(&report) {
            accepted += 1;
        }
    }
    assert!(
        accepted >= CASES / 4,
        "only {accepted}/{CASES} balanced programs accepted — generator degraded",
    );
}
