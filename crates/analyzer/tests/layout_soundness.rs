//! Soundness of storage-layout recovery, cross-checked against the real
//! interpreter: every slot an execution actually SSTOREs in the analyzed
//! contract must be *covered* by the recovered layout — either present
//! in its constant slot map, reachable through a recovered keccak base
//! (any keccak-tagged write makes `covers_write` true for all slots, by
//! design), or blanketed by the unknown-writes bit. An executed write
//! the layout neither lists nor disclaims would make the upgrade gate's
//! verdicts unsound.
//!
//! Same two program populations as the main soundness suite: raw random
//! bytes and structured asm-builder programs, the latter biased toward
//! SSTORE so the property is exercised densely.

use lsc_analyzer::layout::{recover_layout, StorageLayout};
use lsc_evm::asm::Asm;
use lsc_evm::opcode::{self, op};
use lsc_evm::{BlockEnv, Config, Evm, Host, Log, Message, MockHost};
use lsc_primitives::{Address, H256, U256};
use proptest::prelude::*;
use std::sync::Arc;

const GAS: u64 = 200_000;

/// A host that delegates everything to [`MockHost`] and records the keys
/// of every SSTORE against the contract under analysis — reverted or
/// not: a rolled-back write was still an executed write the layout must
/// account for.
struct TapHost {
    inner: MockHost,
    watched: Address,
    sstored: Vec<U256>,
}

impl Host for TapHost {
    fn block(&self) -> &BlockEnv {
        self.inner.block()
    }
    fn blockhash(&self, number: u64) -> H256 {
        self.inner.blockhash(number)
    }
    fn gas_price(&self) -> U256 {
        self.inner.gas_price()
    }
    fn exists(&self, address: Address) -> bool {
        self.inner.exists(address)
    }
    fn balance(&self, address: Address) -> U256 {
        self.inner.balance(address)
    }
    fn nonce(&self, address: Address) -> u64 {
        self.inner.nonce(address)
    }
    fn code(&self, address: Address) -> Vec<u8> {
        self.inner.code(address)
    }
    fn code_hash(&self, address: Address) -> H256 {
        self.inner.code_hash(address)
    }
    fn sload(&mut self, address: Address, key: U256) -> U256 {
        self.inner.sload(address, key)
    }
    fn sstore(&mut self, address: Address, key: U256, value: U256) -> U256 {
        if address == self.watched {
            self.sstored.push(key);
        }
        self.inner.sstore(address, key, value)
    }
    fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        self.inner.transfer(from, to, value)
    }
    fn mint(&mut self, to: Address, value: U256) {
        self.inner.mint(to, value);
    }
    fn inc_nonce(&mut self, address: Address) -> u64 {
        self.inner.inc_nonce(address)
    }
    fn set_code(&mut self, address: Address, code: Vec<u8>) {
        self.inner.set_code(address, code);
    }
    fn create_account(&mut self, address: Address) {
        self.inner.create_account(address);
    }
    fn selfdestruct(&mut self, address: Address, beneficiary: Address) {
        self.inner.selfdestruct(address, beneficiary);
    }
    fn log(&mut self, log: Log) {
        self.inner.log(log);
    }
    fn snapshot(&mut self) -> usize {
        self.inner.snapshot()
    }
    fn revert(&mut self, snapshot: usize) {
        // Deliberately NOT unwinding `sstored`: see the struct docs.
        self.inner.revert(snapshot);
    }
}

/// Execute `code` and return every storage key it SSTOREd.
fn executed_sstore_keys(code: &[u8]) -> Vec<U256> {
    let contract = Address::from_label("layout-contract");
    let caller = Address::from_label("layout-caller");
    let mut inner = MockHost::new();
    inner.fund(caller, U256::from_u64(1_000_000_000));
    inner.fund(contract, U256::from_u64(777));
    inner.set_code(contract, code.to_vec());
    let mut host = TapHost {
        inner,
        watched: contract,
        sstored: Vec::new(),
    };
    let mut evm = Evm::with_config(&mut host, Config::default());
    let _ = evm.execute(Message::call(
        caller,
        contract,
        U256::from_u64(3),
        vec![0xaa; 8],
        GAS,
    ));
    drop(evm);
    host.sstored
}

fn check_layout_soundness(code: &[u8]) -> (Arc<StorageLayout>, usize) {
    let layout = Arc::new(recover_layout(code));
    let keys = executed_sstore_keys(code);
    let covered_writes = keys.len();
    for key in keys {
        assert!(
            layout.covers_write(key),
            "executed SSTORE to slot {key} not covered by recovered layout: {}",
            layout.summary(),
        );
    }
    (layout, covered_writes)
}

/// Structured-program token; mirrors the main soundness suite but with a
/// storage-heavy pool.
#[derive(Debug, Clone)]
enum Tok {
    Wild(u8),
    Push(u64),
    Balanced(u8),
    /// `PUSH value; PUSH slot; SSTORE` with small constants.
    StoreConst(u64, u64),
    /// Store through the keccak-of-base mapping idiom.
    StoreHashed(u64),
    /// Store to a key derived from the environment (CALLER/TIMESTAMP) —
    /// must be blanketed by unknown-writes or a keccak base.
    StoreEscaped(bool),
    Jump(usize),
    Branch(u64, usize),
    Halt(bool),
}

const WILD_POOL: &[u8] = &[
    op::ADD,
    op::MUL,
    op::SUB,
    op::ISZERO,
    op::NOT,
    op::POP,
    op::DUP1,
    op::SWAP1,
    op::CALLER,
    op::CALLVALUE,
    op::CALLDATALOAD,
    op::MLOAD,
    op::MSTORE,
    op::SLOAD,
    op::SSTORE,
    op::KECCAK256,
    op::JUMP,
    op::JUMPI,
];

const BALANCED_POOL: &[u8] = &[
    op::ADD,
    op::MUL,
    op::ISZERO,
    op::EQ,
    op::POP,
    op::DUP1,
    op::SWAP1,
    op::MSTORE,
    op::MLOAD,
    op::SLOAD,
    op::SSTORE,
    op::KECCAK256,
    op::CALLER,
];

fn assemble(segments: &[Vec<Tok>]) -> Vec<u8> {
    let mut asm = Asm::new();
    let labels: Vec<_> = segments.iter().map(|_| asm.new_label()).collect();
    for (i, seg) in segments.iter().enumerate() {
        asm.place(labels[i]);
        for tok in seg {
            match tok {
                Tok::Wild(b) => {
                    asm.op(*b);
                }
                Tok::Push(v) => {
                    asm.push_u64(*v);
                }
                Tok::Balanced(b) => {
                    let (pops, _) = opcode::stack_io(*b).expect("pool ops are defined");
                    for k in 0..pops {
                        asm.push_u64(k as u64 + 1);
                    }
                    asm.op(*b);
                }
                Tok::StoreConst(value, slot) => {
                    asm.push_u64(*value).push_u64(*slot).op(op::SSTORE);
                }
                Tok::StoreHashed(base) => {
                    asm.push_u64(7);
                    asm.push_u64(*base).push_u64(0).op(op::MSTORE);
                    asm.push_u64(32).push_u64(0).op(op::KECCAK256);
                    asm.op(op::SSTORE);
                }
                Tok::StoreEscaped(use_caller) => {
                    asm.push_u64(1);
                    asm.op(if *use_caller {
                        op::CALLER
                    } else {
                        op::TIMESTAMP
                    });
                    asm.op(op::SSTORE);
                }
                Tok::Jump(t) => {
                    asm.push_label(labels[t % labels.len()]);
                    asm.op(op::JUMP);
                }
                Tok::Branch(cond, t) => {
                    asm.push_u64(*cond);
                    asm.push_label(labels[t % labels.len()]);
                    asm.op(op::JUMPI);
                }
                Tok::Halt(true) => {
                    asm.op(op::STOP);
                }
                Tok::Halt(false) => {
                    asm.push_u64(1).push_u64(2).op(op::RETURN);
                }
            }
        }
    }
    asm.assemble().expect("all labels are placed")
}

fn tok_strategy(wild: bool, segs: usize) -> BoxedStrategy<Tok> {
    let pick = move |pool: &'static [u8]| (0..pool.len()).prop_map(move |i| pool[i]).boxed();
    let mut arms = vec![
        pick(BALANCED_POOL).prop_map(Tok::Balanced).boxed(),
        (0u64..512).prop_map(Tok::Push).boxed(),
        ((0u64..64), (0u64..16))
            .prop_map(|(v, s)| Tok::StoreConst(v, s))
            .boxed(),
        (0u64..8).prop_map(Tok::StoreHashed).boxed(),
        any::<bool>().prop_map(Tok::StoreEscaped).boxed(),
        (0..segs).prop_map(Tok::Jump).boxed(),
        ((0u64..2), (0..segs))
            .prop_map(|(c, t)| Tok::Branch(c, t))
            .boxed(),
        (0..2usize).prop_map(|v| Tok::Halt(v == 0)).boxed(),
    ];
    if wild {
        arms.push(pick(WILD_POOL).prop_map(Tok::Wild).boxed());
    }
    proptest::Union::new(arms).boxed()
}

fn program_strategy(wild: bool) -> BoxedStrategy<Vec<Vec<Tok>>> {
    const SEGS: usize = 5;
    proptest::collection::vec(
        proptest::collection::vec(tok_strategy(wild, SEGS), 0..10),
        1..=SEGS,
    )
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn layout_covers_executed_writes_on_raw_random_bytes(
        code in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        check_layout_soundness(&code);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn layout_covers_executed_writes_on_structured_programs(
        segments in program_strategy(true),
    ) {
        check_layout_soundness(&assemble(&segments));
    }
}

#[test]
fn executed_writes_are_exercised_not_vacuous() {
    // Deterministic sweep without the wild arm: a healthy share of the
    // programs must actually reach an SSTORE, or the property above is
    // tested against empty write sets.
    let strat = program_strategy(false);
    let mut rng = proptest::TestRng::for_test("layout-soundness");
    let mut programs_with_writes = 0u32;
    const CASES: u32 = 192;
    for _ in 0..CASES {
        let code = assemble(&strat.generate(&mut rng));
        let (_, writes) = check_layout_soundness(&code);
        if writes > 0 {
            programs_with_writes += 1;
        }
    }
    assert!(
        programs_with_writes >= CASES / 4,
        "only {programs_with_writes}/{CASES} programs executed an SSTORE — generator degraded",
    );
}
