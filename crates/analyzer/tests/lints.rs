//! Per-rule positive/negative bytecode pairs for every lint, plus policy
//! and deployment-vetting behavior.

use lsc_analyzer::{analyze, vet_deployment, Action, Report, Rule, Severity, VettingPolicy};
use lsc_evm::asm::Asm;
use lsc_evm::opcode::op;

fn fires(report: &Report, rule: Rule) -> bool {
    report.findings_for(rule).next().is_some()
}

/// Push the six non-gas CALL operands (outLen outOff inLen inOff value
/// to), leaving the gas argument to the caller so tests control it.
fn call_preamble(asm: &mut Asm) {
    for _ in 0..6 {
        asm.push_u64(0);
    }
}

#[test]
fn invalid_jump_pair() {
    // Positive: constant jump to pc 0, which is a PUSH, not a JUMPDEST.
    let mut bad = Asm::new();
    bad.push_u64(0).op(op::JUMP);
    let bad = analyze(&bad.assemble().unwrap());
    assert!(fires(&bad, Rule::InvalidJump));

    // Negative: jump to a placed JUMPDEST.
    let mut good = Asm::new();
    let l = good.new_label();
    good.push_label(l).op(op::JUMP).place(l).op(op::STOP);
    let good = analyze(&good.assemble().unwrap());
    assert!(!fires(&good, Rule::InvalidJump));
    assert!(!fires(&good, Rule::StackUnderflow));
}

#[test]
fn stack_underflow_pair() {
    let bad = analyze(&[op::ADD, op::STOP]);
    assert!(fires(&bad, Rule::StackUnderflow));

    let mut good = Asm::new();
    good.push_u64(1).push_u64(2).op(op::ADD).op(op::STOP);
    let good = analyze(&good.assemble().unwrap());
    assert!(!fires(&good, Rule::StackUnderflow));
}

#[test]
fn stack_overflow_pair() {
    // 1025 pushes exceed the 1024-slot stack.
    let mut bad = Asm::new();
    for _ in 0..1025 {
        bad.push_u64(1);
    }
    bad.op(op::STOP);
    let bad = analyze(&bad.assemble().unwrap());
    assert!(fires(&bad, Rule::StackOverflow));

    // Exactly 1024 fits.
    let mut good = Asm::new();
    for _ in 0..1024 {
        good.push_u64(1);
    }
    good.op(op::STOP);
    let good = analyze(&good.assemble().unwrap());
    assert!(!fires(&good, Rule::StackOverflow));
}

#[test]
fn stack_overflow_through_loop_widening() {
    // A loop that gains one slot per iteration must be caught by the
    // interval widening even though no single pass exceeds the limit.
    let mut asm = Asm::new();
    let top = asm.new_label();
    asm.place(top);
    asm.push_u64(1);
    asm.push_label(top).op(op::JUMP);
    let report = analyze(&asm.assemble().unwrap());
    assert!(fires(&report, Rule::StackOverflow));
}

#[test]
fn write_after_call_pair() {
    // Positive: forward all gas (GAS opcode → unknown), then SSTORE.
    let mut bad = Asm::new();
    call_preamble(&mut bad);
    bad.op(op::GAS).op(op::CALL).op(op::POP);
    bad.push_u64(1).push_u64(0).op(op::SSTORE).op(op::STOP);
    let bad = analyze(&bad.assemble().unwrap());
    assert!(fires(&bad, Rule::WriteAfterCall));

    // Negative: stipend-limited transfer shape (constant 0 gas) — the
    // callee cannot re-enter, so the follow-up write is fine. This is
    // exactly what lsc-solc emits for `.transfer()`.
    let mut good = Asm::new();
    call_preamble(&mut good);
    good.push_u64(0).op(op::CALL).op(op::POP);
    good.push_u64(1).push_u64(0).op(op::SSTORE).op(op::STOP);
    let good = analyze(&good.assemble().unwrap());
    assert!(!fires(&good, Rule::WriteAfterCall));

    // Negative: STATICCALL cannot lead to reentrant state writes.
    let mut st = Asm::new();
    for _ in 0..5 {
        st.push_u64(0);
    }
    st.op(op::GAS).op(op::STATICCALL).op(op::POP);
    st.push_u64(1).push_u64(0).op(op::SSTORE).op(op::STOP);
    let st = analyze(&st.assemble().unwrap());
    assert!(!fires(&st, Rule::WriteAfterCall));
}

#[test]
fn unchecked_call_pair() {
    // Positive: status POPped straight away.
    let mut bad = Asm::new();
    call_preamble(&mut bad);
    bad.push_u64(0).op(op::CALL).op(op::POP).op(op::STOP);
    let bad = analyze(&bad.assemble().unwrap());
    assert!(fires(&bad, Rule::UncheckedCall));

    // Negative: the solc transfer shape — success flag consumed by JUMPI.
    let mut good = Asm::new();
    let ok = good.new_label();
    call_preamble(&mut good);
    good.push_u64(0).op(op::CALL);
    good.push_label(ok).op(op::JUMPI);
    good.push_u64(0).push_u64(0).op(op::REVERT);
    good.place(ok).op(op::STOP);
    let good = analyze(&good.assemble().unwrap());
    assert!(!fires(&good, Rule::UncheckedCall));
}

#[test]
fn truncated_push_pair() {
    // Positive: PUSH2 with a single immediate byte at end of code.
    let bad = analyze(&[op::PUSH1 + 1, 0xab]);
    assert!(fires(&bad, Rule::TruncatedPush));

    let good = analyze(&[op::PUSH1 + 1, 0xab, 0xcd]);
    assert!(!fires(&good, Rule::TruncatedPush));

    // Unreachable truncated bytes are data, not findings.
    let unreachable = analyze(&[op::STOP, op::PUSH32, 0x5b]);
    assert!(!fires(&unreachable, Rule::TruncatedPush));
    assert!(fires(&unreachable, Rule::UnreachableCode));
}

#[test]
fn selfdestruct_and_origin() {
    let mut sd = Asm::new();
    sd.push_u64(0).op(op::SELFDESTRUCT);
    let sd = analyze(&sd.assemble().unwrap());
    assert!(fires(&sd, Rule::Selfdestruct));

    let orig = analyze(&[op::ORIGIN, op::POP, op::STOP]);
    assert!(fires(&orig, Rule::Origin));

    let clean = analyze(&[op::CALLER, op::POP, op::STOP]);
    assert!(!fires(&clean, Rule::Selfdestruct));
    assert!(!fires(&clean, Rule::Origin));
}

#[test]
fn unreachable_code_merges_regions() {
    // STOP, then three dead blocks (two INVALIDs and a JUMPDEST tail).
    // The program has no jumps at all, so not even the JUMPDEST is a
    // conservative target: everything after the STOP is one dead region
    // and must produce ONE merged finding, not one per block.
    let code = [op::STOP, op::INVALID, op::INVALID, op::JUMPDEST, op::STOP];
    let report = analyze(&code);
    let regions: Vec<_> = report.findings_for(Rule::UnreachableCode).collect();
    assert_eq!(
        regions.len(),
        1,
        "contiguous dead blocks merge: {regions:?}"
    );
    assert_eq!(regions[0].pc, 1);
}

#[test]
fn unknown_jump_keeps_all_jumpdests_reachable() {
    // Jump target comes from CALLDATALOAD → unknown → every JUMPDEST is a
    // conservative successor, so neither destination is "unreachable".
    let mut asm = Asm::new();
    let a = asm.new_label();
    let b = asm.new_label();
    asm.push_u64(0).op(op::CALLDATALOAD).op(op::JUMP);
    asm.place(a).op(op::STOP);
    asm.place(b).op(op::STOP);
    let report = analyze(&asm.assemble().unwrap());
    assert!(!fires(&report, Rule::UnreachableCode));
    assert!(!fires(&report, Rule::InvalidJump));
}

#[test]
fn subroutine_return_address_resolves() {
    // Caller pushes a return label, calls a subroutine, which jumps back
    // through the stacked constant. Constant tracking must resolve both
    // jumps: everything reachable, nothing flagged.
    let mut asm = Asm::new();
    let func = asm.new_label();
    let back = asm.new_label();
    asm.push_label(back); // return address
    asm.push_label(func).op(op::JUMP);
    asm.place(back).op(op::STOP);
    asm.place(func); // subroutine: consumes return address
    asm.op(op::JUMP); // jump back through the tracked constant
    let report = analyze(&asm.assemble().unwrap());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn default_policy_denies_errors_warns_rest() {
    let policy = VettingPolicy::default();
    assert_eq!(policy.action(Rule::InvalidJump), Action::Deny);
    assert_eq!(policy.action(Rule::StackUnderflow), Action::Deny);
    assert_eq!(policy.action(Rule::StackOverflow), Action::Deny);
    assert_eq!(policy.action(Rule::WriteAfterCall), Action::Deny);
    assert_eq!(policy.action(Rule::UncheckedCall), Action::Warn);
    assert_eq!(policy.action(Rule::UnreachableCode), Action::Warn);

    let relaxed = VettingPolicy::default().with_action(Rule::WriteAfterCall, Action::Warn);
    assert_eq!(relaxed.action(Rule::WriteAfterCall), Action::Warn);
    assert_eq!(relaxed.action(Rule::InvalidJump), Action::Deny);

    for rule in Rule::ALL {
        assert_ne!(VettingPolicy::permissive().action(rule), Action::Deny);
    }
}

#[test]
fn severity_comes_from_rule() {
    assert_eq!(Rule::InvalidJump.severity(), Severity::Error);
    assert_eq!(Rule::Origin.severity(), Severity::Warning);
    let bad = analyze(&[op::ADD]);
    assert!(bad
        .findings_for(Rule::StackUnderflow)
        .all(|f| f.severity == Severity::Error));
}

#[test]
fn deployment_vetting_extracts_and_gates_runtime() {
    // Runtime with a reentrancy shape, wrapped in a clean deploy tail:
    // the *init* code never runs the bad path, so only runtime analysis
    // can catch it.
    let mut runtime = Asm::new();
    for _ in 0..6 {
        runtime.push_u64(0);
    }
    runtime.op(op::GAS).op(op::CALL).op(op::POP);
    runtime.push_u64(1).push_u64(0).op(op::SSTORE).op(op::STOP);
    let runtime = runtime.assemble().unwrap();

    let mut init = Asm::new();
    let end = init.new_label();
    init.push_u64(runtime.len() as u64);
    init.push_label(end);
    init.push_u64(0);
    init.op(op::CODECOPY);
    init.push_u64(runtime.len() as u64);
    init.push_u64(0);
    init.op(op::RETURN);
    init.place_raw(end);
    init.extend_raw(runtime);
    let init = init.assemble().unwrap();

    let vetting = vet_deployment(&init);
    assert!(vetting.runtime_range.is_some());
    let rt = vetting.runtime.as_ref().unwrap();
    assert!(fires(rt, Rule::WriteAfterCall));
    // Init code never flags unreachable (the runtime image is data).
    assert!(!fires(&vetting.init, Rule::UnreachableCode));

    let err = vetting.enforce(&VettingPolicy::default()).unwrap_err();
    assert!(err.to_string().contains("write-after-call"), "{err}");
    assert!(vetting.enforce(&VettingPolicy::permissive()).is_ok());
}

#[test]
fn gas_floor_exact_on_straight_line() {
    // PUSH1 1, PUSH1 2, ADD, STOP: 3 + 3 + 3 + 0.
    let mut asm = Asm::new();
    asm.push_u64(1).push_u64(2).op(op::ADD).op(op::STOP);
    let report = analyze(&asm.assemble().unwrap());
    assert_eq!(report.gas_floor, 9);

    // Empty code is an immediate implicit STOP.
    assert_eq!(analyze(&[]).gas_floor, 0);
}
