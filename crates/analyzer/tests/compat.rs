//! Positive/negative pairs for every upgrade-compatibility rule, driven
//! through the public `vet_upgrade_runtime`/`vet_upgrade` entry points
//! over hand-assembled runtime images — each hazard is demonstrated by a
//! minimal program pair, and each rule's escape hatch (the benign twin)
//! is pinned as a non-finding.

use lsc_analyzer::{vet_upgrade, vet_upgrade_runtime, Rule, Severity};
use lsc_evm::asm::Asm;
use lsc_evm::opcode::op;

/// Runtime that reads slot 5 and writes a PUSH constant to it — a fully
/// recovered, const-classed live slot.
fn old_const_slot() -> Vec<u8> {
    let mut asm = Asm::new();
    asm.push_u64(1).push_u64(5).op(op::SSTORE);
    asm.push_u64(5).op(op::SLOAD).op(op::POP).op(op::STOP);
    asm.assemble().unwrap()
}

/// Runtime that writes `msg.sender` to slot 5.
fn new_caller_into_slot_5() -> Vec<u8> {
    let mut asm = Asm::new();
    asm.op(op::CALLER).push_u64(5).op(op::SSTORE).op(op::STOP);
    asm.assemble().unwrap()
}

/// Runtime that writes a different PUSH constant to slot 5 — same
/// provenance class as the predecessor, so not a repurposing.
fn new_const_into_slot_5() -> Vec<u8> {
    let mut asm = Asm::new();
    asm.push_u64(2).push_u64(5).op(op::SSTORE).op(op::STOP);
    asm.assemble().unwrap()
}

/// Runtime that stores through `keccak256(slot 3)` — the mapping idiom:
/// the base constant goes to memory 0, the hash of that word is the
/// storage key.
fn keccak_store_base_3() -> Vec<u8> {
    let mut asm = Asm::new();
    asm.push_u64(7); // value
    asm.push_u64(3).push_u64(0).op(op::MSTORE); // mem[0] = base 3
    asm.push_u64(32).push_u64(0).op(op::KECCAK256); // key = keccak(mem[0..32])
    asm.op(op::SSTORE).op(op::STOP);
    asm.assemble().unwrap()
}

/// Runtime that scalar-writes slot 3 and never hashes it.
fn scalar_write_slot_3() -> Vec<u8> {
    let mut asm = Asm::new();
    asm.push_u64(9).push_u64(3).op(op::SSTORE).op(op::STOP);
    asm.assemble().unwrap()
}

/// Runtime that scalar-writes slot 3 AND keeps using it as a hash base —
/// the array-length idiom, which is legitimate.
fn length_write_slot_3() -> Vec<u8> {
    let mut asm = Asm::new();
    asm.push_u64(9).push_u64(3).op(op::SSTORE);
    asm.push_u64(7);
    asm.push_u64(3).push_u64(0).op(op::MSTORE);
    asm.push_u64(32).push_u64(0).op(op::KECCAK256);
    asm.op(op::SSTORE).op(op::STOP);
    asm.assemble().unwrap()
}

/// Runtime that writes a PUSH constant into link-pointer slot 0.
fn const_write_link_slot() -> Vec<u8> {
    let mut asm = Asm::new();
    asm.push_u64(0xdead).push_u64(0).op(op::SSTORE).op(op::STOP);
    asm.assemble().unwrap()
}

/// Runtime that writes a calldata word into link-pointer slot 0 — the
/// shape of the designated setNext/setPrev path.
fn calldata_write_link_slot() -> Vec<u8> {
    let mut asm = Asm::new();
    asm.push_u64(4).op(op::CALLDATALOAD);
    asm.push_u64(0).op(op::SSTORE).op(op::STOP);
    asm.assemble().unwrap()
}

fn rules(old: &[u8], new: &[u8]) -> Vec<Rule> {
    vet_upgrade_runtime(old, new)
        .findings
        .iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn slot_repurposed_fires_on_disjoint_write_classes() {
    let fired = rules(&old_const_slot(), &new_caller_into_slot_5());
    assert!(fired.contains(&Rule::SlotRepurposed), "{fired:?}");
}

#[test]
fn slot_repurposed_spares_matching_write_classes() {
    let fired = rules(&old_const_slot(), &new_const_into_slot_5());
    assert!(!fired.contains(&Rule::SlotRepurposed), "{fired:?}");
}

#[test]
fn mapping_base_collision_fires_on_scalar_clobber() {
    let fired = rules(&keccak_store_base_3(), &scalar_write_slot_3());
    assert!(fired.contains(&Rule::MappingBaseCollision), "{fired:?}");
}

#[test]
fn mapping_base_collision_spares_the_length_slot_idiom() {
    let fired = rules(&keccak_store_base_3(), &length_write_slot_3());
    assert!(!fired.contains(&Rule::MappingBaseCollision), "{fired:?}");
}

#[test]
fn link_pointer_clobber_fires_on_const_write() {
    let fired = rules(&old_const_slot(), &const_write_link_slot());
    assert!(fired.contains(&Rule::LinkPointerClobbered), "{fired:?}");
}

#[test]
fn link_pointer_clobber_spares_the_calldata_path() {
    let fired = rules(&old_const_slot(), &calldata_write_link_slot());
    assert!(!fired.contains(&Rule::LinkPointerClobbered), "{fired:?}");
}

#[test]
fn layout_unknown_warns_when_a_key_escapes() {
    // A computed storage key (keccak result is fine, but a raw unknown
    // like a TIMESTAMP-derived key is not recoverable).
    let mut asm = Asm::new();
    asm.push_u64(1)
        .op(op::TIMESTAMP)
        .op(op::SSTORE)
        .op(op::STOP);
    let new = asm.assemble().unwrap();
    let vetting = vet_upgrade_runtime(&old_const_slot(), &new);
    let unknowns: Vec<_> = vetting
        .findings
        .iter()
        .filter(|f| f.rule == Rule::LayoutUnknown)
        .collect();
    assert!(!unknowns.is_empty(), "{:?}", vetting.findings);
    assert!(unknowns.iter().all(|f| f.severity == Severity::Warning));
}

/// ISSUE 9 satellite bugfix regression: the upgrade comparison must run
/// runtime-against-runtime, and when the successor's runtime image
/// cannot be extracted from its init blob the gate must emit a hard
/// `LayoutUnknown` finding — never silently skip the check.
#[test]
fn extraction_failure_is_a_finding_not_a_skip() {
    let garbage_init = vec![op::STOP]; // no canonical deploy tail
    let vetting = vet_upgrade(&old_const_slot(), &garbage_init);
    assert!(vetting.new_layout.is_none());
    assert!(vetting.new_runtime_range.is_none());
    assert!(
        vetting
            .findings
            .iter()
            .any(|f| f.rule == Rule::LayoutUnknown && f.message.contains("not recoverable")),
        "{:?}",
        vetting.findings
    );
}

/// Build `ctor store + CODECOPY/RETURN tail` init code around a runtime
/// image, mirroring what the compiler emits. The constructor writes
/// CALLER into slot 5 — a store that would read as a repurposing if the
/// diff ever ran over init bytes instead of the extracted runtime.
fn canonical_init(runtime: &[u8]) -> Vec<u8> {
    let mut asm = Asm::new();
    asm.op(op::CALLER).push_u64(5).op(op::SSTORE);
    let image = asm.new_label();
    asm.push_u64(runtime.len() as u64);
    asm.push_label(image);
    asm.push_u64(0);
    asm.op(op::CODECOPY);
    asm.push_u64(runtime.len() as u64);
    asm.push_u64(0);
    asm.op(op::RETURN);
    asm.place_raw(image);
    asm.extend_raw(runtime.to_vec());
    asm.assemble().unwrap()
}

/// And the happy half of the same bugfix: with a canonical init blob the
/// diff runs over the *extracted runtime*, not the init bytes — init
/// code's constructor stores must not pollute the verdict.
#[test]
fn extraction_success_diffs_runtimes_not_init_blobs() {
    let runtime = new_const_into_slot_5();
    let init = canonical_init(&runtime);
    let vetting = vet_upgrade(&old_const_slot(), &init);
    let range = vetting.new_runtime_range.clone().expect("tail extracted");
    assert_eq!(&init[range], runtime.as_slice());
    assert!(vetting.new_layout.is_some());
    assert!(
        !vetting
            .findings
            .iter()
            .any(|f| f.rule == Rule::SlotRepurposed),
        "{:?}",
        vetting.findings
    );
}
