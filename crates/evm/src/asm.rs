//! A small EVM assembler with symbolic labels.
//!
//! The Solidity-subset compiler (`lsc-solc`) emits through this builder;
//! tests in this crate use it to write readable bytecode programs.

use crate::opcode::op;
use lsc_primitives::U256;
use std::collections::HashMap;

/// A label identifier handed out by [`Asm::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Debug, Clone)]
enum Entry {
    /// A literal opcode byte.
    Op(u8),
    /// Raw immediate bytes (already part of a PUSH emitted via `push`).
    Raw(Vec<u8>),
    /// PUSH of a label's final offset (fixed-width placeholder).
    PushLabel(Label),
    /// Placement of a label (must be a JUMPDEST position).
    Place(Label),
}

/// Errors produced during assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was pushed but never placed.
    UnplacedLabel(usize),
    /// A label was placed more than once.
    DuplicateLabel(usize),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnplacedLabel(id) => write!(f, "label {id} pushed but never placed"),
            Self::DuplicateLabel(id) => write!(f, "label {id} placed twice"),
        }
    }
}

impl std::error::Error for AsmError {}

/// Width in bytes used for all label pushes (PUSH3 covers 16 MiB of code,
/// far beyond the EIP-170 cap, and keeps offsets stable in one pass).
const LABEL_PUSH_WIDTH: usize = 3;

/// An append-only assembler buffer.
#[derive(Debug, Default, Clone)]
pub struct Asm {
    entries: Vec<Entry>,
    next_label: usize,
}

impl Asm {
    /// Empty program.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Allocate a fresh label (place it later with [`Asm::place`]).
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Emit a raw opcode byte.
    pub fn op(&mut self, byte: u8) -> &mut Self {
        self.entries.push(Entry::Op(byte));
        self
    }

    /// Emit the shortest PUSH for `value` (PUSH0/PUSH1..PUSH32).
    pub fn push(&mut self, value: U256) -> &mut Self {
        let len = value.byte_len();
        if len == 0 {
            // PUSH1 0x00 rather than PUSH0 keeps us compatible with the
            // pre-Shanghai opcode set the paper's Solidity 0.5 toolchain used.
            self.entries.push(Entry::Op(op::PUSH1));
            self.entries.push(Entry::Raw(vec![0]));
            return self;
        }
        let bytes = value.to_be_bytes();
        self.entries.push(Entry::Op(op::PUSH1 + (len as u8) - 1));
        self.entries.push(Entry::Raw(bytes[32 - len..].to_vec()));
        self
    }

    /// Emit a PUSH of a small integer.
    pub fn push_u64(&mut self, value: u64) -> &mut Self {
        self.push(U256::from_u64(value))
    }

    /// Emit raw bytes verbatim (e.g. embedded runtime code).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.entries.push(Entry::Raw(bytes.to_vec()));
        self
    }

    /// Emit a PUSH of `label`'s eventual byte offset.
    pub fn push_label(&mut self, label: Label) -> &mut Self {
        self.entries.push(Entry::PushLabel(label));
        self
    }

    /// Place `label` here and emit a JUMPDEST.
    pub fn place(&mut self, label: Label) -> &mut Self {
        self.entries.push(Entry::Place(label));
        self.entries.push(Entry::Op(op::JUMPDEST));
        self
    }

    /// Place `label` here without emitting a JUMPDEST (for data offsets,
    /// e.g. runtime code embedded after init code).
    pub fn place_raw(&mut self, label: Label) -> &mut Self {
        self.entries.push(Entry::Place(label));
        self
    }

    /// Append another assembled fragment (labels must not overlap; intended
    /// for concatenating independently assembled sections).
    pub fn extend_raw(&mut self, bytes: Vec<u8>) -> &mut Self {
        self.entries.push(Entry::Raw(bytes));
        self
    }

    /// Current lower bound of the program size (labels count at fixed width).
    pub fn len_estimate(&self) -> usize {
        self.entries
            .iter()
            .map(|e| match e {
                Entry::Op(_) => 1,
                Entry::Raw(b) => b.len(),
                Entry::PushLabel(_) => 1 + LABEL_PUSH_WIDTH,
                Entry::Place(_) => 0,
            })
            .sum()
    }

    /// Resolve labels and produce final bytecode.
    pub fn assemble(&self) -> Result<Vec<u8>, AsmError> {
        // Pass 1: compute offsets (label pushes are fixed width).
        let mut offsets: HashMap<Label, usize> = HashMap::new();
        let mut pc = 0usize;
        for entry in &self.entries {
            match entry {
                Entry::Op(_) => pc += 1,
                Entry::Raw(bytes) => pc += bytes.len(),
                Entry::PushLabel(_) => pc += 1 + LABEL_PUSH_WIDTH,
                Entry::Place(label) => {
                    if offsets.insert(*label, pc).is_some() {
                        return Err(AsmError::DuplicateLabel(label.0));
                    }
                }
            }
        }
        // Pass 2: emit.
        let mut out = Vec::with_capacity(pc);
        for entry in &self.entries {
            match entry {
                Entry::Op(byte) => out.push(*byte),
                Entry::Raw(bytes) => out.extend_from_slice(bytes),
                Entry::PushLabel(label) => {
                    let offset = *offsets.get(label).ok_or(AsmError::UnplacedLabel(label.0))?;
                    out.push(op::PUSH1 + (LABEL_PUSH_WIDTH as u8) - 1);
                    let be = (offset as u32).to_be_bytes();
                    out.extend_from_slice(&be[4 - LABEL_PUSH_WIDTH..]);
                }
                Entry::Place(_) => {}
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::disassemble;

    #[test]
    fn push_width_is_minimal() {
        let mut a = Asm::new();
        a.push_u64(0).push_u64(1).push_u64(256).push(U256::MAX);
        let code = a.assemble().unwrap();
        let rows = disassemble(&code);
        assert_eq!(rows[0].1, "PUSH1 0x00");
        assert_eq!(rows[1].1, "PUSH1 0x01");
        assert_eq!(rows[2].1, "PUSH2 0x0100");
        assert!(rows[3].1.starts_with("PUSH32 0xff"));
    }

    #[test]
    fn labels_resolve_to_jumpdests() {
        let mut a = Asm::new();
        let target = a.new_label();
        a.push_label(target).op(op::JUMP);
        a.op(op::INVALID); // skipped
        a.place(target);
        a.op(op::STOP);
        let code = a.assemble().unwrap();
        // PUSH3 <offset> JUMP INVALID JUMPDEST STOP
        assert_eq!(code.len(), 1 + 3 + 1 + 1 + 1 + 1);
        let dest = u32::from_be_bytes([0, code[1], code[2], code[3]]) as usize;
        assert_eq!(code[dest], op::JUMPDEST);
        assert_eq!(code[dest + 1], op::STOP);
    }

    #[test]
    fn unplaced_label_errors() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.push_label(l);
        assert!(matches!(a.assemble(), Err(AsmError::UnplacedLabel(_))));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.place(l);
        a.place(l);
        assert!(matches!(a.assemble(), Err(AsmError::DuplicateLabel(_))));
    }

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Asm::new();
        let start = a.new_label();
        a.place(start);
        a.push_u64(1).op(op::POP);
        a.push_label(start); // backward reference
        a.op(op::POP);
        let code = a.assemble().unwrap();
        assert_eq!(code[0], op::JUMPDEST);
    }
}
