//! Cached per-blob code analysis: jumpdest bitmap + lazily memoized
//! keccak code hash.
//!
//! Before this module every call frame re-scanned its bytecode for
//! `JUMPDEST`s (`opcode::jumpdest_map` allocates a `Vec<bool>` the size
//! of the code) and every `EXTCODEHASH`/`WorldState::code_hash` re-ran
//! keccak over the full blob. [`AnalyzedCode`] computes both at most once
//! per distinct code blob and is shared behind an `Arc`: the account
//! store caches it next to its `Arc<Vec<u8>>` code, hosts hand it out via
//! [`Host::code_analysis`](crate::Host::code_analysis), and the
//! interpreter consumes it without copying the bytecode.
//!
//! Invariant: an `AnalyzedCode` is immutable and always consistent with
//! the code it was built from. Cache *slots* (e.g. the per-account
//! `OnceLock` in `lsc-chain`) must be cleared whenever the code they sit
//! next to changes — `set_code`, `destroy_account`, journal rollback.

use lsc_primitives::H256;
use std::sync::{Arc, OnceLock};

use crate::opcode;

/// Immutable analysis of one bytecode blob.
#[derive(Debug, Default)]
pub struct AnalyzedCode {
    code: Arc<Vec<u8>>,
    /// One bit per code byte; set where a `JUMPDEST` opcode begins
    /// (push immediates are skipped, per the Yellow Paper).
    jumpdests: Box<[u64]>,
    /// keccak256 of the code, memoized on first use. Empty code hashes
    /// to `H256::ZERO` to match `WorldState::code_hash` semantics.
    hash: OnceLock<H256>,
}

impl AnalyzedCode {
    /// Analyze a code blob (single pass over the bytecode; the keccak
    /// hash is deferred until [`code_hash`](Self::code_hash) first asks).
    pub fn analyze(code: Arc<Vec<u8>>) -> Arc<AnalyzedCode> {
        let map = opcode::jumpdest_map(&code);
        let mut jumpdests = vec![0u64; code.len().div_ceil(64)].into_boxed_slice();
        for (i, is_dest) in map.iter().enumerate() {
            if *is_dest {
                jumpdests[i >> 6] |= 1u64 << (i & 63);
            }
        }
        Arc::new(AnalyzedCode {
            code,
            jumpdests,
            hash: OnceLock::new(),
        })
    }

    /// The shared analysis of empty code (accounts without code).
    pub fn empty() -> Arc<AnalyzedCode> {
        static EMPTY: OnceLock<Arc<AnalyzedCode>> = OnceLock::new();
        EMPTY
            .get_or_init(|| AnalyzedCode::analyze(Arc::new(Vec::new())))
            .clone()
    }

    /// The analyzed bytecode.
    #[inline]
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// The shared code blob.
    pub fn code_arc(&self) -> &Arc<Vec<u8>> {
        &self.code
    }

    /// Code length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True for empty code.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// True if `pc` is a valid jump destination.
    #[inline]
    pub fn is_jumpdest(&self, pc: usize) -> bool {
        pc < self.code.len() && (self.jumpdests[pc >> 6] >> (pc & 63)) & 1 == 1
    }

    /// keccak256 of the code (`H256::ZERO` for empty code), computed at
    /// most once per blob and memoized.
    pub fn code_hash(&self) -> H256 {
        *self.hash.get_or_init(|| {
            if self.code.is_empty() {
                H256::ZERO
            } else {
                H256::keccak(self.code.as_slice())
            }
        })
    }
}

/// Process-wide toggle for the execution fast path (analysis cache,
/// frame-buffer pool, inline top-level frames). Defaults to **on**; the
/// `exec_fastpath` benchmark flips it off to measure the "before" series.
/// Semantics are bit-identical either way — only allocation/caching
/// behaviour changes.
pub mod fastpath {
    use std::sync::atomic::{AtomicBool, Ordering};

    static ENABLED: AtomicBool = AtomicBool::new(true);

    /// Is the fast path on?
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Turn the fast path on or off (benchmarks/tests only).
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::op;

    #[test]
    fn bitmap_matches_reference_map() {
        // PUSH2 with a fake JUMPDEST inside the immediate, then a real one.
        let push2 = op::PUSH1 + 1;
        let code = vec![push2, op::JUMPDEST, 0x00, op::JUMPDEST, op::STOP];
        let analysis = AnalyzedCode::analyze(Arc::new(code.clone()));
        let reference = opcode::jumpdest_map(&code);
        for (i, expect) in reference.iter().enumerate() {
            assert_eq!(analysis.is_jumpdest(i), *expect, "pc {i}");
        }
        assert!(!analysis.is_jumpdest(code.len()));
        assert!(!analysis.is_jumpdest(usize::MAX));
    }

    #[test]
    fn hash_matches_keccak_and_empty_is_zero() {
        let code = vec![op::STOP, op::STOP, op::JUMPDEST];
        let analysis = AnalyzedCode::analyze(Arc::new(code.clone()));
        assert_eq!(analysis.code_hash(), H256::keccak(&code));
        // Memoized: second call returns the same value.
        assert_eq!(analysis.code_hash(), H256::keccak(&code));
        assert_eq!(AnalyzedCode::empty().code_hash(), H256::ZERO);
        assert!(AnalyzedCode::empty().is_empty());
    }
}
