//! Cached per-blob code analysis: jumpdest bitmap + lazily memoized
//! keccak code hash.
//!
//! Before this module every call frame re-scanned its bytecode for
//! `JUMPDEST`s (`opcode::jumpdest_map` allocates a `Vec<bool>` the size
//! of the code) and every `EXTCODEHASH`/`WorldState::code_hash` re-ran
//! keccak over the full blob. [`AnalyzedCode`] computes both at most once
//! per distinct code blob and is shared behind an `Arc`: the account
//! store caches it next to its `Arc<Vec<u8>>` code, hosts hand it out via
//! [`Host::code_analysis`](crate::Host::code_analysis), and the
//! interpreter consumes it without copying the bytecode.
//!
//! Invariant: an `AnalyzedCode` is immutable and always consistent with
//! the code it was built from. Cache *slots* (e.g. the per-account
//! `OnceLock` in `lsc-chain`) must be cleared whenever the code they sit
//! next to changes — `set_code`, `destroy_account`, journal rollback.

use lsc_primitives::{FxHashMap, H256};
use std::sync::{Arc, Mutex, OnceLock};

use crate::compile::{self, CompiledCode};
use crate::opcode;

/// Bound on the process-wide content-addressed compile memo. Entries are
/// immutable and keyed by code keccak, so eviction is purely a memory
/// cap, never a correctness concern.
const COMPILED_MEMO_CAP: usize = 4096;

/// fx(code) → (code, compiled artifact or memoized bail) chains, shared
/// across every account that carries the same bytecode. The key is a
/// cheap non-cryptographic hash, so hits verify the stored code is
/// byte-identical before serving — a collision costs one memcmp, never
/// a wrong artifact. (keccak would make the key collision-free but costs
/// more than the compile amortization saves on multi-KB blobs.)
type MemoChain = Vec<(Arc<Vec<u8>>, Option<Arc<CompiledCode>>)>;

fn compiled_memo() -> &'static Mutex<FxHashMap<u64, MemoChain>> {
    static MEMO: OnceLock<Mutex<FxHashMap<u64, MemoChain>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(FxHashMap::default()))
}

/// Process-wide hit/miss counters for the content-addressed compile
/// memo. A "hit" is a [`AnalyzedCode::compiled`] call that found an
/// existing artifact (or memoized bail) for byte-identical code; a
/// "miss" ran the block compiler. Per-account `OnceLock` reuse never
/// reaches the memo, so these count exactly the cross-account sharing
/// the memo exists for — redeploys of template bytecode.
pub mod memo_stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    static HITS: AtomicU64 = AtomicU64::new(0);
    static MISSES: AtomicU64 = AtomicU64::new(0);

    pub(super) fn record(hit: bool) {
        let counter = if hit { &HITS } else { &MISSES };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// `(hits, misses)` accumulated since process start or [`reset`].
    pub fn snapshot() -> (u64, u64) {
        (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
    }

    /// Zero both counters (test/bench isolation).
    pub fn reset() {
        HITS.store(0, Ordering::Relaxed);
        MISSES.store(0, Ordering::Relaxed);
    }
}

fn fx_bytes(bytes: &[u8]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = lsc_primitives::FxHasher::default();
    bytes.hash(&mut hasher);
    hasher.finish()
}

/// Immutable analysis of one bytecode blob.
#[derive(Debug, Default)]
pub struct AnalyzedCode {
    code: Arc<Vec<u8>>,
    /// One bit per code byte; set where a `JUMPDEST` opcode begins
    /// (push immediates are skipped, per the Yellow Paper).
    jumpdests: Box<[u64]>,
    /// keccak256 of the code, memoized on first use. Empty code hashes
    /// to `H256::ZERO` to match `WorldState::code_hash` semantics.
    hash: OnceLock<H256>,
    /// Superinstruction artifact, compiled lazily on first use. `None`
    /// inside means compilation bailed: this blob permanently takes the
    /// plain path. Living *inside* the analysis means the per-account
    /// cache slot, `install_code` invalidation and journal rollback
    /// cover the jumpdest bitmap, the memoized keccak AND the compiled
    /// artifact as one entry — they cannot split-brain.
    compiled: OnceLock<Option<Arc<CompiledCode>>>,
}

impl AnalyzedCode {
    /// Analyze a code blob (single pass over the bytecode; the keccak
    /// hash is deferred until [`code_hash`](Self::code_hash) first asks).
    pub fn analyze(code: Arc<Vec<u8>>) -> Arc<AnalyzedCode> {
        let map = opcode::jumpdest_map(&code);
        let mut jumpdests = vec![0u64; code.len().div_ceil(64)].into_boxed_slice();
        for (i, is_dest) in map.iter().enumerate() {
            if *is_dest {
                jumpdests[i >> 6] |= 1u64 << (i & 63);
            }
        }
        Arc::new(AnalyzedCode {
            code,
            jumpdests,
            hash: OnceLock::new(),
            compiled: OnceLock::new(),
        })
    }

    /// The shared analysis of empty code (accounts without code).
    pub fn empty() -> Arc<AnalyzedCode> {
        static EMPTY: OnceLock<Arc<AnalyzedCode>> = OnceLock::new();
        EMPTY
            .get_or_init(|| AnalyzedCode::analyze(Arc::new(Vec::new())))
            .clone()
    }

    /// The analyzed bytecode.
    #[inline]
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// The shared code blob.
    pub fn code_arc(&self) -> &Arc<Vec<u8>> {
        &self.code
    }

    /// Code length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True for empty code.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// True if `pc` is a valid jump destination.
    #[inline]
    pub fn is_jumpdest(&self, pc: usize) -> bool {
        pc < self.code.len() && (self.jumpdests[pc >> 6] >> (pc & 63)) & 1 == 1
    }

    /// keccak256 of the code (`H256::ZERO` for empty code), computed at
    /// most once per blob and memoized.
    pub fn code_hash(&self) -> H256 {
        *self.hash.get_or_init(|| {
            if self.code.is_empty() {
                H256::ZERO
            } else {
                H256::keccak(self.code.as_slice())
            }
        })
    }

    /// The superinstruction artifact for this blob, compiling on first
    /// use and memoizing the result (including a bail, which pins the
    /// blob to the plain path).
    ///
    /// Artifacts are additionally shared process-wide through a
    /// content-addressed memo: the per-account analysis cache holds one
    /// `AnalyzedCode` per *account*, so without the memo every redeploy
    /// of identical bytecode — factories stamping out template
    /// contracts, or a bench world rebuilt per iteration — would pay
    /// the block compiler again. Hits are verified byte-for-byte
    /// against the stored blob, so staleness is impossible: different
    /// code can never alias an entry.
    pub fn compiled(&self) -> Option<Arc<CompiledCode>> {
        self.compiled
            .get_or_init(|| {
                if self.code.is_empty() {
                    return None;
                }
                let key = fx_bytes(&self.code);
                let memo = compiled_memo();
                if let Some(chain) = memo.lock().expect("compile memo poisoned").get(&key) {
                    for (blob, artifact) in chain {
                        if Arc::ptr_eq(blob, &self.code) || **blob == *self.code {
                            memo_stats::record(true);
                            return artifact.clone();
                        }
                    }
                }
                memo_stats::record(false);
                let artifact = compile::try_compile(self).map(Arc::new);
                let mut memo = memo.lock().expect("compile memo poisoned");
                // Content-addressed entries never go stale, so when the
                // memo fills up, dropping it wholesale is safe — worst
                // case the next user of each blob recompiles once.
                if memo.len() >= COMPILED_MEMO_CAP {
                    memo.clear();
                }
                memo.entry(key)
                    .or_default()
                    .push((Arc::clone(&self.code), artifact.clone()));
                artifact
            })
            .clone()
    }

    /// Peek at the compiled slot without triggering compilation
    /// (cache-identity tests).
    pub fn compiled_if_cached(&self) -> Option<Option<Arc<CompiledCode>>> {
        self.compiled.get().cloned()
    }
}

/// Process-wide toggle for the execution fast path (analysis cache,
/// frame-buffer pool, inline top-level frames). Defaults to **on**; the
/// `exec_fastpath` benchmark flips it off to measure the "before" series.
/// Semantics are bit-identical either way — only allocation/caching
/// behaviour changes.
pub mod fastpath {
    use std::sync::atomic::{AtomicBool, Ordering};

    static ENABLED: AtomicBool = AtomicBool::new(true);

    /// Is the fast path on?
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Turn the fast path on or off (benchmarks/tests only).
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }
}

/// Process-wide A/B toggle for the basic-block superinstruction path.
/// Defaults to **on**; the plain interpreter remains the executable
/// oracle and can be restored at runtime by flipping this off. Semantics
/// are bit-identical either way — the differential suite in
/// `tests/superinstr_equivalence.rs` enforces it.
pub mod superinstr {
    use std::sync::atomic::{AtomicBool, Ordering};

    static ENABLED: AtomicBool = AtomicBool::new(true);

    /// Is the superinstruction path on?
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Turn the superinstruction path on or off (A/B benches and tests).
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::op;

    #[test]
    fn bitmap_matches_reference_map() {
        // PUSH2 with a fake JUMPDEST inside the immediate, then a real one.
        let push2 = op::PUSH1 + 1;
        let code = vec![push2, op::JUMPDEST, 0x00, op::JUMPDEST, op::STOP];
        let analysis = AnalyzedCode::analyze(Arc::new(code.clone()));
        let reference = opcode::jumpdest_map(&code);
        for (i, expect) in reference.iter().enumerate() {
            assert_eq!(analysis.is_jumpdest(i), *expect, "pc {i}");
        }
        assert!(!analysis.is_jumpdest(code.len()));
        assert!(!analysis.is_jumpdest(usize::MAX));
    }

    #[test]
    fn hash_matches_keccak_and_empty_is_zero() {
        let code = vec![op::STOP, op::STOP, op::JUMPDEST];
        let analysis = AnalyzedCode::analyze(Arc::new(code.clone()));
        assert_eq!(analysis.code_hash(), H256::keccak(&code));
        // Memoized: second call returns the same value.
        assert_eq!(analysis.code_hash(), H256::keccak(&code));
        assert_eq!(AnalyzedCode::empty().code_hash(), H256::ZERO);
        assert!(AnalyzedCode::empty().is_empty());
    }
}
