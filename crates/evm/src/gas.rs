//! Gas schedule and gas-metering helpers.
//!
//! The constants follow the Istanbul-era schedule closely enough that the
//! *relative* costs the paper's design cares about are realistic: storage
//! writes dominate, deployment pays per byte of code, calls pay a base fee
//! plus value-transfer and new-account surcharges, and memory grows
//! quadratically.

use lsc_primitives::U256;

/// Base fee charged for every transaction.
pub const TX_BASE: u64 = 21_000;
/// Extra base fee for contract-creating transactions.
pub const TX_CREATE: u64 = 32_000;
/// Per zero byte of transaction data.
pub const TX_DATA_ZERO: u64 = 4;
/// Per nonzero byte of transaction data.
pub const TX_DATA_NONZERO: u64 = 16;

/// Cheapest opcode tier (ADDRESS, CALLER, …).
pub const BASE: u64 = 2;
/// Very-low tier (ADD, SUB, PUSH, DUP, SWAP, …).
pub const VERYLOW: u64 = 3;
/// Low tier (MUL, DIV, …).
pub const LOW: u64 = 5;
/// Mid tier (ADDMOD, MULMOD, JUMP).
pub const MID: u64 = 8;
/// High tier (JUMPI).
pub const HIGH: u64 = 10;
/// `JUMPDEST` marker cost.
pub const JUMPDEST: u64 = 1;

/// `SLOAD` cost.
pub const SLOAD: u64 = 800;
/// `SSTORE` zero → nonzero.
pub const SSTORE_SET: u64 = 20_000;
/// `SSTORE` any other change.
pub const SSTORE_RESET: u64 = 5_000;
/// Refund for clearing a slot (nonzero → zero).
pub const SSTORE_CLEAR_REFUND: u64 = 15_000;
/// `BALANCE` / `EXTCODEHASH` cost.
pub const BALANCE: u64 = 700;
/// `EXTCODESIZE` / `EXTCODECOPY` base cost.
pub const EXTCODE: u64 = 700;

/// `KECCAK256` base cost.
pub const KECCAK256: u64 = 30;
/// `KECCAK256` cost per 32-byte word hashed.
pub const KECCAK256_WORD: u64 = 6;
/// Copy cost per word (CALLDATACOPY, CODECOPY, RETURNDATACOPY).
pub const COPY_WORD: u64 = 3;

/// `LOG` base cost.
pub const LOG: u64 = 375;
/// Additional cost per log topic.
pub const LOG_TOPIC: u64 = 375;
/// Cost per byte of log data.
pub const LOG_DATA: u64 = 8;

/// `CREATE` base cost.
pub const CREATE: u64 = 32_000;
/// Deposit cost per byte of deployed runtime code.
pub const CODE_DEPOSIT_BYTE: u64 = 200;
/// Maximum deployed code size (EIP-170).
pub const MAX_CODE_SIZE: usize = 24_576;

/// `CALL`-family base cost.
pub const CALL: u64 = 700;
/// Surcharge when the call transfers value.
pub const CALL_VALUE: u64 = 9_000;
/// Gas stipend granted to the callee on value transfer.
pub const CALL_STIPEND: u64 = 2_300;
/// Surcharge for calling into a non-existent account with value.
pub const NEW_ACCOUNT: u64 = 25_000;

/// `EXP` base cost.
pub const EXP: u64 = 10;
/// `EXP` cost per byte of exponent.
pub const EXP_BYTE: u64 = 50;

/// `SELFDESTRUCT` base cost.
pub const SELFDESTRUCT: u64 = 5_000;
/// Refund for self-destructing (pre-London semantics).
pub const SELFDESTRUCT_REFUND: u64 = 24_000;

/// `BLOCKHASH` cost.
pub const BLOCKHASH: u64 = 20;

/// Quadratic memory cost for `words` 32-byte words:
/// `3*words + words^2 / 512`.
pub fn memory_gas(words: u64) -> u64 {
    3 * words + words * words / 512
}

/// Number of 32-byte words covering `bytes`.
pub fn words(bytes: u64) -> u64 {
    bytes.div_ceil(32)
}

/// Intrinsic gas of a transaction with the given payload.
pub fn tx_intrinsic_gas(is_create: bool, data: &[u8]) -> u64 {
    let mut gas = TX_BASE;
    if is_create {
        gas += TX_CREATE;
    }
    for b in data {
        gas += if *b == 0 {
            TX_DATA_ZERO
        } else {
            TX_DATA_NONZERO
        };
    }
    gas
}

/// Dynamic cost of an `EXP` with the given exponent.
pub fn exp_gas(exponent: U256) -> u64 {
    EXP + EXP_BYTE * exponent.byte_len() as u64
}

/// The 63/64 rule: the most gas a frame may forward to a child call.
pub fn max_call_gas(remaining: u64) -> u64 {
    remaining - remaining / 64
}

/// Gas-metering counter for one frame.
#[derive(Debug, Clone)]
pub struct GasMeter {
    limit: u64,
    used: u64,
    refund: u64,
}

/// Raised when a frame runs out of gas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfGas;

impl GasMeter {
    /// Start a meter with `limit` gas available.
    pub fn new(limit: u64) -> Self {
        GasMeter {
            limit,
            used: 0,
            refund: 0,
        }
    }

    /// Consume `amount` gas or fail.
    #[inline]
    pub fn charge(&mut self, amount: u64) -> Result<(), OutOfGas> {
        let next = self.used.checked_add(amount).ok_or(OutOfGas)?;
        if next > self.limit {
            self.used = self.limit;
            return Err(OutOfGas);
        }
        self.used = next;
        Ok(())
    }

    /// Gas still available.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.limit - self.used
    }

    /// Gas consumed so far.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Record a refund (capped at settlement time, not here).
    pub fn add_refund(&mut self, amount: u64) {
        self.refund = self.refund.saturating_add(amount);
    }

    /// Remove previously recorded refund (e.g. reverted inner frame).
    pub fn sub_refund(&mut self, amount: u64) {
        self.refund = self.refund.saturating_sub(amount);
    }

    /// Accumulated refund.
    pub fn refund(&self) -> u64 {
        self.refund
    }

    /// Return unused gas from a child frame to this meter.
    pub fn reclaim(&mut self, unused: u64) {
        self.used = self.used.saturating_sub(unused);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_gas_is_quadratic() {
        assert_eq!(memory_gas(0), 0);
        assert_eq!(memory_gas(1), 3);
        assert_eq!(memory_gas(32), 32 * 3 + 2);
        assert!(memory_gas(10_000) > 10_000 * 3);
    }

    #[test]
    fn word_rounding() {
        assert_eq!(words(0), 0);
        assert_eq!(words(1), 1);
        assert_eq!(words(32), 1);
        assert_eq!(words(33), 2);
    }

    #[test]
    fn intrinsic_gas_counts_byte_classes() {
        assert_eq!(tx_intrinsic_gas(false, &[]), 21_000);
        assert_eq!(tx_intrinsic_gas(true, &[]), 53_000);
        assert_eq!(tx_intrinsic_gas(false, &[0, 1, 0]), 21_000 + 4 + 16 + 4);
    }

    #[test]
    fn meter_charges_and_fails() {
        let mut m = GasMeter::new(100);
        assert!(m.charge(60).is_ok());
        assert_eq!(m.remaining(), 40);
        assert_eq!(m.charge(41), Err(OutOfGas));
        // After OOG the meter is exhausted.
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    fn meter_reclaims_child_gas() {
        let mut m = GasMeter::new(100);
        m.charge(80).unwrap();
        m.reclaim(30);
        assert_eq!(m.used(), 50);
    }

    #[test]
    fn refund_bookkeeping() {
        let mut m = GasMeter::new(100);
        m.add_refund(10);
        m.add_refund(5);
        m.sub_refund(3);
        assert_eq!(m.refund(), 12);
    }

    #[test]
    fn exp_gas_scales_with_exponent_size() {
        assert_eq!(exp_gas(U256::ZERO), 10);
        assert_eq!(exp_gas(U256::from_u64(255)), 60);
        assert_eq!(exp_gas(U256::from_u64(256)), 110);
    }

    #[test]
    fn sixty_three_sixty_fourths() {
        assert_eq!(max_call_gas(64), 63);
        assert_eq!(max_call_gas(6400), 6300);
    }
}
