//! The bytecode interpreter: executes call/create message frames against a
//! [`Host`], with full gas metering, nested calls, reverts and logs.

use crate::analysis::{fastpath, superinstr, AnalyzedCode};
use crate::compile::{COp, CompiledCode};
use crate::gas::{self, GasMeter, OutOfGas};
use crate::host::{Host, Log};
use crate::memory::Memory;
use crate::opcode::{self, op};
use crate::stack::{Stack, StackError, STACK_LIMIT};
use lsc_primitives::{keccak256, Address, H256, U256};
use std::sync::Arc;

/// Maximum call/create nesting depth.
pub const MAX_CALL_DEPTH: u32 = 1024;

/// With the fast path on, frames run on the caller's thread and hop to a
/// fresh stack every `FRAME_HOP` nesting levels instead of paying one
/// dedicated 64 MiB thread per transaction. Chosen so `FRAME_HOP` debug
/// frames comfortably fit a default 2 MiB thread stack.
const FRAME_HOP: u32 = 16;

/// Stack size of each hop thread (holds `FRAME_HOP` interpreter frames).
const FRAME_STACK_BYTES: usize = 8 << 20;

/// Frames whose memory grew beyond this are not returned to the pool.
const POOL_MEMORY_CAP: usize = 512 * 1024;

/// What kind of message frame to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// Ordinary external call: code and storage context both at `target`.
    Call,
    /// Execute `code_address`'s code in the caller's storage context,
    /// keeping `msg.sender`/`msg.value` of the parent (EIP-7 semantics).
    DelegateCall,
    /// Like delegatecall but with its own value transfer to self.
    CallCode,
    /// Read-only call: any state mutation halts the frame.
    StaticCall,
    /// Contract creation; address derived from caller nonce.
    Create,
    /// Salted creation (EIP-1014); address derived from the salt.
    Create2(H256),
}

/// A message to execute.
#[derive(Debug, Clone)]
pub struct Message {
    /// Frame kind.
    pub kind: CallKind,
    /// `msg.sender` inside the frame.
    pub caller: Address,
    /// Storage/balance context (callee for calls; ignored for creates).
    pub target: Address,
    /// Where the executed code lives (differs for delegate/callcode).
    pub code_address: Address,
    /// `msg.value` in wei.
    pub value: U256,
    /// Calldata (or init code for creates).
    pub data: Vec<u8>,
    /// Gas available to the frame.
    pub gas: u64,
    /// Static context inherited from a parent STATICCALL.
    pub is_static: bool,
    /// Nesting depth (top-level transaction = 0).
    pub depth: u32,
}

impl Message {
    /// Convenience constructor for a top-level call.
    pub fn call(caller: Address, target: Address, value: U256, data: Vec<u8>, gas: u64) -> Self {
        Message {
            kind: CallKind::Call,
            caller,
            target,
            code_address: target,
            value,
            data,
            gas,
            is_static: false,
            depth: 0,
        }
    }

    /// Convenience constructor for a top-level create.
    pub fn create(caller: Address, value: U256, init_code: Vec<u8>, gas: u64) -> Self {
        Message {
            kind: CallKind::Create,
            caller,
            target: Address::ZERO,
            code_address: Address::ZERO,
            value,
            data: init_code,
            gas,
            is_static: false,
            depth: 0,
        }
    }
}

/// Reasons a frame halted exceptionally (all gas is consumed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halt {
    /// Ran out of gas.
    OutOfGas,
    /// Stack underflow.
    StackUnderflow,
    /// Stack deeper than 1024.
    StackOverflow,
    /// Jump to a non-JUMPDEST target.
    InvalidJump,
    /// Undefined or explicitly invalid opcode.
    InvalidOpcode(u8),
    /// State mutation attempted inside a static frame.
    StaticViolation,
    /// Call depth exceeded 1024.
    CallDepth,
    /// Value transfer with insufficient balance.
    InsufficientBalance,
    /// Deployed code exceeds the EIP-170 size cap.
    CodeSizeLimit,
    /// CREATE target address already occupied.
    CreateCollision,
    /// RETURNDATACOPY past the end of the return buffer.
    ReturnDataOutOfBounds,
}

/// Result of executing one message frame.
#[derive(Debug, Clone)]
pub struct CallResult {
    /// True iff the frame ran to completion (STOP/RETURN/SELFDESTRUCT).
    pub success: bool,
    /// True iff the frame ended with REVERT (state rolled back, output kept,
    /// remaining gas returned).
    pub reverted: bool,
    /// Exceptional halt reason, if any.
    pub halt: Option<Halt>,
    /// Return or revert data.
    pub output: Vec<u8>,
    /// Gas remaining after execution (zero on halts).
    pub gas_left: u64,
    /// Gas refund earned (SSTORE clears, selfdestructs).
    pub gas_refund: u64,
    /// Address of the created contract (creates only).
    pub created: Option<Address>,
}

impl CallResult {
    fn halt(reason: Halt) -> Self {
        CallResult {
            success: false,
            reverted: false,
            halt: Some(reason),
            output: Vec::new(),
            gas_left: 0,
            gas_refund: 0,
            created: None,
        }
    }
}

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Cap on deployed code size (EIP-170). Disable by setting `usize::MAX`.
    pub max_code_size: usize,
    /// Count executed instructions (cheap; useful for benches/traces).
    pub count_steps: bool,
    /// Record a structured step trace (see [`TraceStep`]); capped at
    /// [`MAX_TRACE_STEPS`] to bound memory on runaway loops.
    pub trace: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_code_size: gas::MAX_CODE_SIZE,
            count_steps: false,
            trace: false,
        }
    }
}

/// Cap on recorded trace steps.
pub const MAX_TRACE_STEPS: usize = 250_000;

/// One executed instruction in a debug trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Call depth of the executing frame.
    pub depth: u32,
    /// Program counter within the frame's code.
    pub pc: usize,
    /// The opcode byte.
    pub opcode: u8,
    /// Gas remaining *before* executing the instruction.
    pub gas_remaining: u64,
    /// Operand-stack depth before the instruction.
    pub stack_depth: usize,
}

impl TraceStep {
    /// Mnemonic of the traced opcode.
    pub fn mnemonic(&self) -> &'static str {
        opcode::mnemonic(self.opcode)
    }
}

/// Reusable per-frame buffers (operand stack, memory, return data),
/// pooled on the [`Evm`] so nested frames stop reallocating them.
#[derive(Debug)]
struct FrameBufs {
    stack: Stack,
    memory: Memory,
    return_data: Vec<u8>,
}

impl Default for FrameBufs {
    fn default() -> Self {
        FrameBufs {
            stack: Stack::new(),
            memory: Memory::new(),
            return_data: Vec::new(),
        }
    }
}

impl FrameBufs {
    fn reset(&mut self) {
        self.stack.clear();
        self.memory.clear();
        self.return_data.clear();
    }
}

/// The EVM: executes messages against a host.
pub struct Evm<'h, H: Host> {
    host: &'h mut H,
    config: Config,
    /// Instructions executed across all frames (when `count_steps`).
    pub steps: u64,
    /// Structured step trace (when `Config::trace` is set).
    pub trace: Vec<TraceStep>,
    /// Frame-buffer pool: buffers released by completed frames, reused
    /// by the next frame at any depth (fast path only).
    pool: Vec<FrameBufs>,
}

impl<'h, H: Host> Evm<'h, H> {
    /// Create an interpreter bound to `host`.
    pub fn new(host: &'h mut H) -> Self {
        Self::with_config(host, Config::default())
    }

    /// Create with explicit configuration.
    pub fn with_config(host: &'h mut H, config: Config) -> Self {
        Evm {
            host,
            config,
            steps: 0,
            trace: Vec::new(),
            pool: Vec::new(),
        }
    }

    /// Execute a message frame to completion.
    ///
    /// With the fast path on (the default), frames run on the calling
    /// thread and hop to a fresh [`FRAME_STACK_BYTES`] thread every
    /// [`FRAME_HOP`] nesting levels, so the full 1024-frame call depth
    /// still cannot overflow any native stack while typical shallow
    /// transactions pay no thread spawn at all. With the fast path off,
    /// the legacy strategy applies: every top-level message (depth 0)
    /// runs on a dedicated thread with a 64 MiB stack.
    pub fn execute(&mut self, msg: Message) -> CallResult
    where
        H: Send,
    {
        if msg.depth == 0 && !fastpath::enabled() {
            let config = self.config.clone();
            let host = &mut *self.host;
            let (result, steps, trace) = std::thread::scope(|scope| {
                std::thread::Builder::new()
                    .name("lsc-evm-interpreter".into())
                    .stack_size(64 << 20)
                    .spawn_scoped(scope, move || {
                        let mut evm = Evm::with_config(host, config);
                        let result = evm.execute_frame(msg);
                        (result, evm.steps, evm.trace)
                    })
                    .expect("spawn interpreter thread")
                    .join()
                    .expect("interpreter thread panicked")
            });
            self.steps += steps;
            self.trace.extend(trace);
            return result;
        }
        self.execute_frame(msg)
    }

    /// Execute a frame on the current thread (recursive entry point).
    fn execute_frame(&mut self, msg: Message) -> CallResult
    where
        H: Send,
    {
        if msg.depth > MAX_CALL_DEPTH {
            return CallResult::halt(Halt::CallDepth);
        }
        if fastpath::enabled() && msg.depth > 0 && msg.depth.is_multiple_of(FRAME_HOP) {
            return self.execute_on_fresh_stack(msg);
        }
        self.dispatch_frame(msg)
    }

    fn dispatch_frame(&mut self, msg: Message) -> CallResult
    where
        H: Send,
    {
        match msg.kind {
            CallKind::Create | CallKind::Create2(_) => self.execute_create(msg),
            _ => self.execute_call(msg),
        }
    }

    /// Continue execution of `msg` on a fresh thread stack; steps, trace
    /// and the buffer pool are handed over and merged back on return, so
    /// semantics are identical to plain recursion.
    fn execute_on_fresh_stack(&mut self, msg: Message) -> CallResult
    where
        H: Send,
    {
        let config = self.config.clone();
        let host = &mut *self.host;
        let pool = std::mem::take(&mut self.pool);
        let (result, steps, trace, pool) = std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name("lsc-evm-frame".into())
                .stack_size(FRAME_STACK_BYTES)
                .spawn_scoped(scope, move || {
                    let mut evm = Evm::with_config(host, config);
                    evm.pool = pool;
                    let result = evm.dispatch_frame(msg);
                    (result, evm.steps, evm.trace, evm.pool)
                })
                .expect("spawn interpreter thread")
                .join()
                .expect("interpreter thread panicked")
        });
        self.steps += steps;
        let room = MAX_TRACE_STEPS.saturating_sub(self.trace.len());
        self.trace.extend(trace.into_iter().take(room));
        self.pool = pool;
        result
    }

    fn execute_call(&mut self, msg: Message) -> CallResult
    where
        H: Send,
    {
        let snapshot = self.host.snapshot();
        // Value moves from caller to target for plain calls; CALLCODE moves
        // value to self (a no-op transfer but the balance check applies).
        let transfer_ok = match msg.kind {
            CallKind::Call => self.host.transfer(msg.caller, msg.target, msg.value),
            CallKind::CallCode => self.host.balance(msg.caller) >= msg.value,
            _ => true,
        };
        if !transfer_ok {
            self.host.revert(snapshot);
            return CallResult::halt(Halt::InsufficientBalance);
        }
        let analysis = self.host.code_analysis(msg.code_address);
        if analysis.is_empty() {
            // Calling an EOA or empty account succeeds immediately.
            return CallResult {
                success: true,
                reverted: false,
                halt: None,
                output: Vec::new(),
                gas_left: msg.gas,
                gas_refund: 0,
                created: None,
            };
        }
        let result = self.run_frame(&msg, &analysis, msg.target);
        if !result.success {
            self.host.revert(snapshot);
        }
        result
    }

    fn execute_create(&mut self, mut msg: Message) -> CallResult
    where
        H: Send,
    {
        let nonce = self.host.inc_nonce(msg.caller);
        let created = match msg.kind {
            CallKind::Create2(salt) => {
                let mut salt_bytes = [0u8; 32];
                salt_bytes.copy_from_slice(salt.as_bytes());
                Address::create2(msg.caller, salt_bytes, &msg.data)
            }
            _ => Address::create(msg.caller, nonce),
        };
        // Collision check: an account with code or nonce is occupied.
        if !self.host.code_analysis(created).is_empty() || self.host.nonce(created) > 0 {
            return CallResult::halt(Halt::CreateCollision);
        }
        let snapshot = self.host.snapshot();
        self.host.create_account(created);
        self.host.inc_nonce(created); // EIP-161: created contracts start at nonce 1
        if !self.host.transfer(msg.caller, created, msg.value) {
            self.host.revert(snapshot);
            return CallResult::halt(Halt::InsufficientBalance);
        }
        // Init code runs once; analyze it directly without a host cache.
        let init_code = AnalyzedCode::analyze(Arc::new(std::mem::take(&mut msg.data)));
        let frame_msg = Message {
            target: created,
            code_address: created,
            data: Vec::new(),
            ..msg
        };
        let mut result = self.run_frame(&frame_msg, &init_code, created);
        if result.success {
            // The frame's return data is the runtime code to deploy.
            if result.output.len() > self.config.max_code_size {
                self.host.revert(snapshot);
                return CallResult::halt(Halt::CodeSizeLimit);
            }
            let deposit = gas::CODE_DEPOSIT_BYTE * result.output.len() as u64;
            if result.gas_left < deposit {
                self.host.revert(snapshot);
                return CallResult::halt(Halt::OutOfGas);
            }
            result.gas_left -= deposit;
            self.host
                .set_code(created, std::mem::take(&mut result.output));
            result.created = Some(created);
        } else {
            self.host.revert(snapshot);
        }
        result
    }

    /// Run the interpreter loop over `analysis` in the storage context
    /// `this`, checking frame buffers out of (and back into) the pool.
    fn run_frame(&mut self, msg: &Message, analysis: &AnalyzedCode, this: Address) -> CallResult
    where
        H: Send,
    {
        let reuse = fastpath::enabled();
        let mut bufs = if reuse {
            self.pool.pop().unwrap_or_default()
        } else {
            FrameBufs::default()
        };
        bufs.reset();
        // Superinstruction path: only when the toggle is on, no tracing
        // or step counting is requested (those observe per-opcode state
        // the block loop fuses away), and this blob compiled. The plain
        // loop below remains the executable oracle.
        let compiled = if superinstr::enabled()
            && !self.config.trace
            && !self.config.count_steps
            && msg.gas <= i64::MAX as u64
        {
            analysis.compiled()
        } else {
            None
        };
        let result = match compiled {
            Some(c) => self.compiled_loop(msg, analysis, &c, this, &mut bufs),
            None => self.frame_loop(msg, analysis, this, &mut bufs, 0, GasMeter::new(msg.gas)),
        };
        // Oversized memories are dropped rather than parked in the pool.
        if reuse && bufs.memory.capacity() <= POOL_MEMORY_CAP {
            self.pool.push(bufs);
        }
        result
    }

    /// The interpreter loop proper. `pc` and `meter` are normally
    /// `0`/fresh; the compiled path re-enters here mid-frame when it
    /// deopts, handing over the exact machine state.
    #[allow(clippy::too_many_lines)]
    fn frame_loop(
        &mut self,
        msg: &Message,
        analysis: &AnalyzedCode,
        this: Address,
        bufs: &mut FrameBufs,
        mut pc: usize,
        mut meter: GasMeter,
    ) -> CallResult
    where
        H: Send,
    {
        let code = analysis.code();
        let FrameBufs {
            stack,
            memory,
            return_data,
        } = bufs;

        macro_rules! halt {
            ($reason:expr) => {
                return CallResult::halt($reason)
            };
        }
        macro_rules! try_stack {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(StackError::Underflow) => halt!(Halt::StackUnderflow),
                    Err(StackError::Overflow) => halt!(Halt::StackOverflow),
                }
            };
        }
        macro_rules! try_gas {
            ($e:expr) => {
                if let Err(OutOfGas) = $e {
                    halt!(Halt::OutOfGas)
                }
            };
        }

        /// Charge for memory expansion to cover `[offset, offset+len)`.
        macro_rules! expand_memory {
            ($offset:expr, $len:expr) => {{
                let offset: usize = $offset;
                let len: usize = $len;
                if len > 0 {
                    let end = offset.saturating_add(len) as u64;
                    let new_words = gas::words(end);
                    let old_words = memory.words();
                    if new_words > old_words {
                        let cost = gas::memory_gas(new_words) - gas::memory_gas(old_words);
                        try_gas!(meter.charge(cost));
                    }
                    memory.expand(offset, len);
                }
            }};
        }
        /// Pop a U256 and convert to usize, halting on absurd sizes.
        macro_rules! pop_usize {
            () => {{
                let v = try_stack!(stack.pop());
                match v.to_usize() {
                    Some(u) if u <= u32::MAX as usize => u,
                    // Offsets beyond 4 GiB always exhaust gas via memory cost.
                    _ => halt!(Halt::OutOfGas),
                }
            }};
        }

        while pc < code.len() {
            let byte = code[pc];
            if self.config.count_steps {
                self.steps += 1;
            }
            if self.config.trace && self.trace.len() < MAX_TRACE_STEPS {
                self.trace.push(TraceStep {
                    depth: msg.depth,
                    pc,
                    opcode: byte,
                    gas_remaining: meter.remaining(),
                    stack_depth: stack.len(),
                });
            }
            match byte {
                op::STOP => {
                    return CallResult {
                        success: true,
                        reverted: false,
                        halt: None,
                        output: Vec::new(),
                        gas_left: meter.remaining(),
                        gas_refund: meter.refund(),
                        created: None,
                    };
                }
                op::ADD
                | op::SUB
                | op::LT
                | op::GT
                | op::SLT
                | op::SGT
                | op::EQ
                | op::AND
                | op::OR
                | op::XOR
                | op::SHL
                | op::SHR
                | op::SAR
                | op::BYTE => {
                    try_gas!(meter.charge(gas::VERYLOW));
                    let a = try_stack!(stack.pop());
                    let b = try_stack!(stack.pop());
                    let r = match byte {
                        op::ADD => a.wrapping_add(b),
                        op::SUB => a.wrapping_sub(b),
                        op::LT => U256::from(a < b),
                        op::GT => U256::from(a > b),
                        op::SLT => U256::from(a.slt(b)),
                        op::SGT => U256::from(a.sgt(b)),
                        op::EQ => U256::from(a == b),
                        op::AND => a & b,
                        op::OR => a | b,
                        op::XOR => a ^ b,
                        op::SHL => b << a,
                        op::SHR => b >> a,
                        op::SAR => b.sar(a),
                        op::BYTE => b.byte_be(a),
                        _ => unreachable!(),
                    };
                    try_stack!(stack.push(r));
                }
                op::MUL | op::DIV | op::SDIV | op::MOD | op::SMOD | op::SIGNEXTEND => {
                    try_gas!(meter.charge(gas::LOW));
                    let a = try_stack!(stack.pop());
                    let b = try_stack!(stack.pop());
                    let r = match byte {
                        op::MUL => a.wrapping_mul(b),
                        op::DIV => a.div_rem(b).0,
                        op::SDIV => a.sdiv(b),
                        op::MOD => a.div_rem(b).1,
                        op::SMOD => a.smod(b),
                        op::SIGNEXTEND => b.sign_extend(a),
                        _ => unreachable!(),
                    };
                    try_stack!(stack.push(r));
                }
                op::ADDMOD | op::MULMOD => {
                    try_gas!(meter.charge(gas::MID));
                    let a = try_stack!(stack.pop());
                    let b = try_stack!(stack.pop());
                    let m = try_stack!(stack.pop());
                    let r = if byte == op::ADDMOD {
                        a.add_mod(b, m)
                    } else {
                        a.mul_mod(b, m)
                    };
                    try_stack!(stack.push(r));
                }
                op::EXP => {
                    let a = try_stack!(stack.pop());
                    let e = try_stack!(stack.pop());
                    try_gas!(meter.charge(gas::exp_gas(e)));
                    try_stack!(stack.push(a.wrapping_pow(e)));
                }
                op::ISZERO | op::NOT => {
                    try_gas!(meter.charge(gas::VERYLOW));
                    let a = try_stack!(stack.pop());
                    let r = if byte == op::ISZERO {
                        U256::from(a.is_zero())
                    } else {
                        !a
                    };
                    try_stack!(stack.push(r));
                }
                op::KECCAK256 => {
                    let offset = pop_usize!();
                    let len = pop_usize!();
                    try_gas!(
                        meter.charge(gas::KECCAK256 + gas::KECCAK256_WORD * gas::words(len as u64))
                    );
                    expand_memory!(offset, len);
                    let hash = keccak256(memory.slice(offset, len));
                    try_stack!(stack.push(U256::from_be_bytes(hash)));
                }
                op::ADDRESS => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(this.to_u256()));
                }
                op::BALANCE => {
                    try_gas!(meter.charge(gas::BALANCE));
                    let a = Address::from_u256(try_stack!(stack.pop()));
                    try_stack!(stack.push(self.host.balance(a)));
                }
                op::SELFBALANCE => {
                    try_gas!(meter.charge(gas::LOW));
                    try_stack!(stack.push(self.host.balance(this)));
                }
                op::ORIGIN => {
                    // We do not thread the original EOA through frames; the
                    // top-level caller is a fine stand-in for this workspace.
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(msg.caller.to_u256()));
                }
                op::CALLER => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(msg.caller.to_u256()));
                }
                op::CALLVALUE => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(msg.value));
                }
                op::CALLDATALOAD => {
                    try_gas!(meter.charge(gas::VERYLOW));
                    let offset = try_stack!(stack.pop());
                    let mut buf = [0u8; 32];
                    if let Some(off) = offset.to_usize() {
                        for (i, b) in buf.iter_mut().enumerate() {
                            *b = msg.data.get(off + i).copied().unwrap_or(0);
                        }
                    }
                    try_stack!(stack.push(U256::from_be_bytes(buf)));
                }
                op::CALLDATASIZE => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(U256::from(msg.data.len())));
                }
                op::CALLDATACOPY | op::CODECOPY => {
                    let dst = pop_usize!();
                    let src = pop_usize!();
                    let len = pop_usize!();
                    try_gas!(meter.charge(gas::VERYLOW + gas::COPY_WORD * gas::words(len as u64)));
                    expand_memory!(dst, len);
                    if len > 0 {
                        let source: &[u8] = if byte == op::CALLDATACOPY {
                            &msg.data
                        } else {
                            code
                        };
                        let tail = source.get(src..).unwrap_or(&[]);
                        memory.store_slice_padded(dst, tail, len);
                    }
                }
                op::CODESIZE => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(U256::from(code.len())));
                }
                op::GASPRICE => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(self.host.gas_price()));
                }
                op::EXTCODESIZE => {
                    try_gas!(meter.charge(gas::EXTCODE));
                    let a = Address::from_u256(try_stack!(stack.pop()));
                    try_stack!(stack.push(U256::from(self.host.code_analysis(a).len())));
                }
                op::EXTCODECOPY => {
                    let a = Address::from_u256(try_stack!(stack.pop()));
                    let dst = pop_usize!();
                    let src = pop_usize!();
                    let len = pop_usize!();
                    try_gas!(meter.charge(gas::EXTCODE + gas::COPY_WORD * gas::words(len as u64)));
                    expand_memory!(dst, len);
                    if len > 0 {
                        let ext = self.host.code_analysis(a);
                        let tail = ext.code().get(src..).unwrap_or(&[]);
                        memory.store_slice_padded(dst, tail, len);
                    }
                }
                op::EXTCODEHASH => {
                    try_gas!(meter.charge(gas::BALANCE));
                    let a = Address::from_u256(try_stack!(stack.pop()));
                    try_stack!(stack.push(self.host.code_hash(a).to_u256()));
                }
                op::RETURNDATASIZE => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(U256::from(return_data.len())));
                }
                op::RETURNDATACOPY => {
                    let dst = pop_usize!();
                    let src = pop_usize!();
                    let len = pop_usize!();
                    try_gas!(meter.charge(gas::VERYLOW + gas::COPY_WORD * gas::words(len as u64)));
                    if src.saturating_add(len) > return_data.len() {
                        halt!(Halt::ReturnDataOutOfBounds);
                    }
                    expand_memory!(dst, len);
                    if len > 0 {
                        memory.store_slice_padded(dst, &return_data[src..src + len], len);
                    }
                }
                op::BLOCKHASH => {
                    try_gas!(meter.charge(gas::BLOCKHASH));
                    let n = try_stack!(stack.pop());
                    let h = n.to_u64().map_or(H256::ZERO, |n| self.host.blockhash(n));
                    try_stack!(stack.push(h.to_u256()));
                }
                op::COINBASE => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(self.host.block().coinbase.to_u256()));
                }
                op::TIMESTAMP => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(U256::from(self.host.block().timestamp)));
                }
                op::NUMBER => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(U256::from(self.host.block().number)));
                }
                op::DIFFICULTY => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(self.host.block().difficulty));
                }
                op::GASLIMIT => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(U256::from(self.host.block().gas_limit)));
                }
                op::CHAINID => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(U256::from(self.host.block().chain_id)));
                }
                op::POP => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.pop());
                }
                op::MLOAD => {
                    try_gas!(meter.charge(gas::VERYLOW));
                    let offset = pop_usize!();
                    expand_memory!(offset, 32);
                    try_stack!(stack.push(memory.load_word(offset)));
                }
                op::MSTORE => {
                    try_gas!(meter.charge(gas::VERYLOW));
                    let offset = pop_usize!();
                    let value = try_stack!(stack.pop());
                    expand_memory!(offset, 32);
                    memory.store_word(offset, value);
                }
                op::MSTORE8 => {
                    try_gas!(meter.charge(gas::VERYLOW));
                    let offset = pop_usize!();
                    let value = try_stack!(stack.pop());
                    expand_memory!(offset, 1);
                    memory.store_byte(offset, value.low_u64() as u8);
                }
                op::SLOAD => {
                    try_gas!(meter.charge(gas::SLOAD));
                    let key = try_stack!(stack.pop());
                    try_stack!(stack.push(self.host.sload(this, key)));
                }
                op::SSTORE => {
                    if msg.is_static {
                        halt!(Halt::StaticViolation);
                    }
                    let key = try_stack!(stack.pop());
                    let value = try_stack!(stack.pop());
                    let prev = self.host.sload(this, key);
                    let cost = if prev.is_zero() && !value.is_zero() {
                        gas::SSTORE_SET
                    } else {
                        gas::SSTORE_RESET
                    };
                    try_gas!(meter.charge(cost));
                    if !prev.is_zero() && value.is_zero() {
                        meter.add_refund(gas::SSTORE_CLEAR_REFUND);
                    }
                    self.host.sstore(this, key, value);
                }
                op::JUMP => {
                    try_gas!(meter.charge(gas::MID));
                    let dest = try_stack!(stack.pop());
                    match dest.to_usize() {
                        Some(d) if analysis.is_jumpdest(d) => {
                            pc = d;
                            continue;
                        }
                        _ => halt!(Halt::InvalidJump),
                    }
                }
                op::JUMPI => {
                    try_gas!(meter.charge(gas::HIGH));
                    let dest = try_stack!(stack.pop());
                    let cond = try_stack!(stack.pop());
                    if !cond.is_zero() {
                        match dest.to_usize() {
                            Some(d) if analysis.is_jumpdest(d) => {
                                pc = d;
                                continue;
                            }
                            _ => halt!(Halt::InvalidJump),
                        }
                    }
                }
                op::PC => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(U256::from(pc)));
                }
                op::MSIZE => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(U256::from(memory.len())));
                }
                op::GAS => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(U256::from(meter.remaining())));
                }
                op::JUMPDEST => {
                    try_gas!(meter.charge(gas::JUMPDEST));
                }
                op::PUSH0 => {
                    try_gas!(meter.charge(gas::BASE));
                    try_stack!(stack.push(U256::ZERO));
                }
                op::PUSH1..=op::PUSH32 => {
                    try_gas!(meter.charge(gas::VERYLOW));
                    let n = (byte - op::PUSH1 + 1) as usize;
                    let end = (pc + 1 + n).min(code.len());
                    let value = U256::from_be_slice(&code[pc + 1..end]);
                    // Truncated push at end of code zero-pads on the right.
                    let value = if end < pc + 1 + n {
                        value << (8 * (pc + 1 + n - end) as u32)
                    } else {
                        value
                    };
                    try_stack!(stack.push(value));
                    pc += 1 + n;
                    continue;
                }
                op::DUP1..=op::DUP16 => {
                    try_gas!(meter.charge(gas::VERYLOW));
                    try_stack!(stack.dup((byte - op::DUP1 + 1) as usize));
                }
                op::SWAP1..=op::SWAP16 => {
                    try_gas!(meter.charge(gas::VERYLOW));
                    try_stack!(stack.swap((byte - op::SWAP1 + 1) as usize));
                }
                op::LOG0..=op::LOG4 => {
                    if msg.is_static {
                        halt!(Halt::StaticViolation);
                    }
                    let n_topics = (byte - op::LOG0) as usize;
                    let offset = pop_usize!();
                    let len = pop_usize!();
                    try_gas!(meter.charge(
                        gas::LOG + gas::LOG_TOPIC * n_topics as u64 + gas::LOG_DATA * len as u64
                    ));
                    expand_memory!(offset, len);
                    let mut topics = Vec::with_capacity(n_topics);
                    for _ in 0..n_topics {
                        topics.push(H256::from_u256(try_stack!(stack.pop())));
                    }
                    let data = memory.to_vec(offset, len);
                    self.host.log(Log {
                        address: this,
                        topics,
                        data,
                    });
                }
                op::CREATE | op::CREATE2 => {
                    if msg.is_static {
                        halt!(Halt::StaticViolation);
                    }
                    let value = try_stack!(stack.pop());
                    let offset = pop_usize!();
                    let len = pop_usize!();
                    let salt = if byte == op::CREATE2 {
                        let s = try_stack!(stack.pop());
                        // CREATE2 pays to hash the init code.
                        try_gas!(meter.charge(gas::KECCAK256_WORD * gas::words(len as u64)));
                        Some(H256::from_u256(s))
                    } else {
                        None
                    };
                    try_gas!(meter.charge(gas::CREATE));
                    expand_memory!(offset, len);
                    let init_code = memory.to_vec(offset, len);
                    let child_gas = gas::max_call_gas(meter.remaining());
                    try_gas!(meter.charge(child_gas));
                    let kind = match salt {
                        Some(s) => CallKind::Create2(s),
                        None => CallKind::Create,
                    };
                    let child = Message {
                        kind,
                        caller: this,
                        target: Address::ZERO,
                        code_address: Address::ZERO,
                        value,
                        data: init_code,
                        gas: child_gas,
                        is_static: false,
                        depth: msg.depth + 1,
                    };
                    let result = self.execute_frame(child);
                    meter.reclaim(result.gas_left);
                    if result.success {
                        meter.add_refund(result.gas_refund);
                        return_data.clear();
                        let addr = result.created.expect("successful create has address");
                        try_stack!(stack.push(addr.to_u256()));
                    } else {
                        *return_data = result.output;
                        try_stack!(stack.push(U256::ZERO));
                    }
                }
                op::CALL | op::CALLCODE | op::DELEGATECALL | op::STATICCALL => {
                    let gas_requested = try_stack!(stack.pop());
                    let to = Address::from_u256(try_stack!(stack.pop()));
                    let value = if byte == op::CALL || byte == op::CALLCODE {
                        try_stack!(stack.pop())
                    } else {
                        U256::ZERO
                    };
                    if byte == op::CALL && msg.is_static && !value.is_zero() {
                        halt!(Halt::StaticViolation);
                    }
                    let in_off = pop_usize!();
                    let in_len = pop_usize!();
                    let out_off = pop_usize!();
                    let out_len = pop_usize!();
                    let mut upfront = gas::CALL;
                    if !value.is_zero() {
                        upfront += gas::CALL_VALUE;
                        if byte == op::CALL && !self.host.exists(to) {
                            upfront += gas::NEW_ACCOUNT;
                        }
                    }
                    try_gas!(meter.charge(upfront));
                    expand_memory!(in_off, in_len);
                    expand_memory!(out_off, out_len);
                    let cap = gas::max_call_gas(meter.remaining());
                    let mut child_gas = match gas_requested.to_u64() {
                        Some(g) => (g).min(cap),
                        None => cap,
                    };
                    try_gas!(meter.charge(child_gas));
                    if !value.is_zero() {
                        child_gas += gas::CALL_STIPEND;
                    }
                    let data = memory.to_vec(in_off, in_len);
                    let child = match byte {
                        op::CALL => Message {
                            kind: CallKind::Call,
                            caller: this,
                            target: to,
                            code_address: to,
                            value,
                            data,
                            gas: child_gas,
                            is_static: msg.is_static,
                            depth: msg.depth + 1,
                        },
                        op::CALLCODE => Message {
                            kind: CallKind::CallCode,
                            caller: this,
                            target: this,
                            code_address: to,
                            value,
                            data,
                            gas: child_gas,
                            is_static: msg.is_static,
                            depth: msg.depth + 1,
                        },
                        op::DELEGATECALL => Message {
                            kind: CallKind::DelegateCall,
                            caller: msg.caller,
                            target: this,
                            code_address: to,
                            value: msg.value,
                            data,
                            gas: child_gas,
                            is_static: msg.is_static,
                            depth: msg.depth + 1,
                        },
                        _ => Message {
                            kind: CallKind::StaticCall,
                            caller: this,
                            target: to,
                            code_address: to,
                            value: U256::ZERO,
                            data,
                            gas: child_gas,
                            is_static: true,
                            depth: msg.depth + 1,
                        },
                    };
                    let mut result = self.execute_frame(child);
                    // Unused child gas (beyond any stipend) returns to us.
                    meter.reclaim(result.gas_left.min(child_gas));
                    if result.success {
                        meter.add_refund(result.gas_refund);
                    }
                    *return_data = std::mem::take(&mut result.output);
                    let copy_len = out_len.min(return_data.len());
                    if copy_len > 0 {
                        memory.store_slice_padded(out_off, &return_data[..copy_len], copy_len);
                    }
                    try_stack!(stack.push(U256::from(result.success)));
                }
                op::RETURN | op::REVERT => {
                    let offset = pop_usize!();
                    let len = pop_usize!();
                    expand_memory!(offset, len);
                    let output = memory.to_vec(offset, len);
                    let success = byte == op::RETURN;
                    return CallResult {
                        success,
                        reverted: !success,
                        halt: None,
                        output,
                        gas_left: meter.remaining(),
                        gas_refund: if success { meter.refund() } else { 0 },
                        created: None,
                    };
                }
                op::SELFDESTRUCT => {
                    if msg.is_static {
                        halt!(Halt::StaticViolation);
                    }
                    try_gas!(meter.charge(gas::SELFDESTRUCT));
                    let beneficiary = Address::from_u256(try_stack!(stack.pop()));
                    self.host.selfdestruct(this, beneficiary);
                    meter.add_refund(gas::SELFDESTRUCT_REFUND);
                    return CallResult {
                        success: true,
                        reverted: false,
                        halt: None,
                        output: Vec::new(),
                        gas_left: meter.remaining(),
                        gas_refund: meter.refund(),
                        created: None,
                    };
                }
                other => halt!(Halt::InvalidOpcode(other)),
            }
            pc += 1;
        }
        // Fell off the end of the code: implicit STOP.
        CallResult {
            success: true,
            reverted: false,
            halt: None,
            output: Vec::new(),
            gas_left: meter.remaining(),
            gas_refund: meter.refund(),
            created: None,
        }
    }

    /// The superinstruction block loop: one fused static-gas charge and
    /// one stack range check per basic block, threaded block-index
    /// dispatch, pre-decoded immediates. Exactness against `frame_loop`
    /// follows the correction scheme documented in `compile.rs`; on any
    /// path the block form cannot express (entry-check failure, deopt
    /// opcodes) it re-enters `frame_loop` with the live machine state.
    #[allow(clippy::too_many_lines)]
    fn compiled_loop(
        &mut self,
        msg: &Message,
        analysis: &AnalyzedCode,
        compiled: &CompiledCode,
        this: Address,
        bufs: &mut FrameBufs,
    ) -> CallResult
    where
        H: Send,
    {
        let code = analysis.code();
        let limit = msg.gas;
        // Fused remaining gas; may run *behind* the plain meter mid-block
        // (negative) because block statics are charged up front. At block
        // boundaries it equals the plain remaining exactly.
        let mut fused: i64 = limit as i64;
        let mut refund: u64 = 0;

        macro_rules! halt {
            ($reason:expr) => {
                return CallResult::halt($reason)
            };
        }
        macro_rules! pop {
            () => {
                match bufs.stack.pop() {
                    Ok(v) => v,
                    Err(_) => halt!(Halt::StackUnderflow),
                }
            };
        }
        macro_rules! push {
            ($v:expr) => {
                match bufs.stack.push($v) {
                    Ok(()) => {}
                    Err(StackError::Overflow) => halt!(Halt::StackOverflow),
                    Err(StackError::Underflow) => halt!(Halt::StackUnderflow),
                }
            };
        }
        /// Mirror of the plain loop's `pop_usize!`.
        macro_rules! pop_usize {
            () => {{
                let v = pop!();
                match v.to_usize() {
                    Some(u) if u <= u32::MAX as usize => u,
                    _ => halt!(Halt::OutOfGas),
                }
            }};
        }
        /// Charge a dynamic extra at a checkpoint: the plain meter
        /// survives iff `fused + corr_post >= extra`.
        macro_rules! charge_extra {
            ($corr:expr, $amount:expr) => {{
                let amount: u64 = $amount;
                if amount > i64::MAX as u64 || fused + i64::from($corr) < amount as i64 {
                    halt!(Halt::OutOfGas)
                }
                fused -= amount as i64;
            }};
        }
        /// Mirror of the plain loop's `expand_memory!`, charging the
        /// growth against the corrected fused counter.
        macro_rules! expand_memory {
            ($corr:expr, $offset:expr, $len:expr) => {{
                let offset: usize = $offset;
                let len: usize = $len;
                if len > 0 {
                    let end = offset.saturating_add(len) as u64;
                    let new_words = gas::words(end);
                    let old_words = bufs.memory.words();
                    if new_words > old_words {
                        let cost = gas::memory_gas(new_words) - gas::memory_gas(old_words);
                        charge_extra!($corr, cost);
                    }
                    bufs.memory.expand(offset, len);
                }
            }};
        }
        /// Hand the frame to the plain loop at `pc` with plain-remaining
        /// gas `rem` (callers guarantee `rem >= 0` was materialized).
        macro_rules! deopt {
            ($pc:expr, $rem:expr) => {{
                let rem: u64 = $rem;
                let mut meter = GasMeter::new(limit);
                let _ = meter.charge(limit - rem);
                meter.add_refund(refund);
                return self.frame_loop(msg, analysis, this, bufs, $pc, meter);
            }};
        }

        let mut block_id: usize = 0;
        'blocks: loop {
            // Materialize an out-of-gas the plain meter already hit (the
            // fused counter can only sink further, so every loop back
            // edge terminates here).
            if fused < 0 {
                halt!(Halt::OutOfGas);
            }
            let blk = &compiled.blocks[block_id];
            // ONE stack range check + ONE static gas charge per block.
            // On failure the plain loop is guaranteed to halt inside
            // this block; deopt so it picks the exact first violation.
            let depth = bufs.stack.len() as i64;
            if depth < i64::from(blk.needed)
                || depth + blk.max_growth > STACK_LIMIT as i64
                || fused < blk.static_gas as i64
            {
                deopt!(blk.start_pc as usize, fused as u64);
            }
            fused -= blk.static_gas as i64;

            let first = blk.first as usize;
            for idx in first..first + blk.len as usize {
                let ins = &compiled.instrs[idx];
                let corr = ins.corr_post;
                match ins.op {
                    COp::Nop => {}
                    COp::Push(v) => push!(v),
                    COp::JumpStatic(t) => {
                        if fused < 0 {
                            halt!(Halt::OutOfGas);
                        }
                        block_id = t as usize;
                        continue 'blocks;
                    }
                    COp::JumpIStatic(t) => {
                        if fused < 0 {
                            halt!(Halt::OutOfGas);
                        }
                        let cond = pop!();
                        if !cond.is_zero() {
                            block_id = t as usize;
                            continue 'blocks;
                        }
                    }
                    COp::MStoreK(offset) => {
                        if fused + i64::from(corr) < 0 {
                            halt!(Halt::OutOfGas);
                        }
                        let value = pop!();
                        expand_memory!(corr, offset as usize, 32);
                        bufs.memory.store_word(offset as usize, value);
                    }
                    COp::MLoadK(offset) => {
                        if fused + i64::from(corr) < 0 {
                            halt!(Halt::OutOfGas);
                        }
                        expand_memory!(corr, offset as usize, 32);
                        push!(bufs.memory.load_word(offset as usize));
                    }
                    COp::ReturnK {
                        offset,
                        len,
                        revert,
                    } => {
                        if fused < 0 {
                            halt!(Halt::OutOfGas);
                        }
                        expand_memory!(corr, offset as usize, len as usize);
                        let output = bufs.memory.to_vec(offset as usize, len as usize);
                        return CallResult {
                            success: !revert,
                            reverted: revert,
                            halt: None,
                            output,
                            gas_left: fused as u64,
                            gas_refund: if revert { 0 } else { refund },
                            created: None,
                        };
                    }
                    COp::Deopt(byte) => {
                        let corr_pre = i64::from(corr) + opcode::base_gas(byte) as i64;
                        if fused + corr_pre < 0 {
                            halt!(Halt::OutOfGas);
                        }
                        deopt!(ins.pc as usize, (fused + corr_pre) as u64);
                    }
                    COp::Plain(byte) => match byte {
                        op::STOP => {
                            if fused < 0 {
                                halt!(Halt::OutOfGas);
                            }
                            return CallResult {
                                success: true,
                                reverted: false,
                                halt: None,
                                output: Vec::new(),
                                gas_left: fused as u64,
                                gas_refund: refund,
                                created: None,
                            };
                        }
                        op::ADD
                        | op::SUB
                        | op::LT
                        | op::GT
                        | op::SLT
                        | op::SGT
                        | op::EQ
                        | op::AND
                        | op::OR
                        | op::XOR
                        | op::SHL
                        | op::SHR
                        | op::SAR
                        | op::BYTE => {
                            let a = pop!();
                            let b = pop!();
                            let r = match byte {
                                op::ADD => a.wrapping_add(b),
                                op::SUB => a.wrapping_sub(b),
                                op::LT => U256::from(a < b),
                                op::GT => U256::from(a > b),
                                op::SLT => U256::from(a.slt(b)),
                                op::SGT => U256::from(a.sgt(b)),
                                op::EQ => U256::from(a == b),
                                op::AND => a & b,
                                op::OR => a | b,
                                op::XOR => a ^ b,
                                op::SHL => b << a,
                                op::SHR => b >> a,
                                op::SAR => b.sar(a),
                                op::BYTE => b.byte_be(a),
                                _ => unreachable!(),
                            };
                            push!(r);
                        }
                        op::MUL | op::DIV | op::SDIV | op::MOD | op::SMOD | op::SIGNEXTEND => {
                            let a = pop!();
                            let b = pop!();
                            let r = match byte {
                                op::MUL => a.wrapping_mul(b),
                                op::DIV => a.div_rem(b).0,
                                op::SDIV => a.sdiv(b),
                                op::MOD => a.div_rem(b).1,
                                op::SMOD => a.smod(b),
                                op::SIGNEXTEND => b.sign_extend(a),
                                _ => unreachable!(),
                            };
                            push!(r);
                        }
                        op::ADDMOD | op::MULMOD => {
                            let a = pop!();
                            let b = pop!();
                            let m = pop!();
                            let r = if byte == op::ADDMOD {
                                a.add_mod(b, m)
                            } else {
                                a.mul_mod(b, m)
                            };
                            push!(r);
                        }
                        op::EXP => {
                            let a = pop!();
                            let e = pop!();
                            charge_extra!(corr, gas::EXP_BYTE * e.byte_len() as u64);
                            push!(a.wrapping_pow(e));
                        }
                        op::ISZERO | op::NOT => {
                            let a = pop!();
                            push!(if byte == op::ISZERO {
                                U256::from(a.is_zero())
                            } else {
                                !a
                            });
                        }
                        op::KECCAK256 => {
                            let offset = pop_usize!();
                            let len = pop_usize!();
                            charge_extra!(corr, gas::KECCAK256_WORD * gas::words(len as u64));
                            expand_memory!(corr, offset, len);
                            let hash = keccak256(bufs.memory.slice(offset, len));
                            push!(U256::from_be_bytes(hash));
                        }
                        op::ADDRESS => push!(this.to_u256()),
                        op::BALANCE => {
                            let a = Address::from_u256(pop!());
                            push!(self.host.balance(a));
                        }
                        op::SELFBALANCE => push!(self.host.balance(this)),
                        op::ORIGIN | op::CALLER => push!(msg.caller.to_u256()),
                        op::CALLVALUE => push!(msg.value),
                        op::CALLDATALOAD => {
                            let offset = pop!();
                            let mut buf = [0u8; 32];
                            if let Some(off) = offset.to_usize() {
                                for (i, b) in buf.iter_mut().enumerate() {
                                    *b = msg.data.get(off + i).copied().unwrap_or(0);
                                }
                            }
                            push!(U256::from_be_bytes(buf));
                        }
                        op::CALLDATASIZE => push!(U256::from(msg.data.len())),
                        op::CALLDATACOPY | op::CODECOPY => {
                            let dst = pop_usize!();
                            let src = pop_usize!();
                            let len = pop_usize!();
                            charge_extra!(corr, gas::COPY_WORD * gas::words(len as u64));
                            expand_memory!(corr, dst, len);
                            if len > 0 {
                                let source: &[u8] = if byte == op::CALLDATACOPY {
                                    &msg.data
                                } else {
                                    code
                                };
                                let tail = source.get(src..).unwrap_or(&[]);
                                bufs.memory.store_slice_padded(dst, tail, len);
                            }
                        }
                        op::CODESIZE => push!(U256::from(code.len())),
                        op::GASPRICE => push!(self.host.gas_price()),
                        op::EXTCODESIZE => {
                            let a = Address::from_u256(pop!());
                            push!(U256::from(self.host.code_analysis(a).len()));
                        }
                        op::EXTCODEHASH => {
                            let a = Address::from_u256(pop!());
                            push!(self.host.code_hash(a).to_u256());
                        }
                        op::RETURNDATASIZE => push!(U256::from(bufs.return_data.len())),
                        op::RETURNDATACOPY => {
                            let dst = pop_usize!();
                            let src = pop_usize!();
                            let len = pop_usize!();
                            charge_extra!(corr, gas::COPY_WORD * gas::words(len as u64));
                            if src.saturating_add(len) > bufs.return_data.len() {
                                halt!(Halt::ReturnDataOutOfBounds);
                            }
                            expand_memory!(corr, dst, len);
                            if len > 0 {
                                let data: Vec<u8> = bufs.return_data[src..src + len].to_vec();
                                bufs.memory.store_slice_padded(dst, &data, len);
                            }
                        }
                        op::BLOCKHASH => {
                            let n = pop!();
                            let h = n.to_u64().map_or(H256::ZERO, |n| self.host.blockhash(n));
                            push!(h.to_u256());
                        }
                        op::COINBASE => push!(self.host.block().coinbase.to_u256()),
                        op::TIMESTAMP => push!(U256::from(self.host.block().timestamp)),
                        op::NUMBER => push!(U256::from(self.host.block().number)),
                        op::DIFFICULTY => push!(self.host.block().difficulty),
                        op::GASLIMIT => push!(U256::from(self.host.block().gas_limit)),
                        op::CHAINID => push!(U256::from(self.host.block().chain_id)),
                        op::POP => {
                            pop!();
                        }
                        op::MLOAD => {
                            let offset = pop_usize!();
                            expand_memory!(corr, offset, 32);
                            push!(bufs.memory.load_word(offset));
                        }
                        op::MSTORE => {
                            let offset = pop_usize!();
                            let value = pop!();
                            expand_memory!(corr, offset, 32);
                            bufs.memory.store_word(offset, value);
                        }
                        op::MSTORE8 => {
                            let offset = pop_usize!();
                            let value = pop!();
                            expand_memory!(corr, offset, 1);
                            bufs.memory.store_byte(offset, value.low_u64() as u8);
                        }
                        op::SLOAD => {
                            let key = pop!();
                            push!(self.host.sload(this, key));
                        }
                        op::SSTORE => {
                            // Reach check before the static-context check:
                            // a plain meter that died earlier in the block
                            // reports OutOfGas, not StaticViolation.
                            if fused + i64::from(corr) + (gas::SSTORE_RESET as i64) < 0 {
                                halt!(Halt::OutOfGas);
                            }
                            if msg.is_static {
                                halt!(Halt::StaticViolation);
                            }
                            let key = pop!();
                            let value = pop!();
                            let prev = self.host.sload(this, key);
                            let extra = if prev.is_zero() && !value.is_zero() {
                                gas::SSTORE_SET - gas::SSTORE_RESET
                            } else {
                                0
                            };
                            charge_extra!(corr, extra);
                            if !prev.is_zero() && value.is_zero() {
                                refund = refund.saturating_add(gas::SSTORE_CLEAR_REFUND);
                            }
                            self.host.sstore(this, key, value);
                        }
                        op::JUMP => {
                            if fused < 0 {
                                halt!(Halt::OutOfGas);
                            }
                            let dest = pop!();
                            match dest.to_usize().and_then(|d| compiled.jump_target(d)) {
                                Some(t) => {
                                    block_id = t as usize;
                                    continue 'blocks;
                                }
                                None => halt!(Halt::InvalidJump),
                            }
                        }
                        op::JUMPI => {
                            if fused < 0 {
                                halt!(Halt::OutOfGas);
                            }
                            let dest = pop!();
                            let cond = pop!();
                            if !cond.is_zero() {
                                match dest.to_usize().and_then(|d| compiled.jump_target(d)) {
                                    Some(t) => {
                                        block_id = t as usize;
                                        continue 'blocks;
                                    }
                                    None => halt!(Halt::InvalidJump),
                                }
                            }
                        }
                        op::PC => push!(U256::from(ins.pc as usize)),
                        op::MSIZE => push!(U256::from(bufs.memory.len())),
                        op::GAS => {
                            // Observable: must match the plain remaining
                            // after GAS's own BASE charge.
                            if fused + i64::from(corr) < 0 {
                                halt!(Halt::OutOfGas);
                            }
                            push!(U256::from((fused + i64::from(corr)) as u64));
                        }
                        op::JUMPDEST => {}
                        op::DUP1..=op::DUP16 => {
                            match bufs.stack.dup((byte - op::DUP1 + 1) as usize) {
                                Ok(()) => {}
                                Err(StackError::Overflow) => halt!(Halt::StackOverflow),
                                Err(StackError::Underflow) => halt!(Halt::StackUnderflow),
                            }
                        }
                        op::SWAP1..=op::SWAP16 => {
                            match bufs.stack.swap((byte - op::SWAP1 + 1) as usize) {
                                Ok(()) => {}
                                Err(StackError::Overflow) => halt!(Halt::StackOverflow),
                                Err(StackError::Underflow) => halt!(Halt::StackUnderflow),
                            }
                        }
                        op::LOG0..=op::LOG4 => {
                            let n_topics = (byte - op::LOG0) as usize;
                            let static_part = gas::LOG + gas::LOG_TOPIC * n_topics as u64;
                            if fused + i64::from(corr) + (static_part as i64) < 0 {
                                halt!(Halt::OutOfGas);
                            }
                            if msg.is_static {
                                halt!(Halt::StaticViolation);
                            }
                            let offset = pop_usize!();
                            let len = pop_usize!();
                            charge_extra!(corr, gas::LOG_DATA * len as u64);
                            expand_memory!(corr, offset, len);
                            let mut topics = Vec::with_capacity(n_topics);
                            for _ in 0..n_topics {
                                topics.push(H256::from_u256(pop!()));
                            }
                            let data = bufs.memory.to_vec(offset, len);
                            self.host.log(Log {
                                address: this,
                                topics,
                                data,
                            });
                        }
                        op::CALL | op::CALLCODE | op::DELEGATECALL | op::STATICCALL => {
                            if fused + i64::from(corr) + (gas::CALL as i64) < 0 {
                                halt!(Halt::OutOfGas);
                            }
                            let gas_requested = pop!();
                            let to = Address::from_u256(pop!());
                            let value = if byte == op::CALL || byte == op::CALLCODE {
                                pop!()
                            } else {
                                U256::ZERO
                            };
                            if byte == op::CALL && msg.is_static && !value.is_zero() {
                                halt!(Halt::StaticViolation);
                            }
                            let in_off = pop_usize!();
                            let in_len = pop_usize!();
                            let out_off = pop_usize!();
                            let out_len = pop_usize!();
                            let mut extra = 0u64;
                            if !value.is_zero() {
                                extra += gas::CALL_VALUE;
                                if byte == op::CALL && !self.host.exists(to) {
                                    extra += gas::NEW_ACCOUNT;
                                }
                            }
                            charge_extra!(corr, extra);
                            expand_memory!(corr, in_off, in_len);
                            expand_memory!(corr, out_off, out_len);
                            let plain_rem = (fused + i64::from(corr)) as u64;
                            let cap = gas::max_call_gas(plain_rem);
                            let mut child_gas = match gas_requested.to_u64() {
                                Some(g) => g.min(cap),
                                None => cap,
                            };
                            charge_extra!(corr, child_gas);
                            if !value.is_zero() {
                                child_gas += gas::CALL_STIPEND;
                            }
                            let data = bufs.memory.to_vec(in_off, in_len);
                            let child = match byte {
                                op::CALL => Message {
                                    kind: CallKind::Call,
                                    caller: this,
                                    target: to,
                                    code_address: to,
                                    value,
                                    data,
                                    gas: child_gas,
                                    is_static: msg.is_static,
                                    depth: msg.depth + 1,
                                },
                                op::CALLCODE => Message {
                                    kind: CallKind::CallCode,
                                    caller: this,
                                    target: this,
                                    code_address: to,
                                    value,
                                    data,
                                    gas: child_gas,
                                    is_static: msg.is_static,
                                    depth: msg.depth + 1,
                                },
                                op::DELEGATECALL => Message {
                                    kind: CallKind::DelegateCall,
                                    caller: msg.caller,
                                    target: this,
                                    code_address: to,
                                    value: msg.value,
                                    data,
                                    gas: child_gas,
                                    is_static: msg.is_static,
                                    depth: msg.depth + 1,
                                },
                                _ => Message {
                                    kind: CallKind::StaticCall,
                                    caller: this,
                                    target: to,
                                    code_address: to,
                                    value: U256::ZERO,
                                    data,
                                    gas: child_gas,
                                    is_static: true,
                                    depth: msg.depth + 1,
                                },
                            };
                            let mut result = self.execute_frame(child);
                            fused += result.gas_left.min(child_gas) as i64;
                            if result.success {
                                refund = refund.saturating_add(result.gas_refund);
                            }
                            bufs.return_data = std::mem::take(&mut result.output);
                            let copy_len = out_len.min(bufs.return_data.len());
                            if copy_len > 0 {
                                let out: Vec<u8> = bufs.return_data[..copy_len].to_vec();
                                bufs.memory.store_slice_padded(out_off, &out, copy_len);
                            }
                            push!(U256::from(result.success));
                        }
                        op::RETURN | op::REVERT => {
                            if fused < 0 {
                                halt!(Halt::OutOfGas);
                            }
                            let offset = pop_usize!();
                            let len = pop_usize!();
                            expand_memory!(corr, offset, len);
                            let output = bufs.memory.to_vec(offset, len);
                            let success = byte == op::RETURN;
                            return CallResult {
                                success,
                                reverted: !success,
                                halt: None,
                                output,
                                gas_left: fused as u64,
                                gas_refund: if success { refund } else { 0 },
                                created: None,
                            };
                        }
                        other => {
                            // Undefined byte: a block terminator on both
                            // paths. A pending OOG wins, as in plain.
                            if fused < 0 {
                                halt!(Halt::OutOfGas);
                            }
                            halt!(Halt::InvalidOpcode(other));
                        }
                    },
                }
            }

            // Fell off the block's end: thread into the next block or,
            // past the last instruction, implicit STOP.
            if blk.falls_through && block_id + 1 < compiled.blocks.len() {
                block_id += 1;
                continue 'blocks;
            }
            if fused < 0 {
                halt!(Halt::OutOfGas);
            }
            return CallResult {
                success: true,
                reverted: false,
                halt: None,
                output: Vec::new(),
                gas_left: fused as u64,
                gas_refund: refund,
                created: None,
            };
        }
    }
}
