//! Byte-addressed frame memory with word-granular expansion accounting.

use lsc_primitives::U256;

/// Expandable zero-initialized memory for one call frame.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    data: Vec<u8>,
}

impl Memory {
    /// Empty memory.
    pub fn new() -> Self {
        Memory { data: Vec::new() }
    }

    /// Current size in bytes (always a multiple of 32).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Reset to empty while keeping the allocation (frame-pool reuse).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Allocated capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// True if never expanded.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Current size in 32-byte words.
    pub fn words(&self) -> u64 {
        (self.data.len() / 32) as u64
    }

    /// Grow to cover `offset + len` bytes, rounding up to a word.
    /// Returns the new word count (for gas accounting by the caller).
    pub fn expand(&mut self, offset: usize, len: usize) -> u64 {
        if len == 0 {
            return self.words();
        }
        let end = offset.saturating_add(len);
        let target_words = end.div_ceil(32);
        if target_words * 32 > self.data.len() {
            self.data.resize(target_words * 32, 0);
        }
        self.words()
    }

    /// Read 32 bytes at `offset` as a word (memory must already cover it).
    pub fn load_word(&self, offset: usize) -> U256 {
        let mut buf = [0u8; 32];
        buf.copy_from_slice(&self.data[offset..offset + 32]);
        U256::from_be_bytes(buf)
    }

    /// Write a 32-byte word at `offset`.
    pub fn store_word(&mut self, offset: usize, value: U256) {
        self.data[offset..offset + 32].copy_from_slice(&value.to_be_bytes());
    }

    /// Write a single byte at `offset`.
    pub fn store_byte(&mut self, offset: usize, value: u8) {
        self.data[offset] = value;
    }

    /// Copy `src` into memory at `offset`, zero-filling if `src` is shorter
    /// than `len` (EVM copy semantics for out-of-range source reads).
    pub fn store_slice_padded(&mut self, offset: usize, src: &[u8], len: usize) {
        let copy = src.len().min(len);
        self.data[offset..offset + copy].copy_from_slice(&src[..copy]);
        for b in &mut self.data[offset + copy..offset + len] {
            *b = 0;
        }
    }

    /// Borrow `len` bytes starting at `offset`. A zero-length read is
    /// valid at any offset (the EVM charges no expansion for it, so the
    /// offset may point past the end of memory).
    pub fn slice(&self, offset: usize, len: usize) -> &[u8] {
        if len == 0 {
            return &[];
        }
        &self.data[offset..offset + len]
    }

    /// Copy out `len` bytes starting at `offset` (zero-length reads are
    /// valid at any offset).
    pub fn to_vec(&self, offset: usize, len: usize) -> Vec<u8> {
        self.slice(offset, len).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_rounds_to_words() {
        let mut m = Memory::new();
        assert_eq!(m.expand(0, 1), 1);
        assert_eq!(m.len(), 32);
        assert_eq!(m.expand(30, 4), 2);
        assert_eq!(m.len(), 64);
        // Zero-length expansion never grows.
        assert_eq!(m.expand(1000, 0), 2);
    }

    #[test]
    fn word_roundtrip() {
        let mut m = Memory::new();
        m.expand(0, 64);
        let v = U256::from_u64(0xdead_beef);
        m.store_word(32, v);
        assert_eq!(m.load_word(32), v);
        assert_eq!(m.load_word(0), U256::ZERO);
    }

    #[test]
    fn padded_copy_zero_fills() {
        let mut m = Memory::new();
        m.expand(0, 32);
        m.store_slice_padded(0, &[1, 2, 3], 8);
        assert_eq!(m.slice(0, 8), &[1, 2, 3, 0, 0, 0, 0, 0]);
        // Overwrite with shorter source zeroes the tail.
        m.store_slice_padded(0, &[9], 3);
        assert_eq!(m.slice(0, 4), &[9, 0, 0, 0]);
    }

    #[test]
    fn store_byte() {
        let mut m = Memory::new();
        m.expand(0, 32);
        m.store_byte(5, 0xab);
        assert_eq!(m.slice(5, 1), &[0xab]);
    }
}
