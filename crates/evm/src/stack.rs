//! The EVM operand stack: 256-bit words, maximum depth 1024.

use lsc_primitives::U256;

/// Maximum stack depth mandated by the Yellow Paper.
pub const STACK_LIMIT: usize = 1024;

/// Stack errors surface as frame halts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackError {
    /// Pop/dup/swap on too few items.
    Underflow,
    /// Push beyond 1024 items.
    Overflow,
}

/// The operand stack.
#[derive(Debug, Clone, Default)]
pub struct Stack {
    items: Vec<U256>,
}

impl Stack {
    /// An empty stack with capacity reserved for typical frames.
    pub fn new() -> Self {
        Stack {
            items: Vec::with_capacity(64),
        }
    }

    /// Current depth.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Reset to empty while keeping the allocation (frame-pool reuse).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Push a word.
    #[inline]
    pub fn push(&mut self, value: U256) -> Result<(), StackError> {
        if self.items.len() >= STACK_LIMIT {
            return Err(StackError::Overflow);
        }
        self.items.push(value);
        Ok(())
    }

    /// Pop a word.
    #[inline]
    pub fn pop(&mut self) -> Result<U256, StackError> {
        self.items.pop().ok_or(StackError::Underflow)
    }

    /// Peek at depth `n` (0 = top) without popping.
    #[inline]
    pub fn peek(&self, n: usize) -> Result<U256, StackError> {
        let len = self.items.len();
        if n >= len {
            return Err(StackError::Underflow);
        }
        Ok(self.items[len - 1 - n])
    }

    /// `DUPn`: duplicate the word at depth `n-1` onto the top.
    pub fn dup(&mut self, n: usize) -> Result<(), StackError> {
        let v = self.peek(n - 1)?;
        self.push(v)
    }

    /// `SWAPn`: exchange the top with the word at depth `n`.
    pub fn swap(&mut self, n: usize) -> Result<(), StackError> {
        let len = self.items.len();
        if n >= len {
            return Err(StackError::Underflow);
        }
        self.items.swap(len - 1, len - 1 - n);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn push_pop_lifo() {
        let mut s = Stack::new();
        s.push(u(1)).unwrap();
        s.push(u(2)).unwrap();
        assert_eq!(s.pop().unwrap(), u(2));
        assert_eq!(s.pop().unwrap(), u(1));
        assert_eq!(s.pop(), Err(StackError::Underflow));
    }

    #[test]
    fn dup_and_swap() {
        let mut s = Stack::new();
        for i in 1..=3 {
            s.push(u(i)).unwrap();
        }
        s.dup(3).unwrap(); // duplicates the bottom (1)
        assert_eq!(s.peek(0).unwrap(), u(1));
        s.pop().unwrap();
        s.swap(2).unwrap(); // swap top (3) with bottom (1)
        assert_eq!(s.pop().unwrap(), u(1));
        assert_eq!(s.peek(1).unwrap(), u(3));
    }

    #[test]
    fn overflow_at_limit() {
        let mut s = Stack::new();
        for i in 0..STACK_LIMIT {
            s.push(u(i as u64)).unwrap();
        }
        assert_eq!(s.push(u(0)), Err(StackError::Overflow));
        assert_eq!(s.len(), STACK_LIMIT);
    }

    #[test]
    fn underflow_on_dup_swap() {
        let mut s = Stack::new();
        s.push(u(9)).unwrap();
        assert_eq!(s.dup(2), Err(StackError::Underflow));
        assert_eq!(s.swap(1), Err(StackError::Underflow));
    }
}
