//! EVM opcode definitions and static metadata (mnemonics, base gas,
//! stack arity). The subset implemented covers everything the paper's
//! contracts (and our Solidity-subset compiler) can emit, plus the general
//! arithmetic/flow set so hand-written bytecode tests can exercise the
//! interpreter thoroughly.

/// Raw opcode byte values.
#[allow(missing_docs)]
pub mod op {
    pub const STOP: u8 = 0x00;
    pub const ADD: u8 = 0x01;
    pub const MUL: u8 = 0x02;
    pub const SUB: u8 = 0x03;
    pub const DIV: u8 = 0x04;
    pub const SDIV: u8 = 0x05;
    pub const MOD: u8 = 0x06;
    pub const SMOD: u8 = 0x07;
    pub const ADDMOD: u8 = 0x08;
    pub const MULMOD: u8 = 0x09;
    pub const EXP: u8 = 0x0a;
    pub const SIGNEXTEND: u8 = 0x0b;
    pub const LT: u8 = 0x10;
    pub const GT: u8 = 0x11;
    pub const SLT: u8 = 0x12;
    pub const SGT: u8 = 0x13;
    pub const EQ: u8 = 0x14;
    pub const ISZERO: u8 = 0x15;
    pub const AND: u8 = 0x16;
    pub const OR: u8 = 0x17;
    pub const XOR: u8 = 0x18;
    pub const NOT: u8 = 0x19;
    pub const BYTE: u8 = 0x1a;
    pub const SHL: u8 = 0x1b;
    pub const SHR: u8 = 0x1c;
    pub const SAR: u8 = 0x1d;
    pub const KECCAK256: u8 = 0x20;
    pub const ADDRESS: u8 = 0x30;
    pub const BALANCE: u8 = 0x31;
    pub const ORIGIN: u8 = 0x32;
    pub const CALLER: u8 = 0x33;
    pub const CALLVALUE: u8 = 0x34;
    pub const CALLDATALOAD: u8 = 0x35;
    pub const CALLDATASIZE: u8 = 0x36;
    pub const CALLDATACOPY: u8 = 0x37;
    pub const CODESIZE: u8 = 0x38;
    pub const CODECOPY: u8 = 0x39;
    pub const GASPRICE: u8 = 0x3a;
    pub const EXTCODESIZE: u8 = 0x3b;
    pub const EXTCODECOPY: u8 = 0x3c;
    pub const RETURNDATASIZE: u8 = 0x3d;
    pub const RETURNDATACOPY: u8 = 0x3e;
    pub const EXTCODEHASH: u8 = 0x3f;
    pub const BLOCKHASH: u8 = 0x40;
    pub const COINBASE: u8 = 0x41;
    pub const TIMESTAMP: u8 = 0x42;
    pub const NUMBER: u8 = 0x43;
    pub const DIFFICULTY: u8 = 0x44;
    pub const GASLIMIT: u8 = 0x45;
    pub const CHAINID: u8 = 0x46;
    pub const SELFBALANCE: u8 = 0x47;
    pub const POP: u8 = 0x50;
    pub const MLOAD: u8 = 0x51;
    pub const MSTORE: u8 = 0x52;
    pub const MSTORE8: u8 = 0x53;
    pub const SLOAD: u8 = 0x54;
    pub const SSTORE: u8 = 0x55;
    pub const JUMP: u8 = 0x56;
    pub const JUMPI: u8 = 0x57;
    pub const PC: u8 = 0x58;
    pub const MSIZE: u8 = 0x59;
    pub const GAS: u8 = 0x5a;
    pub const JUMPDEST: u8 = 0x5b;
    pub const PUSH0: u8 = 0x5f;
    pub const PUSH1: u8 = 0x60;
    pub const PUSH32: u8 = 0x7f;
    pub const DUP1: u8 = 0x80;
    pub const DUP2: u8 = 0x81;
    pub const DUP3: u8 = 0x82;
    pub const DUP4: u8 = 0x83;
    pub const DUP16: u8 = 0x8f;
    pub const SWAP1: u8 = 0x90;
    pub const SWAP2: u8 = 0x91;
    pub const SWAP3: u8 = 0x92;
    pub const SWAP4: u8 = 0x93;
    pub const SWAP16: u8 = 0x9f;
    pub const LOG0: u8 = 0xa0;
    pub const LOG4: u8 = 0xa4;
    pub const CREATE: u8 = 0xf0;
    pub const CALL: u8 = 0xf1;
    pub const CALLCODE: u8 = 0xf2;
    pub const RETURN: u8 = 0xf3;
    pub const DELEGATECALL: u8 = 0xf4;
    pub const CREATE2: u8 = 0xf5;
    pub const STATICCALL: u8 = 0xfa;
    pub const REVERT: u8 = 0xfd;
    pub const INVALID: u8 = 0xfe;
    pub const SELFDESTRUCT: u8 = 0xff;
}

/// Human-readable mnemonic for an opcode byte (used by the disassembler
/// and execution traces).
pub fn mnemonic(byte: u8) -> &'static str {
    use op::*;
    match byte {
        STOP => "STOP",
        ADD => "ADD",
        MUL => "MUL",
        SUB => "SUB",
        DIV => "DIV",
        SDIV => "SDIV",
        MOD => "MOD",
        SMOD => "SMOD",
        ADDMOD => "ADDMOD",
        MULMOD => "MULMOD",
        EXP => "EXP",
        SIGNEXTEND => "SIGNEXTEND",
        LT => "LT",
        GT => "GT",
        SLT => "SLT",
        SGT => "SGT",
        EQ => "EQ",
        ISZERO => "ISZERO",
        AND => "AND",
        OR => "OR",
        XOR => "XOR",
        NOT => "NOT",
        BYTE => "BYTE",
        SHL => "SHL",
        SHR => "SHR",
        SAR => "SAR",
        KECCAK256 => "KECCAK256",
        ADDRESS => "ADDRESS",
        BALANCE => "BALANCE",
        ORIGIN => "ORIGIN",
        CALLER => "CALLER",
        CALLVALUE => "CALLVALUE",
        CALLDATALOAD => "CALLDATALOAD",
        CALLDATASIZE => "CALLDATASIZE",
        CALLDATACOPY => "CALLDATACOPY",
        CODESIZE => "CODESIZE",
        CODECOPY => "CODECOPY",
        GASPRICE => "GASPRICE",
        EXTCODESIZE => "EXTCODESIZE",
        EXTCODECOPY => "EXTCODECOPY",
        RETURNDATASIZE => "RETURNDATASIZE",
        RETURNDATACOPY => "RETURNDATACOPY",
        EXTCODEHASH => "EXTCODEHASH",
        BLOCKHASH => "BLOCKHASH",
        COINBASE => "COINBASE",
        TIMESTAMP => "TIMESTAMP",
        NUMBER => "NUMBER",
        DIFFICULTY => "DIFFICULTY",
        GASLIMIT => "GASLIMIT",
        CHAINID => "CHAINID",
        SELFBALANCE => "SELFBALANCE",
        POP => "POP",
        MLOAD => "MLOAD",
        MSTORE => "MSTORE",
        MSTORE8 => "MSTORE8",
        SLOAD => "SLOAD",
        SSTORE => "SSTORE",
        JUMP => "JUMP",
        JUMPI => "JUMPI",
        PC => "PC",
        MSIZE => "MSIZE",
        GAS => "GAS",
        JUMPDEST => "JUMPDEST",
        PUSH0 => "PUSH0",
        0x60..=0x7f => "PUSH",
        0x80..=0x8f => "DUP",
        0x90..=0x9f => "SWAP",
        0xa0..=0xa4 => "LOG",
        CREATE => "CREATE",
        CALL => "CALL",
        CALLCODE => "CALLCODE",
        RETURN => "RETURN",
        DELEGATECALL => "DELEGATECALL",
        CREATE2 => "CREATE2",
        STATICCALL => "STATICCALL",
        REVERT => "REVERT",
        SELFDESTRUCT => "SELFDESTRUCT",
        _ => "INVALID",
    }
}

/// True if `byte` is a `PUSH1..PUSH32` opcode.
pub fn is_push(byte: u8) -> bool {
    (op::PUSH1..=op::PUSH32).contains(&byte)
}

/// Stack effect of an opcode: `Some((pops, pushes))` for every defined
/// opcode, `None` for undefined bytes (which halt the frame). The table
/// mirrors the interpreter's pop/push order exactly; the static analyzer
/// builds its abstract stack transfer function from it.
pub fn stack_io(byte: u8) -> Option<(usize, usize)> {
    use op::*;
    Some(match byte {
        STOP | JUMPDEST => (0, 0),
        ADD | MUL | SUB | DIV | SDIV | MOD | SMOD | EXP | SIGNEXTEND | LT | GT | SLT | SGT | EQ
        | AND | OR | XOR | BYTE | SHL | SHR | SAR | KECCAK256 => (2, 1),
        ADDMOD | MULMOD => (3, 1),
        ISZERO | NOT | BALANCE | EXTCODESIZE | EXTCODEHASH | BLOCKHASH | CALLDATALOAD | MLOAD
        | SLOAD => (1, 1),
        ADDRESS | ORIGIN | CALLER | CALLVALUE | CALLDATASIZE | CODESIZE | GASPRICE
        | RETURNDATASIZE | COINBASE | TIMESTAMP | NUMBER | DIFFICULTY | GASLIMIT | CHAINID
        | SELFBALANCE | PC | MSIZE | GAS => (0, 1),
        CALLDATACOPY | CODECOPY | RETURNDATACOPY => (3, 0),
        EXTCODECOPY => (4, 0),
        POP | JUMP | SELFDESTRUCT => (1, 0),
        MSTORE | MSTORE8 | SSTORE | JUMPI | RETURN | REVERT => (2, 0),
        PUSH0 => (0, 1),
        0x60..=0x7f => (0, 1),
        0x80..=0x8f => {
            let n = (byte - DUP1 + 1) as usize;
            (n, n + 1)
        }
        0x90..=0x9f => {
            let n = (byte - SWAP1 + 2) as usize;
            (n, n)
        }
        0xa0..=0xa4 => ((byte - LOG0 + 2) as usize, 0),
        CREATE => (3, 1),
        CALL | CALLCODE => (7, 1),
        DELEGATECALL | STATICCALL => (6, 1),
        CREATE2 => (4, 1),
        _ => return None,
    })
}

/// Static lower bound on the gas an opcode charges, with every dynamic
/// component (memory expansion, copy words, value transfers, storage
/// state) taken at its minimum. Undefined opcodes return 0: they consume
/// all remaining gas at runtime, so any bound is vacuously safe.
pub fn base_gas(byte: u8) -> u64 {
    use crate::gas;
    use op::*;
    match byte {
        STOP | INVALID => 0,
        ADD | SUB | LT | GT | SLT | SGT | EQ | AND | OR | XOR | SHL | SHR | SAR | BYTE | ISZERO
        | NOT | CALLDATALOAD | MLOAD | MSTORE | MSTORE8 | CALLDATACOPY | CODECOPY
        | RETURNDATACOPY => gas::VERYLOW,
        MUL | DIV | SDIV | MOD | SMOD | SIGNEXTEND | SELFBALANCE => gas::LOW,
        ADDMOD | MULMOD | JUMP => gas::MID,
        JUMPI => gas::HIGH,
        EXP => gas::EXP,
        KECCAK256 => gas::KECCAK256,
        ADDRESS | ORIGIN | CALLER | CALLVALUE | CALLDATASIZE | CODESIZE | GASPRICE
        | RETURNDATASIZE | COINBASE | TIMESTAMP | NUMBER | DIFFICULTY | GASLIMIT | CHAINID
        | POP | PC | MSIZE | GAS | PUSH0 => gas::BASE,
        BALANCE | EXTCODEHASH => gas::BALANCE,
        EXTCODESIZE | EXTCODECOPY => gas::EXTCODE,
        BLOCKHASH => gas::BLOCKHASH,
        SLOAD => gas::SLOAD,
        SSTORE => gas::SSTORE_RESET,
        JUMPDEST => gas::JUMPDEST,
        0x60..=0x7f => gas::VERYLOW,
        0x80..=0x9f => gas::VERYLOW,
        0xa0..=0xa4 => gas::LOG + gas::LOG_TOPIC * u64::from(byte - LOG0),
        CREATE | CREATE2 => gas::CREATE,
        CALL | CALLCODE | DELEGATECALL | STATICCALL => gas::CALL,
        RETURN | REVERT => 0,
        SELFDESTRUCT => gas::SELFDESTRUCT,
        _ => 0,
    }
}

/// True if the opcode unconditionally ends a basic block's straight-line
/// flow: it either halts the frame (STOP, RETURN, REVERT, SELFDESTRUCT,
/// INVALID and every undefined byte) or transfers control (JUMP).
/// `JUMPI` is *not* a terminator here — it falls through.
pub fn is_terminator(byte: u8) -> bool {
    matches!(
        byte,
        op::STOP | op::JUMP | op::RETURN | op::REVERT | op::SELFDESTRUCT
    ) || stack_io(byte).is_none()
}

/// Number of immediate bytes following the opcode (nonzero only for PUSH).
pub fn immediate_len(byte: u8) -> usize {
    if is_push(byte) {
        (byte - op::PUSH1 + 1) as usize
    } else {
        0
    }
}

/// Compute the set of valid `JUMPDEST` offsets for `code`, skipping PUSH
/// immediates (a 0x5b inside push data is not a valid destination).
pub fn jumpdest_map(code: &[u8]) -> Vec<bool> {
    let mut map = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        let b = code[i];
        if b == op::JUMPDEST {
            map[i] = true;
        }
        i += 1 + immediate_len(b);
    }
    map
}

/// Disassemble bytecode into `(offset, mnemonic, immediate)` rows.
pub fn disassemble(code: &[u8]) -> Vec<(usize, String)> {
    let mut rows = Vec::new();
    let mut i = 0;
    while i < code.len() {
        let b = code[i];
        let imm = immediate_len(b);
        let text = if imm > 0 {
            let end = (i + 1 + imm).min(code.len());
            // The interpreter zero-pads a truncated immediate on the right
            // (missing trailing bytes read as 0x00); render the value the
            // program actually pushes, flagging the truncation.
            let mut data: Vec<String> = code[i + 1..end]
                .iter()
                .map(|x| format!("{x:02x}"))
                .collect();
            let missing = (i + 1 + imm) - end;
            data.extend(std::iter::repeat_n("00".to_string(), missing));
            let marker = if missing > 0 { " (truncated)" } else { "" };
            format!("PUSH{} 0x{}{}", imm, data.join(""), marker)
        } else {
            mnemonic(b).to_string()
        };
        rows.push((i, text));
        i += 1 + imm;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_metadata() {
        assert!(is_push(op::PUSH1));
        assert!(is_push(op::PUSH32));
        assert!(!is_push(op::PUSH0));
        assert_eq!(immediate_len(op::PUSH1), 1);
        assert_eq!(immediate_len(op::PUSH32), 32);
        assert_eq!(immediate_len(op::ADD), 0);
    }

    #[test]
    fn jumpdest_map_skips_push_data() {
        // PUSH1 0x5b JUMPDEST — the first 0x5b is immediate data.
        let code = [op::PUSH1, 0x5b, op::JUMPDEST];
        let map = jumpdest_map(&code);
        assert_eq!(map, vec![false, false, true]);
    }

    #[test]
    fn disassembler_renders_push() {
        let push2 = op::PUSH1 + 1;
        let code = [push2, 0xab, 0xcd, op::ADD];
        let rows = disassemble(&code);
        assert_eq!(rows[0].1, "PUSH2 0xabcd");
        assert_eq!(rows[1], (3, "ADD".to_string()));
    }

    #[test]
    fn mnemonics() {
        assert_eq!(mnemonic(op::ADD), "ADD");
        assert_eq!(mnemonic(0x61), "PUSH");
        assert_eq!(mnemonic(0x0c), "INVALID");
        assert_eq!(mnemonic(op::SELFDESTRUCT), "SELFDESTRUCT");
    }
}
