//! Per-transaction state access tracking for optimistic parallel
//! execution.
//!
//! `lsc-chain`'s Block-STM-lite block builder executes queued
//! transactions speculatively against a snapshot of the world state and
//! needs to know, per transaction, exactly which pieces of state were
//! read and written — at account-field and storage-slot granularity — so
//! that it can commit non-conflicting transactions in submission order
//! and re-execute the rest sequentially. [`RecordingHost`] wraps any
//! [`Host`] and records that [`AccessSet`] as execution proceeds.

use crate::analysis::AnalyzedCode;
use crate::host::{BlockEnv, Host, Log};
use lsc_primitives::{Address, FxHashSet, H256, U256};
use std::cell::RefCell;
use std::sync::Arc;

/// One trackable piece of world state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKey {
    /// An account's balance.
    Balance(Address),
    /// An account's nonce.
    Nonce(Address),
    /// An account's code.
    Code(Address),
    /// Whether the account exists at all.
    Existence(Address),
    /// One storage slot of an account.
    Storage(Address, U256),
    /// Every storage slot of an account (produced by SELFDESTRUCT, which
    /// wipes the account wholesale; conflicts with any slot access).
    StorageAll(Address),
}

impl AccessKey {
    /// The account this key belongs to.
    pub fn address(&self) -> Address {
        match self {
            AccessKey::Balance(a)
            | AccessKey::Nonce(a)
            | AccessKey::Code(a)
            | AccessKey::Existence(a)
            | AccessKey::Storage(a, _)
            | AccessKey::StorageAll(a) => *a,
        }
    }
}

/// The read and write sets accumulated over one transaction.
///
/// `AccessKey`s hash keccak-derived addresses and slots, so the sets use
/// the cheap [`FxHashSet`] rather than SipHash.
#[derive(Debug, Clone, Default)]
pub struct AccessSet {
    /// State read during execution (writes that observe the previous
    /// value, like SSTORE, appear in both sets).
    pub reads: FxHashSet<AccessKey>,
    /// State written during execution.
    pub writes: FxHashSet<AccessKey>,
}

impl AccessSet {
    /// Empty set.
    pub fn new() -> Self {
        AccessSet::default()
    }

    /// Record a read.
    pub fn read(&mut self, key: AccessKey) {
        self.reads.insert(key);
    }

    /// Record a write. Writes that observe prior state must additionally
    /// be recorded as reads by the caller.
    pub fn write(&mut self, key: AccessKey) {
        self.writes.insert(key);
    }

    /// Does `key` (a read) collide with `writes` of another transaction,
    /// honouring the wildcard [`AccessKey::StorageAll`]?
    fn key_conflicts(key: &AccessKey, writes: &FxHashSet<AccessKey>) -> bool {
        if writes.contains(key) {
            return true;
        }
        match key {
            // A slot read collides with a whole-account wipe …
            AccessKey::Storage(address, _) => writes.contains(&AccessKey::StorageAll(*address)),
            // … and a wipe collides with any slot write on that account.
            AccessKey::StorageAll(address) => writes
                .iter()
                .any(|w| matches!(w, AccessKey::Storage(a, _) if a == address)),
            _ => false,
        }
    }

    /// True when any of this set's **reads** hits `other_writes`. The
    /// commit loop uses this to decide whether a speculative result
    /// computed against the block-start state is still valid after the
    /// given writes have been applied.
    pub fn reads_conflict_with(&self, other_writes: &FxHashSet<AccessKey>) -> bool {
        self.reads
            .iter()
            .any(|r| Self::key_conflicts(r, other_writes))
    }

    /// True when either set touches the given account's balance or
    /// existence (used for the coinbase, whose fee credits are applied
    /// commutatively outside the recorded write sets).
    pub fn touches_account_balance(&self, address: Address) -> bool {
        let balance = AccessKey::Balance(address);
        let existence = AccessKey::Existence(address);
        self.reads.contains(&balance)
            || self.reads.contains(&existence)
            || self.writes.contains(&balance)
            || self.writes.contains(&existence)
    }

    /// Merge another set's writes into this one's writes (committed-state
    /// accumulation in the commit loop).
    pub fn absorb_writes(&mut self, other: &AccessSet) {
        self.writes.extend(other.writes.iter().copied());
    }
}

/// A [`Host`] adapter recording every state access into an [`AccessSet`]
/// while forwarding to the wrapped host.
///
/// The set lives in a `RefCell` because several [`Host`] reads
/// (`balance`, `nonce`, `code`, `exists`) take `&self`; the wrapper is
/// single-threaded per transaction, so the interior mutability is safe.
///
/// Reverts roll back the inner host but deliberately *not* the recorded
/// sets: a read inside a reverted frame still observed pre-state, and
/// keeping reverted writes only makes conflict detection conservative,
/// never unsound.
#[derive(Debug)]
pub struct RecordingHost<H> {
    /// The wrapped host.
    pub inner: H,
    access: RefCell<AccessSet>,
}

impl<H: Host> RecordingHost<H> {
    /// Wrap `inner` with empty access sets.
    pub fn new(inner: H) -> Self {
        RecordingHost {
            inner,
            access: RefCell::new(AccessSet::new()),
        }
    }

    /// Unwrap, returning the host and the recorded accesses.
    pub fn into_parts(self) -> (H, AccessSet) {
        (self.inner, self.access.into_inner())
    }

    /// Snapshot of the accesses recorded so far.
    pub fn access(&self) -> AccessSet {
        self.access.borrow().clone()
    }

    /// Record a read made outside the [`Host`] interface (transaction
    /// validation reads the sender's nonce and balance directly).
    pub fn record_read(&self, key: AccessKey) {
        self.access.borrow_mut().read(key);
    }

    /// Record a write made outside the [`Host`] interface (gas purchase
    /// debits the sender before execution starts).
    pub fn record_write(&self, key: AccessKey) {
        self.access.borrow_mut().write(key);
    }

    fn note_existence_write(&mut self, address: Address) {
        // Creating an account observes (and changes) its existence.
        if !self.inner.exists(address) {
            self.record_read(AccessKey::Existence(address));
            self.record_write(AccessKey::Existence(address));
        }
    }
}

impl<H: Host> Host for RecordingHost<H> {
    fn block(&self) -> &BlockEnv {
        self.inner.block()
    }

    fn blockhash(&self, number: u64) -> H256 {
        self.inner.blockhash(number)
    }

    fn gas_price(&self) -> U256 {
        self.inner.gas_price()
    }

    fn exists(&self, address: Address) -> bool {
        self.record_read(AccessKey::Existence(address));
        self.inner.exists(address)
    }

    fn balance(&self, address: Address) -> U256 {
        self.record_read(AccessKey::Balance(address));
        self.inner.balance(address)
    }

    fn nonce(&self, address: Address) -> u64 {
        self.record_read(AccessKey::Nonce(address));
        self.inner.nonce(address)
    }

    fn code(&self, address: Address) -> Vec<u8> {
        self.record_read(AccessKey::Code(address));
        self.inner.code(address)
    }

    fn code_hash(&self, address: Address) -> H256 {
        self.record_read(AccessKey::Code(address));
        self.inner.code_hash(address)
    }

    fn code_analysis(&self, address: Address) -> Arc<AnalyzedCode> {
        self.record_read(AccessKey::Code(address));
        self.inner.code_analysis(address)
    }

    fn sload(&mut self, address: Address, key: U256) -> U256 {
        self.record_read(AccessKey::Storage(address, key));
        self.inner.sload(address, key)
    }

    fn sstore(&mut self, address: Address, key: U256, value: U256) -> U256 {
        // SSTORE observes the previous value (gas metering), so it is a
        // read as well as a write.
        self.record_read(AccessKey::Storage(address, key));
        self.record_write(AccessKey::Storage(address, key));
        self.inner.sstore(address, key, value)
    }

    fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        self.record_read(AccessKey::Balance(from));
        if value.is_zero() {
            // Zero-value transfers read the sender balance at most; the
            // inner host short-circuits without touching `to`.
            return self.inner.transfer(from, to, value);
        }
        self.record_read(AccessKey::Balance(to));
        self.record_write(AccessKey::Balance(from));
        self.record_write(AccessKey::Balance(to));
        self.note_existence_write(to);
        self.inner.transfer(from, to, value)
    }

    fn mint(&mut self, to: Address, value: U256) {
        self.record_read(AccessKey::Balance(to));
        self.record_write(AccessKey::Balance(to));
        self.note_existence_write(to);
        self.inner.mint(to, value);
    }

    fn inc_nonce(&mut self, address: Address) -> u64 {
        self.record_read(AccessKey::Nonce(address));
        self.record_write(AccessKey::Nonce(address));
        self.inner.inc_nonce(address)
    }

    fn set_code(&mut self, address: Address, code: Vec<u8>) {
        self.record_read(AccessKey::Code(address));
        self.record_write(AccessKey::Code(address));
        self.note_existence_write(address);
        self.inner.set_code(address, code);
    }

    fn create_account(&mut self, address: Address) {
        self.record_read(AccessKey::Existence(address));
        self.record_write(AccessKey::Existence(address));
        self.inner.create_account(address);
    }

    fn selfdestruct(&mut self, address: Address, beneficiary: Address) {
        self.record_read(AccessKey::Balance(address));
        self.record_read(AccessKey::Balance(beneficiary));
        self.record_write(AccessKey::Balance(address));
        self.record_write(AccessKey::Balance(beneficiary));
        self.note_existence_write(beneficiary);
        // The account vanishes wholesale: existence, nonce, code and every
        // storage slot change under later readers. The wipe also counts as
        // a whole-storage *read*: committing it replaces the account's full
        // storage, so it must conflict with any earlier per-slot write
        // (including the case where the selfdestruct itself was reverted
        // and the final state is the pre-wipe storage).
        self.record_read(AccessKey::Existence(address));
        self.record_write(AccessKey::Existence(address));
        self.record_write(AccessKey::Nonce(address));
        self.record_write(AccessKey::Code(address));
        self.record_read(AccessKey::StorageAll(address));
        self.record_write(AccessKey::StorageAll(address));
        self.inner.selfdestruct(address, beneficiary);
    }

    fn log(&mut self, log: Log) {
        self.inner.log(log);
    }

    fn snapshot(&mut self) -> usize {
        self.inner.snapshot()
    }

    fn revert(&mut self, snapshot: usize) {
        self.inner.revert(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::MockHost;

    fn addr(label: &str) -> Address {
        Address::from_label(label)
    }

    #[test]
    fn records_reads_and_writes() {
        let mut host = RecordingHost::new(MockHost::new());
        let a = addr("a");
        let b = addr("b");
        host.inner.fund(a, U256::from_u64(100));
        host.sload(a, U256::ONE);
        host.sstore(a, U256::from_u64(2), U256::from_u64(9));
        assert!(host.transfer(a, b, U256::from_u64(5)));
        let access = host.access();
        assert!(access.reads.contains(&AccessKey::Storage(a, U256::ONE)));
        assert!(access
            .writes
            .contains(&AccessKey::Storage(a, U256::from_u64(2))));
        assert!(access
            .reads
            .contains(&AccessKey::Storage(a, U256::from_u64(2))));
        assert!(access.writes.contains(&AccessKey::Balance(a)));
        assert!(access.writes.contains(&AccessKey::Balance(b)));
        // b was fresh: the transfer changed its existence too.
        assert!(access.writes.contains(&AccessKey::Existence(b)));
        // Nothing read a's nonce.
        assert!(!access.reads.contains(&AccessKey::Nonce(a)));
    }

    #[test]
    fn shared_reads_are_recorded() {
        let host = RecordingHost::new(MockHost::new());
        let a = addr("a");
        host.balance(a);
        host.nonce(a);
        host.code(a);
        host.exists(a);
        let access = host.access();
        assert!(access.reads.contains(&AccessKey::Balance(a)));
        assert!(access.reads.contains(&AccessKey::Nonce(a)));
        assert!(access.reads.contains(&AccessKey::Code(a)));
        assert!(access.reads.contains(&AccessKey::Existence(a)));
        assert!(access.writes.is_empty());
    }

    #[test]
    fn conflict_detection_honours_wildcards() {
        let a = addr("a");
        let mut reader = AccessSet::new();
        reader.read(AccessKey::Storage(a, U256::ONE));
        let mut wiper = AccessSet::new();
        wiper.write(AccessKey::StorageAll(a));
        assert!(reader.reads_conflict_with(&wiper.writes));

        let mut unrelated = AccessSet::new();
        unrelated.write(AccessKey::Storage(addr("b"), U256::ONE));
        assert!(!reader.reads_conflict_with(&unrelated.writes));
    }

    #[test]
    fn selfdestruct_wipes_conservatively() {
        let mut host = RecordingHost::new(MockHost::new());
        let c = addr("contract");
        let b = addr("beneficiary");
        host.inner.fund(c, U256::from_u64(10));
        host.selfdestruct(c, b);
        let access = host.access();
        assert!(access.writes.contains(&AccessKey::StorageAll(c)));
        assert!(access.writes.contains(&AccessKey::Code(c)));
        let mut later_reader = AccessSet::new();
        later_reader.read(AccessKey::Storage(c, U256::from_u64(7)));
        assert!(later_reader.reads_conflict_with(&access.writes));
    }

    #[test]
    fn reverts_keep_accesses_conservative() {
        let mut host = RecordingHost::new(MockHost::new());
        let a = addr("a");
        let snap = host.snapshot();
        host.sstore(a, U256::ONE, U256::from_u64(4));
        host.revert(snap);
        assert_eq!(host.inner.sload(a, U256::ONE), U256::ZERO);
        // The reverted write stays recorded: conservative, never unsound.
        assert!(host
            .access()
            .writes
            .contains(&AccessKey::Storage(a, U256::ONE)));
    }
}
