//! Read-only execution over an immutable state view.
//!
//! [`SnapshotHost`] adapts any [`StateView`] — an *immutable* account
//! store, typically a published MVCC snapshot — into a full [`Host`]:
//! reads fall through to the view, writes land in a private overlay, so
//! `eth_call` / `eth_estimateGas` can run arbitrary bytecode (including
//! SSTOREs, CREATEs and SELFDESTRUCTs) without a `&mut` anywhere near
//! the underlying state. Any number of concurrent executions can share
//! one view.
//!
//! The overlay semantics mirror the chain tier's journaled `StateHost`
//! step for step (the differential tests in `lsc-chain` hold the two
//! paths bit-identical): reads prefer the overlay, a self-destructed
//! account shadows the base entirely, and EVM-level snapshot/revert
//! clones the overlay — cheap, because read-only executions only ever
//! touch a handful of accounts.

use crate::analysis::AnalyzedCode;
use crate::host::{BlockEnv, Host, Log};
use lsc_primitives::{Address, FxHashMap, H256, U256};
use std::sync::{Arc, OnceLock};

/// An immutable, lock-free view of committed account state.
///
/// Implementors promise the view never changes for the lifetime of the
/// borrow — the MVCC read path hands out `Arc`-shared snapshots, so the
/// promise is structural, not a discipline.
pub trait StateView {
    /// Does the account exist?
    fn view_exists(&self, address: Address) -> bool;
    /// Balance in wei (zero for unknown accounts).
    fn view_balance(&self, address: Address) -> U256;
    /// Nonce (zero for unknown accounts).
    fn view_nonce(&self, address: Address) -> u64;
    /// Shared code blob (empty for EOAs and unknown accounts).
    fn view_code(&self, address: Address) -> Arc<Vec<u8>>;
    /// Keccak of the code (zero hash for empty accounts).
    fn view_code_hash(&self, address: Address) -> H256;
    /// Cached jumpdest/hash analysis of the account's code.
    fn view_code_analysis(&self, address: Address) -> Arc<AnalyzedCode>;
    /// Read a storage slot (zero for absent slots).
    fn view_storage(&self, address: Address, key: U256) -> U256;
}

/// Per-account write overlay. `None` fields fall through to the base
/// view unless `erased` is set (the account was self-destructed and
/// later resurrected — the base must stay shadowed).
#[derive(Clone, Default)]
struct OverlayAccount {
    erased: bool,
    balance: Option<U256>,
    nonce: Option<u64>,
    code: Option<Arc<Vec<u8>>>,
    /// Memoized analysis of the *overlay* code (base code analysis is
    /// served by the view's own cache).
    analysis: OnceLock<Arc<AnalyzedCode>>,
    /// Written slots; zero values are kept explicitly so they shadow
    /// non-zero base values instead of falling through.
    storage: FxHashMap<U256, U256>,
}

/// A [`Host`] that executes against an immutable [`StateView`], buffering
/// every write in an overlay. Dropping the host discards the writes —
/// exactly the contract of `eth_call`.
pub struct SnapshotHost<'a, V: StateView> {
    base: &'a V,
    env: &'a BlockEnv,
    gas_price: U256,
    recent_hashes: &'a [(u64, H256)],
    /// `Some(None)` marks a self-destructed account (base shadowed).
    overlay: FxHashMap<Address, Option<OverlayAccount>>,
    /// Logs emitted during execution (discarded with the host, but kept
    /// so revert semantics match the journaled host).
    pub logs: Vec<Log>,
    /// Snapshot id → (overlay clone, logs length).
    snapshots: Vec<(FxHashMap<Address, Option<OverlayAccount>>, usize)>,
}

impl<'a, V: StateView> SnapshotHost<'a, V> {
    /// Wrap a view for one read-only execution.
    pub fn new(
        base: &'a V,
        env: &'a BlockEnv,
        gas_price: U256,
        recent_hashes: &'a [(u64, H256)],
    ) -> Self {
        SnapshotHost {
            base,
            env,
            gas_price,
            recent_hashes,
            overlay: FxHashMap::default(),
            logs: Vec::new(),
            snapshots: Vec::new(),
        }
    }

    /// Copy-on-write mutable account, resurrecting destroyed ones as
    /// fully-erased empties (a resurrected account must never read the
    /// base through its `None` fields).
    fn entry(&mut self, address: Address) -> &mut OverlayAccount {
        let slot = self.overlay.entry(address).or_insert_with(|| {
            Some(OverlayAccount {
                erased: false,
                ..OverlayAccount::default()
            })
        });
        if slot.is_none() {
            *slot = Some(OverlayAccount {
                erased: true,
                ..OverlayAccount::default()
            });
        }
        slot.as_mut().expect("slot populated above")
    }

    fn credit(&mut self, address: Address, value: U256) {
        let balance = self.balance(address);
        self.entry(address).balance = Some(balance + value);
    }

    #[must_use]
    fn debit(&mut self, address: Address, value: U256) -> bool {
        let balance = self.balance(address);
        if balance < value {
            return false;
        }
        self.entry(address).balance = Some(balance - value);
        true
    }
}

impl<V: StateView> Host for SnapshotHost<'_, V> {
    fn block(&self) -> &BlockEnv {
        self.env
    }

    fn blockhash(&self, number: u64) -> H256 {
        self.recent_hashes
            .iter()
            .find(|(n, _)| *n == number)
            .map_or(H256::ZERO, |(_, h)| *h)
    }

    fn gas_price(&self) -> U256 {
        self.gas_price
    }

    fn exists(&self, address: Address) -> bool {
        match self.overlay.get(&address) {
            Some(Some(_)) => true,
            Some(None) => false,
            None => self.base.view_exists(address),
        }
    }

    fn balance(&self, address: Address) -> U256 {
        match self.overlay.get(&address) {
            Some(Some(o)) => o.balance.unwrap_or_else(|| {
                if o.erased {
                    U256::ZERO
                } else {
                    self.base.view_balance(address)
                }
            }),
            Some(None) => U256::ZERO,
            None => self.base.view_balance(address),
        }
    }

    fn nonce(&self, address: Address) -> u64 {
        match self.overlay.get(&address) {
            Some(Some(o)) => o.nonce.unwrap_or_else(|| {
                if o.erased {
                    0
                } else {
                    self.base.view_nonce(address)
                }
            }),
            Some(None) => 0,
            None => self.base.view_nonce(address),
        }
    }

    fn code(&self, address: Address) -> Vec<u8> {
        match self.overlay.get(&address) {
            Some(Some(o)) => match &o.code {
                Some(code) => code.as_ref().clone(),
                None if o.erased => Vec::new(),
                None => self.base.view_code(address).as_ref().clone(),
            },
            Some(None) => Vec::new(),
            None => self.base.view_code(address).as_ref().clone(),
        }
    }

    fn code_hash(&self, address: Address) -> H256 {
        match self.overlay.get(&address) {
            Some(Some(o)) => match &o.code {
                Some(code) if code.is_empty() => H256::ZERO,
                Some(_) => self.code_analysis(address).code_hash(),
                None if o.erased => H256::ZERO,
                None => self.base.view_code_hash(address),
            },
            Some(None) => H256::ZERO,
            None => self.base.view_code_hash(address),
        }
    }

    fn code_analysis(&self, address: Address) -> Arc<AnalyzedCode> {
        match self.overlay.get(&address) {
            Some(Some(o)) => match &o.code {
                Some(code) if code.is_empty() => AnalyzedCode::empty(),
                Some(code) => o
                    .analysis
                    .get_or_init(|| AnalyzedCode::analyze(Arc::clone(code)))
                    .clone(),
                None if o.erased => AnalyzedCode::empty(),
                None => self.base.view_code_analysis(address),
            },
            Some(None) => AnalyzedCode::empty(),
            None => self.base.view_code_analysis(address),
        }
    }

    fn sload(&mut self, address: Address, key: U256) -> U256 {
        match self.overlay.get(&address) {
            Some(Some(o)) => o.storage.get(&key).copied().unwrap_or_else(|| {
                if o.erased {
                    U256::ZERO
                } else {
                    self.base.view_storage(address, key)
                }
            }),
            Some(None) => U256::ZERO,
            None => self.base.view_storage(address, key),
        }
    }

    fn sstore(&mut self, address: Address, key: U256, value: U256) -> U256 {
        let previous = self.sload(address, key);
        // Zero values stay in the overlay: they must shadow a non-zero
        // base slot rather than fall through to it.
        self.entry(address).storage.insert(key, value);
        previous
    }

    fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        if value.is_zero() {
            return true;
        }
        if !self.debit(from, value) {
            return false;
        }
        self.credit(to, value);
        true
    }

    fn mint(&mut self, to: Address, value: U256) {
        self.credit(to, value);
    }

    fn inc_nonce(&mut self, address: Address) -> u64 {
        let nonce = self.nonce(address);
        self.entry(address).nonce = Some(nonce + 1);
        nonce
    }

    fn set_code(&mut self, address: Address, code: Vec<u8>) {
        let account = self.entry(address);
        account.code = Some(Arc::new(code));
        // The memoized analysis must never describe the previous code.
        account.analysis = OnceLock::new();
    }

    fn create_account(&mut self, address: Address) {
        if !self.exists(address) {
            self.entry(address);
        }
    }

    fn selfdestruct(&mut self, address: Address, beneficiary: Address) {
        let balance = self.balance(address);
        if !balance.is_zero() {
            let debited = self.debit(address, balance);
            debug_assert!(debited);
            self.credit(beneficiary, balance);
        }
        self.overlay.insert(address, None);
    }

    fn log(&mut self, log: Log) {
        self.logs.push(log);
    }

    fn snapshot(&mut self) -> usize {
        self.snapshots.push((self.overlay.clone(), self.logs.len()));
        self.snapshots.len() - 1
    }

    fn revert(&mut self, snapshot: usize) {
        let (overlay, logs_len) = self.snapshots[snapshot].clone();
        self.overlay = overlay;
        self.logs.truncate(logs_len);
        self.snapshots.truncate(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpreter::{Evm, Message};
    use std::collections::HashMap;

    /// Minimal immutable view for unit tests.
    #[derive(Default)]
    struct MapView {
        balances: HashMap<Address, U256>,
        codes: HashMap<Address, Arc<Vec<u8>>>,
        storage: HashMap<(Address, U256), U256>,
    }

    impl StateView for MapView {
        fn view_exists(&self, a: Address) -> bool {
            self.balances.contains_key(&a) || self.codes.contains_key(&a)
        }
        fn view_balance(&self, a: Address) -> U256 {
            self.balances.get(&a).copied().unwrap_or(U256::ZERO)
        }
        fn view_nonce(&self, _a: Address) -> u64 {
            0
        }
        fn view_code(&self, a: Address) -> Arc<Vec<u8>> {
            self.codes.get(&a).cloned().unwrap_or_default()
        }
        fn view_code_hash(&self, a: Address) -> H256 {
            match self.codes.get(&a) {
                Some(code) if !code.is_empty() => H256::keccak(code.as_slice()),
                _ => H256::ZERO,
            }
        }
        fn view_code_analysis(&self, a: Address) -> Arc<AnalyzedCode> {
            let code = self.view_code(a);
            if code.is_empty() {
                AnalyzedCode::empty()
            } else {
                AnalyzedCode::analyze(code)
            }
        }
        fn view_storage(&self, a: Address, key: U256) -> U256 {
            self.storage.get(&(a, key)).copied().unwrap_or(U256::ZERO)
        }
    }

    fn a(label: &str) -> Address {
        Address::from_label(label)
    }

    #[test]
    fn writes_stay_in_overlay() {
        let mut view = MapView::default();
        view.balances.insert(a("x"), U256::from_u64(100));
        view.storage.insert((a("c"), U256::ONE), U256::from_u64(7));
        let env = BlockEnv::default();
        let mut host = SnapshotHost::new(&view, &env, U256::from_u64(1), &[]);
        assert!(host.transfer(a("x"), a("y"), U256::from_u64(30)));
        assert_eq!(
            host.sstore(a("c"), U256::ONE, U256::ZERO),
            U256::from_u64(7)
        );
        assert_eq!(host.sload(a("c"), U256::ONE), U256::ZERO);
        assert_eq!(host.balance(a("x")), U256::from_u64(70));
        assert_eq!(host.balance(a("y")), U256::from_u64(30));
        // The base is untouched.
        assert_eq!(view.view_balance(a("x")), U256::from_u64(100));
        assert_eq!(view.view_storage(a("c"), U256::ONE), U256::from_u64(7));
    }

    #[test]
    fn selfdestruct_shadows_base_until_resurrected() {
        let mut view = MapView::default();
        view.balances.insert(a("c"), U256::from_u64(10));
        view.codes.insert(a("c"), Arc::new(vec![0xfe]));
        view.storage.insert((a("c"), U256::ONE), U256::from_u64(5));
        let env = BlockEnv::default();
        let mut host = SnapshotHost::new(&view, &env, U256::from_u64(1), &[]);
        host.selfdestruct(a("c"), a("b"));
        assert!(!host.exists(a("c")));
        assert_eq!(host.balance(a("b")), U256::from_u64(10));
        assert!(host.code(a("c")).is_empty());
        assert_eq!(host.sload(a("c"), U256::ONE), U256::ZERO);
        // Resurrection must not read the dead base account through.
        host.mint(a("c"), U256::from_u64(3));
        assert_eq!(host.balance(a("c")), U256::from_u64(3));
        assert!(host.code(a("c")).is_empty());
        assert_eq!(host.sload(a("c"), U256::ONE), U256::ZERO);
    }

    #[test]
    fn snapshot_revert_restores_overlay() {
        let view = MapView::default();
        let env = BlockEnv::default();
        let mut host = SnapshotHost::new(&view, &env, U256::from_u64(1), &[]);
        host.mint(a("x"), U256::from_u64(5));
        let snap = host.snapshot();
        host.mint(a("x"), U256::from_u64(5));
        host.log(Log {
            address: a("x"),
            topics: vec![],
            data: vec![],
        });
        host.revert(snap);
        assert_eq!(host.balance(a("x")), U256::from_u64(5));
        assert!(host.logs.is_empty());
    }

    #[test]
    fn executes_bytecode_against_view() {
        // Runtime: return 32-byte storage[1].
        let mut asm = crate::asm::Asm::new();
        asm.push_u64(1)
            .op(crate::opcode::op::SLOAD)
            .push_u64(0)
            .op(crate::opcode::op::MSTORE)
            .push_u64(32)
            .push_u64(0)
            .op(crate::opcode::op::RETURN);
        let runtime = asm.assemble().unwrap();
        let mut view = MapView::default();
        view.codes.insert(a("c"), Arc::new(runtime));
        view.storage.insert((a("c"), U256::ONE), U256::from_u64(42));
        let env = BlockEnv::default();
        let mut host = SnapshotHost::new(&view, &env, U256::from_u64(1), &[]);
        let result = Evm::new(&mut host).execute(Message::call(
            a("caller"),
            a("c"),
            U256::ZERO,
            vec![],
            1_000_000,
        ));
        assert!(result.success);
        assert_eq!(result.output, U256::from_u64(42).to_be_bytes().to_vec());
    }
}
