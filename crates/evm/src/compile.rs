//! Basic-block superinstruction compilation of vetted bytecode.
//!
//! The plain interpreter pays a gas check, a stack check and a dispatch
//! per opcode. The CFG (`cfg.rs`) already knows the straight-line blocks,
//! so at analysis time we lower each block into a *superinstruction*:
//! ONE fused upfront charge for the block's static gas, ONE stack-depth
//! range check, pre-decoded PUSH immediates, a pc→block jump table for
//! threaded dispatch, and constant-folded PUSH chains feeding
//! `JUMP`/`JUMPI`/`MSTORE`/`MLOAD`/`RETURN`/`REVERT`.
//!
//! # Exactness scheme
//!
//! The compiled path must be bit-identical to the plain interpreter (the
//! executable oracle) on results, gas, logs, storage and halt reason.
//! The block's static gas is charged up front, so mid-block the fused
//! counter runs *ahead* of the plain interpreter's. We keep the fused
//! remaining gas as an `i64` and store, per instruction, `corr_post` =
//! the static gas of all *later* instructions in the block (pre-charged
//! but not yet "earned"). The invariant is
//!
//! ```text
//! plain_remaining(after instr i's static charge) = fused + corr_post(i)
//! ```
//!
//! Pure opcodes (arithmetic, PUSH/DUP/SWAP, context reads, SLOAD …) need
//! no gas code at all. Every opcode that observes gas, charges a dynamic
//! amount, touches host state or terminates is a *checkpoint*: it first
//! materializes a pending out-of-gas (`fused + corr < 0` means the plain
//! interpreter already died earlier in the block), then charges its
//! dynamic extras against `fused + corr_post`. Because any exceptional
//! halt reverts the whole frame snapshot and consumes all gas, running a
//! few extra *pure* ops past the plain interpreter's death point is
//! unobservable — only the `Halt` variant must match, and it does.
//!
//! When a block-entry check fails (insufficient static gas or stack range
//! out of bounds), the plain interpreter is *guaranteed* to halt inside
//! the block; rather than approximating which violation it hits first,
//! the runtime deopts: it hands the current machine state to the plain
//! loop at the block's start pc, making the failure path exact by
//! construction. A handful of rare opcodes (`CREATE`, `CREATE2`,
//! `SELFDESTRUCT`, `EXTCODECOPY`) deopt the same way instead of carrying
//! a second copy of their delicate semantics — see [`classify`].

use crate::analysis::AnalyzedCode;
use crate::cfg::Cfg;
use crate::opcode::{self, op};
use lsc_primitives::U256;

/// Code blobs larger than this are not compiled (init code can exceed the
/// EIP-170 runtime cap; beyond this bound the decode/lowering cost is not
/// worth paying for a one-shot frame).
pub const MAX_COMPILED_CODE: usize = 256 * 1024;

/// Sentinel for "no jump target" entries in the pc→block table.
pub const NO_TARGET: u32 = u32::MAX;

/// How the compiled path treats an opcode byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathClass {
    /// Executed natively by the compiled block loop.
    Native,
    /// Provably falls back: the compiled loop deopts to the plain
    /// interpreter at this instruction with the exact machine state.
    Fallback,
    /// Undefined/INVALID byte: halts the frame identically on both paths
    /// (the CFG makes it a block terminator).
    Halts,
}

/// Total classification of every opcode byte for the compiled path.
/// There is no fourth state: the `opcode_coverage` sweep asserts each
/// tracked opcode behaves per its class under the `superinstr` toggle.
pub fn classify(byte: u8) -> PathClass {
    match byte {
        op::CREATE | op::CREATE2 | op::SELFDESTRUCT | op::EXTCODECOPY => PathClass::Fallback,
        _ if opcode::stack_io(byte).is_none() => PathClass::Halts,
        _ => PathClass::Native,
    }
}

/// One lowered instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum COp {
    /// Natively handled opcode, generic path (the byte is from the
    /// original code; PUSHes never appear here).
    Plain(u8),
    /// `PUSH0..PUSH32` with the immediate pre-decoded (truncated pushes
    /// already zero-padded, exactly like the interpreter's fetch).
    Push(U256),
    /// A PUSH consumed by fusion; executes nothing. Its static gas and
    /// stack effect remain in the block metadata (computed from the
    /// original sequence), so gas and stack checks stay exact.
    Nop,
    /// Fused `PUSH target; JUMP` with the target resolved at compile time
    /// to a block index.
    JumpStatic(u32),
    /// Fused `PUSH target; JUMPI` (pops only the condition).
    JumpIStatic(u32),
    /// Fused `PUSH offset; MSTORE` (pops only the value).
    MStoreK(u32),
    /// Fused `PUSH offset; MLOAD`.
    MLoadK(u32),
    /// Fused `PUSH len; PUSH offset; RETURN/REVERT`.
    ReturnK {
        /// Memory offset of the output.
        offset: u32,
        /// Output length.
        len: u32,
        /// True for REVERT, false for RETURN.
        revert: bool,
    },
    /// Opcode the compiled loop does not carry semantics for: deopt to
    /// the plain interpreter at this pc (see [`classify`]).
    Deopt(u8),
}

/// One instruction in the compiled stream.
#[derive(Debug, Clone)]
pub struct CInstr {
    /// Lowered operation.
    pub op: COp,
    /// Original pc of the opcode byte (for `PC`, deopt re-entry, and
    /// divergence diagnostics).
    pub pc: u32,
    /// Static gas of all *later* instructions in this block (the fused
    /// charge not yet earned once this instruction's own static portion
    /// is accounted). `corr_pre = corr_post + base_gas(opcode)`.
    pub corr_post: u32,
}

/// One basic block lowered to a superinstruction.
#[derive(Debug, Clone)]
pub struct CBlock {
    /// Index of the first instruction in [`CompiledCode::instrs`].
    pub first: u32,
    /// Number of instructions.
    pub len: u32,
    /// Sum of `opcode::base_gas` over the block — the single fused
    /// upfront charge.
    pub static_gas: u64,
    /// Minimum stack depth required at entry so no instruction in the
    /// block underflows (from the ORIGINAL pre-fusion sequence).
    pub needed: u32,
    /// Maximum net stack growth over any prefix of the block; entry
    /// depth + this must stay within the 1024 limit.
    pub max_growth: i64,
    /// Control continues into block `id + 1` after the last instruction.
    pub falls_through: bool,
    /// pc of the first instruction (deopt re-entry point).
    pub start_pc: u32,
}

/// A contract compiled to superinstruction form. Lives inside
/// [`AnalyzedCode`] so the per-account analysis cache, `install_code`
/// invalidation and journal rollback cover exactly one artifact.
#[derive(Debug)]
pub struct CompiledCode {
    /// Lowered blocks, in code order.
    pub blocks: Vec<CBlock>,
    /// Lowered instructions, in code order.
    pub instrs: Vec<CInstr>,
    /// `jump_table[pc]` = block id iff `pc` starts a block whose first
    /// instruction is a `JUMPDEST` (the exact `is_jumpdest` universe);
    /// [`NO_TARGET`] elsewhere. Dynamic JUMP/JUMPI dispatch is one load.
    pub jump_table: Vec<u32>,
    /// Number of `PUSH+JUMP(I)` pairs fused to static targets.
    pub fused_jumps: usize,
    /// Number of constant-folded PUSH chains (MSTORE/MLOAD/RETURN/REVERT).
    pub folded: usize,
}

impl CompiledCode {
    /// Resolve a dynamic jump destination to a block id, mirroring
    /// `AnalyzedCode::is_jumpdest` semantics exactly.
    #[inline]
    pub fn jump_target(&self, dest: usize) -> Option<u32> {
        match self.jump_table.get(dest) {
            Some(&id) if id != NO_TARGET => Some(id),
            _ => None,
        }
    }
}

/// Lower `analysis` into superinstruction form, or `None` when
/// compilation bails (empty or oversized code). A `None` is cached by
/// the caller and means this blob permanently uses the plain path.
pub fn try_compile(analysis: &AnalyzedCode) -> Option<CompiledCode> {
    let code = analysis.code();
    if code.is_empty() || code.len() > MAX_COMPILED_CODE {
        return None;
    }
    let cfg = Cfg::from_analysis(analysis);
    if cfg.blocks.is_empty() {
        return None;
    }

    // pc → block table over the is_jumpdest universe: every JUMPDEST
    // instruction starts a block in the CFG, so "valid jump target" ≡
    // "block start whose first instruction is JUMPDEST".
    let mut jump_table = vec![NO_TARGET; code.len()];
    for &id in &cfg.jumpdest_blocks {
        jump_table[cfg.blocks[id].start_pc] = id as u32;
    }

    let mut instrs: Vec<CInstr> = Vec::with_capacity(cfg.instrs.len());
    let mut blocks: Vec<CBlock> = Vec::with_capacity(cfg.blocks.len());
    let mut fused_jumps = 0usize;
    let mut folded = 0usize;

    for blk in &cfg.blocks {
        let range = blk.instr_range();
        let src = &cfg.instrs[range.clone()];

        // Block metadata from the ORIGINAL instruction sequence: the
        // fused gas charge and stack range check must describe what the
        // plain interpreter would do, not the post-fusion stream.
        let mut static_gas = 0u64;
        let mut net = 0i64;
        let mut needed = 0i64;
        let mut max_growth = 0i64;
        for ins in src {
            static_gas += opcode::base_gas(ins.opcode);
            let (pops, pushes) = opcode::stack_io(ins.opcode).unwrap_or((0, 0));
            needed = needed.max(pops as i64 - net);
            net += pushes as i64 - pops as i64;
            max_growth = max_growth.max(net);
        }

        // Lower each instruction.
        let first = instrs.len() as u32;
        for ins in src {
            let cop = if opcode::is_push(ins.opcode) || ins.opcode == op::PUSH0 {
                COp::Push(ins.push.unwrap_or(U256::ZERO))
            } else {
                match classify(ins.opcode) {
                    PathClass::Fallback => COp::Deopt(ins.opcode),
                    _ => COp::Plain(ins.opcode),
                }
            };
            instrs.push(CInstr {
                op: cop,
                pc: ins.pc as u32,
                corr_post: 0,
            });
        }

        // corr_post: suffix sums of static gas, excluding each
        // instruction's own portion.
        let mut suffix = 0u64;
        for (slot, ins) in instrs[first as usize..]
            .iter_mut()
            .rev()
            .zip(src.iter().rev())
        {
            slot.corr_post = u32::try_from(suffix).ok()?;
            suffix += opcode::base_gas(ins.opcode);
        }

        // Peephole fusion within the block (adjacent instructions are
        // guaranteed same-block here). Skip slots already consumed.
        let lowered = &mut instrs[first as usize..];
        let n = lowered.len();
        for i in 0..n {
            let COp::Push(v) = lowered[i].op else {
                continue;
            };
            let Some(k) = v.to_usize().filter(|&k| k <= u32::MAX as usize) else {
                continue;
            };
            let k32 = k as u32;
            // PUSH target; JUMP/JUMPI → threaded static jump, only when
            // the target is a valid JUMPDEST block start (otherwise the
            // runtime InvalidJump check must stay).
            if i + 1 < n {
                match lowered[i + 1].op {
                    COp::Plain(op::JUMP) => {
                        if let Some(&t) = jump_table.get(k).filter(|&&t| t != NO_TARGET) {
                            lowered[i].op = COp::Nop;
                            lowered[i + 1].op = COp::JumpStatic(t);
                            fused_jumps += 1;
                        }
                        continue;
                    }
                    COp::Plain(op::JUMPI) => {
                        if let Some(&t) = jump_table.get(k).filter(|&&t| t != NO_TARGET) {
                            lowered[i].op = COp::Nop;
                            lowered[i + 1].op = COp::JumpIStatic(t);
                            fused_jumps += 1;
                        }
                        continue;
                    }
                    COp::Plain(op::MSTORE) => {
                        lowered[i].op = COp::Nop;
                        lowered[i + 1].op = COp::MStoreK(k32);
                        folded += 1;
                        continue;
                    }
                    COp::Plain(op::MLOAD) => {
                        lowered[i].op = COp::Nop;
                        lowered[i + 1].op = COp::MLoadK(k32);
                        folded += 1;
                        continue;
                    }
                    COp::Push(off) => {
                        // PUSH len; PUSH offset; RETURN/REVERT.
                        if i + 2 < n {
                            if let COp::Plain(term @ (op::RETURN | op::REVERT)) = lowered[i + 2].op
                            {
                                if let Some(o) = off.to_usize().filter(|&o| o <= u32::MAX as usize)
                                {
                                    lowered[i].op = COp::Nop;
                                    lowered[i + 1].op = COp::Nop;
                                    lowered[i + 2].op = COp::ReturnK {
                                        offset: o as u32,
                                        len: k32,
                                        revert: term == op::REVERT,
                                    };
                                    folded += 1;
                                }
                            }
                        }
                        continue;
                    }
                    _ => {}
                }
            }
        }

        blocks.push(CBlock {
            first,
            len: src.len() as u32,
            static_gas,
            needed: u32::try_from(needed.max(0)).ok()?,
            max_growth,
            falls_through: blk.falls_through,
            start_pc: blk.start_pc as u32,
        });
    }

    Some(CompiledCode {
        blocks,
        instrs,
        jump_table,
        fused_jumps,
        folded,
    })
}

/// One-line human summary of a compiled artifact (vetting reports).
pub fn summary(analysis: &AnalyzedCode) -> Option<String> {
    analysis.compiled().map(|c| {
        format!(
            "superinstr: {} blocks, {} instrs, {} fused jumps, {} folded chains",
            c.blocks.len(),
            c.instrs.len(),
            c.fused_jumps,
            c.folded
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn compiled(code: &[u8]) -> CompiledCode {
        try_compile(&AnalyzedCode::analyze(Arc::new(code.to_vec()))).expect("compiles")
    }

    #[test]
    fn empty_and_oversized_bail() {
        assert!(try_compile(&AnalyzedCode::empty()).is_none());
        let big = vec![op::JUMPDEST; MAX_COMPILED_CODE + 1];
        assert!(try_compile(&AnalyzedCode::analyze(Arc::new(big))).is_none());
    }

    #[test]
    fn static_jump_is_fused() {
        // PUSH1 4; JUMP; INVALID; JUMPDEST; STOP
        let code = [op::PUSH1, 4, op::JUMP, op::INVALID, op::JUMPDEST, op::STOP];
        let c = compiled(&code);
        assert_eq!(c.fused_jumps, 1);
        assert_eq!(c.instrs[0].op, COp::Nop);
        let COp::JumpStatic(t) = c.instrs[1].op else {
            panic!("not fused: {:?}", c.instrs[1].op);
        };
        assert_eq!(c.blocks[t as usize].start_pc, 4);
        // Jump table mirrors is_jumpdest.
        assert_eq!(c.jump_target(4), Some(t));
        assert_eq!(c.jump_target(0), None);
        assert_eq!(c.jump_target(999), None);
    }

    #[test]
    fn invalid_static_target_stays_unfused() {
        // PUSH1 3; JUMP; STOP — target 3 is STOP, not a JUMPDEST.
        let code = [op::PUSH1, 3, op::JUMP, op::STOP];
        let c = compiled(&code);
        assert_eq!(c.fused_jumps, 0);
        assert!(matches!(c.instrs[1].op, COp::Plain(op::JUMP)));
    }

    #[test]
    fn push_chains_fold() {
        // PUSH1 0x2a; PUSH1 0; MSTORE; PUSH1 32; PUSH1 0; RETURN
        let code = [
            op::PUSH1,
            0x2a,
            op::PUSH1,
            0,
            op::MSTORE,
            op::PUSH1,
            32,
            op::PUSH1,
            0,
            op::RETURN,
        ];
        let c = compiled(&code);
        assert_eq!(c.folded, 2);
        assert!(matches!(c.instrs[2].op, COp::MStoreK(0)));
        assert_eq!(
            c.instrs[5].op,
            COp::ReturnK {
                offset: 0,
                len: 32,
                revert: false
            }
        );
    }

    #[test]
    fn block_metadata_from_original_sequence() {
        // One block: PUSH1 1; PUSH1 2; ADD; POP; STOP
        let code = [op::PUSH1, 1, op::PUSH1, 2, op::ADD, op::POP, op::STOP];
        let c = compiled(&code);
        assert_eq!(c.blocks.len(), 1);
        let b = &c.blocks[0];
        assert_eq!(b.static_gas, 3 + 3 + 3 + 2); // two pushes, ADD, POP, STOP=0
        assert_eq!(b.needed, 0);
        assert_eq!(b.max_growth, 2);
        // corr_post: suffix statics. instr 0 (PUSH): 3+3+2+0=8.
        assert_eq!(c.instrs[0].corr_post, 8);
        assert_eq!(c.instrs[4].corr_post, 0);
    }

    #[test]
    fn classification_is_total() {
        for byte in 0u8..=255 {
            let class = classify(byte);
            if matches!(
                byte,
                op::CREATE | op::CREATE2 | op::SELFDESTRUCT | op::EXTCODECOPY
            ) {
                assert_eq!(class, PathClass::Fallback);
            } else if opcode::stack_io(byte).is_none() {
                assert_eq!(class, PathClass::Halts);
            } else {
                assert_eq!(class, PathClass::Native);
            }
        }
    }
}
