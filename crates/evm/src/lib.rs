//! # lsc-evm
//!
//! A from-scratch Ethereum Virtual Machine for the legal-smart-contracts
//! reproduction: 256-bit stack machine, quadratic memory, journaled
//! storage via a [`host::Host`] trait, full gas metering, nested
//! CALL/DELEGATECALL/STATICCALL frames, CREATE/CREATE2, logs and reverts.
//!
//! The paper deploys its rental-agreement contracts on Ethereum (via
//! Ganache); this crate is the execution substrate those contracts run on
//! here. The [`asm`] module is the emission backend for `lsc-solc`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod analysis;
pub mod asm;
pub mod cfg;
pub mod compile;
pub mod gas;
pub mod host;
pub mod interpreter;
pub mod memory;
pub mod opcode;
pub mod snapshot_host;
pub mod stack;

pub use access::{AccessKey, AccessSet, RecordingHost};
pub use analysis::{fastpath, memo_stats, superinstr, AnalyzedCode};
pub use compile::{classify, CompiledCode, PathClass};
pub use host::{BlockEnv, Host, Log, MockHost};
pub use interpreter::{
    CallKind, CallResult, Config, Evm, Halt, Message, TraceStep, MAX_CALL_DEPTH, MAX_TRACE_STEPS,
};
pub use snapshot_host::{SnapshotHost, StateView};
