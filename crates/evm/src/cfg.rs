//! Control-flow-graph recovery over EVM bytecode.
//!
//! This is the structural half of the static analyzer (`lsc-analyzer`
//! supplies the semantic half — abstract interpretation, reachability,
//! lints). The decoder here must agree with the interpreter *exactly*:
//! the same instruction boundaries `jumpdest_map` uses (PUSH immediates
//! are skipped, truncated ones included), the same zero-padded value for
//! a PUSH whose immediate runs past the end of the code, and the same
//! implicit-STOP semantics for falling off the end.
//!
//! Basic blocks are split at every `JUMPDEST` (any of them can be a
//! dynamic jump target), after `JUMP`/`JUMPI`, and after every halting
//! terminator (`STOP`, `RETURN`, `REVERT`, `SELFDESTRUCT`, `INVALID`,
//! undefined bytes). Static fallthrough edges are recorded on the block;
//! dynamic jump edges are resolved by the analyzer's constant tracking,
//! which is why [`BasicBlock`] carries `has_jump` instead of a target.

use crate::analysis::AnalyzedCode;
use crate::opcode::{self, op};
use lsc_primitives::U256;

/// One decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Offset of the opcode byte.
    pub pc: usize,
    /// The opcode byte (may be an undefined opcode; those halt the frame).
    pub opcode: u8,
    /// For `PUSH1..PUSH32`: the value the interpreter pushes, including
    /// the right zero-padding a truncated end-of-code immediate gets.
    pub push: Option<U256>,
    /// True when this is a PUSH whose immediate is cut off by the end of
    /// the code (the interpreter zero-pads; the lint pass flags it).
    pub truncated: bool,
}

impl Instr {
    /// Total encoded size: opcode byte plus however many immediate bytes
    /// are actually present in the code (a truncated PUSH is shorter than
    /// its nominal width).
    pub fn size(&self, code_len: usize) -> usize {
        let nominal = 1 + opcode::immediate_len(self.opcode);
        nominal.min(code_len - self.pc)
    }
}

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// pc of the first instruction.
    pub start_pc: usize,
    /// pc one past the last instruction's last byte.
    pub end_pc: usize,
    /// Index of the first instruction in [`Cfg::instrs`].
    pub first: usize,
    /// Number of instructions in the block (always ≥ 1).
    pub len: usize,
    /// The block may continue into the next block: it ends with `JUMPI`,
    /// or it was split only because the next instruction is a `JUMPDEST`.
    /// A `true` here with no following block means implicit STOP.
    pub falls_through: bool,
    /// The block ends with `JUMP` or `JUMPI`; the analyzer resolves the
    /// dynamic edge(s).
    pub has_jump: bool,
}

impl BasicBlock {
    /// Indices of this block's instructions in [`Cfg::instrs`].
    pub fn instr_range(&self) -> std::ops::Range<usize> {
        self.first..self.first + self.len
    }
}

/// Recovered control-flow graph: decoded instructions, basic blocks, and
/// pc→block lookup. Jump *edges* live in the analyzer.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Every decoded instruction, in code order.
    pub instrs: Vec<Instr>,
    /// Basic blocks, in code order (`blocks[i]` flows into `blocks[i+1]`
    /// when `falls_through`).
    pub blocks: Vec<BasicBlock>,
    /// Block ids whose first instruction is a `JUMPDEST` — the universe
    /// of possible dynamic jump targets.
    pub jumpdest_blocks: Vec<usize>,
    code_len: usize,
    /// `block_of[pc]` = block id owning the instruction that *starts* at
    /// `pc`, `u32::MAX` for immediate bytes / non-instruction offsets.
    block_of: Vec<u32>,
}

const NO_BLOCK: u32 = u32::MAX;

impl Cfg {
    /// Decode `code` and recover basic blocks. Works for empty code
    /// (zero instructions, zero blocks — the interpreter treats it as an
    /// immediate STOP).
    pub fn build(code: &[u8]) -> Cfg {
        let instrs = decode(code);

        // Leader set: instruction 0, every JUMPDEST, and the instruction
        // after a JUMP/JUMPI or halting terminator.
        let mut leader = vec![false; instrs.len()];
        if !instrs.is_empty() {
            leader[0] = true;
        }
        for (i, ins) in instrs.iter().enumerate() {
            if ins.opcode == op::JUMPDEST {
                leader[i] = true;
            }
            let ends_block = ins.opcode == op::JUMPI || opcode::is_terminator(ins.opcode);
            if ends_block && i + 1 < instrs.len() {
                leader[i + 1] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![NO_BLOCK; code.len()];
        let mut jumpdest_blocks = Vec::new();
        let mut i = 0;
        while i < instrs.len() {
            let first = i;
            i += 1;
            while i < instrs.len() && !leader[i] {
                i += 1;
            }
            let last = &instrs[i - 1];
            let id = blocks.len();
            for ins in &instrs[first..i] {
                block_of[ins.pc] = id as u32;
            }
            if instrs[first].opcode == op::JUMPDEST {
                jumpdest_blocks.push(id);
            }
            let has_jump = matches!(last.opcode, op::JUMP | op::JUMPI);
            // Falls through unless the last instruction never does:
            // JUMP and the halting terminators end the path; JUMPI and a
            // plain split-at-JUMPDEST boundary continue.
            let falls_through = last.opcode == op::JUMPI || !opcode::is_terminator(last.opcode);
            blocks.push(BasicBlock {
                start_pc: instrs[first].pc,
                end_pc: last.pc + last.size(code.len()),
                first,
                len: i - first,
                falls_through,
                has_jump,
            });
        }

        Cfg {
            instrs,
            blocks,
            jumpdest_blocks,
            code_len: code.len(),
            block_of,
        }
    }

    /// Build from cached analysis (shares the interpreter's substrate).
    pub fn from_analysis(analysis: &AnalyzedCode) -> Cfg {
        Cfg::build(analysis.code())
    }

    /// Length of the analyzed code.
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// Block owning the instruction that starts at `pc`, if any.
    pub fn block_of_pc(&self, pc: usize) -> Option<usize> {
        match self.block_of.get(pc) {
            Some(&id) if id != NO_BLOCK => Some(id as usize),
            _ => None,
        }
    }

    /// Block id for a jump to `target`: the target must be the start of a
    /// block whose first instruction is a `JUMPDEST` (anything else is an
    /// invalid jump at runtime).
    pub fn jump_target_block(&self, target: usize) -> Option<usize> {
        let id = self.block_of_pc(target)?;
        let blk = &self.blocks[id];
        (blk.start_pc == target && self.instrs[blk.first].opcode == op::JUMPDEST).then_some(id)
    }

    /// The instruction starting at `pc`, if `pc` is an instruction
    /// boundary.
    pub fn instr_at(&self, pc: usize) -> Option<&Instr> {
        let id = self.block_of_pc(pc)?;
        let blk = &self.blocks[id];
        self.instrs[blk.instr_range()]
            .iter()
            .find(|ins| ins.pc == pc)
    }
}

/// Decode bytecode into instructions, mirroring the interpreter's fetch
/// loop: immediates are skipped (`pc += 1 + n`), and a truncated PUSH
/// pushes its partial immediate shifted left to the nominal width.
pub fn decode(code: &[u8]) -> Vec<Instr> {
    let mut instrs = Vec::new();
    let mut pc = 0;
    while pc < code.len() {
        let byte = code[pc];
        let n = opcode::immediate_len(byte);
        let (push, truncated) = if opcode::is_push(byte) {
            let end = (pc + 1 + n).min(code.len());
            let mut value = U256::from_be_slice(&code[pc + 1..end]);
            let truncated = end < pc + 1 + n;
            if truncated {
                // Interpreter semantics: missing trailing bytes are zero.
                value = value << (8 * (pc + 1 + n - end) as u32);
            }
            (Some(value), truncated)
        } else {
            (None, false)
        };
        instrs.push(Instr {
            pc,
            opcode: byte,
            push,
            truncated,
        });
        pc += 1 + n;
    }
    instrs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::opcode::disassemble;
    use std::sync::Arc;

    #[test]
    fn decode_simple_linear() {
        // PUSH1 2, PUSH1 3, ADD, STOP
        let code = [op::PUSH1, 2, op::PUSH1, 3, op::ADD, op::STOP];
        let instrs = decode(&code);
        assert_eq!(instrs.len(), 4);
        assert_eq!(instrs[0].push, Some(U256::from(2u64)));
        assert_eq!(instrs[1].pc, 2);
        assert_eq!(instrs[2].opcode, op::ADD);
        let cfg = Cfg::build(&code);
        assert_eq!(cfg.blocks.len(), 1);
        assert!(!cfg.blocks[0].falls_through);
    }

    /// Regression (ISSUE 4 satellite): a PUSH32 two bytes before the end
    /// of the code. The immediate is truncated to one byte; the decoder
    /// must zero-pad exactly like the interpreter, `jumpdest_map` must
    /// not mark bytes inside the (implicit) immediate, and the
    /// disassembler must render the padded value.
    #[test]
    fn truncated_push32_two_bytes_before_end() {
        // JUMPDEST, PUSH32 with only 0x5b as immediate data, end of code.
        let code = [op::JUMPDEST, op::PUSH32, 0x5b];
        let instrs = decode(&code);
        assert_eq!(instrs.len(), 2);
        let push = &instrs[1];
        assert!(push.truncated);
        // 0x5b padded right to 32 bytes: 0x5b << (8*31).
        assert_eq!(push.push, Some(U256::from(0x5bu64) << (8 * 31)));
        assert_eq!(push.size(code.len()), 2);

        // The 0x5b immediate byte is NOT a jumpdest.
        let analysis = AnalyzedCode::analyze(Arc::new(code.to_vec()));
        assert!(analysis.is_jumpdest(0));
        assert!(!analysis.is_jumpdest(2));

        // Disassembly shows the zero-padded value the program pushes.
        let rows = disassemble(&code);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[1].1,
            format!("PUSH32 0x5b{} (truncated)", "00".repeat(31))
        );

        let cfg = Cfg::build(&code);
        assert_eq!(cfg.blocks.len(), 1);
        // Truncated PUSH is the last instruction: implicit STOP, so the
        // block "falls through" into the end of code.
        assert!(cfg.blocks[0].falls_through);
        assert_eq!(cfg.blocks[0].end_pc, 3);
    }

    #[test]
    fn decoded_values_match_interpreter_push() {
        // Full-width PUSH2 vs truncated PUSH2 with one byte.
        let full = [op::PUSH1 + 1, 0xab, 0xcd];
        assert_eq!(decode(&full)[0].push, Some(U256::from(0xabcdu64)));
        let cut = [op::PUSH1 + 1, 0xab];
        assert_eq!(decode(&cut)[0].push, Some(U256::from(0xab00u64)));
    }

    #[test]
    fn blocks_split_at_jumpdest_and_terminators() {
        let mut asm = Asm::new();
        let target = asm.new_label();
        asm.push_label(target); // block 0: PUSH3 target
        asm.op(op::JUMP); //          JUMP  (ends block 0)
        asm.op(op::INVALID); // block 1: INVALID (unreachable)
        asm.place(target); // block 2: JUMPDEST
        asm.op(op::STOP); //          STOP
        let code = asm.assemble().unwrap();
        let cfg = Cfg::build(&code);
        assert_eq!(cfg.blocks.len(), 3);
        assert!(cfg.blocks[0].has_jump);
        assert!(!cfg.blocks[0].falls_through);
        assert!(!cfg.blocks[1].falls_through); // INVALID halts
        assert_eq!(cfg.jumpdest_blocks, vec![2]);
        let dest = cfg.blocks[2].start_pc;
        assert_eq!(cfg.jump_target_block(dest), Some(2));
        // Jumping mid-block or to a non-JUMPDEST resolves to nothing.
        assert_eq!(cfg.jump_target_block(0), None);
    }

    #[test]
    fn jumpi_falls_through_and_jumps() {
        let mut asm = Asm::new();
        let target = asm.new_label();
        asm.push_u64(0); // cond
        asm.push_label(target);
        asm.op(op::JUMPI);
        asm.op(op::STOP);
        asm.place(target);
        asm.op(op::STOP);
        let code = asm.assemble().unwrap();
        let cfg = Cfg::build(&code);
        assert_eq!(cfg.blocks.len(), 3);
        assert!(cfg.blocks[0].has_jump);
        assert!(cfg.blocks[0].falls_through);
    }

    #[test]
    fn pc_lookup() {
        let code = [op::PUSH1, 0xee, op::ADD];
        let cfg = Cfg::build(&code);
        assert_eq!(cfg.block_of_pc(0), Some(0));
        assert_eq!(cfg.block_of_pc(1), None); // immediate byte
        assert_eq!(cfg.block_of_pc(2), Some(0));
        assert!(cfg.instr_at(2).is_some());
        assert!(cfg.instr_at(1).is_none());
        assert!(cfg.block_of_pc(99).is_none());
    }

    #[test]
    fn empty_code() {
        let cfg = Cfg::build(&[]);
        assert!(cfg.instrs.is_empty());
        assert!(cfg.blocks.is_empty());
    }
}
