//! The interface the interpreter uses to touch world state.
//!
//! `lsc-chain` implements [`Host`] on top of its journaled state; tests in
//! this crate use the in-memory [`MockHost`].

use crate::analysis::AnalyzedCode;
use lsc_primitives::{Address, H256, U256};
use std::collections::HashMap;
use std::sync::Arc;

/// Block-level execution environment.
#[derive(Debug, Clone)]
pub struct BlockEnv {
    /// Block height.
    pub number: u64,
    /// Unix timestamp of the block (`block.timestamp` / Solidity `now`).
    pub timestamp: u64,
    /// Miner address (`COINBASE`).
    pub coinbase: Address,
    /// Block gas limit.
    pub gas_limit: u64,
    /// Difficulty / prevrandao word.
    pub difficulty: U256,
    /// EIP-155 chain id.
    pub chain_id: u64,
}

impl Default for BlockEnv {
    fn default() -> Self {
        BlockEnv {
            number: 1,
            timestamp: 1_577_836_800, // 2020-01-01, the paper's era
            coinbase: Address::ZERO,
            gas_limit: 30_000_000,
            difficulty: U256::ZERO,
            chain_id: 1337,
        }
    }
}

/// An event emitted by `LOG0..LOG4`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log {
    /// Emitting contract.
    pub address: Address,
    /// Indexed topics (topic 0 is the event signature hash).
    pub topics: Vec<H256>,
    /// ABI-encoded unindexed payload.
    pub data: Vec<u8>,
}

/// State interface consumed by the interpreter.
pub trait Host {
    /// Current block environment.
    fn block(&self) -> &BlockEnv;
    /// Hash of a recent block (zero if unavailable).
    fn blockhash(&self, number: u64) -> H256;
    /// Effective gas price of the current transaction.
    fn gas_price(&self) -> U256;

    /// Does the account exist (has balance, code or nonce)?
    fn exists(&self, address: Address) -> bool;
    /// Account balance in wei.
    fn balance(&self, address: Address) -> U256;
    /// Account nonce.
    fn nonce(&self, address: Address) -> u64;
    /// Contract code (empty for EOAs).
    fn code(&self, address: Address) -> Vec<u8>;
    /// Keccak of the code (zero hash for empty accounts).
    fn code_hash(&self, address: Address) -> H256;
    /// Jumpdest/hash analysis of the account's code. The default
    /// recomputes per call; hosts with an account store override this to
    /// return a cached `Arc` so nested frames share one analysis per
    /// code blob (see [`AnalyzedCode`]).
    fn code_analysis(&self, address: Address) -> Arc<AnalyzedCode> {
        let code = self.code(address);
        if code.is_empty() {
            AnalyzedCode::empty()
        } else {
            AnalyzedCode::analyze(Arc::new(code))
        }
    }

    /// Read a storage slot.
    fn sload(&mut self, address: Address, key: U256) -> U256;
    /// Write a storage slot; returns the previous value for gas metering.
    fn sstore(&mut self, address: Address, key: U256, value: U256) -> U256;
    /// Move `value` wei; `false` if the sender's balance is insufficient.
    fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool;
    /// Credit `value` wei out of thin air (block rewards, test faucets).
    fn mint(&mut self, to: Address, value: U256);
    /// Increment an account's nonce, returning the value *before*.
    fn inc_nonce(&mut self, address: Address) -> u64;
    /// Install code at an address (end of a successful CREATE).
    fn set_code(&mut self, address: Address, code: Vec<u8>);
    /// Mark an account as existing (start of CREATE).
    fn create_account(&mut self, address: Address);
    /// Self-destruct: move the balance and delete the account.
    fn selfdestruct(&mut self, address: Address, beneficiary: Address);
    /// Record an event log.
    fn log(&mut self, log: Log);

    /// Take a journal snapshot; [`Host::revert`] rolls back to it.
    fn snapshot(&mut self) -> usize;
    /// Roll state (storage, balances, nonces, logs, created accounts) back.
    fn revert(&mut self, snapshot: usize);
}

/// A simple fully in-memory host used by unit tests and benchmarks in this
/// crate. Snapshots are implemented by cloning the whole state — fine for
/// tests, not for a real node (the chain crate journals instead).
#[derive(Debug, Clone, Default)]
pub struct MockHost {
    /// Block environment returned by [`Host::block`].
    pub env: BlockEnv,
    /// Account balances.
    pub balances: HashMap<Address, U256>,
    /// Account nonces.
    pub nonces: HashMap<Address, u64>,
    /// Account code.
    pub codes: HashMap<Address, Vec<u8>>,
    /// Contract storage.
    pub storage: HashMap<(Address, U256), U256>,
    /// Accumulated logs.
    pub logs: Vec<Log>,
    /// Accounts explicitly created.
    pub created: Vec<Address>,
    /// Self-destructed accounts.
    pub destroyed: Vec<Address>,
    snapshots: Vec<MockHostState>,
}

#[derive(Debug, Clone, Default)]
struct MockHostState {
    balances: HashMap<Address, U256>,
    nonces: HashMap<Address, u64>,
    codes: HashMap<Address, Vec<u8>>,
    storage: HashMap<(Address, U256), U256>,
    logs_len: usize,
    created_len: usize,
    destroyed_len: usize,
}

impl MockHost {
    /// Fresh empty host with the default block environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set an account balance directly (test setup).
    pub fn fund(&mut self, address: Address, amount: U256) {
        self.balances.insert(address, amount);
    }
}

impl Host for MockHost {
    fn block(&self) -> &BlockEnv {
        &self.env
    }

    fn blockhash(&self, number: u64) -> H256 {
        if number >= self.env.number || self.env.number - number > 256 {
            H256::ZERO
        } else {
            H256::keccak(number.to_be_bytes())
        }
    }

    fn gas_price(&self) -> U256 {
        U256::from_u64(1)
    }

    fn exists(&self, address: Address) -> bool {
        self.balances.contains_key(&address)
            || self.nonces.contains_key(&address)
            || self.codes.contains_key(&address)
    }

    fn balance(&self, address: Address) -> U256 {
        self.balances.get(&address).copied().unwrap_or(U256::ZERO)
    }

    fn nonce(&self, address: Address) -> u64 {
        self.nonces.get(&address).copied().unwrap_or(0)
    }

    fn code(&self, address: Address) -> Vec<u8> {
        self.codes.get(&address).cloned().unwrap_or_default()
    }

    fn code_hash(&self, address: Address) -> H256 {
        match self.codes.get(&address) {
            Some(code) => H256::keccak(code),
            None => H256::ZERO,
        }
    }

    fn sload(&mut self, address: Address, key: U256) -> U256 {
        self.storage
            .get(&(address, key))
            .copied()
            .unwrap_or(U256::ZERO)
    }

    fn sstore(&mut self, address: Address, key: U256, value: U256) -> U256 {
        let prev = self
            .storage
            .insert((address, key), value)
            .unwrap_or(U256::ZERO);
        if value.is_zero() {
            self.storage.remove(&(address, key));
        }
        prev
    }

    fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        if value.is_zero() {
            return true;
        }
        let from_balance = self.balance(from);
        if from_balance < value {
            return false;
        }
        self.balances.insert(from, from_balance - value);
        let to_balance = self.balance(to);
        self.balances.insert(to, to_balance + value);
        true
    }

    fn mint(&mut self, to: Address, value: U256) {
        let balance = self.balance(to);
        self.balances.insert(to, balance + value);
    }

    fn inc_nonce(&mut self, address: Address) -> u64 {
        let n = self.nonce(address);
        self.nonces.insert(address, n + 1);
        n
    }

    fn set_code(&mut self, address: Address, code: Vec<u8>) {
        self.codes.insert(address, code);
    }

    fn create_account(&mut self, address: Address) {
        self.created.push(address);
        self.nonces.entry(address).or_insert(0);
        self.balances.entry(address).or_insert(U256::ZERO);
    }

    fn selfdestruct(&mut self, address: Address, beneficiary: Address) {
        let balance = self.balance(address);
        self.balances.remove(&address);
        self.mint(beneficiary, balance);
        self.codes.remove(&address);
        self.nonces.remove(&address);
        self.destroyed.push(address);
    }

    fn log(&mut self, log: Log) {
        self.logs.push(log);
    }

    fn snapshot(&mut self) -> usize {
        self.snapshots.push(MockHostState {
            balances: self.balances.clone(),
            nonces: self.nonces.clone(),
            codes: self.codes.clone(),
            storage: self.storage.clone(),
            logs_len: self.logs.len(),
            created_len: self.created.len(),
            destroyed_len: self.destroyed.len(),
        });
        self.snapshots.len() - 1
    }

    fn revert(&mut self, snapshot: usize) {
        let state = self.snapshots[snapshot].clone();
        self.balances = state.balances;
        self.nonces = state.nonces;
        self.codes = state.codes;
        self.storage = state.storage;
        self.logs.truncate(state.logs_len);
        self.created.truncate(state.created_len);
        self.destroyed.truncate(state.destroyed_len);
        self.snapshots.truncate(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_and_balance() {
        let mut h = MockHost::new();
        let a = Address::from_label("a");
        let b = Address::from_label("b");
        h.fund(a, U256::from_u64(100));
        assert!(h.transfer(a, b, U256::from_u64(40)));
        assert_eq!(h.balance(a), U256::from_u64(60));
        assert_eq!(h.balance(b), U256::from_u64(40));
        assert!(!h.transfer(a, b, U256::from_u64(1000)));
    }

    #[test]
    fn snapshot_revert_restores_everything() {
        let mut h = MockHost::new();
        let a = Address::from_label("a");
        h.fund(a, U256::from_u64(5));
        let snap = h.snapshot();
        h.sstore(a, U256::ONE, U256::from_u64(7));
        h.log(Log {
            address: a,
            topics: vec![],
            data: vec![],
        });
        h.inc_nonce(a);
        h.revert(snap);
        assert_eq!(h.sload(a, U256::ONE), U256::ZERO);
        assert!(h.logs.is_empty());
        assert_eq!(h.nonce(a), 0);
        assert_eq!(h.balance(a), U256::from_u64(5));
    }

    #[test]
    fn sstore_returns_previous_and_clears_zero() {
        let mut h = MockHost::new();
        let a = Address::from_label("a");
        assert_eq!(h.sstore(a, U256::ONE, U256::from_u64(3)), U256::ZERO);
        assert_eq!(h.sstore(a, U256::ONE, U256::ZERO), U256::from_u64(3));
        assert!(h.storage.is_empty());
    }

    #[test]
    fn selfdestruct_moves_funds() {
        let mut h = MockHost::new();
        let c = Address::from_label("contract");
        let b = Address::from_label("beneficiary");
        h.fund(c, U256::from_u64(9));
        h.set_code(c, vec![0x00]);
        h.selfdestruct(c, b);
        assert_eq!(h.balance(b), U256::from_u64(9));
        assert!(h.code(c).is_empty());
        assert_eq!(h.destroyed, vec![c]);
    }
}
