//! Tests of the structured execution tracer (`Config::trace`).

use lsc_evm::asm::Asm;
use lsc_evm::opcode::op;
use lsc_evm::{Config, Evm, Host, Message, MockHost};
use lsc_primitives::{Address, U256};

fn traced_run(code: Vec<u8>) -> (lsc_evm::CallResult, Vec<lsc_evm::TraceStep>) {
    let mut host = MockHost::new();
    let contract = Address::from_label("contract");
    let caller = Address::from_label("caller");
    host.fund(caller, U256::from_u64(1_000_000));
    host.set_code(contract, code);
    let config = Config {
        trace: true,
        ..Default::default()
    };
    let mut evm = Evm::with_config(&mut host, config);
    let result = evm.execute(Message::call(
        caller,
        contract,
        U256::ZERO,
        vec![],
        1_000_000,
    ));
    let trace = std::mem::take(&mut evm.trace);
    (result, trace)
}

#[test]
fn trace_records_every_instruction_in_order() {
    // PUSH1 2; PUSH1 3; ADD; STOP
    let mut a = Asm::new();
    a.push_u64(2).push_u64(3).op(op::ADD).op(op::STOP);
    let (result, trace) = traced_run(a.assemble().unwrap());
    assert!(result.success);
    let mnemonics: Vec<&str> = trace.iter().map(lsc_evm::TraceStep::mnemonic).collect();
    assert_eq!(mnemonics, vec!["PUSH", "PUSH", "ADD", "STOP"]);
    // PCs advance past immediates.
    assert_eq!(trace[0].pc, 0);
    assert_eq!(trace[1].pc, 2);
    assert_eq!(trace[2].pc, 4);
    // Stack depth grows with pushes.
    assert_eq!(trace[0].stack_depth, 0);
    assert_eq!(trace[2].stack_depth, 2);
    // Gas decreases monotonically.
    assert!(trace
        .windows(2)
        .all(|w| w[0].gas_remaining >= w[1].gas_remaining));
}

#[test]
fn trace_covers_nested_call_depths() {
    let mut host = MockHost::new();
    let callee = Address::from_label("callee");
    let mut c = Asm::new();
    c.push_u64(1).op(op::POP).op(op::STOP);
    host.set_code(callee, c.assemble().unwrap());
    // Caller CALLs callee.
    let mut a = Asm::new();
    a.push_u64(0)
        .push_u64(0)
        .push_u64(0)
        .push_u64(0)
        .push_u64(0);
    a.push(callee.to_u256());
    a.push_u64(100_000);
    a.op(op::CALL);
    a.op(op::STOP);
    let contract = Address::from_label("contract");
    let caller = Address::from_label("caller");
    host.set_code(contract, a.assemble().unwrap());
    let config = Config {
        trace: true,
        ..Default::default()
    };
    let mut evm = Evm::with_config(&mut host, config);
    let result = evm.execute(Message::call(
        caller,
        contract,
        U256::ZERO,
        vec![],
        1_000_000,
    ));
    assert!(result.success);
    let depths: std::collections::BTreeSet<u32> = evm.trace.iter().map(|s| s.depth).collect();
    assert!(depths.contains(&0) && depths.contains(&1), "{depths:?}");
    // The callee's three instructions appear at depth 1.
    assert_eq!(evm.trace.iter().filter(|s| s.depth == 1).count(), 3);
}

#[test]
fn trace_is_capped() {
    // Infinite loop burns gas; the trace must stop at the cap (or when
    // gas runs out, whichever first) without unbounded memory.
    let mut a = Asm::new();
    let top = a.new_label();
    a.place(top);
    a.push_label(top).op(op::JUMP);
    let (result, trace) = traced_run(a.assemble().unwrap());
    assert!(!result.success);
    assert!(trace.len() <= lsc_evm::MAX_TRACE_STEPS);
    assert!(!trace.is_empty());
}

#[test]
fn tracing_does_not_change_semantics() {
    let mut a = Asm::new();
    a.push_u64(7).push_u64(0).op(op::MSTORE);
    a.push_u64(32).push_u64(0).op(op::RETURN);
    let code = a.assemble().unwrap();
    let (traced, _) = traced_run(code.clone());
    // Untraced run.
    let mut host = MockHost::new();
    let contract = Address::from_label("contract");
    host.set_code(contract, code);
    let untraced = Evm::new(&mut host).execute(Message::call(
        Address::from_label("caller"),
        contract,
        U256::ZERO,
        vec![],
        1_000_000,
    ));
    assert_eq!(traced.output, untraced.output);
    assert_eq!(traced.gas_left, untraced.gas_left);
}
