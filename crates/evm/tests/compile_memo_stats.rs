//! The process-wide compile memo must serve redeploys of byte-identical
//! code without re-running the block compiler. This is the mechanism the
//! `superinstr_version_chain_8` bench series leans on: every A/B run
//! rebuilds its world and redeploys the same template bytecode, so the
//! compile cost must be paid once per process, not once per run.
//!
//! This file holds exactly one `#[test]` because the hit/miss counters
//! in `analysis::memo_stats` are process-global; a sibling test in the
//! same binary would race them.

use lsc_evm::analysis::memo_stats;
use lsc_evm::opcode::op;
use lsc_evm::AnalyzedCode;
use std::sync::Arc;

/// A small loop with storage traffic — comfortably inside the block
/// compiler's supported opcode set, so `compiled()` yields an artifact
/// rather than a memoized bail.
fn template_code() -> Vec<u8> {
    vec![
        op::PUSH1,
        0x05,
        op::PUSH1,
        0x00,
        op::SSTORE, // slot 0 = 5
        op::JUMPDEST,
        op::PUSH1,
        0x00,
        op::SLOAD, // counter
        op::PUSH1,
        0x01,
        op::SWAP1,
        op::SUB, // counter - 1
        op::DUP1,
        op::PUSH1,
        0x00,
        op::SSTORE, // store it back
        op::PUSH1,
        0x05,
        op::JUMPI, // loop while non-zero
        op::STOP,
    ]
}

#[test]
fn redeploys_of_identical_bytecode_hit_the_memo() {
    let code = template_code();
    memo_stats::reset();

    // First "deploy": a fresh analysis for a fresh account. The memo has
    // never seen this blob, so the block compiler runs once.
    let first = AnalyzedCode::analyze(Arc::new(code.clone()));
    let first_artifact = first.compiled();
    assert_eq!(memo_stats::snapshot(), (0, 1), "first deploy must compile");

    // Redeploys: distinct `AnalyzedCode` values (as distinct accounts
    // carry), same bytes. Every one must be served from the memo.
    for round in 1..=4u64 {
        let redeploy = AnalyzedCode::analyze(Arc::new(code.clone()));
        let artifact = redeploy.compiled();
        assert_eq!(
            memo_stats::snapshot(),
            (round, 1),
            "redeploy {round} must hit, not recompile"
        );
        match (&first_artifact, &artifact) {
            (Some(a), Some(b)) => {
                assert!(Arc::ptr_eq(a, b), "memo must share one artifact");
            }
            (None, None) => {} // a memoized bail is shared the same way
            _ => panic!("memo served a different compile outcome"),
        }
    }

    // The per-analysis `OnceLock` short-circuits repeat calls on the SAME
    // analysis — those never reach the memo and must not inflate hits.
    let _ = first.compiled();
    assert_eq!(memo_stats::snapshot(), (4, 1));

    // Different bytecode is a different memo entry: a miss, not a hit.
    let mut other = code;
    other[1] = 0x07;
    let _ = AnalyzedCode::analyze(Arc::new(other)).compiled();
    assert_eq!(memo_stats::snapshot(), (4, 2));
}
