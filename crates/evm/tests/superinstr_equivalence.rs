//! Interpreter-differential suite for the superinstruction path: random
//! bytecode + random calldata + random gas limits executed with the
//! compiled block loop ON must agree **bit-exactly** with the plain
//! interpreter (the executable oracle, toggle OFF) on success/revert,
//! halt reason, return data, gas left, gas refund, logs and final host
//! state. Gas limits are swept down into the out-of-gas range on purpose:
//! the fused upfront block charge, the correction table and the deopt
//! re-entry path only differ from the oracle when gas runs out mid-block,
//! so the cheap cases are the interesting ones.
//!
//! On divergence the failure message prints the compiled block containing
//! the oracle's last executed pc — the superinstruction that disagreed.
//!
//! This file holds exactly one `#[test]` so flipping the process-global
//! `superinstr` toggle cannot race another test thread in the binary.

use lsc_evm::analysis::superinstr;
use lsc_evm::compile;
use lsc_evm::opcode::op;
use lsc_evm::{AnalyzedCode, CallResult, Config, Evm, Host, MockHost};
use lsc_primitives::{Address, H256, U256};
use proptest::prelude::*;
use std::sync::Arc;

/// Restore the global toggle even if an assertion unwinds mid-test.
struct SuperinstrGuard;
impl Drop for SuperinstrGuard {
    fn drop(&mut self) {
        superinstr::set_enabled(true);
    }
}

fn caller() -> Address {
    Address::from_label("superinstr-caller")
}

fn contract() -> Address {
    Address::from_label("superinstr-contract")
}

fn setup_host(code: &[u8]) -> MockHost {
    let mut host = MockHost::new();
    host.fund(caller(), U256::from_u64(1_000_000_000));
    host.fund(contract(), U256::from_u64(500));
    host.set_code(contract(), code.to_vec());
    host
}

fn message(data: &[u8], gas: u64) -> lsc_evm::Message {
    lsc_evm::Message::call(caller(), contract(), U256::from_u64(3), data.to_vec(), gas)
}

fn digest(result: &CallResult) -> (bool, bool, Option<lsc_evm::Halt>, Vec<u8>, u64, u64) {
    (
        result.success,
        result.reverted,
        result.halt,
        result.output.clone(),
        result.gas_left,
        result.gas_refund,
    )
}

fn host_digest(host: &MockHost) -> String {
    let mut balances: Vec<_> = host
        .balances
        .iter()
        .map(|(a, v)| format!("{a}={v:x}"))
        .collect();
    balances.sort();
    let mut storage: Vec<_> = host
        .storage
        .iter()
        .map(|((a, k), v)| format!("{a}/{k:x}={v:x}"))
        .collect();
    storage.sort();
    let mut codes: Vec<_> = host
        .codes
        .iter()
        .map(|(a, c)| format!("{a}:{}", H256::keccak(c)))
        .collect();
    codes.sort();
    let mut logs: Vec<_> = host
        .logs
        .iter()
        .map(|l| format!("{}@{:?}#{:02x?}", l.address, l.topics, l.data))
        .collect();
    logs.sort();
    format!(
        "b={balances:?} s={storage:?} c={codes:?} logs={logs:?} created={:?} destroyed={:?}",
        host.created, host.destroyed
    )
}

/// Mostly-decodable opcode soup, so execution regularly survives past the
/// first few bytes and exercises jumps, memory, storage, logs and calls —
/// raw uniform bytes die almost immediately on an undefined opcode.
fn soup_byte() -> impl Strategy<Value = u8> {
    prop_oneof![
        0x01u8..0x0c, // arithmetic
        0x10u8..0x1e, // comparison / bitwise
        0x30u8..0x49, // context reads & copies
        0x50u8..0x5c, // mem/storage/JUMP/JUMPI/PC/MSIZE/GAS/JUMPDEST
        Just(op::KECCAK256),
        op::PUSH1..=op::PUSH1 + 3, // short pushes (immediates follow)
        op::DUP1..=op::DUP16,
        op::SWAP1..=op::SWAP16,
        op::LOG0..=op::LOG4,
        Just(op::CALL),
        Just(op::DELEGATECALL),
        Just(op::STATICCALL),
        Just(op::CREATE),       // deopt class
        Just(op::SELFDESTRUCT), // deopt class
        Just(op::RETURN),
        Just(op::REVERT),
        Just(op::STOP),
        any::<u8>(),
    ]
}

fn code_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..192),
        proptest::collection::vec(soup_byte(), 0..256),
    ]
}

/// Gas sweep: deep OOG, borderline, and comfortable.
fn gas_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..300, 300u64..5_000, 5_000u64..60_000, Just(200_000u64)]
}

/// Locate (and render) the compiled block containing the oracle's last
/// executed pc — the superinstruction where the paths parted ways.
fn diverging_block(code: &[u8], data: &[u8], gas: u64) -> String {
    superinstr::set_enabled(false);
    let mut host = setup_host(code);
    let mut evm = Evm::with_config(
        &mut host,
        Config {
            trace: true,
            ..Config::default()
        },
    );
    let _ = evm.execute(message(data, gas));
    let last_pc = evm.trace.last().map(|s| s.pc);
    superinstr::set_enabled(true);

    let analysis = AnalyzedCode::analyze(Arc::new(code.to_vec()));
    let Some(compiled) = compile::try_compile(&analysis) else {
        return "code does not compile (permanent plain fallback)".into();
    };
    let Some(pc) = last_pc else {
        return "oracle executed no instructions".into();
    };
    for (id, b) in compiled.blocks.iter().enumerate() {
        let range = b.first as usize..(b.first + b.len) as usize;
        let instrs = &compiled.instrs[range.clone()];
        if instrs.iter().any(|i| i.pc as usize == pc) {
            let ops: Vec<_> = instrs.iter().map(|i| (i.pc, i.op)).collect();
            return format!(
                "oracle last pc {pc} in block {id} (start_pc {}, static_gas {}, needed {}, \
                 max_growth {}, falls_through {}): {ops:?}",
                b.start_pc, b.static_gas, b.needed, b.max_growth, b.falls_through
            );
        }
    }
    format!("oracle last pc {pc} not in any compiled block")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiled_and_plain_interpreters_are_bit_identical(
        code in code_strategy(),
        data in proptest::collection::vec(any::<u8>(), 0..32),
        gas in gas_strategy(),
    ) {
        let _guard = SuperinstrGuard;

        // Oracle: plain interpreter, superinstructions off.
        superinstr::set_enabled(false);
        let mut plain = setup_host(&code);
        let plain_result = Evm::new(&mut plain).execute(message(&data, gas));

        // Compiled block loop on (per-contract fallback still applies
        // when compilation bails — that path must be identical too).
        superinstr::set_enabled(true);
        let mut fast = setup_host(&code);
        let fast_result = Evm::new(&mut fast).execute(message(&data, gas));

        if digest(&plain_result) != digest(&fast_result)
            || host_digest(&plain) != host_digest(&fast)
        {
            let block = diverging_block(&code, &data, gas);
            prop_assert_eq!(
                digest(&plain_result),
                digest(&fast_result),
                "result diverged for code {:02x?} data {:02x?} gas {} — {}",
                code, data, gas, block
            );
            prop_assert_eq!(
                host_digest(&plain),
                host_digest(&fast),
                "state diverged for code {:02x?} data {:02x?} gas {} — {}",
                code, data, gas, block
            );
        }
    }
}
