//! Focused coverage of the less-travelled opcodes: CREATE2, EXTCODE*,
//! CALLCODE, BLOCKHASH, SELFBALANCE, CHAINID, shifts, SIGNEXTEND,
//! ADDMOD/MULMOD, MSIZE/PC/GAS introspection.

use lsc_evm::asm::Asm;
use lsc_evm::opcode::{self, op};
use lsc_evm::{CallResult, Evm, Halt, Host, Message, MockHost};
use lsc_primitives::{Address, H256, U256};

const GAS: u64 = 2_000_000;

fn run(host: &mut MockHost, code: Vec<u8>) -> CallResult {
    let contract = Address::from_label("contract");
    let caller = Address::from_label("caller");
    host.fund(caller, lsc_primitives::ether(10));
    host.set_code(contract, code);
    Evm::new(host).execute(Message::call(caller, contract, U256::ZERO, vec![], GAS))
}

fn ret_top(asm: &mut Asm) -> Vec<u8> {
    asm.push_u64(0).op(op::MSTORE);
    asm.push_u64(32).push_u64(0).op(op::RETURN);
    asm.assemble().unwrap()
}

fn word(result: &CallResult) -> U256 {
    assert!(result.success, "halt: {:?}", result.halt);
    U256::from_be_slice(&result.output)
}

#[test]
fn create2_address_matches_derivation() {
    let mut host = MockHost::new();
    let contract = Address::from_label("contract");
    // init code: return empty runtime (STOP deployed as nothing).
    // CREATE2(value=0, offset=0, len=1, salt=0x42) with mem[0]=0x00 (STOP).
    let mut a = Asm::new();
    a.push_u64(0).push_u64(0).op(op::MSTORE8); // mem[0] = 0 (STOP opcode)
    a.push_u64(0x42); // salt
    a.push_u64(1); // len
    a.push_u64(0); // offset
    a.push_u64(0); // value
    a.op(op::CREATE2);
    let code = ret_top(&mut a);
    let r = run(&mut host, code);
    let created = Address::from_u256(word(&r));
    let mut salt = [0u8; 32];
    salt[31] = 0x42;
    assert_eq!(created, Address::create2(contract, salt, &[0x00]));
    assert!(host.exists(created));
}

#[test]
fn extcodesize_extcodehash_and_copy() {
    let mut host = MockHost::new();
    let other = Address::from_label("other");
    host.set_code(other, vec![0xde, 0xad, 0xbe, 0xef]);
    // size = EXTCODESIZE(other); hash check via EXTCODEHASH.
    let mut a = Asm::new();
    a.push(other.to_u256()).op(op::EXTCODESIZE);
    let r = run(&mut host, ret_top(&mut a));
    assert_eq!(word(&r), U256::from_u64(4));

    let mut host = MockHost::new();
    host.set_code(other, vec![0xde, 0xad, 0xbe, 0xef]);
    let mut a = Asm::new();
    a.push(other.to_u256()).op(op::EXTCODEHASH);
    let r = run(&mut host, ret_top(&mut a));
    assert_eq!(word(&r), H256::keccak([0xde, 0xad, 0xbe, 0xef]).to_u256());

    // EXTCODECOPY 4 bytes into memory and return the word.
    let mut host = MockHost::new();
    host.set_code(other, vec![0xde, 0xad, 0xbe, 0xef]);
    let mut a = Asm::new();
    a.push_u64(4); // len
    a.push_u64(0); // code offset
    a.push_u64(0); // mem dst
    a.push(other.to_u256());
    a.op(op::EXTCODECOPY);
    a.push_u64(32).push_u64(0).op(op::RETURN);
    let r = run(&mut host, a.assemble().unwrap());
    assert!(r.success);
    assert_eq!(&r.output[..4], &[0xde, 0xad, 0xbe, 0xef]);
}

#[test]
fn callcode_runs_foreign_code_in_own_storage() {
    let mut host = MockHost::new();
    let lib = Address::from_label("lib");
    // lib: sstore(3, 99)
    let mut l = Asm::new();
    l.push_u64(99).push_u64(3).op(op::SSTORE).op(op::STOP);
    host.set_code(lib, l.assemble().unwrap());
    // CALLCODE(gas, lib, value=0, 0,0,0,0)
    let mut a = Asm::new();
    a.push_u64(0)
        .push_u64(0)
        .push_u64(0)
        .push_u64(0)
        .push_u64(0);
    a.push(lib.to_u256());
    a.push_u64(500_000);
    a.op(op::CALLCODE);
    let code = ret_top(&mut a);
    let r = run(&mut host, code);
    assert_eq!(word(&r), U256::ONE, "callcode succeeded");
    // Write landed in the caller's storage, not the lib's.
    assert_eq!(
        host.sload(Address::from_label("contract"), U256::from_u64(3)),
        U256::from_u64(99)
    );
    assert_eq!(host.sload(lib, U256::from_u64(3)), U256::ZERO);
}

#[test]
fn blockhash_selfbalance_chainid() {
    let mut host = MockHost::new();
    host.env.number = 10;
    host.env.chain_id = 777;
    host.fund(Address::from_label("contract"), U256::from_u64(12345));
    let mut a = Asm::new();
    a.op(op::SELFBALANCE).op(op::CHAINID).op(op::ADD);
    let r = run(&mut host, ret_top(&mut a));
    assert_eq!(word(&r), U256::from_u64(12345 + 777));

    let mut host = MockHost::new();
    host.env.number = 10;
    let mut a = Asm::new();
    a.push_u64(9).op(op::BLOCKHASH);
    let r = run(&mut host, ret_top(&mut a));
    assert_eq!(word(&r), H256::keccak(9u64.to_be_bytes()).to_u256());
    // Out-of-window block hash is zero.
    let mut host = MockHost::new();
    host.env.number = 10;
    let mut a = Asm::new();
    a.push_u64(11).op(op::BLOCKHASH);
    let r = run(&mut host, ret_top(&mut a));
    assert_eq!(word(&r), U256::ZERO);
}

#[test]
fn shifts_and_signextend() {
    // SAR on a negative value keeps the sign.
    let mut a = Asm::new();
    a.push(U256::MAX - U256::from_u64(255)); // -256
    a.push_u64(4);
    a.op(op::SAR); // -256 >> 4 = -16
    let r = run(&mut MockHost::new(), ret_top(&mut a));
    assert_eq!(word(&r), U256::from_u64(16).wrapping_neg());

    // SIGNEXTEND byte 0 of 0x80 → negative.
    let mut a = Asm::new();
    a.push_u64(0x80).push_u64(0).op(op::SIGNEXTEND);
    let r = run(&mut MockHost::new(), ret_top(&mut a));
    assert_eq!(word(&r), U256::from_u64(0x80).sign_extend(U256::ZERO));
    assert!(word(&r).is_negative());
}

#[test]
fn addmod_mulmod_with_overflow() {
    // ADDMOD(MAX, MAX, 10): pops a, b, m — push m deepest.
    let mut a = Asm::new();
    a.push_u64(10); // m (deepest)
    a.push(U256::MAX); // b
    a.push(U256::MAX); // a (top)
    a.op(op::ADDMOD);
    let r = run(&mut MockHost::new(), ret_top(&mut a));
    assert_eq!(word(&r), U256::MAX.add_mod(U256::MAX, U256::from_u64(10)));

    let mut a = Asm::new();
    a.push_u64(7);
    a.push(U256::MAX);
    a.push(U256::MAX);
    a.op(op::MULMOD);
    let r = run(&mut MockHost::new(), ret_top(&mut a));
    assert_eq!(word(&r), U256::MAX.mul_mod(U256::MAX, U256::from_u64(7)));
}

#[test]
fn introspection_opcodes() {
    // MSIZE grows with touched memory; PC and GAS are monotone counters.
    let mut a = Asm::new();
    a.push_u64(1).push_u64(100).op(op::MSTORE); // touch memory to 132 → msize 160
    a.op(op::MSIZE);
    let r = run(&mut MockHost::new(), ret_top(&mut a));
    assert_eq!(word(&r), U256::from_u64(160));

    let mut a = Asm::new();
    a.op(op::PC); // pc of this instruction = 0
    let r = run(&mut MockHost::new(), ret_top(&mut a));
    assert_eq!(word(&r), U256::ZERO);

    let mut a = Asm::new();
    a.op(op::GAS);
    let r = run(&mut MockHost::new(), ret_top(&mut a));
    let gas_seen = word(&r).to_u64().unwrap();
    assert!(gas_seen > GAS - 100 && gas_seen < GAS, "{gas_seen}");
}

#[test]
fn codesize_and_codecopy_semantics() {
    let mut a = Asm::new();
    a.op(op::CODESIZE);
    let code = ret_top(&mut a);
    let expected = code.len() as u64;
    let r = run(&mut MockHost::new(), code);
    assert_eq!(word(&r), U256::from_u64(expected));

    // CODECOPY out-of-range source zero-fills.
    let mut a = Asm::new();
    a.push_u64(32); // len
    a.push_u64(10_000); // src beyond code end
    a.push_u64(0); // dst
    a.op(op::CODECOPY);
    a.push_u64(32).push_u64(0).op(op::RETURN);
    let r = run(&mut MockHost::new(), a.assemble().unwrap());
    assert!(r.success);
    assert!(r.output.iter().all(|b| *b == 0));
}

#[test]
fn truncated_push_zero_pads() {
    // Code ends mid-PUSH32: the missing bytes read as zero (right-padded).
    let mut code = vec![op::PUSH32, 0xff];
    // Return the value: need MSTORE+RETURN but code ends — instead test
    // via implicit stop: success with empty output.
    let r = run(&mut MockHost::new(), code.clone());
    assert!(r.success, "implicit stop after truncated push");
    // And the padded value is correct when followed by a return sequence.
    code = vec![0x60 + 1, 0xab]; // PUSH2 with only 1 immediate byte
    code[0] = 0x61; // PUSH2
    let r = run(&mut MockHost::new(), code);
    assert!(r.success);
}

// ---------------------------------------------------------------------------
// Full-table coverage: enumerate the opcodes the interpreter implements
// (derived from the opcode table itself) and execute every one of them.
// A new opcode that lands without coverage fails both tests below with an
// actionable message.
// ---------------------------------------------------------------------------

/// Every opcode byte the interpreter implements, derived from the crate's
/// own mnemonic table: anything the table names is dispatched; everything
/// else falls through to `InvalidOpcode`. `op::INVALID` (0xfe) is the one
/// deliberate exception — it is "implemented" as the designated invalid
/// instruction.
fn implemented_opcodes() -> Vec<(u8, &'static str)> {
    (0u8..=255)
        .filter_map(|byte| match opcode::mnemonic(byte) {
            "INVALID" if byte != op::INVALID => None,
            name => Some((byte, name)),
        })
        .collect()
}

/// How many stack operands the smoke program must provide for `byte`.
fn stack_in(byte: u8) -> usize {
    use op::*;
    match byte {
        ADD | MUL | SUB | DIV | SDIV | MOD | SMOD | EXP | SIGNEXTEND | LT | GT | SLT | SGT | EQ
        | AND | OR | XOR | BYTE | SHL | SHR | SAR | KECCAK256 | MSTORE | MSTORE8 | SSTORE
        | RETURN | REVERT => 2,
        ISZERO | NOT | BALANCE | CALLDATALOAD | EXTCODESIZE | EXTCODEHASH | BLOCKHASH | POP
        | MLOAD | SLOAD | SELFDESTRUCT => 1,
        ADDMOD | MULMOD | CALLDATACOPY | CODECOPY | RETURNDATACOPY | CREATE => 3,
        EXTCODECOPY | CREATE2 => 4,
        DELEGATECALL | STATICCALL => 6,
        CALL | CALLCODE => 7,
        0x80..=0x8f => (byte - 0x80 + 1) as usize, // DUPn
        0x90..=0x9f => (byte - 0x90 + 2) as usize, // SWAPn
        0xa0..=0xa4 => (byte - 0xa0 + 2) as usize, // LOGn: offset, len, n topics
        _ => 0,
    }
}

/// Minimal program exercising `byte`: zero operands, the opcode (with zeroed
/// immediates for PUSH), then STOP. JUMP/JUMPI get a real JUMPDEST target.
fn smoke_program(byte: u8) -> Vec<u8> {
    match byte {
        op::JUMP => return vec![0x60, 0x03, op::JUMP, op::JUMPDEST, op::STOP],
        op::JUMPI => return vec![0x60, 0x01, 0x60, 0x05, op::JUMPI, op::JUMPDEST, op::STOP],
        _ => {}
    }
    let mut code = Vec::new();
    for _ in 0..stack_in(byte) {
        code.extend_from_slice(&[0x60, 0x00]); // PUSH1 0
    }
    code.push(byte);
    code.extend(std::iter::repeat_n(0x00, opcode::immediate_len(byte)));
    code.push(op::STOP);
    code
}

#[test]
fn every_implemented_opcode_executes() {
    for (byte, name) in implemented_opcodes() {
        let r = run(&mut MockHost::new(), smoke_program(byte));
        match byte {
            op::REVERT => {
                assert!(r.reverted, "REVERT must report reverted");
                assert!(r.halt.is_none(), "REVERT is not an exceptional halt");
            }
            op::INVALID => {
                assert_eq!(
                    r.halt,
                    Some(Halt::InvalidOpcode(op::INVALID)),
                    "0xfe is the designated invalid instruction"
                );
            }
            _ => {
                assert!(
                    r.success,
                    "opcode 0x{byte:02x} ({name}) failed its smoke program: {:?}",
                    r.halt
                );
            }
        }
    }
}

/// Satellite guard for the superinstruction path: every byte is either
/// compiled natively, provably deopts to the plain interpreter, or halts
/// identically on both paths — there is NO silent fourth state. The
/// classification is cross-checked against the interpreter's own
/// implemented-opcode inventory, and each smoke program's lowered stream
/// is checked to contain the opcode in a form matching its class.
#[test]
fn every_opcode_compiled_or_provable_fallback() {
    use lsc_evm::compile::{classify, try_compile, COp, PathClass};
    use lsc_evm::AnalyzedCode;
    use std::sync::Arc;

    let implemented: Vec<u8> = implemented_opcodes().iter().map(|(b, _)| *b).collect();
    for byte in 0u8..=255 {
        let class = classify(byte);
        if implemented.contains(&byte) && byte != op::INVALID {
            assert_ne!(
                class,
                PathClass::Halts,
                "0x{byte:02x} ({}) is implemented but classified as halting",
                opcode::mnemonic(byte)
            );
        } else {
            assert_eq!(
                class,
                PathClass::Halts,
                "0x{byte:02x} is not implemented but classified {class:?} — the \
                 compiled loop would execute an opcode the oracle rejects",
            );
        }
    }

    // Each smoke program's compiled stream must carry the opcode in a
    // form consistent with its class (fused forms are allowed lowerings
    // of the native class, never of the fallback class).
    for (byte, name) in implemented_opcodes() {
        let program = smoke_program(byte);
        let analysis = AnalyzedCode::analyze(Arc::new(program.clone()));
        let compiled = try_compile(&analysis)
            .unwrap_or_else(|| panic!("smoke program for 0x{byte:02x} ({name}) must compile"));
        let pc = match byte {
            op::JUMP => 2,
            op::JUMPI => 4,
            _ => 2 * stack_in(byte) as u32,
        };
        let ins = compiled
            .instrs
            .iter()
            .find(|i| i.pc == pc)
            .unwrap_or_else(|| panic!("0x{byte:02x} ({name}): no instr at pc {pc}"));
        let ok = match classify(byte) {
            PathClass::Fallback => matches!(ins.op, COp::Deopt(b) if b == byte),
            PathClass::Halts => matches!(ins.op, COp::Plain(b) if b == byte),
            PathClass::Native => match byte {
                b if opcode::is_push(b) || b == op::PUSH0 => {
                    matches!(ins.op, COp::Push(_) | COp::Nop)
                }
                op::JUMP => matches!(ins.op, COp::Plain(op::JUMP) | COp::JumpStatic(_)),
                op::JUMPI => matches!(ins.op, COp::Plain(op::JUMPI) | COp::JumpIStatic(_)),
                op::MSTORE => matches!(ins.op, COp::Plain(op::MSTORE) | COp::MStoreK(_)),
                op::MLOAD => matches!(ins.op, COp::Plain(op::MLOAD) | COp::MLoadK(_)),
                op::RETURN | op::REVERT => {
                    matches!(ins.op, COp::Plain(_) | COp::ReturnK { .. })
                }
                b => matches!(ins.op, COp::Plain(x) if x == b),
            },
        };
        assert!(
            ok,
            "0x{byte:02x} ({name}) class {:?} lowered to unexpected {:?}",
            classify(byte),
            ins.op
        );
    }
}

#[test]
fn new_opcodes_must_land_with_coverage() {
    // The checked-in inventory of covered opcodes, as inclusive byte ranges.
    // `every_implemented_opcode_executes` runs each of these; the targeted
    // tests above cover the subtle ones. If this test fails on an "untracked"
    // opcode, a new instruction landed without coverage: add its byte here
    // AND teach `stack_in`/`smoke_program` (or a dedicated test) about it.
    let tracked: Vec<u8> = [
        0x00..=0x0bu8, // STOP..SIGNEXTEND
        0x10..=0x1d,   // LT..SAR
        0x20..=0x20,   // KECCAK256
        0x30..=0x3f,   // ADDRESS..EXTCODEHASH
        0x40..=0x47,   // BLOCKHASH..SELFBALANCE
        0x50..=0x5b,   // POP..JUMPDEST
        0x5f..=0x7f,   // PUSH0..PUSH32
        0x80..=0x9f,   // DUP1..SWAP16
        0xa0..=0xa4,   // LOG0..LOG4
        0xf0..=0xf5,   // CREATE..CREATE2
        0xfa..=0xfa,   // STATICCALL
        0xfd..=0xff,   // REVERT, INVALID, SELFDESTRUCT
    ]
    .into_iter()
    .flatten()
    .collect();

    let implemented: Vec<u8> = implemented_opcodes().iter().map(|(b, _)| *b).collect();
    for byte in &implemented {
        assert!(
            tracked.contains(byte),
            "opcode 0x{byte:02x} ({}) is implemented but untracked — add it to the \
             tracked ranges and give it an execution path",
            opcode::mnemonic(*byte)
        );
    }
    for byte in &tracked {
        assert!(
            implemented.contains(byte),
            "opcode 0x{byte:02x} is tracked but no longer implemented — prune the range",
        );
    }
}
