//! End-to-end interpreter tests over hand-assembled bytecode.

use lsc_evm::asm::Asm;
use lsc_evm::opcode::op;
use lsc_evm::{CallResult, Evm, Halt, Host, Message, MockHost};
use lsc_primitives::{Address, U256};

const GAS: u64 = 1_000_000;

fn run_code(host: &mut MockHost, code: Vec<u8>, data: Vec<u8>, value: U256) -> CallResult {
    let contract = Address::from_label("contract");
    let caller = Address::from_label("caller");
    host.fund(caller, U256::from_u64(1_000_000_000));
    host.set_code(contract, code);
    let msg = Message::call(caller, contract, value, data, GAS);
    Evm::new(host).execute(msg)
}

/// Assemble a program that computes an expression and returns one word.
fn return_top(asm: &mut Asm) -> Vec<u8> {
    asm.push_u64(0).op(op::MSTORE); // mem[0] = top
    asm.push_u64(32).push_u64(0).op(op::RETURN);
    asm.assemble().unwrap()
}

fn returned_word(result: &CallResult) -> U256 {
    assert!(result.success, "frame failed: {:?}", result.halt);
    U256::from_be_slice(&result.output)
}

#[test]
fn arithmetic_program() {
    // (3 + 4) * 5 = 35
    let mut a = Asm::new();
    a.push_u64(4)
        .push_u64(3)
        .op(op::ADD)
        .push_u64(5)
        .op(op::MUL);
    let code = return_top(&mut a);
    let r = run_code(&mut MockHost::new(), code, vec![], U256::ZERO);
    assert_eq!(returned_word(&r), U256::from_u64(35));
}

#[test]
fn division_by_zero_yields_zero() {
    let mut a = Asm::new();
    a.push_u64(0).push_u64(42).op(op::DIV);
    let code = return_top(&mut a);
    let r = run_code(&mut MockHost::new(), code, vec![], U256::ZERO);
    assert_eq!(returned_word(&r), U256::ZERO);
}

#[test]
fn conditional_jump_takes_branch() {
    // if (1) return 7 else return 9
    let mut a = Asm::new();
    let then = a.new_label();
    a.push_u64(1); // condition
    a.push_label(then).op(op::JUMPI);
    a.push_u64(9);
    let end = a.new_label();
    a.push_label(end).op(op::JUMP);
    a.place(then);
    a.push_u64(7);
    a.place(end);
    let code = return_top(&mut a);
    let r = run_code(&mut MockHost::new(), code, vec![], U256::ZERO);
    assert_eq!(returned_word(&r), U256::from_u64(7));
}

#[test]
fn invalid_jump_halts() {
    let mut a = Asm::new();
    a.push_u64(1).op(op::JUMP);
    let code = a.assemble().unwrap();
    let r = run_code(&mut MockHost::new(), code, vec![], U256::ZERO);
    assert_eq!(r.halt, Some(Halt::InvalidJump));
    assert_eq!(r.gas_left, 0);
}

#[test]
fn jump_into_push_immediate_is_invalid() {
    // PUSH1 0x5b; PUSH1 1; JUMP — offset 1 is the 0x5b immediate, not a dest.
    let code = vec![op::PUSH1, 0x5b, op::PUSH1, 0x01, op::JUMP];
    let r = run_code(&mut MockHost::new(), code, vec![], U256::ZERO);
    assert_eq!(r.halt, Some(Halt::InvalidJump));
}

#[test]
fn storage_write_read_and_refund() {
    let mut host = MockHost::new();
    // sstore(1, 77); sstore(1, 0);  -> refund for clearing
    let mut a = Asm::new();
    a.push_u64(77).push_u64(1).op(op::SSTORE);
    a.push_u64(0).push_u64(1).op(op::SSTORE);
    a.op(op::STOP);
    let code = a.assemble().unwrap();
    let r = run_code(&mut host, code, vec![], U256::ZERO);
    assert!(r.success);
    assert_eq!(r.gas_refund, lsc_evm::gas::SSTORE_CLEAR_REFUND);
    let contract = Address::from_label("contract");
    assert_eq!(host.sload(contract, U256::ONE), U256::ZERO);
}

#[test]
fn sstore_gas_depends_on_previous_value() {
    // Fresh slot costs SSTORE_SET; overwrite costs SSTORE_RESET.
    let mut a = Asm::new();
    a.push_u64(5).push_u64(9).op(op::SSTORE).op(op::STOP);
    let code = a.assemble().unwrap();

    let mut host = MockHost::new();
    let r_fresh = run_code(&mut host, code.clone(), vec![], U256::ZERO);
    let mut host2 = MockHost::new();
    host2.storage.insert(
        (Address::from_label("contract"), U256::from_u64(9)),
        U256::from_u64(1),
    );
    let r_overwrite = run_code(&mut host2, code, vec![], U256::ZERO);
    let fresh_used = GAS - r_fresh.gas_left;
    let overwrite_used = GAS - r_overwrite.gas_left;
    assert_eq!(
        fresh_used - overwrite_used,
        lsc_evm::gas::SSTORE_SET - lsc_evm::gas::SSTORE_RESET
    );
}

#[test]
fn calldata_load_and_size() {
    // return calldataload(0) + calldatasize()
    let mut a = Asm::new();
    a.push_u64(0)
        .op(op::CALLDATALOAD)
        .op(op::CALLDATASIZE)
        .op(op::ADD);
    let code = return_top(&mut a);
    let mut data = U256::from_u64(1000).to_be_bytes().to_vec();
    data.extend_from_slice(&[0; 4]); // size 36
    let r = run_code(&mut MockHost::new(), code, data, U256::ZERO);
    assert_eq!(returned_word(&r), U256::from_u64(1036));
}

#[test]
fn callvalue_and_caller_exposed() {
    let mut a = Asm::new();
    a.op(op::CALLVALUE).op(op::CALLER).op(op::ADD);
    let code = return_top(&mut a);
    let r = run_code(&mut MockHost::new(), code, vec![], U256::from_u64(55));
    let expected = Address::from_label("caller").to_u256() + U256::from_u64(55);
    assert_eq!(returned_word(&r), expected);
}

#[test]
fn value_transfer_moves_balance() {
    let mut host = MockHost::new();
    let code = vec![op::STOP];
    let r = run_code(&mut host, code, vec![], U256::from_u64(1234));
    assert!(r.success);
    assert_eq!(
        host.balance(Address::from_label("contract")),
        U256::from_u64(1234)
    );
}

#[test]
fn insufficient_balance_halts() {
    let mut host = MockHost::new();
    let contract = Address::from_label("contract");
    let pauper = Address::from_label("pauper");
    host.set_code(contract, vec![op::STOP]);
    let msg = Message::call(pauper, contract, U256::from_u64(10), vec![], GAS);
    let r = Evm::new(&mut host).execute(msg);
    assert_eq!(r.halt, Some(Halt::InsufficientBalance));
}

#[test]
fn revert_returns_output_and_rolls_back_state() {
    let mut host = MockHost::new();
    // sstore(1, 5); mstore(0, 0xbad); revert(0, 32)
    let mut a = Asm::new();
    a.push_u64(5).push_u64(1).op(op::SSTORE);
    a.push_u64(0xbad).push_u64(0).op(op::MSTORE);
    a.push_u64(32).push_u64(0).op(op::REVERT);
    let code = a.assemble().unwrap();
    let r = run_code(&mut host, code, vec![], U256::ZERO);
    assert!(!r.success);
    assert!(r.reverted);
    assert_eq!(U256::from_be_slice(&r.output), U256::from_u64(0xbad));
    assert!(r.gas_left > 0, "revert returns remaining gas");
    assert_eq!(
        host.sload(Address::from_label("contract"), U256::ONE),
        U256::ZERO
    );
}

#[test]
fn out_of_gas_consumes_everything() {
    let mut host = MockHost::new();
    // Infinite loop.
    let mut a = Asm::new();
    let start = a.new_label();
    a.place(start);
    a.push_label(start).op(op::JUMP);
    let code = a.assemble().unwrap();
    let contract = Address::from_label("contract");
    host.set_code(contract, code);
    let msg = Message::call(
        Address::from_label("caller"),
        contract,
        U256::ZERO,
        vec![],
        10_000,
    );
    let r = Evm::new(&mut host).execute(msg);
    assert_eq!(r.halt, Some(Halt::OutOfGas));
    assert_eq!(r.gas_left, 0);
}

#[test]
fn logs_are_recorded_with_topics() {
    let mut host = MockHost::new();
    // log1(topic=0x42, data=mem[0..32] where mem[0]=7).
    // LOG1 pops offset, then length, then the topic, so push in reverse.
    let mut b = Asm::new();
    b.push_u64(7).push_u64(0).op(op::MSTORE);
    b.push_u64(0x42); // topic1 (popped last)
    b.push_u64(32); // length
    b.push_u64(0); // offset (popped first)
    b.op(op::LOG0 + 1);
    b.op(op::STOP);
    let r = run_code(&mut host, b.assemble().unwrap(), vec![], U256::ZERO);
    assert!(r.success, "halt: {:?}", r.halt);
    assert_eq!(host.logs.len(), 1);
    let log = &host.logs[0];
    assert_eq!(log.address, Address::from_label("contract"));
    assert_eq!(log.topics.len(), 1);
    assert_eq!(log.topics[0].to_u256(), U256::from_u64(0x42));
    assert_eq!(U256::from_be_slice(&log.data), U256::from_u64(7));
}

#[test]
fn reverted_frame_drops_logs() {
    let mut host = MockHost::new();
    let mut a = Asm::new();
    a.push_u64(0).push_u64(0).op(op::LOG0);
    a.push_u64(0).push_u64(0).op(op::REVERT);
    let r = run_code(&mut host, a.assemble().unwrap(), vec![], U256::ZERO);
    assert!(r.reverted);
    assert!(host.logs.is_empty());
}

#[test]
fn create_deploys_runtime_code() {
    let mut host = MockHost::new();
    let deployer = Address::from_label("deployer");
    host.fund(deployer, U256::from_u64(1_000_000));
    // Init code: returns 2 bytes of runtime code [PUSH0-ish STOP]: mstore8 them and return.
    // runtime = [0x60, 0x00] (PUSH1 0) — arbitrary.
    let mut init = Asm::new();
    init.push_u64(0x60).push_u64(0).op(op::MSTORE8);
    init.push_u64(0x00).push_u64(1).op(op::MSTORE8);
    init.push_u64(2).push_u64(0).op(op::RETURN);
    let msg = Message::create(deployer, U256::ZERO, init.assemble().unwrap(), GAS);
    let r = Evm::new(&mut host).execute(msg);
    assert!(r.success, "halt: {:?}", r.halt);
    let created = r.created.expect("created address");
    assert_eq!(created, Address::create(deployer, 0));
    assert_eq!(host.code(created), vec![0x60, 0x00]);
    assert_eq!(host.nonce(created), 1, "EIP-161 start nonce");
    assert_eq!(host.nonce(deployer), 1);
}

#[test]
fn create_failure_reverts_account() {
    let mut host = MockHost::new();
    let deployer = Address::from_label("deployer");
    host.fund(deployer, U256::from_u64(1_000_000));
    // Init code that reverts.
    let mut init = Asm::new();
    init.push_u64(0).push_u64(0).op(op::REVERT);
    let msg = Message::create(deployer, U256::from_u64(100), init.assemble().unwrap(), GAS);
    let r = Evm::new(&mut host).execute(msg);
    assert!(!r.success);
    assert!(r.created.is_none());
    // Funds stayed with the deployer.
    assert_eq!(host.balance(deployer), U256::from_u64(1_000_000));
}

#[test]
fn nested_call_returns_data() {
    let mut host = MockHost::new();
    let callee = Address::from_label("callee");
    let _caller_contract = Address::from_label("contract");
    // Callee returns 99.
    let mut c = Asm::new();
    c.push_u64(99);
    host.set_code(callee, return_top(&mut c));
    // Caller calls callee and returns the child's output.
    // CALL(gas, to, value, inOff, inLen, outOff, outLen)
    let mut a = Asm::new();
    a.push_u64(32) // outLen
        .push_u64(0) // outOff
        .push_u64(0) // inLen
        .push_u64(0) // inOff
        .push_u64(0); // value
    a.push(callee.to_u256());
    a.push_u64(100_000); // gas
    a.op(op::CALL);
    a.op(op::POP); // drop success flag
    a.push_u64(32).push_u64(0).op(op::RETURN);
    let r = run_code(&mut host, a.assemble().unwrap(), vec![], U256::ZERO);
    assert_eq!(returned_word(&r), U256::from_u64(99));
}

#[test]
fn static_call_blocks_writes() {
    let mut host = MockHost::new();
    let callee = Address::from_label("callee");
    // Callee tries to SSTORE.
    let mut c = Asm::new();
    c.push_u64(1).push_u64(1).op(op::SSTORE).op(op::STOP);
    host.set_code(callee, c.assemble().unwrap());
    // Caller STATICCALLs callee and returns the success flag.
    let mut a = Asm::new();
    a.push_u64(0).push_u64(0).push_u64(0).push_u64(0);
    a.push(callee.to_u256());
    a.push_u64(100_000);
    a.op(op::STATICCALL);
    let code = return_top(&mut a);
    let r = run_code(&mut host, code, vec![], U256::ZERO);
    assert_eq!(returned_word(&r), U256::ZERO, "child must fail");
    assert_eq!(host.sload(callee, U256::ONE), U256::ZERO);
}

#[test]
fn delegatecall_writes_to_caller_storage() {
    let mut host = MockHost::new();
    let lib = Address::from_label("library");
    // Library writes 123 to slot 7 of *its caller's* storage.
    let mut l = Asm::new();
    l.push_u64(123).push_u64(7).op(op::SSTORE).op(op::STOP);
    host.set_code(lib, l.assemble().unwrap());
    // Proxy delegatecalls the library. DELEGATECALL(gas,to,inOff,inLen,outOff,outLen)
    let mut a = Asm::new();
    a.push_u64(0).push_u64(0).push_u64(0).push_u64(0);
    a.push(lib.to_u256());
    a.push_u64(200_000);
    a.op(op::DELEGATECALL);
    a.op(op::POP).op(op::STOP);
    let r = run_code(&mut host, a.assemble().unwrap(), vec![], U256::ZERO);
    assert!(r.success);
    let proxy = Address::from_label("contract");
    assert_eq!(host.sload(proxy, U256::from_u64(7)), U256::from_u64(123));
    assert_eq!(host.sload(lib, U256::from_u64(7)), U256::ZERO);
}

#[test]
fn call_to_empty_account_succeeds() {
    let mut host = MockHost::new();
    let nobody = Address::from_label("nobody");
    let mut a = Asm::new();
    a.push_u64(0)
        .push_u64(0)
        .push_u64(0)
        .push_u64(0)
        .push_u64(0);
    a.push(nobody.to_u256());
    a.push_u64(50_000);
    a.op(op::CALL);
    let code = return_top(&mut a);
    let r = run_code(&mut host, code, vec![], U256::ZERO);
    assert_eq!(returned_word(&r), U256::ONE);
}

#[test]
fn selfdestruct_pays_beneficiary() {
    let mut host = MockHost::new();
    let beneficiary = Address::from_label("beneficiary");
    let mut a = Asm::new();
    a.push(beneficiary.to_u256()).op(op::SELFDESTRUCT);
    let r = run_code(
        &mut host,
        a.assemble().unwrap(),
        vec![],
        U256::from_u64(500),
    );
    assert!(r.success);
    assert_eq!(host.balance(beneficiary), U256::from_u64(500));
    assert!(host.code(Address::from_label("contract")).is_empty());
}

#[test]
fn timestamp_and_number_come_from_block_env() {
    let mut host = MockHost::new();
    host.env.timestamp = 1_600_000_000;
    host.env.number = 42;
    let mut a = Asm::new();
    a.op(op::TIMESTAMP).op(op::NUMBER).op(op::ADD);
    let code = return_top(&mut a);
    let r = run_code(&mut host, code, vec![], U256::ZERO);
    assert_eq!(returned_word(&r), U256::from_u64(1_600_000_042));
}

#[test]
fn keccak_opcode_hashes_memory() {
    let mut a = Asm::new();
    // keccak(mem[0..0]) == keccak256("")
    a.push_u64(0).push_u64(0).op(op::KECCAK256);
    let code = return_top(&mut a);
    let r = run_code(&mut MockHost::new(), code, vec![], U256::ZERO);
    assert_eq!(
        returned_word(&r),
        U256::from_be_bytes(lsc_primitives::keccak256(b""))
    );
}

#[test]
fn stack_underflow_halts() {
    let r = run_code(&mut MockHost::new(), vec![op::ADD], vec![], U256::ZERO);
    assert_eq!(r.halt, Some(Halt::StackUnderflow));
}

#[test]
fn invalid_opcode_halts() {
    let r = run_code(&mut MockHost::new(), vec![0x0c], vec![], U256::ZERO);
    assert_eq!(r.halt, Some(Halt::InvalidOpcode(0x0c)));
}

#[test]
fn memory_expansion_is_charged() {
    // MSTORE at a large offset must cost much more than at offset 0.
    let mut cheap = Asm::new();
    cheap.push_u64(1).push_u64(0).op(op::MSTORE).op(op::STOP);
    let mut dear = Asm::new();
    dear.push_u64(1)
        .push_u64(100_000)
        .op(op::MSTORE)
        .op(op::STOP);
    let r_cheap = run_code(
        &mut MockHost::new(),
        cheap.assemble().unwrap(),
        vec![],
        U256::ZERO,
    );
    let r_dear = run_code(
        &mut MockHost::new(),
        dear.assemble().unwrap(),
        vec![],
        U256::ZERO,
    );
    assert!(r_cheap.success && r_dear.success);
    let used_cheap = GAS - r_cheap.gas_left;
    let used_dear = GAS - r_dear.gas_left;
    assert!(
        used_dear > used_cheap + 9_000,
        "{used_dear} vs {used_cheap}"
    );
}

#[test]
fn returndatacopy_bounds_checked() {
    let mut host = MockHost::new();
    // No prior call → return buffer empty; copying 1 byte must halt.
    let mut a = Asm::new();
    a.push_u64(1).push_u64(0).push_u64(0).op(op::RETURNDATACOPY);
    let r = run_code(&mut host, a.assemble().unwrap(), vec![], U256::ZERO);
    assert_eq!(r.halt, Some(Halt::ReturnDataOutOfBounds));
}

#[test]
fn call_depth_limit_enforced() {
    let mut host = MockHost::new();
    let contract = Address::from_label("contract");
    // Contract calls itself forever; success flag of the inner call is
    // returned. At depth 1024 the inner call fails rather than recursing.
    let mut a = Asm::new();
    a.push_u64(0)
        .push_u64(0)
        .push_u64(0)
        .push_u64(0)
        .push_u64(0);
    a.push(contract.to_u256());
    a.op(op::GAS); // forward everything
    a.op(op::CALL);
    let code = return_top(&mut a);
    host.set_code(contract, code);
    let msg = Message::call(
        Address::from_label("caller"),
        contract,
        U256::ZERO,
        vec![],
        30_000_000,
    );
    let r = Evm::new(&mut host).execute(msg);
    // The outermost frame succeeds: recursion terminated (the 63/64 rule
    // and the depth limit bound it) instead of spinning forever. Its output
    // is its immediate child's success flag, and that child succeeded too.
    assert!(r.success);
    assert_eq!(U256::from_be_slice(&r.output), U256::ONE);
    // Substantial gas was burned by the recursion tower.
    assert!(30_000_000 - r.gas_left > 20_000);
}

#[test]
fn depth_above_limit_halts_immediately() {
    let mut host = MockHost::new();
    let contract = Address::from_label("contract");
    host.set_code(contract, vec![op::STOP]);
    let mut msg = Message::call(
        Address::from_label("caller"),
        contract,
        U256::ZERO,
        vec![],
        GAS,
    );
    msg.depth = lsc_evm::MAX_CALL_DEPTH + 1;
    // Depth > 0 runs on the calling thread; the guard fires before any code.
    let r = Evm::new(&mut host).execute(msg);
    assert_eq!(r.halt, Some(Halt::CallDepth));
}
