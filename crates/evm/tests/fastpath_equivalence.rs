//! Random bytecode through the cached and uncached execution paths must
//! be indistinguishable: identical results, output, gas, refunds, logs
//! and final host state. "Uncached" is `MockHost`'s default
//! `code_analysis` (a fresh analysis per call) with the fast path
//! toggled OFF (no frame pool, legacy thread strategy); "cached" wraps
//! the same host with a per-address memoized analysis — the shape the
//! chain's account store uses — with the fast path ON.
//!
//! This file holds exactly one `#[test]` so flipping the process-global
//! `fastpath` toggle cannot race another test thread in the binary.

use lsc_evm::analysis::fastpath;
use lsc_evm::{AnalyzedCode, BlockEnv, CallResult, Evm, Host, Log, MockHost};
use lsc_primitives::{Address, H256, U256};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// `MockHost` plus the chain-style memoized analysis cache, invalidated
/// whenever the adjacent code changes.
struct CachingHost {
    inner: MockHost,
    cache: RefCell<HashMap<Address, Arc<AnalyzedCode>>>,
}

impl CachingHost {
    fn new(inner: MockHost) -> Self {
        CachingHost {
            inner,
            cache: RefCell::new(HashMap::new()),
        }
    }
}

impl Host for CachingHost {
    fn block(&self) -> &BlockEnv {
        self.inner.block()
    }
    fn blockhash(&self, number: u64) -> H256 {
        self.inner.blockhash(number)
    }
    fn gas_price(&self) -> U256 {
        self.inner.gas_price()
    }
    fn exists(&self, address: Address) -> bool {
        self.inner.exists(address)
    }
    fn balance(&self, address: Address) -> U256 {
        self.inner.balance(address)
    }
    fn nonce(&self, address: Address) -> u64 {
        self.inner.nonce(address)
    }
    fn code(&self, address: Address) -> Vec<u8> {
        self.inner.code(address)
    }
    fn code_hash(&self, address: Address) -> H256 {
        self.inner.code_hash(address)
    }
    fn code_analysis(&self, address: Address) -> Arc<AnalyzedCode> {
        self.cache
            .borrow_mut()
            .entry(address)
            .or_insert_with(|| {
                let code = self.inner.code(address);
                if code.is_empty() {
                    AnalyzedCode::empty()
                } else {
                    AnalyzedCode::analyze(Arc::new(code))
                }
            })
            .clone()
    }
    fn sload(&mut self, address: Address, key: U256) -> U256 {
        self.inner.sload(address, key)
    }
    fn sstore(&mut self, address: Address, key: U256, value: U256) -> U256 {
        self.inner.sstore(address, key, value)
    }
    fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        self.inner.transfer(from, to, value)
    }
    fn mint(&mut self, to: Address, value: U256) {
        self.inner.mint(to, value);
    }
    fn inc_nonce(&mut self, address: Address) -> u64 {
        self.inner.inc_nonce(address)
    }
    fn set_code(&mut self, address: Address, code: Vec<u8>) {
        self.cache.borrow_mut().remove(&address);
        self.inner.set_code(address, code);
    }
    fn create_account(&mut self, address: Address) {
        self.inner.create_account(address);
    }
    fn selfdestruct(&mut self, address: Address, beneficiary: Address) {
        self.cache.borrow_mut().remove(&address);
        self.inner.selfdestruct(address, beneficiary);
    }
    fn log(&mut self, log: Log) {
        self.inner.log(log);
    }
    fn snapshot(&mut self) -> usize {
        self.inner.snapshot()
    }
    fn revert(&mut self, snapshot: usize) {
        // The cache may hold analyses for codes the rollback removes;
        // drop everything (coarse but always correct — the chain's
        // journaled variant restores exact entries instead).
        self.cache.borrow_mut().clear();
        self.inner.revert(snapshot);
    }
}

/// Restore the global toggle even if an assertion unwinds mid-test.
struct FastpathGuard;
impl Drop for FastpathGuard {
    fn drop(&mut self) {
        fastpath::set_enabled(true);
    }
}

fn caller() -> Address {
    Address::from_label("fastpath-caller")
}

fn contract() -> Address {
    Address::from_label("fastpath-contract")
}

fn setup_host(code: &[u8]) -> MockHost {
    let mut host = MockHost::new();
    host.fund(caller(), U256::from_u64(1_000_000_000));
    host.fund(contract(), U256::from_u64(500));
    host.set_code(contract(), code.to_vec());
    host
}

fn run_message(code: &[u8], data: &[u8]) -> lsc_evm::Message {
    let _ = code;
    lsc_evm::Message::call(
        caller(),
        contract(),
        U256::from_u64(3),
        data.to_vec(),
        200_000,
    )
}

fn digest(result: &CallResult) -> (bool, bool, Option<lsc_evm::Halt>, Vec<u8>, u64, u64) {
    (
        result.success,
        result.reverted,
        result.halt,
        result.output.clone(),
        result.gas_left,
        result.gas_refund,
    )
}

fn host_digest(host: &MockHost) -> String {
    let mut balances: Vec<_> = host
        .balances
        .iter()
        .map(|(a, v)| format!("{a}={v:x}"))
        .collect();
    balances.sort();
    let mut storage: Vec<_> = host
        .storage
        .iter()
        .map(|((a, k), v)| format!("{a}/{k:x}={v:x}"))
        .collect();
    storage.sort();
    let mut codes: Vec<_> = host
        .codes
        .iter()
        .map(|(a, c)| format!("{a}:{}", H256::keccak(c)))
        .collect();
    codes.sort();
    format!(
        "b={balances:?} s={storage:?} c={codes:?} logs={} created={:?} destroyed={:?}",
        host.logs.len(),
        host.created,
        host.destroyed
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cached_and_uncached_execution_are_bit_identical(
        code in proptest::collection::vec(any::<u8>(), 0..160),
        data in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let _guard = FastpathGuard;

        // Uncached baseline: default Host::code_analysis on MockHost,
        // fast path off.
        fastpath::set_enabled(false);
        let mut plain = setup_host(&code);
        let plain_result = Evm::new(&mut plain).execute(run_message(&code, &data));

        // Cached: memoizing host, fast path on (frame pool + inline
        // top-level frames).
        fastpath::set_enabled(true);
        let mut caching = CachingHost::new(setup_host(&code));
        let cached_result = Evm::new(&mut caching).execute(run_message(&code, &data));

        prop_assert_eq!(
            digest(&plain_result),
            digest(&cached_result),
            "result diverged for code {:02x?} data {:02x?}",
            code,
            data
        );
        prop_assert_eq!(
            host_digest(&plain),
            host_digest(&caching.inner),
            "state diverged for code {:02x?} data {:02x?}",
            code,
            data
        );
    }
}
