//! Full-table A/B sweep: every opcode the interpreter implements runs its
//! smoke program on BOTH the plain interpreter (superinstructions off)
//! and the compiled block loop (on), and the two executions must agree
//! bit-exactly on result, output, gas, refund and final host state. This
//! covers natively-compiled opcodes, the provable-deopt class (CREATE,
//! CREATE2, SELFDESTRUCT, EXTCODECOPY) and the halting class alike — the
//! classification tripartition itself is guarded in `opcode_coverage.rs`.
//!
//! This file holds exactly one `#[test]` so flipping the process-global
//! `superinstr` toggle cannot race another test thread in the binary.

use lsc_evm::analysis::superinstr;
use lsc_evm::opcode::{self, op};
use lsc_evm::{CallResult, Evm, Host, Message, MockHost};
use lsc_primitives::{Address, H256, U256};

const GAS: u64 = 2_000_000;

struct SuperinstrGuard;
impl Drop for SuperinstrGuard {
    fn drop(&mut self) {
        superinstr::set_enabled(true);
    }
}

fn run(host: &mut MockHost, code: Vec<u8>) -> CallResult {
    let contract = Address::from_label("contract");
    let caller = Address::from_label("caller");
    host.fund(caller, lsc_primitives::ether(10));
    host.set_code(contract, code);
    Evm::new(host).execute(Message::call(caller, contract, U256::ZERO, vec![], GAS))
}

fn digest(r: &CallResult) -> (bool, bool, Option<lsc_evm::Halt>, Vec<u8>, u64, u64) {
    (
        r.success,
        r.reverted,
        r.halt,
        r.output.clone(),
        r.gas_left,
        r.gas_refund,
    )
}

fn host_digest(host: &MockHost) -> String {
    let mut balances: Vec<_> = host
        .balances
        .iter()
        .map(|(a, v)| format!("{a}={v:x}"))
        .collect();
    balances.sort();
    let mut storage: Vec<_> = host
        .storage
        .iter()
        .map(|((a, k), v)| format!("{a}/{k:x}={v:x}"))
        .collect();
    storage.sort();
    let mut codes: Vec<_> = host
        .codes
        .iter()
        .map(|(a, c)| format!("{a}:{}", H256::keccak(c)))
        .collect();
    codes.sort();
    format!(
        "b={balances:?} s={storage:?} c={codes:?} logs={} created={:?} destroyed={:?}",
        host.logs.len(),
        host.created,
        host.destroyed
    )
}

/// Mirror of `opcode_coverage::implemented_opcodes`.
fn implemented_opcodes() -> Vec<(u8, &'static str)> {
    (0u8..=255)
        .filter_map(|byte| match opcode::mnemonic(byte) {
            "INVALID" if byte != op::INVALID => None,
            name => Some((byte, name)),
        })
        .collect()
}

/// Mirror of `opcode_coverage::stack_in`.
fn stack_in(byte: u8) -> usize {
    use op::*;
    match byte {
        ADD | MUL | SUB | DIV | SDIV | MOD | SMOD | EXP | SIGNEXTEND | LT | GT | SLT | SGT | EQ
        | AND | OR | XOR | BYTE | SHL | SHR | SAR | KECCAK256 | MSTORE | MSTORE8 | SSTORE
        | RETURN | REVERT => 2,
        ISZERO | NOT | BALANCE | CALLDATALOAD | EXTCODESIZE | EXTCODEHASH | BLOCKHASH | POP
        | MLOAD | SLOAD | SELFDESTRUCT => 1,
        ADDMOD | MULMOD | CALLDATACOPY | CODECOPY | RETURNDATACOPY | CREATE => 3,
        EXTCODECOPY | CREATE2 => 4,
        DELEGATECALL | STATICCALL => 6,
        CALL | CALLCODE => 7,
        0x80..=0x8f => (byte - 0x80 + 1) as usize,
        0x90..=0x9f => (byte - 0x90 + 2) as usize,
        0xa0..=0xa4 => (byte - 0xa0 + 2) as usize,
        _ => 0,
    }
}

/// Mirror of `opcode_coverage::smoke_program`, plus a variant with
/// non-zero operands so dynamic-gas arms (EXP, SSTORE set, KECCAK over
/// real memory, LOG data) actually charge something.
fn smoke_programs(byte: u8) -> Vec<Vec<u8>> {
    match byte {
        op::JUMP => return vec![vec![0x60, 0x03, op::JUMP, op::JUMPDEST, op::STOP]],
        op::JUMPI => {
            return vec![vec![
                0x60,
                0x01,
                0x60,
                0x05,
                op::JUMPI,
                op::JUMPDEST,
                op::STOP,
            ]]
        }
        _ => {}
    }
    let mut programs = Vec::new();
    for operand in [0x00u8, 0x07] {
        let mut code = Vec::new();
        for _ in 0..stack_in(byte) {
            code.extend_from_slice(&[0x60, operand]);
        }
        code.push(byte);
        code.extend(std::iter::repeat_n(0x00, opcode::immediate_len(byte)));
        code.push(op::STOP);
        programs.push(code);
    }
    programs
}

#[test]
fn every_opcode_agrees_between_compiled_and_plain() {
    let _guard = SuperinstrGuard;
    for (byte, name) in implemented_opcodes() {
        for program in smoke_programs(byte) {
            superinstr::set_enabled(false);
            let mut plain = MockHost::new();
            let plain_result = run(&mut plain, program.clone());

            superinstr::set_enabled(true);
            let mut fast = MockHost::new();
            let fast_result = run(&mut fast, program.clone());

            assert_eq!(
                digest(&plain_result),
                digest(&fast_result),
                "0x{byte:02x} ({name}) result diverged on {program:02x?}"
            );
            assert_eq!(
                host_digest(&plain),
                host_digest(&fast),
                "0x{byte:02x} ({name}) state diverged on {program:02x?}"
            );
        }
    }
}
