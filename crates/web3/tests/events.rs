//! Event-filter integration tests: the `eth_getLogs` path the dashboard
//! uses to show a contract's transaction history.

use lsc_abi::AbiValue;
use lsc_chain::LocalNode;
use lsc_primitives::{ether, U256};
use lsc_solc::compile_single;
use lsc_web3::Web3;

const SOURCE: &str = r#"
    contract Emitter {
        event ping(uint n);
        event pong(uint n);
        uint public count;
        function hit(uint n) public {
            count += 1;
            emit ping(n);
            if (n % 2 == 0) { emit pong(n); }
        }
    }
"#;

#[test]
fn events_filtered_by_topic_and_range() {
    let web3 = Web3::new(LocalNode::new(2));
    let from = web3.accounts()[0];
    let artifact = compile_single(SOURCE, "Emitter").unwrap();
    let (contract, _) = web3
        .deploy(
            from,
            artifact.abi.clone(),
            artifact.bytecode.clone(),
            &[],
            U256::ZERO,
        )
        .unwrap();

    for n in 1..=6u64 {
        contract
            .send(from, "hit", &[AbiValue::uint(n)], U256::ZERO)
            .unwrap();
    }

    // All pings.
    let pings = contract
        .events_in_range("ping", 0, web3.block_number())
        .unwrap();
    assert_eq!(pings.len(), 6);
    assert_eq!(pings[0].1.params[0].1.as_u64(), Some(1));
    assert_eq!(pings[5].1.params[0].1.as_u64(), Some(6));

    // Pongs only fire on even inputs.
    let pongs = contract
        .events_in_range("pong", 0, web3.block_number())
        .unwrap();
    assert_eq!(pongs.len(), 3);

    // Range restriction: only the first three hit-transactions.
    let first_blocks = pings[2].0;
    let early = contract.events_in_range("ping", 0, first_blocks).unwrap();
    assert_eq!(early.len(), 3);

    // Unknown event name errors.
    assert!(contract.events_in_range("nope", 0, 10).is_err());
}

#[test]
fn logs_filtered_by_address() {
    let web3 = Web3::new(LocalNode::new(2));
    let from = web3.accounts()[0];
    let artifact = compile_single(SOURCE, "Emitter").unwrap();
    let (c1, _) = web3
        .deploy(
            from,
            artifact.abi.clone(),
            artifact.bytecode.clone(),
            &[],
            U256::ZERO,
        )
        .unwrap();
    let (c2, _) = web3
        .deploy(
            from,
            artifact.abi.clone(),
            artifact.bytecode.clone(),
            &[],
            U256::ZERO,
        )
        .unwrap();
    c1.send(from, "hit", &[AbiValue::uint(1)], U256::ZERO)
        .unwrap();
    c2.send(from, "hit", &[AbiValue::uint(2)], U256::ZERO)
        .unwrap();
    c2.send(from, "hit", &[AbiValue::uint(3)], U256::ZERO)
        .unwrap();

    let head = web3.block_number();
    assert_eq!(web3.logs(0, head, Some(c1.address()), None).len(), 1);
    // c2 emitted ping(2) + pong(2) + ping(3) = 3 logs.
    assert_eq!(web3.logs(0, head, Some(c2.address()), None).len(), 3);
    // Unfiltered: everything.
    assert_eq!(web3.logs(0, head, None, None).len(), 4);
    let _ = ether(0);
}

#[test]
fn batch_mode_through_the_client() {
    let web3 = Web3::new(LocalNode::new(3));
    let [a, b] = [web3.accounts()[0], web3.accounts()[1]];
    let stranger = lsc_primitives::Address::from_label("stranger");
    // Wallet check applies at submission time.
    assert!(web3
        .submit_transaction(lsc_chain::Transaction::call(stranger, b, vec![]).with_gas(21_000))
        .is_err());
    for _ in 0..4 {
        web3.submit_transaction(lsc_chain::Transaction::call(a, b, vec![]).with_gas(21_000))
            .unwrap();
    }
    assert_eq!(web3.pending_count(), 4);
    let (block, errors) = web3.mine_block();
    assert!(errors.is_empty());
    assert_eq!(block.tx_hashes.len(), 4);
    assert_eq!(web3.pending_count(), 0);
    assert_eq!(web3.block_number(), 1);
}
