//! Acceptance tests for the lock-free web3 read path: a [`ReadHandle`]
//! must serve the complete read battery — including `eth_call` and
//! `eth_estimateGas` — with ZERO acquisitions of the node mutex. Proven
//! by holding the mutex for the whole duration of the reads.

use lsc_abi::AbiValue;
use lsc_chain::{LocalNode, Transaction};
use lsc_primitives::{H256, U256};
use lsc_solc::compile_single;
use lsc_web3::Web3;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const SOURCE: &str = r#"
    contract Emitter {
        event ping(uint n);
        uint public count;
        function hit(uint n) public {
            count += 1;
            emit ping(n);
        }
    }
"#;

fn selector(signature: &str) -> Vec<u8> {
    H256::keccak(signature.as_bytes()).as_bytes()[..4].to_vec()
}

#[test]
fn full_read_battery_completes_while_node_mutex_is_held() {
    let web3 = Web3::new(LocalNode::new(2));
    let from = web3.accounts()[0];
    let other = web3.accounts()[1];
    let artifact = compile_single(SOURCE, "Emitter").unwrap();
    let (contract, receipt) = web3
        .deploy(
            from,
            artifact.abi.clone(),
            artifact.bytecode.clone(),
            &[],
            U256::ZERO,
        )
        .unwrap();
    contract
        .send(from, "hit", &[AbiValue::uint(9)], U256::ZERO)
        .unwrap();

    let handle = web3.read_handle();
    let contract_address = contract.address();
    let deploy_tx_hash = receipt.tx_hash;
    let count_calldata = selector("count()");
    let tip = web3.block_number();

    let (done_tx, done_rx) = mpsc::channel::<u64>();
    // Hold the node mutex for the entire read battery. If any read below
    // touched the node, the battery would deadlock and the recv would
    // time out.
    web3.with_node(|locked| {
        let reader = std::thread::spawn(move || {
            let snap = handle.snapshot();
            assert_eq!(snap.block_number(), tip);
            assert!(handle.balance(from) > U256::ZERO);
            assert_eq!(handle.nonce(from), 2, "deploy + hit");
            assert!(!handle.code(contract_address).is_empty());
            assert_eq!(
                handle.storage_at(contract_address, U256::ZERO),
                U256::from_u64(1),
                "count == 1"
            );
            assert_eq!(handle.timestamp(), snap.timestamp());
            assert_eq!(handle.pending_count(), 0);
            assert_eq!(handle.accounts().len(), 2);
            assert!(handle.block(tip).is_some());
            assert!(handle.receipt(deploy_tx_hash).is_some());
            assert_eq!(
                handle.logs(0, tip, Some(contract_address), None).len(),
                1,
                "one ping"
            );

            // The interpreter itself runs lock-free against the snapshot.
            let result = handle.call(from, contract_address, count_calldata.clone());
            assert!(result.success);
            assert_eq!(result.output, U256::from_u64(1).to_be_bytes().to_vec());
            let gas = handle
                .estimate_gas(&Transaction::call(from, contract_address, count_calldata))
                .unwrap();
            assert!(gas > 21_000, "estimate covers execution gas");

            handle.block_number()
        });
        let observed = reader.join().expect("read battery panicked");
        assert_eq!(observed, locked.block_number());
        done_tx.send(observed).unwrap();
    });
    // The battery finished while the lock was held — no deadlock.
    let observed = done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("reads completed without the node mutex");
    assert_eq!(observed, tip);

    // Sanity: web3's own read accessors agree with the locked node.
    assert_eq!(web3.block_number(), tip);
    assert_eq!(web3.balance(other), web3.read_handle().balance(other));
}

#[test]
fn accounts_and_code_are_arc_shared_not_copied() {
    let web3 = Web3::new(LocalNode::new(3));
    let from = web3.accounts()[0];
    let artifact = compile_single(SOURCE, "Emitter").unwrap();
    let (contract, _) = web3
        .deploy(from, artifact.abi, artifact.bytecode, &[], U256::ZERO)
        .unwrap();

    // Two reads of an unchanged snapshot hand back the SAME allocation.
    let a1 = web3.accounts();
    let a2 = web3.accounts();
    assert!(Arc::ptr_eq(&a1, &a2), "accounts list is shared, not cloned");

    let c1 = web3.code(contract.address());
    let c2 = web3.code(contract.address());
    assert!(Arc::ptr_eq(&c1, &c2), "deployed code is shared, not cloned");
    assert!(!c1.is_empty());

    // The snapshot's copy and the node's copy are the same allocation
    // too: publication re-shares the account's Arc.
    let from_node = web3.with_node(|node| node.code(contract.address()));
    assert!(
        Arc::ptr_eq(&c1, &from_node),
        "snapshot shares the node's code Arc"
    );
}
