//! Typed contract handles: ABI-aware call/transact plus event decoding —
//! the Rust equivalent of web3py's `Contract` object used throughout the
//! paper's Fig. 8 snippet.

use crate::{decode_revert_reason, Web3, Web3Error};
use lsc_abi::{Abi, AbiValue};
use lsc_chain::{CommittedSnapshot, Receipt, Transaction};
use lsc_evm::Log;
use lsc_primitives::{Address, U256};

/// A deployed contract: client handle + ABI + address.
#[derive(Clone)]
pub struct Contract {
    web3: Web3,
    abi: Abi,
    address: Address,
}

/// An event decoded against the contract ABI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedEvent {
    /// Event name.
    pub name: String,
    /// Parameter names and decoded values. Indexed value parameters come
    /// from topics; dynamic unindexed ones from the data section.
    pub params: Vec<(String, AbiValue)>,
}

impl Contract {
    /// Bind a handle.
    pub fn new(web3: Web3, abi: Abi, address: Address) -> Self {
        Contract { web3, abi, address }
    }

    /// On-chain address.
    pub fn address(&self) -> Address {
        self.address
    }

    /// The ABI.
    pub fn abi(&self) -> &Abi {
        &self.abi
    }

    /// The client.
    pub fn web3(&self) -> &Web3 {
        &self.web3
    }

    /// Read-only call; decodes the outputs.
    pub fn call(&self, name: &str, args: &[AbiValue]) -> Result<Vec<AbiValue>, Web3Error> {
        let f = self
            .abi
            .function(name)
            .ok_or_else(|| Web3Error::UnknownAbiItem(name.to_string()))?;
        let data = f.encode_call(args)?;
        let caller = self
            .web3
            .accounts()
            .first()
            .copied()
            .unwrap_or(Address::ZERO);
        let result = self.web3.call_raw(caller, self.address, data);
        if !result.success {
            return Err(Web3Error::Reverted {
                reason: decode_revert_reason(&result.output),
                output: result.output,
            });
        }
        Ok(f.decode_output(&result.output)?)
    }

    /// Read-only call returning the single output value.
    pub fn call1(&self, name: &str, args: &[AbiValue]) -> Result<AbiValue, Web3Error> {
        let mut values = self.call(name, args)?;
        if values.is_empty() {
            return Err(Web3Error::UnknownAbiItem(format!("{name} returns nothing")));
        }
        Ok(values.remove(0))
    }

    /// Read-only call against one published snapshot: every call (and
    /// any other read) made against the same `snap` observes the same
    /// committed prefix, lock-free. Decodes like [`Contract::call`].
    pub fn call_at(
        &self,
        snap: &CommittedSnapshot,
        name: &str,
        args: &[AbiValue],
    ) -> Result<Vec<AbiValue>, Web3Error> {
        let f = self
            .abi
            .function(name)
            .ok_or_else(|| Web3Error::UnknownAbiItem(name.to_string()))?;
        let data = f.encode_call(args)?;
        let caller = snap.accounts().first().copied().unwrap_or(Address::ZERO);
        let result = snap.call(caller, self.address, data);
        if !result.success {
            return Err(Web3Error::Reverted {
                reason: decode_revert_reason(&result.output),
                output: result.output,
            });
        }
        Ok(f.decode_output(&result.output)?)
    }

    /// [`Contract::call_at`] returning the single output value.
    pub fn call1_at(
        &self,
        snap: &CommittedSnapshot,
        name: &str,
        args: &[AbiValue],
    ) -> Result<AbiValue, Web3Error> {
        let mut values = self.call_at(snap, name, args)?;
        if values.is_empty() {
            return Err(Web3Error::UnknownAbiItem(format!("{name} returns nothing")));
        }
        Ok(values.remove(0))
    }

    /// State-changing invocation; errors on revert.
    pub fn send(
        &self,
        from: Address,
        name: &str,
        args: &[AbiValue],
        value: U256,
    ) -> Result<Receipt, Web3Error> {
        let tx = self.transaction(from, name, args, value)?;
        self.web3.send_transaction(tx)
    }

    /// State-changing invocation; returns the receipt even when reverted.
    pub fn send_raw(
        &self,
        from: Address,
        name: &str,
        args: &[AbiValue],
        value: U256,
    ) -> Result<Receipt, Web3Error> {
        let tx = self.transaction(from, name, args, value)?;
        self.web3.send_transaction_raw(tx)
    }

    /// Build (but do not send) the transaction for a function call.
    pub fn transaction(
        &self,
        from: Address,
        name: &str,
        args: &[AbiValue],
        value: U256,
    ) -> Result<Transaction, Web3Error> {
        let f = self
            .abi
            .function(name)
            .ok_or_else(|| Web3Error::UnknownAbiItem(name.to_string()))?;
        let data = f.encode_call(args)?;
        Ok(Transaction::call(from, self.address, data).with_value(value))
    }

    /// Decode the logs of a receipt that belong to this contract.
    pub fn decode_logs(&self, receipt: &Receipt) -> Vec<DecodedEvent> {
        receipt
            .logs
            .iter()
            .filter(|log| log.address == self.address)
            .filter_map(|log| self.decode_log(log))
            .collect()
    }

    /// Query this contract's events of `name` over a block range
    /// (`eth_getLogs` with an address + topic-0 filter), decoded.
    pub fn events_in_range(
        &self,
        name: &str,
        from_block: u64,
        to_block: u64,
    ) -> Result<Vec<(u64, DecodedEvent)>, Web3Error> {
        let event = self
            .abi
            .event(name)
            .ok_or_else(|| Web3Error::UnknownAbiItem(name.to_string()))?;
        let raw = self.web3.logs(
            from_block,
            to_block,
            Some(self.address),
            Some(event.topic0()),
        );
        Ok(raw
            .into_iter()
            .filter_map(|(block, log)| self.decode_log(&log).map(|e| (block, e)))
            .collect())
    }

    /// [`Contract::events_in_range`] against one published snapshot —
    /// uses its indexed `eth_getLogs` and observes the same committed
    /// prefix as every other read of `snap`.
    pub fn events_in_range_at(
        &self,
        snap: &CommittedSnapshot,
        name: &str,
        from_block: u64,
        to_block: u64,
    ) -> Result<Vec<(u64, DecodedEvent)>, Web3Error> {
        let event = self
            .abi
            .event(name)
            .ok_or_else(|| Web3Error::UnknownAbiItem(name.to_string()))?;
        let raw = snap.logs(
            from_block,
            to_block,
            Some(self.address),
            Some(event.topic0()),
        );
        Ok(raw
            .into_iter()
            .filter_map(|(block, log)| self.decode_log(&log).map(|e| (block, e)))
            .collect())
    }

    /// Decode one log against the ABI (None if no event matches).
    pub fn decode_log(&self, log: &Log) -> Option<DecodedEvent> {
        let topic0 = log.topics.first()?;
        let event = self.abi.event_by_topic(*topic0)?;
        let data_values = event.decode_data(&log.data).ok()?;
        let mut data_iter = data_values.into_iter();
        let mut topic_iter = log.topics.iter().skip(1);
        let mut params = Vec::with_capacity(event.inputs.len());
        for input in &event.inputs {
            let value = if input.indexed {
                let topic = topic_iter.next()?;
                // Indexed value types are stored verbatim in the topic.
                match input.ty {
                    lsc_abi::AbiType::Address => {
                        AbiValue::Address(Address::from_u256(topic.to_u256()))
                    }
                    lsc_abi::AbiType::Bool => AbiValue::Bool(!topic.to_u256().is_zero()),
                    _ => AbiValue::Uint(topic.to_u256()),
                }
            } else {
                data_iter.next()?
            };
            params.push((input.name.clone(), value));
        }
        Some(DecodedEvent {
            name: event.name.clone(),
            params,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_abi::{Event, Param};
    use lsc_chain::LocalNode;
    use lsc_primitives::H256;

    fn sample_abi() -> Abi {
        Abi {
            events: vec![Event {
                name: "paidRent".into(),
                inputs: vec![
                    Param::indexed("tenant", lsc_abi::AbiType::Address),
                    Param::new("amount", lsc_abi::AbiType::Uint(256)),
                ],
                anonymous: false,
            }],
            ..Abi::default()
        }
    }

    #[test]
    fn decode_log_with_indexed_topic() {
        let web3 = Web3::new(LocalNode::new(1));
        let address = Address::from_label("contract");
        let contract = web3.contract_at(sample_abi(), address);
        let tenant = Address::from_label("tenant");
        let event = contract.abi().event("paidRent").unwrap();
        let log = Log {
            address,
            topics: vec![event.topic0(), H256::from_u256(tenant.to_u256())],
            data: lsc_abi::encode(&[lsc_abi::AbiType::Uint(256)], &[AbiValue::uint(1500)]).unwrap(),
        };
        let decoded = contract.decode_log(&log).unwrap();
        assert_eq!(decoded.name, "paidRent");
        assert_eq!(decoded.params[0].1.as_address(), Some(tenant));
        assert_eq!(decoded.params[1].1.as_u64(), Some(1500));
    }

    #[test]
    fn unknown_topic_is_ignored() {
        let web3 = Web3::new(LocalNode::new(1));
        let address = Address::from_label("contract");
        let contract = web3.contract_at(sample_abi(), address);
        let log = Log {
            address,
            topics: vec![H256::keccak(b"other")],
            data: vec![],
        };
        assert!(contract.decode_log(&log).is_none());
    }

    #[test]
    fn unknown_function_name_errors() {
        let web3 = Web3::new(LocalNode::new(1));
        let contract = web3.contract_at(Abi::default(), Address::from_label("c"));
        assert!(matches!(
            contract.call("missing", &[]),
            Err(Web3Error::UnknownAbiItem(_))
        ));
    }
}
