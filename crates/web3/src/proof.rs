//! Offline verification of `eth_getProof` responses — the paper's
//! "evidence line" made checkable without trusting the node.
//!
//! A rental agreement's committed facts (the contract's balance, its
//! version-pointer slots 0/1, the tenant's deposit) live under a block
//! header's `state_root`. [`verify_proof_response`] takes the untrusted
//! JSON a node returned and a *trusted* root (read from a header the
//! verifier already believes) and either authenticates every claimed
//! field against the Merkle proofs — pure hashing, no chain, no store —
//! or says exactly what failed. A court-side auditor needs only this
//! function, the response bytes and one 32-byte root.

use crate::wire::{
    parse_address, parse_data, parse_h256, parse_quantity, parse_quantity_u256, WireError,
};
use lsc_abi::json::JsonValue;
use lsc_chain::{account_key, decode_account, decode_slot_value, storage_key, verify_proof};
use lsc_chain::{AccountProof, ProofError};
use lsc_primitives::{Address, H256, U256};

/// Why an `eth_getProof` response failed offline verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofCheckError {
    /// The response JSON was malformed.
    Wire(WireError),
    /// The response names a different root than the trusted one.
    WrongRoot {
        /// The root the verifier trusts (from a block header).
        expected: H256,
        /// The root the response claims.
        got: H256,
    },
    /// A Merkle proof failed to authenticate.
    Proof(ProofError),
    /// A proven leaf disagrees with the named claimed field.
    Claim(&'static str),
}

impl From<WireError> for ProofCheckError {
    fn from(e: WireError) -> Self {
        ProofCheckError::Wire(e)
    }
}

impl From<ProofError> for ProofCheckError {
    fn from(e: ProofError) -> Self {
        ProofCheckError::Proof(e)
    }
}

impl std::fmt::Display for ProofCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofCheckError::Wire(e) => write!(f, "malformed proof response: {e}"),
            ProofCheckError::WrongRoot { expected, got } => {
                write!(f, "proof is for root {got}, trusted root is {expected}")
            }
            ProofCheckError::Proof(e) => write!(f, "{e}"),
            ProofCheckError::Claim(field) => {
                write!(f, "claimed {field} does not match the proven leaf")
            }
        }
    }
}

impl std::error::Error for ProofCheckError {}

/// The facts an [`verify_proof_response`] call authenticated: every
/// field here is backed by a hash chain up to the trusted root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedProof {
    /// The proven account.
    pub address: Address,
    /// False when the proof demonstrates the account is absent.
    pub present: bool,
    /// Proven balance (zero for an absent account).
    pub balance: U256,
    /// Proven nonce (zero for an absent account).
    pub nonce: u64,
    /// Proven code hash ([`H256::ZERO`] for an absent account).
    pub code_hash: H256,
    /// Proven storage root ([`H256::ZERO`] when empty or absent).
    pub storage_root: H256,
    /// Proven `(slot, value)` pairs, in response order. Absent slots
    /// prove as zero — same convention as `SLOAD`.
    pub slots: Vec<(U256, U256)>,
}

fn field<'v>(doc: &'v JsonValue, name: &'static str) -> Result<&'v JsonValue, ProofCheckError> {
    doc.get(name).ok_or(ProofCheckError::Wire(WireError {
        field: name.to_string(),
        reason: "missing field".to_string(),
    }))
}

fn parse_nodes(value: &JsonValue, name: &'static str) -> Result<Vec<Vec<u8>>, ProofCheckError> {
    let JsonValue::Array(items) = value else {
        return Err(ProofCheckError::Wire(WireError {
            field: name.to_string(),
            reason: "expected an array of hex node encodings".to_string(),
        }));
    };
    items
        .iter()
        .map(|n| parse_data(n, name).map_err(ProofCheckError::Wire))
        .collect()
}

/// Verify an `eth_getProof` response against a trusted `state_root`.
///
/// Checks, in order: the response's `stateRoot` equals the trusted one;
/// the account proof authenticates under that root and its leaf (or
/// proven absence) matches the claimed `balance`/`nonce`/`codeHash`/
/// `storageHash`; every `storageProof` entry authenticates under the
/// proven storage root and matches its claimed `value`. Pure — no node,
/// no store, no chain access.
pub fn verify_proof_response(
    doc: &JsonValue,
    trusted_root: H256,
) -> Result<VerifiedProof, ProofCheckError> {
    let address = parse_address(field(doc, "address")?, "address")?;
    let got_root = parse_h256(field(doc, "stateRoot")?, "stateRoot")?;
    if got_root != trusted_root {
        return Err(ProofCheckError::WrongRoot {
            expected: trusted_root,
            got: got_root,
        });
    }
    let claimed_balance = parse_quantity_u256(field(doc, "balance")?, "balance")?;
    let claimed_nonce = parse_quantity(field(doc, "nonce")?, "nonce")?;
    let claimed_code_hash = parse_h256(field(doc, "codeHash")?, "codeHash")?;
    let claimed_storage_root = parse_h256(field(doc, "storageHash")?, "storageHash")?;
    let account_proof = parse_nodes(field(doc, "accountProof")?, "accountProof")?;

    let leaf = verify_proof(trusted_root, account_key(address), &account_proof)?;
    let (present, balance, nonce, code_hash, storage_root) = match leaf {
        Some(bytes) => {
            let account = decode_account(&bytes).ok_or(ProofCheckError::Claim("account leaf"))?;
            (
                true,
                account.balance,
                account.nonce,
                account.code_hash,
                account.storage_root,
            )
        }
        None => (false, U256::ZERO, 0, H256::ZERO, H256::ZERO),
    };
    if balance != claimed_balance {
        return Err(ProofCheckError::Claim("balance"));
    }
    if nonce != claimed_nonce {
        return Err(ProofCheckError::Claim("nonce"));
    }
    if code_hash != claimed_code_hash {
        return Err(ProofCheckError::Claim("codeHash"));
    }
    if storage_root != claimed_storage_root {
        return Err(ProofCheckError::Claim("storageHash"));
    }

    let mut slots = Vec::new();
    if let Some(entries) = doc.get("storageProof") {
        let JsonValue::Array(entries) = entries else {
            return Err(ProofCheckError::Wire(WireError {
                field: "storageProof".to_string(),
                reason: "expected an array".to_string(),
            }));
        };
        for entry in entries {
            let key = parse_quantity_u256(field(entry, "key")?, "storageProof.key")?;
            let claimed_value = parse_quantity_u256(field(entry, "value")?, "storageProof.value")?;
            let proof = parse_nodes(field(entry, "proof")?, "storageProof.proof")?;
            let value = verify_proof(storage_root, storage_key(key), &proof)?
                .and_then(|bytes| decode_slot_value(&bytes))
                .unwrap_or(U256::ZERO);
            if value != claimed_value {
                return Err(ProofCheckError::Claim("storageProof.value"));
            }
            slots.push((key, value));
        }
    }

    Ok(VerifiedProof {
        address,
        present,
        balance,
        nonce,
        code_hash,
        storage_root,
        slots,
    })
}

/// Convenience: encode an in-process [`AccountProof`] to wire JSON and
/// verify it — exactly what a remote client does with a socket response.
pub fn verify_account_proof(
    proof: &AccountProof,
    trusted_root: H256,
) -> Result<VerifiedProof, ProofCheckError> {
    verify_proof_response(&crate::wire::proof_to_json(proof), trusted_root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_chain::LocalNode;

    fn proven_node() -> (LocalNode, Address) {
        let mut node = LocalNode::new(3);
        let from = node.accounts()[0];
        // A contract with storage at slots 0 and 1 (version-pointer shape).
        let init = vec![
            0x60, 0x2a, 0x60, 0x00, 0x55, // SSTORE(0, 42)
            0x60, 0x07, 0x60, 0x01, 0x55, // SSTORE(1, 7)
            0x60, 0x00, 0x60, 0x00, 0xf3,
        ];
        let receipt = node
            .send_transaction(lsc_chain::Transaction::deploy(from, init))
            .unwrap();
        let contract = receipt.contract_address.unwrap();
        (node, contract)
    }

    #[test]
    fn wire_roundtrip_verifies_and_tampering_fails() {
        let (mut node, contract) = proven_node();
        let root = node.state_root();
        let proof = node
            .proof(contract, &[U256::ZERO, U256::from_u64(1)])
            .unwrap();
        let doc = crate::wire::proof_to_json(&proof);
        let verified = verify_proof_response(&doc, root).unwrap();
        assert!(verified.present);
        assert_eq!(verified.slots.len(), 2);
        assert_eq!(verified.slots[0].1, U256::from_u64(42));
        assert_eq!(verified.slots[1].1, U256::from_u64(7));

        // Re-parse from serialized text (the actual socket path).
        let reparsed = lsc_abi::json::parse(&doc.to_json()).unwrap();
        assert_eq!(verify_proof_response(&reparsed, root).unwrap(), verified);

        // Wrong trusted root → rejected before any hashing.
        let bogus = H256::keccak(b"bogus");
        assert!(matches!(
            verify_proof_response(&doc, bogus),
            Err(ProofCheckError::WrongRoot { .. })
        ));

        // Inflate the claimed balance → claim mismatch.
        let mut text = doc.to_json();
        let honest = format!("\"balance\":\"0x{:x}\"", proof.account.unwrap().balance);
        assert!(text.contains(&honest));
        text = text.replace(&honest, "\"balance\":\"0xffff\"");
        let tampered = lsc_abi::json::parse(&text).unwrap();
        assert!(matches!(
            verify_proof_response(&tampered, root),
            Err(ProofCheckError::Claim("balance"))
        ));
    }

    #[test]
    fn absent_account_proves_absence() {
        let (mut node, _) = proven_node();
        let root = node.state_root();
        let ghost = Address::from_label("nobody-here");
        let proof = node.proof(ghost, &[U256::ZERO]).unwrap();
        assert!(proof.account.is_none());
        let verified = verify_account_proof(&proof, root).unwrap();
        assert!(!verified.present);
        assert_eq!(verified.balance, U256::ZERO);
        assert_eq!(verified.slots, vec![(U256::ZERO, U256::ZERO)]);
    }
}
