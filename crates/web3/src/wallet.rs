//! The local wallet — MetaMask's role in the paper's stack: it owns the
//! accounts and authorizes transactions; the application only *requests*
//! them. The node itself (like Ganache) executes whatever it is handed, so
//! this boundary is the one place account custody is enforced.

use lsc_primitives::Address;
use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::Arc;

/// A thread-safe set of unlocked accounts.
#[derive(Debug, Default, Clone)]
pub struct Wallet {
    accounts: Arc<RwLock<HashSet<Address>>>,
}

impl Wallet {
    /// Empty wallet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a fresh deterministic account from a label and unlock it.
    pub fn create_account(&self, label: &str) -> Address {
        let address = Address::from_label(label);
        self.unlock(address);
        address
    }

    /// Unlock (import) an account.
    pub fn unlock(&self, address: Address) {
        self.accounts.write().insert(address);
    }

    /// Lock (remove) an account.
    pub fn lock(&self, address: Address) {
        self.accounts.write().remove(&address);
    }

    /// Is the account available for signing?
    pub fn holds(&self, address: Address) -> bool {
        self.accounts.read().contains(&address)
    }

    /// All unlocked accounts.
    pub fn addresses(&self) -> Vec<Address> {
        self.accounts.read().iter().copied().collect()
    }

    /// Number of unlocked accounts.
    pub fn len(&self) -> usize {
        self.accounts.read().len()
    }

    /// True when no accounts are unlocked.
    pub fn is_empty(&self) -> bool {
        self.accounts.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlock_and_lock() {
        let w = Wallet::new();
        assert!(w.is_empty());
        let a = w.create_account("landlord");
        assert!(w.holds(a));
        assert_eq!(w.len(), 1);
        w.lock(a);
        assert!(!w.holds(a));
    }

    #[test]
    fn labels_are_deterministic() {
        let w = Wallet::new();
        assert_eq!(w.create_account("x"), Address::from_label("x"));
    }

    #[test]
    fn clones_share_state() {
        let w = Wallet::new();
        let w2 = w.clone();
        let a = w.create_account("shared");
        assert!(w2.holds(a));
    }
}
