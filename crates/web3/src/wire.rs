//! Ethereum wire-format JSON codecs, shared by the JSON-RPC server
//! (`lsc-rpc`) and the differential test suites.
//!
//! Everything here speaks the `eth_*` surface conventions: quantities are
//! minimal `0x`-hex strings (`0x0`, `0x2a`), addresses are 20-byte
//! `0x`-hex, hashes 32-byte `0x`-hex, and data blobs even-length
//! `0x`-hex. Encoders produce [`JsonValue`]s whose object keys serialize
//! sorted — the same bytes no matter which layer built them, which is what
//! lets the socket differential tests compare responses byte-for-byte
//! against in-process calls.
//!
//! The repo has no real transaction signing (the wallet layer plays
//! MetaMask), so `eth_sendRawTransaction` carries a *wallet-format* raw
//! transaction: the `0x`-hex of the UTF-8 JSON transaction object encoded
//! by [`tx_to_json`]. [`decode_raw_transaction`] inverts it.

use lsc_abi::json::{self, JsonValue};
use lsc_chain::{Block, LogFilter, Receipt, Transaction};
use lsc_evm::Log;
use lsc_primitives::{hex, Address, H256, U256};
use std::str::FromStr;

/// A malformed wire value: the field that failed and why. Maps to the
/// JSON-RPC *invalid params* error (`-32602`) at the server boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Which parameter or field was malformed.
    pub field: String,
    /// Human-readable description of the problem.
    pub reason: String,
}

impl WireError {
    fn new(field: impl Into<String>, reason: impl Into<String>) -> Self {
        WireError {
            field: field.into(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid {}: {}", self.field, self.reason)
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Scalar encoders
// ---------------------------------------------------------------------

/// Encode a `u64` as a minimal `0x`-hex quantity string (`0x0`, `0x2a`).
pub fn quantity(n: u64) -> JsonValue {
    JsonValue::String(format!("0x{n:x}"))
}

/// Encode a [`U256`] as a minimal `0x`-hex quantity string.
pub fn quantity_u256(value: U256) -> JsonValue {
    let bytes = value.to_be_bytes();
    let first = bytes.iter().position(|b| *b != 0).unwrap_or(31);
    let mut out = String::from("0x");
    let mut digits = hex::encode(&bytes[first..]);
    // Minimal form: strip one leading zero nibble if present.
    if digits.len() > 1 && digits.starts_with('0') {
        digits.remove(0);
    }
    out.push_str(&digits);
    JsonValue::String(out)
}

/// Encode an [`Address`] as 20-byte `0x`-hex.
pub fn address_json(address: Address) -> JsonValue {
    JsonValue::String(address.to_string())
}

/// Encode an [`H256`] as 32-byte `0x`-hex.
pub fn h256_json(hash: H256) -> JsonValue {
    JsonValue::String(hash.to_string())
}

/// Encode a data blob as even-length `0x`-hex (`0x` when empty).
pub fn data_json(data: &[u8]) -> JsonValue {
    JsonValue::String(hex::encode_prefixed(data))
}

// ---------------------------------------------------------------------
// Scalar decoders
// ---------------------------------------------------------------------

fn expect_string<'v>(value: &'v JsonValue, field: &str) -> Result<&'v str, WireError> {
    value
        .as_str()
        .ok_or_else(|| WireError::new(field, "expected a string"))
}

/// Decode a `0x`-hex quantity string into a `u64`.
pub fn parse_quantity(value: &JsonValue, field: &str) -> Result<u64, WireError> {
    let text = expect_string(value, field)?;
    let digits = text
        .strip_prefix("0x")
        .ok_or_else(|| WireError::new(field, "quantity must start with 0x"))?;
    if digits.is_empty() {
        return Err(WireError::new(field, "quantity has no digits"));
    }
    u64::from_str_radix(digits, 16)
        .map_err(|e| WireError::new(field, format!("bad hex quantity: {e}")))
}

/// Decode a `0x`-hex quantity string into a [`U256`].
pub fn parse_quantity_u256(value: &JsonValue, field: &str) -> Result<U256, WireError> {
    let text = expect_string(value, field)?;
    if !text.starts_with("0x") {
        return Err(WireError::new(field, "quantity must start with 0x"));
    }
    U256::from_hex_str(text).map_err(|e| WireError::new(field, format!("bad hex quantity: {e}")))
}

/// Decode a 20-byte `0x`-hex string into an [`Address`].
pub fn parse_address(value: &JsonValue, field: &str) -> Result<Address, WireError> {
    let text = expect_string(value, field)?;
    if !text.starts_with("0x") || text.len() != 42 {
        return Err(WireError::new(
            field,
            "expected a 0x-prefixed 20-byte address",
        ));
    }
    Address::from_str(text).map_err(|e| WireError::new(field, format!("bad address: {e}")))
}

/// Decode a 32-byte `0x`-hex string into an [`H256`].
pub fn parse_h256(value: &JsonValue, field: &str) -> Result<H256, WireError> {
    let text = expect_string(value, field)?;
    if !text.starts_with("0x") || text.len() != 66 {
        return Err(WireError::new(field, "expected a 0x-prefixed 32-byte hash"));
    }
    H256::from_str(text).map_err(|e| WireError::new(field, format!("bad hash: {e}")))
}

/// Decode an even-length `0x`-hex string into bytes.
pub fn parse_data(value: &JsonValue, field: &str) -> Result<Vec<u8>, WireError> {
    let text = expect_string(value, field)?;
    if !text.starts_with("0x") {
        return Err(WireError::new(field, "data must start with 0x"));
    }
    hex::decode(text).map_err(|e| WireError::new(field, format!("bad hex data: {e}")))
}

// ---------------------------------------------------------------------
// Block tags
// ---------------------------------------------------------------------

/// An `eth_*` block selector: `"latest"`, `"earliest"`, `"pending"` or a
/// hex block number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockTag {
    /// The snapshot tip.
    Latest,
    /// Block 0 (genesis).
    Earliest,
    /// Treated as the tip — the node has no speculative pending block.
    Pending,
    /// An explicit height.
    Number(u64),
}

impl BlockTag {
    /// Resolve against the snapshot tip.
    pub fn resolve(self, tip: u64) -> u64 {
        match self {
            BlockTag::Latest | BlockTag::Pending => tip,
            BlockTag::Earliest => 0,
            BlockTag::Number(n) => n,
        }
    }
}

/// Parse a block tag (`"latest"`, `"earliest"`, `"pending"` or `0x`-hex).
pub fn parse_block_tag(value: &JsonValue, field: &str) -> Result<BlockTag, WireError> {
    let text = expect_string(value, field)?;
    match text {
        "latest" => Ok(BlockTag::Latest),
        "earliest" => Ok(BlockTag::Earliest),
        "pending" => Ok(BlockTag::Pending),
        _ => Ok(BlockTag::Number(parse_quantity(value, field)?)),
    }
}

// ---------------------------------------------------------------------
// Object codecs
// ---------------------------------------------------------------------

/// Encode a transaction as an `eth_*` transaction object. `nonce` is
/// `null` when not yet resolved; `to` is `null` for deployments.
pub fn tx_to_json(tx: &Transaction) -> JsonValue {
    JsonValue::object([
        ("from", address_json(tx.from)),
        ("to", tx.to.map_or(JsonValue::Null, address_json)),
        ("value", quantity_u256(tx.value)),
        ("data", data_json(&tx.data)),
        ("gas", quantity(tx.gas)),
        ("gasPrice", quantity_u256(tx.gas_price)),
        ("nonce", tx.nonce.map_or(JsonValue::Null, quantity)),
    ])
}

/// Decode an `eth_sendTransaction`-style object. `from` is required;
/// `to`, `value`, `data` (or its alias `input`), `gas`, `gasPrice` and
/// `nonce` are optional with the same defaults as [`Transaction::call`].
pub fn tx_from_json(value: &JsonValue) -> Result<Transaction, WireError> {
    let JsonValue::Object(_) = value else {
        return Err(WireError::new("transaction", "expected an object"));
    };
    let from = parse_address(
        value
            .get("from")
            .ok_or_else(|| WireError::new("transaction.from", "missing required field"))?,
        "transaction.from",
    )?;
    let to = match value.get("to") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(parse_address(v, "transaction.to")?),
    };
    let data = match value.get("data").or_else(|| value.get("input")) {
        None | Some(JsonValue::Null) => Vec::new(),
        Some(v) => parse_data(v, "transaction.data")?,
    };
    let value_wei = match value.get("value") {
        None | Some(JsonValue::Null) => U256::ZERO,
        Some(v) => parse_quantity_u256(v, "transaction.value")?,
    };
    let gas = match value.get("gas") {
        None | Some(JsonValue::Null) => {
            if to.is_none() {
                12_000_000
            } else {
                8_000_000
            }
        }
        Some(v) => parse_quantity(v, "transaction.gas")?,
    };
    let gas_price = match value.get("gasPrice") {
        None | Some(JsonValue::Null) => U256::from_u64(1_000_000_000),
        Some(v) => parse_quantity_u256(v, "transaction.gasPrice")?,
    };
    let nonce = match value.get("nonce") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(parse_quantity(v, "transaction.nonce")?),
    };
    Ok(Transaction {
        from,
        to,
        value: value_wei,
        data,
        gas,
        gas_price,
        nonce,
    })
}

/// Encode a transaction as wallet-format raw bytes: `0x`-hex of the UTF-8
/// deterministic JSON object (`eth_sendRawTransaction` payload).
pub fn encode_raw_transaction(tx: &Transaction) -> String {
    hex::encode_prefixed(tx_to_json(tx).to_json().as_bytes())
}

/// Decode a wallet-format raw transaction produced by
/// [`encode_raw_transaction`].
pub fn decode_raw_transaction(raw: &JsonValue) -> Result<Transaction, WireError> {
    let bytes = parse_data(raw, "rawTransaction")?;
    let text = String::from_utf8(bytes)
        .map_err(|_| WireError::new("rawTransaction", "payload is not UTF-8 JSON"))?;
    let value = json::parse(&text)
        .map_err(|e| WireError::new("rawTransaction", format!("payload is not JSON: {e}")))?;
    tx_from_json(&value)
}

/// Encode one log as an `eth_getLogs` entry. `log_index` is the position
/// within the *filter result*, mirroring the flat per-block emission
/// order the chain indexes.
pub fn log_to_json(block_number: u64, log_index: u64, log: &Log) -> JsonValue {
    JsonValue::object([
        ("address", address_json(log.address)),
        (
            "topics",
            JsonValue::Array(log.topics.iter().map(|t| h256_json(*t)).collect()),
        ),
        ("data", data_json(&log.data)),
        ("blockNumber", quantity(block_number)),
        ("logIndex", quantity(log_index)),
        ("removed", JsonValue::Bool(false)),
    ])
}

/// Encode a receipt as an `eth_getTransactionReceipt` object. The
/// non-standard `output` field carries return/revert data (Ganache-style
/// diagnostics; the dashboard uses it for revert reasons).
pub fn receipt_to_json(receipt: &Receipt, block_hash: Option<H256>) -> JsonValue {
    JsonValue::object([
        ("transactionHash", h256_json(receipt.tx_hash)),
        ("transactionIndex", quantity(receipt.tx_index as u64)),
        ("blockNumber", quantity(receipt.block_number)),
        ("blockHash", block_hash.map_or(JsonValue::Null, h256_json)),
        ("status", quantity(receipt.status)),
        ("gasUsed", quantity(receipt.gas_used)),
        (
            "effectiveGasPrice",
            quantity_u256(receipt.effective_gas_price),
        ),
        (
            "contractAddress",
            receipt
                .contract_address
                .map_or(JsonValue::Null, address_json),
        ),
        (
            "logs",
            JsonValue::Array(
                receipt
                    .logs
                    .iter()
                    .enumerate()
                    .map(|(i, log)| log_to_json(receipt.block_number, i as u64, log))
                    .collect(),
            ),
        ),
        ("output", data_json(&receipt.output)),
    ])
}

/// Encode a block as an `eth_getBlockByNumber` object (transactions as
/// hashes — the `fullTransactions` flag is not supported).
pub fn block_to_json(block: &Block) -> JsonValue {
    JsonValue::object([
        ("number", quantity(block.number)),
        ("hash", h256_json(block.hash)),
        ("parentHash", h256_json(block.parent_hash)),
        ("stateRoot", h256_json(block.state_root)),
        ("timestamp", quantity(block.timestamp)),
        (
            "transactions",
            JsonValue::Array(block.tx_hashes.iter().map(|h| h256_json(*h)).collect()),
        ),
        ("gasUsed", quantity(block.gas_used)),
    ])
}

/// Encode an [`AccountProof`](lsc_chain::AccountProof) bundle as an
/// `eth_getProof` response object. An absent account reports zero
/// balance/nonce and all-zero `codeHash`/`storageHash` alongside its
/// non-inclusion proof, mirroring geth. The non-standard `stateRoot`
/// field names the root the proofs verify against, so the response is
/// checkable offline without a separate header fetch (see
/// [`crate::proof::verify_proof_response`]).
pub fn proof_to_json(proof: &lsc_chain::AccountProof) -> JsonValue {
    let account = proof.account;
    JsonValue::object([
        (
            "accountProof",
            JsonValue::Array(proof.account_proof.iter().map(|n| data_json(n)).collect()),
        ),
        ("address", address_json(proof.address)),
        (
            "balance",
            quantity_u256(account.map_or(U256::ZERO, |a| a.balance)),
        ),
        (
            "codeHash",
            h256_json(account.map_or(H256::ZERO, |a| a.code_hash)),
        ),
        ("nonce", quantity(account.map_or(0, |a| a.nonce))),
        ("stateRoot", h256_json(proof.state_root)),
        (
            "storageHash",
            h256_json(account.map_or(H256::ZERO, |a| a.storage_root)),
        ),
        (
            "storageProof",
            JsonValue::Array(
                proof
                    .storage_proofs
                    .iter()
                    .map(|sp| {
                        JsonValue::object([
                            ("key", quantity_u256(sp.key)),
                            (
                                "proof",
                                JsonValue::Array(sp.proof.iter().map(|n| data_json(n)).collect()),
                            ),
                            ("value", quantity_u256(sp.value)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

// ---------------------------------------------------------------------
// Log filter
// ---------------------------------------------------------------------

/// Decode an `eth_getLogs` filter object: `fromBlock`/`toBlock` tags,
/// `address` (single or array) and the positional `topics` array (each
/// position `null` = wildcard, a hash, or an OR-array of hashes).
pub fn filter_from_json(value: &JsonValue) -> Result<(BlockTag, BlockTag, LogFilter), WireError> {
    let JsonValue::Object(_) = value else {
        return Err(WireError::new("filter", "expected an object"));
    };
    let from_block = match value.get("fromBlock") {
        None | Some(JsonValue::Null) => BlockTag::Earliest,
        Some(v) => parse_block_tag(v, "filter.fromBlock")?,
    };
    let to_block = match value.get("toBlock") {
        None | Some(JsonValue::Null) => BlockTag::Latest,
        Some(v) => parse_block_tag(v, "filter.toBlock")?,
    };
    let addresses = match value.get("address") {
        None | Some(JsonValue::Null) => Vec::new(),
        Some(JsonValue::Array(items)) => items
            .iter()
            .map(|v| parse_address(v, "filter.address"))
            .collect::<Result<Vec<_>, _>>()?,
        Some(single) => vec![parse_address(single, "filter.address")?],
    };
    let topics = match value.get("topics") {
        None | Some(JsonValue::Null) => Vec::new(),
        Some(JsonValue::Array(positions)) => positions
            .iter()
            .map(|position| match position {
                JsonValue::Null => Ok(Vec::new()),
                JsonValue::Array(options) => options
                    .iter()
                    .map(|v| parse_h256(v, "filter.topics"))
                    .collect(),
                single => Ok(vec![parse_h256(single, "filter.topics")?]),
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => {
            return Err(WireError::new("filter.topics", "expected an array"));
        }
    };
    Ok((from_block, to_block, LogFilter { addresses, topics }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantities_are_minimal_hex() {
        assert_eq!(quantity(0).to_json(), "\"0x0\"");
        assert_eq!(quantity(42).to_json(), "\"0x2a\"");
        assert_eq!(quantity_u256(U256::ZERO).to_json(), "\"0x0\"");
        assert_eq!(quantity_u256(U256::from_u64(255)).to_json(), "\"0xff\"");
        assert_eq!(quantity_u256(U256::from_u64(4096)).to_json(), "\"0x1000\"");
        let q = quantity_u256(U256::from_u64(42));
        assert_eq!(parse_quantity_u256(&q, "q").unwrap(), U256::from_u64(42));
    }

    #[test]
    fn quantity_roundtrip() {
        for n in [0u64, 1, 15, 16, 255, 256, u64::MAX] {
            let v = quantity(n);
            assert_eq!(parse_quantity(&v, "n").unwrap(), n);
        }
    }

    #[test]
    fn rejects_malformed_scalars() {
        let bad = JsonValue::String("42".into());
        assert!(parse_quantity(&bad, "n").is_err());
        let bad = JsonValue::String("0x".into());
        assert!(parse_quantity(&bad, "n").is_err());
        let bad = JsonValue::String("0xzz".into());
        assert!(parse_quantity(&bad, "n").is_err());
        let short = JsonValue::String("0x1234".into());
        assert!(parse_address(&short, "a").is_err());
        assert!(parse_h256(&short, "h").is_err());
        let odd = JsonValue::String("0xabc".into());
        assert!(parse_data(&odd, "d").is_err());
    }

    #[test]
    fn tx_roundtrip_via_raw_encoding() {
        let tx = Transaction::call(
            Address::from_label("alice"),
            Address::from_label("bob"),
            vec![1, 2, 3],
        )
        .with_value(U256::from_u64(7))
        .with_nonce(3);
        let raw = encode_raw_transaction(&tx);
        let decoded = decode_raw_transaction(&JsonValue::String(raw)).unwrap();
        assert_eq!(decoded, tx);
    }

    #[test]
    fn deploy_tx_roundtrip_defaults() {
        let tx = Transaction::deploy(Address::from_label("alice"), vec![0x60, 0x00]);
        let decoded = tx_from_json(&tx_to_json(&tx)).unwrap();
        assert_eq!(decoded, tx);
        assert_eq!(decoded.gas, 12_000_000);
    }

    #[test]
    fn filter_decodes_positional_topics() {
        let t1 = H256::keccak(b"Transfer");
        let t2 = H256::keccak(b"extra");
        let raw = format!(
            "{{\"fromBlock\":\"0x1\",\"toBlock\":\"latest\",\"address\":\"{}\",\"topics\":[\"{t1}\",null,[\"{t1}\",\"{t2}\"]]}}",
            Address::from_label("c"),
        );
        let value = json::parse(&raw).unwrap();
        let (from, to, filter) = filter_from_json(&value).unwrap();
        assert_eq!(from, BlockTag::Number(1));
        assert_eq!(to, BlockTag::Latest);
        assert_eq!(filter.addresses, vec![Address::from_label("c")]);
        assert_eq!(filter.topics.len(), 3);
        assert_eq!(filter.topics[0], vec![t1]);
        assert!(filter.topics[1].is_empty());
        assert_eq!(filter.topics[2], vec![t1, t2]);
    }

    #[test]
    fn filter_empty_object_is_wildcard() {
        let value = json::parse("{}").unwrap();
        let (from, to, filter) = filter_from_json(&value).unwrap();
        assert_eq!(from, BlockTag::Earliest);
        assert_eq!(to, BlockTag::Latest);
        assert!(filter.addresses.is_empty());
        assert!(filter.topics.is_empty());
    }
}
